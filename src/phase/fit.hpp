// Three-moment matching to phase-type distributions.
//
// The busy-period transformation (paper §5.2, citing Osogami &
// Harchol-Balter [45]) replaces the M/M/1 busy-period transition with a
// small phase-type distribution matching the busy period's first three
// moments. M/M/1 busy periods always have SCV >= 1, for which a two-phase
// Coxian suffices; we also ship an Erlang-Coxian fallback for SCV < 1 so
// the fitter is total over feasible inputs.
#pragma once

#include "markov/birth_death.hpp"
#include "phase/phase_type.hpp"

namespace esched {

/// Parameters of a two-phase Coxian (phase 1 rate nu1, continue w.p. p to
/// phase 2 with rate nu2).
struct Coxian2Params {
  double nu1 = 0.0;
  double nu2 = 0.0;
  double p = 0.0;

  PhaseType to_phase_type() const;
};

/// True when (m1, m2, m3) can be matched exactly by a two-phase Coxian:
/// positive mean, SCV >= 1, and m3 >= (3/2) m2^2 / m1.
bool coxian2_feasible(const Moments3& m);

/// Matches the first three raw moments with a two-phase Coxian. Requires
/// coxian2_feasible(m) (up to a small numerical slack, which is absorbed).
/// Degenerate case SCV == 1 && m3 == exponential's returns p == 0.
Coxian2Params fit_coxian2(const Moments3& m);

/// General entry point: Coxian-2 when feasible, otherwise an Erlang-Coxian
/// (Erlang stages feeding a Coxian tail) that matches m1 and m2 exactly and
/// m3 as closely as the family allows. The result's moments are reported by
/// PhaseType::moments3() so callers can check the fit quality.
PhaseType fit_moments3(const Moments3& m);

}  // namespace esched
