#include "phase/fit.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace esched {

PhaseType Coxian2Params::to_phase_type() const {
  return PhaseType::coxian2(nu1, nu2, p);
}

namespace {

void check_raw_moments(const Moments3& m) {
  ESCHED_CHECK(m.m1 > 0.0 && m.m2 > 0.0 && m.m3 > 0.0,
               "moments must be positive");
  // Any distribution satisfies m2 >= m1^2 (Jensen).
  ESCHED_CHECK(m.m2 >= m.m1 * m.m1 * (1.0 - 1e-9),
               "m2 < m1^2 is not a valid moment sequence");
}

/// The Coxian-2 third-moment lower bound for SCV >= 1 inputs.
double m3_lower_bound(const Moments3& m) {
  return 1.5 * m.m2 * m.m2 / m.m1;
}

/// True on the SCV == 1 boundary of the Coxian-2 region, where the family
/// degenerates: the only matchable point there is the exponential. Shared
/// by fit_coxian2 (which requires exponential_m3 there) and fit_moments3
/// (which falls back before calling it) so the two can never desync.
bool scv1_boundary(const Moments3& m) {
  return m.m2 <= 2.0 * m.m1 * m.m1 * (1.0 + 1e-9);
}

/// True when m3 is (numerically) the exponential's 6 m1^3.
bool exponential_m3(const Moments3& m) {
  return approx_equal(m.m3, 6.0 * m.m1 * m.m1 * m.m1, 1e-6);
}

}  // namespace

bool coxian2_feasible(const Moments3& m) {
  if (m.m1 <= 0.0 || m.m2 <= 0.0 || m.m3 <= 0.0) return false;
  if (m.m2 < 2.0 * m.m1 * m.m1 * (1.0 - 1e-9)) return false;  // SCV < 1
  return m.m3 >= m3_lower_bound(m) * (1.0 - 1e-9);
}

Coxian2Params fit_coxian2(const Moments3& moments) {
  check_raw_moments(moments);
  ESCHED_CHECK(coxian2_feasible(moments),
               "moments are not matchable by a two-phase Coxian");
  Moments3 m = moments;
  // Nudge an exactly-boundary third moment into the interior; the boundary
  // corresponds to a degenerate (infinite-rate) first phase.
  const double bound = m3_lower_bound(m);
  if (m.m3 < bound * (1.0 + 1e-12)) m.m3 = bound * (1.0 + 1e-9);

  // Degenerate boundary SCV == 1: the only Coxian-2-matchable point there
  // is the exponential (m3 == 6 m1^3). Handle it before the root search —
  // the bracket endpoint x -> m1 becomes 0/0 in this case.
  if (scv1_boundary(m)) {
    ESCHED_CHECK(exponential_m3(m),
                 "SCV == 1 moments are Coxian-2-matchable only at the "
                 "exponential point");
    return {1.0 / m.m1, 1.0 / m.m1, 0.0};
  }

  // Parametrize by x = 1/nu1 in (0, m1). With q = m1 - x and
  // y = (m2/2 - x^2)/q - x (so that the second moment matches), the third
  // moment matches iff F(x) = x^3 + q (x^2 + x y + y^2) - m3/6 = 0.
  // Feasibility gives F(0+) <= 0 and SCV > 1 gives F(m1-) -> +inf, so a
  // root exists in the bracket; bisection is robust against the pole at m1.
  const auto eval_y = [&](double x) {
    const double q = m.m1 - x;
    return (0.5 * m.m2 - x * x) / q - x;
  };
  const auto f = [&](double x) {
    const double q = m.m1 - x;
    const double y = eval_y(x);
    return x * x * x + q * (x * x + x * y + y * y) - m.m3 / 6.0;
  };

  double lo = m.m1 * 1e-12;
  double hi = m.m1 * (1.0 - 1e-12);
  double flo = f(lo);
  ESCHED_ASSERT(flo <= 0.0 || flo < m.m3 * 1e-9,
                "Coxian-2 bracket lower endpoint has unexpected sign");
  if (flo > 0.0) lo = 0.0;  // boundary-degenerate; bisection still works
  // Walk `hi` down until f(hi) > 0 is representable (the pole guarantees
  // positivity near m1, but 1 - 1e-12 may overflow to inf — that is fine).
  double fhi = f(hi);
  ESCHED_ASSERT(fhi > 0.0 || std::isinf(fhi),
                "Coxian-2 bracket upper endpoint has unexpected sign");

  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid <= 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-16 * m.m1) break;
  }
  const double x = 0.5 * (lo + hi);
  const double q = m.m1 - x;
  const double y = eval_y(x);
  ESCHED_ASSERT(x > 0.0 && q > 0.0 && y > 0.0,
                "Coxian-2 solution outside the feasible region");
  Coxian2Params params;
  params.nu1 = 1.0 / x;
  params.nu2 = 1.0 / y;
  params.p = clamp(q / y, 0.0, 1.0);
  return params;
}

PhaseType fit_moments3(const Moments3& m) {
  check_raw_moments(m);
  if (coxian2_feasible(m)) {
    // The SCV == 1 boundary of the Coxian-2 region contains only the
    // exponential: an off-exponential third moment there (e.g. the
    // lognormal with SCV 1, m3 = 8 m1^3) is unmatchable by the family, so
    // fall back to the exponential — m1 and m2 exact, m3 as close as a
    // one-parameter family gets.
    if (!scv1_boundary(m) || exponential_m3(m)) {
      return fit_coxian2(m).to_phase_type();
    }
    return PhaseType::exponential(1.0 / m.m1);
  }

  // SCV < 1: mixed-Erlang two-moment fit (Tijms). Pick n with
  // 1/n <= scv < 1/(n-1); the result is Erlang(n-1) w.p. q, Erlang(n)
  // otherwise, common rate lambda = (n - q)/m1 — representable as a Coxian
  // whose (n-1)-th stage exits early with probability q. Matches m1 and m2
  // exactly; m3 is approximate (the family has no third free parameter).
  const double scv = m.m2 / (m.m1 * m.m1) - 1.0;
  ESCHED_CHECK(scv > 0.0, "deterministic distributions are not supported");
  const int n = std::max(2, static_cast<int>(std::ceil(1.0 / scv)));
  const double nd = static_cast<double>(n);
  const double q =
      (nd * scv - std::sqrt(nd * (1.0 + scv) - nd * nd * scv)) / (1.0 + scv);
  const double rate = (nd - q) / m.m1;
  Vector rates(static_cast<std::size_t>(n), rate);
  Vector cont(static_cast<std::size_t>(n) - 1, 1.0);
  cont.back() = 1.0 - q;
  return PhaseType::coxian(rates, cont);
}

}  // namespace esched
