// Continuous phase-type distributions PH(alpha, T).
//
// A PH distribution is the absorption time of a CTMC with transient phase
// set {0..m-1}, initial distribution alpha, and sub-generator T (the exit
// rate of phase s is -T(s,s) - sum of off-diagonals). The busy-period
// transformation of paper §5.2 replaces M/M/1 busy periods with a 2-phase
// Coxian, which is a PH distribution; this class provides the general
// machinery (moments, CDF, sampling) plus the specific constructors.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "markov/birth_death.hpp"
#include "rng/xoshiro.hpp"

namespace esched {

/// A continuous phase-type distribution.
class PhaseType {
 public:
  /// alpha: initial phase probabilities (must sum to 1). T: sub-generator
  /// (negative diagonal, non-negative off-diagonals, row sums <= 0, with at
  /// least one strictly negative row sum so absorption is reachable).
  PhaseType(Vector alpha, Matrix t);

  std::size_t num_phases() const { return alpha_.size(); }
  const Vector& alpha() const { return alpha_; }
  const Matrix& sub_generator() const { return t_; }

  /// Exit (absorption) rate vector t0 = -T 1.
  const Vector& exit_rates() const { return exit_; }

  /// n-th raw moment E[X^n] = n! alpha (-T)^{-n} 1, n >= 1.
  double raw_moment(int n) const;

  /// First three raw moments.
  Moments3 moments3() const;

  double mean() const { return raw_moment(1); }
  double variance() const;
  /// Squared coefficient of variation.
  double scv() const;

  /// P(X <= t) via uniformization of exp(T t).
  double cdf(double t) const;

  /// Draws one sample by simulating the phase process.
  double sample(Xoshiro256& rng) const;

  /// The distribution of `time_scale * X` (same alpha, sub-generator
  /// T / time_scale): every moment of order n scales by time_scale^n and
  /// the SCV is preserved. This is how a unit-mean shape is rescaled to a
  /// class's mean job size (see phase/size_dist).
  PhaseType scaled_by(double time_scale) const;

  // ---- Named constructors -------------------------------------------------

  /// Exponential with the given rate.
  static PhaseType exponential(double rate);

  /// Erlang: `stages` sequential exponential stages with rate `rate` each.
  static PhaseType erlang(int stages, double rate);

  /// Hyperexponential: exponential with rates[i] chosen w.p. probs[i].
  static PhaseType hyperexponential(const Vector& probs, const Vector& rates);

  /// Two-phase Coxian: phase 1 at rate nu1; on completion continue to phase
  /// 2 (rate nu2) with probability p, else absorb.
  static PhaseType coxian2(double nu1, double nu2, double p);

  /// General Coxian: sequential phases with given rates; after phase i,
  /// continue with probability continue_probs[i] (size rates.size()-1).
  static PhaseType coxian(const Vector& rates, const Vector& continue_probs);

 private:
  Vector alpha_;
  Matrix t_;
  Vector exit_;
};

}  // namespace esched
