#include "phase/phase_type.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "linalg/lu.hpp"
#include "rng/distributions.hpp"

namespace esched {

PhaseType::PhaseType(Vector alpha, Matrix t)
    : alpha_(std::move(alpha)), t_(std::move(t)) {
  const std::size_t m = alpha_.size();
  ESCHED_CHECK(m > 0, "PH distribution needs at least one phase");
  ESCHED_CHECK(t_.rows() == m && t_.cols() == m,
               "sub-generator shape must match alpha");
  double alpha_sum = 0.0;
  for (double a : alpha_) {
    ESCHED_CHECK(a >= -1e-12, "alpha entries must be non-negative");
    alpha_sum += a;
  }
  ESCHED_CHECK(std::abs(alpha_sum - 1.0) < 1e-9, "alpha must sum to 1");

  exit_.assign(m, 0.0);
  bool any_exit = false;
  for (std::size_t r = 0; r < m; ++r) {
    ESCHED_CHECK(t_(r, r) < 0.0, "sub-generator diagonal must be negative");
    double row_sum = 0.0;
    for (std::size_t c = 0; c < m; ++c) {
      if (c != r) {
        ESCHED_CHECK(t_(r, c) >= 0.0,
                     "sub-generator off-diagonals must be non-negative");
      }
      row_sum += t_(r, c);
    }
    ESCHED_CHECK(row_sum <= 1e-9, "sub-generator row sums must be <= 0");
    exit_[r] = std::max(0.0, -row_sum);
    if (exit_[r] > 0.0) any_exit = true;
  }
  ESCHED_CHECK(any_exit, "absorption must be reachable");
}

double PhaseType::raw_moment(int n) const {
  ESCHED_CHECK(n >= 1, "moment order must be >= 1");
  // E[X^n] = n! alpha (-T)^{-n} 1: repeatedly solve (-T) y_{k} = y_{k-1}.
  Matrix neg_t = t_;
  neg_t *= -1.0;
  const LuFactorization lu(std::move(neg_t));
  Vector y(num_phases(), 1.0);
  double factorial = 1.0;
  for (int k = 1; k <= n; ++k) {
    y = lu.solve(y);
    factorial *= static_cast<double>(k);
  }
  return factorial * dot(alpha_, y);
}

Moments3 PhaseType::moments3() const {
  return {raw_moment(1), raw_moment(2), raw_moment(3)};
}

double PhaseType::variance() const {
  const double m1 = raw_moment(1);
  return raw_moment(2) - m1 * m1;
}

double PhaseType::scv() const {
  const double m1 = raw_moment(1);
  return variance() / (m1 * m1);
}

double PhaseType::cdf(double t) const {
  ESCHED_CHECK(t >= 0.0, "cdf argument must be non-negative");
  if (t == 0.0) return 0.0;
  // Uniformization: exp(T t) 1 = sum_k Poisson(Lambda t; k) P^k 1 with
  // P = I + T / Lambda. Survival = alpha exp(T t) 1.
  const std::size_t m = num_phases();
  double lambda = 0.0;
  for (std::size_t r = 0; r < m; ++r) lambda = std::max(lambda, -t_(r, r));
  lambda *= 1.01;
  Vector v(m, 1.0);  // P^k 1
  const double lt = lambda * t;
  double log_poisson = -lt;  // log of e^{-lt} (lt)^k / k! at k = 0
  double survival = 0.0;
  double tail_mass = 1.0;  // remaining Poisson mass (upper bound on error)
  Vector next(m);
  for (int k = 0; k < 100000; ++k) {
    const double poisson = std::exp(log_poisson);
    survival += poisson * dot(alpha_, v);
    tail_mass -= poisson;
    if (tail_mass < 1e-14 && static_cast<double>(k) > lt) break;
    // v <- P v.
    for (std::size_t r = 0; r < m; ++r) {
      double acc = v[r];
      for (std::size_t c = 0; c < m; ++c) acc += t_(r, c) * v[c] / lambda;
      next[r] = acc;
    }
    v.swap(next);
    log_poisson += std::log(lt) - std::log(static_cast<double>(k + 1));
  }
  return clamp(1.0 - survival, 0.0, 1.0);
}

double PhaseType::sample(Xoshiro256& rng) const {
  const std::size_t m = num_phases();
  // Choose the initial phase.
  std::size_t phase = 0;
  {
    double target = uniform_open01(rng);
    double cum = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      cum += alpha_[s];
      if (target <= cum) {
        phase = s;
        break;
      }
      phase = s;
    }
  }
  double time = 0.0;
  for (;;) {
    const double total_rate = -t_(phase, phase);
    // Qualified call: PhaseType::exponential (the factory) shadows the free
    // sampling function inside member scope.
    time += ::esched::exponential(rng, total_rate);
    // Pick the next phase or absorb, proportionally to the rates.
    double target = uniform_open01(rng) * total_rate;
    target -= exit_[phase];
    if (target <= 0.0) return time;
    bool moved = false;
    for (std::size_t s = 0; s < m; ++s) {
      if (s == phase) continue;
      target -= t_(phase, s);
      if (target <= 0.0) {
        phase = s;
        moved = true;
        break;
      }
    }
    ESCHED_ASSERT(moved, "phase transition selection failed");
  }
}

PhaseType PhaseType::scaled_by(double time_scale) const {
  ESCHED_CHECK(time_scale > 0.0 && is_finite(time_scale),
               "time scale must be positive and finite");
  Matrix t = t_;
  t *= 1.0 / time_scale;
  return PhaseType(alpha_, std::move(t));
}

PhaseType PhaseType::exponential(double rate) {
  ESCHED_CHECK(rate > 0.0, "rate must be positive");
  Matrix t(1, 1);
  t(0, 0) = -rate;
  return PhaseType(Vector{1.0}, std::move(t));
}

PhaseType PhaseType::erlang(int stages, double rate) {
  ESCHED_CHECK(stages >= 1, "Erlang needs at least one stage");
  ESCHED_CHECK(rate > 0.0, "rate must be positive");
  const auto m = static_cast<std::size_t>(stages);
  Matrix t(m, m);
  for (std::size_t s = 0; s < m; ++s) {
    t(s, s) = -rate;
    if (s + 1 < m) t(s, s + 1) = rate;
  }
  Vector alpha(m, 0.0);
  alpha[0] = 1.0;
  return PhaseType(std::move(alpha), std::move(t));
}

PhaseType PhaseType::hyperexponential(const Vector& probs,
                                      const Vector& rates) {
  ESCHED_CHECK(!probs.empty() && probs.size() == rates.size(),
               "probs/rates must be non-empty and equal length");
  const std::size_t m = probs.size();
  Matrix t(m, m);
  for (std::size_t s = 0; s < m; ++s) {
    ESCHED_CHECK(rates[s] > 0.0, "rates must be positive");
    t(s, s) = -rates[s];
  }
  return PhaseType(probs, std::move(t));
}

PhaseType PhaseType::coxian2(double nu1, double nu2, double p) {
  ESCHED_CHECK(nu1 > 0.0 && nu2 > 0.0, "Coxian rates must be positive");
  ESCHED_CHECK(p >= 0.0 && p <= 1.0, "branch probability must be in [0,1]");
  Matrix t(2, 2);
  t(0, 0) = -nu1;
  t(0, 1) = nu1 * p;
  t(1, 1) = -nu2;
  return PhaseType(Vector{1.0, 0.0}, std::move(t));
}

PhaseType PhaseType::coxian(const Vector& rates, const Vector& continue_probs) {
  const std::size_t m = rates.size();
  ESCHED_CHECK(m >= 1, "Coxian needs at least one phase");
  ESCHED_CHECK(continue_probs.size() == m - 1,
               "need one continue probability per non-final phase");
  Matrix t(m, m);
  for (std::size_t s = 0; s < m; ++s) {
    ESCHED_CHECK(rates[s] > 0.0, "Coxian rates must be positive");
    t(s, s) = -rates[s];
    if (s + 1 < m) {
      ESCHED_CHECK(continue_probs[s] >= 0.0 && continue_probs[s] <= 1.0,
                   "continue probabilities must be in [0,1]");
      t(s, s + 1) = rates[s] * continue_probs[s];
    }
  }
  Vector alpha(m, 0.0);
  alpha[0] = 1.0;
  return PhaseType(std::move(alpha), std::move(t));
}

}  // namespace esched
