// First-class job-size distributions.
//
// The paper's model assumes Exp(mu) job sizes; §6 flags sensitivity to
// that assumption as the open question. SizeDistSpec makes the size
// distribution *data*: a small value type parsed from a canonical string
// form ("exp", "erlang:3", "hyperexp:0.5,2,0.5", ...) that scenario specs
// can set per class or sweep as an axis, and that compiles down to the
// PhaseType the simulator and the augmented exact chain consume.
//
// Scaling convention: a spec describes only the *shape* of the
// distribution (its SCV and higher normalized moments). compile(mu)
// rescales it so the mean is exactly 1/mu — the class mean the model's
// mu_I/mu_E parameters already define — so sweeping a size_dist axis
// changes variability at fixed load, never the load itself.
#pragma once

#include <string>
#include <vector>

#include "phase/phase_type.hpp"

namespace esched {

/// Supported distribution families (see size_dist_families() for the
/// parameter syntax of each).
enum class SizeDistFamily {
  kExp,        ///< exponential — the paper's model; the default
  kErlang,     ///< erlang:n — n sequential stages, SCV = 1/n
  kHyperExp,   ///< hyperexp:p,r1,r2 — Exp(r1) w.p. p else Exp(r2), SCV >= 1
  kCoxian2,    ///< coxian2:nu1,nu2,p — two-phase Coxian
  kPhFit,      ///< ph-fit:m1,m2,m3 — three-moment fit (phase/fit.hpp)
  kDet,        ///< det — near-deterministic (Erlang-64 surrogate, SCV 1/64)
  kLognormal,  ///< lognormal:scv — lognormal moment surrogate via ph-fit
  kPareto,     ///< pareto:alpha — Pareto(alpha > 3) moment surrogate
};

/// A job-size distribution spec: family + parameters, with a canonical
/// string form that is stable under reparsing (parse(canonical()) == *this)
/// and is what cache keys, CSV columns, and `esched show` print. Specs are
/// validated at parse time (every family trial-compiles), so a constructed
/// SizeDistSpec always compiles.
class SizeDistSpec {
 public:
  /// The default: exponential, canonical form "exp".
  SizeDistSpec() = default;

  /// Parses "family" or "family:arg1,arg2,...". Throws esched::Error with
  /// a message naming the family and its expected syntax on any malformed
  /// or out-of-range input. Normalizes aliases that are exactly
  /// exponential (erlang:1) to "exp" so they keep the exponential fast
  /// path and cache keys.
  static SizeDistSpec parse(const std::string& text);

  SizeDistFamily family() const { return family_; }
  const std::string& canonical() const { return canonical_; }

  /// True for the "exp" spec: callers use the closed-form exponential
  /// paths (and the pre-refactor cache keys) instead of compiling a
  /// one-phase PhaseType.
  bool is_exponential() const { return family_ == SizeDistFamily::kExp; }

  /// Squared coefficient of variation of the shape (scale-free).
  double scv() const;

  /// Compiles the spec into a PhaseType whose mean is exactly 1/mu.
  PhaseType compile(double mu) const;

  friend bool operator==(const SizeDistSpec& a, const SizeDistSpec& b) {
    return a.canonical_ == b.canonical_;
  }
  friend bool operator!=(const SizeDistSpec& a, const SizeDistSpec& b) {
    return !(a == b);
  }

 private:
  SizeDistFamily family_ = SizeDistFamily::kExp;
  std::vector<double> args_;
  std::string canonical_ = "exp";
};

/// One row of `esched dists`: family name, parameter syntax, and a
/// one-line summary.
struct SizeDistFamilyInfo {
  const char* name;
  const char* syntax;
  const char* summary;
};

/// The supported families in display order.
const std::vector<SizeDistFamilyInfo>& size_dist_families();

}  // namespace esched
