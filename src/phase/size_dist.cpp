#include "phase/size_dist.hpp"

#include <cmath>
#include <cstdlib>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/numeric.hpp"
#include "phase/fit.hpp"

namespace esched {

namespace {

/// det is approximated by an Erlang-64 (SCV = 1/64). Deterministic sizes
/// have SCV 0, which no finite phase-type distribution reaches.
constexpr int kDetStages = 64;

const SizeDistFamilyInfo* find_family(const std::string& name) {
  for (const SizeDistFamilyInfo& info : size_dist_families()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

SizeDistFamily family_of(const std::string& name) {
  if (name == "exp") return SizeDistFamily::kExp;
  if (name == "erlang") return SizeDistFamily::kErlang;
  if (name == "hyperexp") return SizeDistFamily::kHyperExp;
  if (name == "coxian2") return SizeDistFamily::kCoxian2;
  if (name == "ph-fit") return SizeDistFamily::kPhFit;
  if (name == "det") return SizeDistFamily::kDet;
  if (name == "lognormal") return SizeDistFamily::kLognormal;
  if (name == "pareto") return SizeDistFamily::kPareto;
  ESCHED_ASSERT(false, "family table out of sync");
}

std::size_t arg_count(SizeDistFamily family) {
  switch (family) {
    case SizeDistFamily::kExp:
    case SizeDistFamily::kDet: return 0;
    case SizeDistFamily::kErlang:
    case SizeDistFamily::kLognormal:
    case SizeDistFamily::kPareto: return 1;
    case SizeDistFamily::kHyperExp:
    case SizeDistFamily::kCoxian2:
    case SizeDistFamily::kPhFit: return 3;
  }
  ESCHED_ASSERT(false, "unreachable size-dist family");
}

Error syntax_error(const std::string& text, const SizeDistFamilyInfo& info,
                   const std::string& why) {
  return Error("bad size distribution '" + text + "': " + why +
               " (syntax: " + info.syntax + ")");
}

/// Strictly parses one finite double (the whole token, no trailing text).
double parse_arg(const std::string& text, const SizeDistFamilyInfo& info,
                 const std::string& token) {
  if (token.empty()) throw syntax_error(text, info, "empty parameter");
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || !is_finite(value)) {
    throw syntax_error(text, info,
                       "'" + token + "' is not a finite number");
  }
  return value;
}

std::string joined_family_names() {
  std::string all;
  for (const SizeDistFamilyInfo& info : size_dist_families()) {
    if (!all.empty()) all += ", ";
    all += info.syntax;
  }
  return all;
}

/// Moments of the mean-1 lognormal with the given SCV s:
/// m_n = (1 + s)^{n(n-1)/2}.
Moments3 lognormal_moments(double scv) {
  const double b = 1.0 + scv;
  return {1.0, b, b * b * b};
}

/// Moments of the mean-1 Pareto(alpha): scale x_m = (alpha-1)/alpha,
/// E[X^n] = alpha x_m^n / (alpha - n), finite for alpha > n.
Moments3 pareto_moments(double alpha) {
  const double xm = (alpha - 1.0) / alpha;
  return {1.0, alpha * xm * xm / (alpha - 2.0),
          alpha * xm * xm * xm / (alpha - 3.0)};
}

/// Canonical parameter text: plain integers where exact ("20", never
/// "2e+01"), shortest round-trip decimal otherwise.
std::string canonical_number(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  return json_number_to_string(value);
}

}  // namespace

const std::vector<SizeDistFamilyInfo>& size_dist_families() {
  static const std::vector<SizeDistFamilyInfo> families = {
      {"exp", "exp", "exponential sizes (the paper's model; the default)"},
      {"erlang", "erlang:n", "n-stage Erlang, SCV = 1/n (erlang:1 == exp)"},
      {"hyperexp", "hyperexp:p,r1,r2",
       "Exp(r1) w.p. p, else Exp(r2); SCV >= 1"},
      {"coxian2", "coxian2:nu1,nu2,p",
       "two-phase Coxian: rate nu1, then rate nu2 w.p. p"},
      {"ph-fit", "ph-fit:m1,m2,m3",
       "three-moment phase-type fit (Coxian-2 / Erlang-Coxian)"},
      {"det", "det",
       "near-deterministic surrogate (Erlang-64, SCV = 1/64)"},
      {"lognormal", "lognormal:scv",
       "lognormal moment surrogate at the given SCV, via ph-fit"},
      {"pareto", "pareto:alpha",
       "Pareto(alpha > 3) moment surrogate, via ph-fit"},
  };
  return families;
}

SizeDistSpec SizeDistSpec::parse(const std::string& text) {
  const std::size_t colon = text.find(':');
  const std::string name = text.substr(0, colon);
  const SizeDistFamilyInfo* info = find_family(name);
  if (info == nullptr) {
    throw Error("unknown size distribution family '" + name +
                "' in '" + text + "' (expected one of: " +
                joined_family_names() + ")");
  }
  std::vector<double> args;
  if (colon != std::string::npos) {
    std::string rest = text.substr(colon + 1);
    std::size_t start = 0;
    for (;;) {
      const std::size_t comma = rest.find(',', start);
      args.push_back(parse_arg(
          text, *info,
          rest.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start)));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  const SizeDistFamily family = family_of(name);
  if (args.size() != arg_count(family)) {
    throw syntax_error(text, *info,
                       "expected " + std::to_string(arg_count(family)) +
                           " parameter(s), got " +
                           std::to_string(args.size()));
  }

  // Family-specific range checks, before the canonical form is built.
  switch (family) {
    case SizeDistFamily::kExp:
    case SizeDistFamily::kDet: break;
    case SizeDistFamily::kErlang: {
      const double n = args[0];
      if (n != std::floor(n) || n < 1.0 || n > 1000.0) {
        throw syntax_error(text, *info,
                           "stage count must be an integer in [1, 1000]");
      }
      if (n == 1.0) return SizeDistSpec{};  // Erlang-1 IS the exponential
      break;
    }
    case SizeDistFamily::kHyperExp:
      if (!(args[0] > 0.0 && args[0] < 1.0)) {
        throw syntax_error(text, *info, "branch probability p must be in (0,1)");
      }
      if (!(args[1] > 0.0 && args[2] > 0.0)) {
        throw syntax_error(text, *info, "branch rates must be positive");
      }
      break;
    case SizeDistFamily::kCoxian2:
      if (!(args[0] > 0.0 && args[1] > 0.0)) {
        throw syntax_error(text, *info, "phase rates must be positive");
      }
      if (!(args[2] >= 0.0 && args[2] <= 1.0)) {
        throw syntax_error(text, *info,
                           "continue probability p must be in [0,1]");
      }
      break;
    case SizeDistFamily::kPhFit:
      if (!(args[0] > 0.0 && args[1] > 0.0 && args[2] > 0.0)) {
        throw syntax_error(text, *info, "moments must be positive");
      }
      break;
    case SizeDistFamily::kLognormal:
      if (!(args[0] > 0.0)) {
        throw syntax_error(text, *info, "scv must be > 0");
      }
      break;
    case SizeDistFamily::kPareto:
      if (!(args[0] > 3.0)) {
        throw syntax_error(
            text, *info,
            "alpha must be > 3 (three finite moments are required)");
      }
      break;
  }

  SizeDistSpec spec;
  spec.family_ = family;
  spec.args_ = std::move(args);
  spec.canonical_ = name;
  for (std::size_t n = 0; n < spec.args_.size(); ++n) {
    spec.canonical_ += n == 0 ? ':' : ',';
    spec.canonical_ += canonical_number(spec.args_[n]);
  }
  // Every family must actually compile (e.g. ph-fit moments can be an
  // invalid moment sequence); surface that at parse time, naming the spec.
  if (family != SizeDistFamily::kExp) {
    try {
      (void)spec.compile(1.0);
    } catch (const Error& e) {
      throw syntax_error(text, *info, e.what());
    }
  }
  return spec;
}

double SizeDistSpec::scv() const {
  if (is_exponential()) return 1.0;
  return compile(1.0).scv();
}

PhaseType SizeDistSpec::compile(double mu) const {
  ESCHED_CHECK(mu > 0.0, "size distribution needs a positive rate mu");
  const double target_mean = 1.0 / mu;
  switch (family_) {
    case SizeDistFamily::kExp: return PhaseType::exponential(mu);
    case SizeDistFamily::kErlang: {
      const int n = static_cast<int>(args_[0]);
      return PhaseType::erlang(n, static_cast<double>(n) * mu);
    }
    case SizeDistFamily::kHyperExp: {
      const PhaseType shape = PhaseType::hyperexponential(
          Vector{args_[0], 1.0 - args_[0]}, Vector{args_[1], args_[2]});
      return shape.scaled_by(target_mean / shape.mean());
    }
    case SizeDistFamily::kCoxian2: {
      const PhaseType shape = PhaseType::coxian2(args_[0], args_[1], args_[2]);
      return shape.scaled_by(target_mean / shape.mean());
    }
    case SizeDistFamily::kPhFit: {
      const PhaseType shape = fit_moments3({args_[0], args_[1], args_[2]});
      return shape.scaled_by(target_mean / shape.mean());
    }
    case SizeDistFamily::kDet:
      return PhaseType::erlang(kDetStages,
                               static_cast<double>(kDetStages) * mu);
    case SizeDistFamily::kLognormal: {
      const PhaseType shape = fit_moments3(lognormal_moments(args_[0]));
      return shape.scaled_by(target_mean / shape.mean());
    }
    case SizeDistFamily::kPareto: {
      const PhaseType shape = fit_moments3(pareto_moments(args_[0]));
      return shape.scaled_by(target_mean / shape.mean());
    }
  }
  ESCHED_ASSERT(false, "unreachable size-dist family");
}

}  // namespace esched
