#include "stats/accumulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace esched {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const {
  ESCHED_CHECK(count_ > 0, "mean of empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  ESCHED_CHECK(count_ >= 2, "variance needs at least two observations");
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  ESCHED_CHECK(count_ > 0, "min of empty accumulator");
  return min_;
}

double Accumulator::max() const {
  ESCHED_CHECK(count_ > 0, "max of empty accumulator");
  return max_;
}

void MomentAccumulator::add(double x) {
  ++count_;
  sum1_ += x;
  sum2_ += x * x;
  sum3_ += x * x * x;
}

double MomentAccumulator::raw_moment(int n) const {
  ESCHED_CHECK(count_ > 0, "raw moment of empty accumulator");
  ESCHED_CHECK(n >= 1 && n <= 3, "raw_moment supports n in {1,2,3}");
  const double denom = static_cast<double>(count_);
  switch (n) {
    case 1: return sum1_ / denom;
    case 2: return sum2_ / denom;
    default: return sum3_ / denom;
  }
}

}  // namespace esched
