// Fixed-bin histogram for response-time distributions.
#pragma once

#include <cstdint>
#include <vector>

namespace esched {

/// Uniform-bin histogram over [lo, hi) with overflow/underflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t num_bins);

  void add(double x);

  std::size_t num_bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t bin) const;
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Midpoint of bin `bin`.
  double bin_center(std::size_t bin) const;

  /// Empirical quantile (linear interpolation within the bin); q in (0,1).
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace esched
