#include "stats/time_average.hpp"

#include "common/error.hpp"

namespace esched {

void TimeAverage::start(double t0, double v0) {
  started_ = true;
  start_t_ = last_t_ = t0;
  value_ = v0;
  area_ = 0.0;
}

void TimeAverage::update(double t, double value) {
  ESCHED_CHECK(started_, "TimeAverage::start must be called first");
  ESCHED_CHECK(t >= last_t_, "time must be non-decreasing");
  area_ += value_ * (t - last_t_);
  last_t_ = t;
  value_ = value;
}

void TimeAverage::advance(double t) { update(t, value_); }

double TimeAverage::average() const {
  ESCHED_CHECK(started_, "TimeAverage::start must be called first");
  const double span = last_t_ - start_t_;
  ESCHED_CHECK(span > 0.0, "time average over empty interval");
  return area_ / span;
}

void TimeAverage::reset_at(double t) {
  ESCHED_CHECK(started_, "TimeAverage::start must be called first");
  advance(t);
  start_t_ = t;
  area_ = 0.0;
}

}  // namespace esched
