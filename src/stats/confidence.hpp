// Confidence intervals for simulation output (batch means).
#pragma once

#include <cstdint>
#include <vector>

namespace esched {

/// A symmetric confidence interval around a point estimate.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
  /// True when `value` falls inside the interval.
  bool contains(double value) const {
    return value >= lo() && value <= hi();
  }
};

/// Two-sided Student-t critical value at the given confidence level
/// (0.90, 0.95, or 0.99) with `df` degrees of freedom. Uses a small exact
/// table for df <= 30 and the normal approximation beyond.
double t_critical(int df, double confidence = 0.95);

/// Batch-means CI: splits `observations` into `num_batches` contiguous
/// batches, treats batch means as i.i.d., and returns a Student-t interval.
/// This is the standard way to get CIs from a single correlated simulation
/// run (response times of consecutive jobs are correlated).
ConfidenceInterval batch_means_ci(const std::vector<double>& observations,
                                  int num_batches = 20,
                                  double confidence = 0.95);

/// CI from i.i.d. replications (one observation per replication).
ConfidenceInterval replication_ci(const std::vector<double>& replication_means,
                                  double confidence = 0.95);

}  // namespace esched
