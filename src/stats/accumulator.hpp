// Streaming moment accumulators.
#pragma once

#include <cstdint>

namespace esched {

/// Numerically stable (Welford) accumulator for mean/variance/min/max of a
/// stream of observations. Supports merging partial accumulators, which the
/// batch-means machinery uses.
class Accumulator {
 public:
  void add(double x);

  /// Merges another accumulator into this one (Chan et al. pairwise update).
  void merge(const Accumulator& other);

  std::uint64_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; requires count() >= 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Accumulates raw moments E[X], E[X^2], E[X^3] of a stream — used to
/// validate busy-period moment formulas and phase-type fits by simulation.
class MomentAccumulator {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  /// n-th raw moment estimate, n in {1, 2, 3}.
  double raw_moment(int n) const;

 private:
  std::uint64_t count_ = 0;
  double sum1_ = 0.0;
  double sum2_ = 0.0;
  double sum3_ = 0.0;
};

}  // namespace esched
