#include "stats/histogram.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esched {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(num_bins)),
      counts_(num_bins, 0) {
  ESCHED_CHECK(hi > lo, "histogram range must be non-empty");
  ESCHED_CHECK(num_bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[bin < counts_.size() ? bin : counts_.size() - 1];
}

std::uint64_t Histogram::bin_count(std::size_t bin) const {
  ESCHED_CHECK(bin < counts_.size(), "bin index out of range");
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  ESCHED_CHECK(bin < counts_.size(), "bin index out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::quantile(double q) const {
  ESCHED_CHECK(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
  ESCHED_CHECK(total_ > 0, "quantile of empty histogram");
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cum + static_cast<double>(counts_[b]);
    if (next >= target && counts_[b] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[b]);
      return lo_ + (static_cast<double>(b) + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

}  // namespace esched
