#include "stats/confidence.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/accumulator.hpp"

namespace esched {

namespace {
// Two-sided critical values t_{df, 1-alpha/2} for alpha = 10%, 5%, 1%.
constexpr double kT90[30] = {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895,
                             1.860, 1.833, 1.812, 1.796, 1.782, 1.771, 1.761,
                             1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721,
                             1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701,
                             1.699, 1.697};
constexpr double kT95[30] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
                             2.306,  2.262, 2.228, 2.201, 2.179, 2.160, 2.145,
                             2.131,  2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
                             2.074,  2.069, 2.064, 2.060, 2.056, 2.052, 2.048,
                             2.045,  2.042};
constexpr double kT99[30] = {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499,
                             3.355,  3.250, 3.169, 3.106, 3.055, 3.012, 2.977,
                             2.947,  2.921, 2.898, 2.878, 2.861, 2.845, 2.831,
                             2.819,  2.807, 2.797, 2.787, 2.779, 2.771, 2.763,
                             2.756,  2.750};
}  // namespace

double t_critical(int df, double confidence) {
  ESCHED_CHECK(df >= 1, "degrees of freedom must be >= 1");
  const double* table = nullptr;
  double z = 0.0;
  if (confidence == 0.90) {
    table = kT90;
    z = 1.645;
  } else if (confidence == 0.95) {
    table = kT95;
    z = 1.960;
  } else if (confidence == 0.99) {
    table = kT99;
    z = 2.576;
  } else {
    ESCHED_CHECK(false, "confidence must be one of 0.90, 0.95, 0.99");
  }
  if (df <= 30) return table[df - 1];
  return z;
}

ConfidenceInterval batch_means_ci(const std::vector<double>& observations,
                                  int num_batches, double confidence) {
  ESCHED_CHECK(num_batches >= 2, "need at least two batches");
  ESCHED_CHECK(observations.size() >= static_cast<std::size_t>(2 * num_batches),
               "need at least two observations per batch");
  const std::size_t n = observations.size();
  const std::size_t batch_size = n / static_cast<std::size_t>(num_batches);
  std::vector<double> batch_means;
  batch_means.reserve(static_cast<std::size_t>(num_batches));
  for (int b = 0; b < num_batches; ++b) {
    Accumulator acc;
    const std::size_t begin = static_cast<std::size_t>(b) * batch_size;
    // The last batch absorbs the remainder.
    const std::size_t end =
        (b == num_batches - 1) ? n : begin + batch_size;
    for (std::size_t i = begin; i < end; ++i) acc.add(observations[i]);
    batch_means.push_back(acc.mean());
  }
  return replication_ci(batch_means, confidence);
}

ConfidenceInterval replication_ci(const std::vector<double>& replication_means,
                                  double confidence) {
  ESCHED_CHECK(replication_means.size() >= 2,
               "need at least two replications");
  Accumulator acc;
  for (double m : replication_means) acc.add(m);
  const int df = static_cast<int>(replication_means.size()) - 1;
  const double t = t_critical(df, confidence);
  ConfidenceInterval ci;
  ci.mean = acc.mean();
  ci.half_width =
      t * acc.stddev() / std::sqrt(static_cast<double>(acc.count()));
  return ci;
}

}  // namespace esched
