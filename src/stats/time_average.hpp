// Time-weighted average of a piecewise-constant (or piecewise-linear)
// process — used for E[N] and E[W] estimates from the simulator.
#pragma once

namespace esched {

/// Integrates a piecewise-constant process over time and reports its
/// time-average. Feed it (time, new_value) at every change point.
class TimeAverage {
 public:
  /// Starts the process at `t0` with value `v0`.
  void start(double t0, double v0);

  /// Records that the process changed to `value` at time `t` (t must be
  /// non-decreasing).
  void update(double t, double value);

  /// Advances the clock to `t` without changing the value.
  void advance(double t);

  /// Time-average of the process over [warmup_end, last_t]. `warmup_end`
  /// observations are discarded by calling reset_at().
  double average() const;

  /// Discards all accumulated area, restarting the average at time `t` with
  /// the current value (used to drop the warmup transient).
  void reset_at(double t);

  double elapsed() const { return last_t_ - start_t_; }
  double current_value() const { return value_; }

 private:
  bool started_ = false;
  double start_t_ = 0.0;
  double last_t_ = 0.0;
  double value_ = 0.0;
  double area_ = 0.0;
};

}  // namespace esched
