#include "multiclass/multiclass.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/time_average.hpp"

namespace esched {

double MultiClassParams::rho_of(std::size_t n) const {
  ESCHED_CHECK(n < classes.size(), "class index out of range");
  return classes[n].lambda / (static_cast<double>(k) * classes[n].mu);
}

double MultiClassParams::rho() const {
  double total = 0.0;
  for (std::size_t n = 0; n < classes.size(); ++n) total += rho_of(n);
  return total;
}

void MultiClassParams::validate() const {
  ESCHED_CHECK(k >= 1, "need at least one server");
  ESCHED_CHECK(!classes.empty(), "need at least one class");
  for (const auto& c : classes) {
    ESCHED_CHECK(c.lambda >= 0.0, "arrival rates must be non-negative");
    ESCHED_CHECK(c.mu > 0.0, "size rates must be positive");
    ESCHED_CHECK(c.cap >= 1.0 && c.cap <= static_cast<double>(k),
                 "class caps must be in [1, k]");
  }
}

namespace {

struct Job {
  double arrival_time;
  double remaining;
};

}  // namespace

MultiClassSimResult simulate_multiclass(const MultiClassParams& params,
                                        const std::vector<int>& order,
                                        const MultiClassSimOptions& options) {
  params.validate();
  const std::size_t num_classes = params.classes.size();
  ESCHED_CHECK(order.size() == num_classes,
               "order must be a permutation of the classes");
  {
    std::vector<bool> seen(num_classes, false);
    for (int c : order) {
      ESCHED_CHECK(c >= 0 && static_cast<std::size_t>(c) < num_classes,
                   "order entry out of range");
      ESCHED_CHECK(!seen[static_cast<std::size_t>(c)],
                   "order repeats a class");
      seen[static_cast<std::size_t>(c)] = true;
    }
  }
  double total_lambda = 0.0;
  for (const auto& c : params.classes) total_lambda += c.lambda;
  ESCHED_CHECK(total_lambda > 0.0, "simulation requires some arrivals");

  Xoshiro256 master(options.seed);
  std::vector<Xoshiro256> rng_arrival, rng_size;
  rng_arrival.reserve(num_classes);
  rng_size.reserve(num_classes);
  for (std::size_t n = 0; n < num_classes; ++n) {
    rng_arrival.push_back(master.stream(static_cast<unsigned>(2 * n + 1)));
    rng_size.push_back(master.stream(static_cast<unsigned>(2 * n + 2)));
  }

  std::vector<std::deque<Job>> queues(num_classes);
  std::vector<double> next_arrival(num_classes, kInf);
  for (std::size_t n = 0; n < num_classes; ++n) {
    if (params.classes[n].lambda > 0.0) {
      next_arrival[n] =
          exponential(rng_arrival[n], params.classes[n].lambda);
    }
  }

  double now = 0.0;
  TimeAverage avg_util;
  avg_util.start(0.0, 0.0);
  std::vector<double> rt_all;
  std::vector<std::vector<double>> rt_class(num_classes);
  rt_all.reserve(options.num_jobs);
  std::uint64_t completed = 0;
  bool warm = options.warmup_jobs == 0;
  const std::uint64_t target = options.warmup_jobs + options.num_jobs;
  const std::uint64_t max_events = target * 64 + 1024;
  std::uint64_t events = 0;

  // Scratch: per-class vector of rates for the served FCFS prefix.
  std::vector<std::vector<double>> rates(num_classes);

  while (completed < target) {
    ESCHED_CHECK(++events <= max_events,
                 "event budget exceeded; system is likely unstable");
    // Hand servers down the priority order, FCFS within each class, each
    // job up to its class cap.
    double servers_left = static_cast<double>(params.k);
    double soonest_dt = kInf;
    std::size_t soonest_class = 0;
    std::size_t soonest_idx = 0;
    double total_rate = 0.0;
    for (std::size_t n = 0; n < num_classes; ++n) rates[n].clear();
    for (int cls : order) {
      const auto n = static_cast<std::size_t>(cls);
      const double cap = params.classes[n].cap;
      for (std::size_t idx = 0;
           idx < queues[n].size() && servers_left > 1e-12; ++idx) {
        const double rate = std::min(cap, servers_left);
        servers_left -= rate;
        rates[n].push_back(rate);
        total_rate += rate;
        const double dt = queues[n][idx].remaining / rate;
        if (dt < soonest_dt) {
          soonest_dt = dt;
          soonest_class = n;
          soonest_idx = idx;
        }
      }
    }

    double arrival_t = kInf;
    std::size_t arrival_class = 0;
    for (std::size_t n = 0; n < num_classes; ++n) {
      if (next_arrival[n] < arrival_t) {
        arrival_t = next_arrival[n];
        arrival_class = n;
      }
    }
    const double dt_arrival = arrival_t - now;
    const bool completion_next = soonest_dt <= dt_arrival;
    const double dt = completion_next ? soonest_dt : dt_arrival;

    avg_util.update(now, total_rate / static_cast<double>(params.k));
    const double t_next = now + dt;
    avg_util.advance(t_next);
    for (std::size_t n = 0; n < num_classes; ++n) {
      for (std::size_t idx = 0; idx < rates[n].size(); ++idx) {
        queues[n][idx].remaining =
            std::max(0.0, queues[n][idx].remaining - rates[n][idx] * dt);
      }
    }
    now = t_next;

    if (completion_next) {
      auto& queue = queues[soonest_class];
      const double response = now - queue[soonest_idx].arrival_time;
      queue.erase(queue.begin() + static_cast<long>(soonest_idx));
      ++completed;
      if (warm) {
        rt_all.push_back(response);
        rt_class[soonest_class].push_back(response);
      } else if (completed >= options.warmup_jobs) {
        warm = true;
        avg_util.reset_at(now);
      }
    } else {
      const auto n = arrival_class;
      queues[n].push_back(
          {now, exponential(rng_size[n], params.classes[n].mu)});
      next_arrival[n] =
          now + exponential(rng_arrival[n], params.classes[n].lambda);
    }
  }

  MultiClassSimResult result;
  result.utilization = avg_util.average();
  result.mean_response_time =
      batch_means_ci(rt_all, options.batches, options.confidence);
  result.class_response_time.resize(num_classes, 0.0);
  result.class_completed.resize(num_classes, 0);
  for (std::size_t n = 0; n < num_classes; ++n) {
    result.class_completed[n] = rt_class[n].size();
    if (!rt_class[n].empty()) {
      double total = 0.0;
      for (double r : rt_class[n]) total += r;
      result.class_response_time[n] =
          total / static_cast<double>(rt_class[n].size());
    }
  }
  return result;
}

namespace {

std::vector<int> sorted_order(const MultiClassParams& params,
                              bool (*before)(const JobClass&,
                                             const JobClass&)) {
  params.validate();
  std::vector<int> order(params.classes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return before(params.classes[static_cast<std::size_t>(a)],
                  params.classes[static_cast<std::size_t>(b)]);
  });
  return order;
}

}  // namespace

std::vector<int> least_parallelizable_first(const MultiClassParams& params) {
  return sorted_order(params, [](const JobClass& a, const JobClass& b) {
    if (a.cap != b.cap) return a.cap < b.cap;
    return a.mu > b.mu;  // ties: smaller jobs first
  });
}

std::vector<int> most_parallelizable_first(const MultiClassParams& params) {
  return sorted_order(params, [](const JobClass& a, const JobClass& b) {
    if (a.cap != b.cap) return a.cap > b.cap;
    return a.mu > b.mu;
  });
}

std::vector<int> smallest_size_first(const MultiClassParams& params) {
  return sorted_order(params, [](const JobClass& a, const JobClass& b) {
    return a.mu > b.mu;
  });
}

}  // namespace esched
