// Multi-class generalization (paper §6 future work): N job classes, each
// with its own Poisson arrival rate, exponential size distribution, and
// parallelizability cap c_n (c = 1 is inelastic, c = k fully elastic,
// intermediate values partially elastic).
//
// Policies here are static priority ORDERS over classes: servers are
// handed down the priority list, FCFS within a class, each job taking up
// to its class cap. With two classes this reduces exactly to the paper's
// IF (inelastic class first) and EF (elastic class first); the simulator
// is validated against the two-class engine in the tests. The paper
// leaves the optimal multi-class policy open — this module provides the
// experimental apparatus for that question.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/confidence.hpp"

namespace esched {

/// One job class.
struct JobClass {
  std::string name;
  double lambda = 0.0;  ///< Poisson arrival rate
  double mu = 1.0;      ///< size rate (mean size 1/mu)
  double cap = 1.0;     ///< max servers one job can use (1 = inelastic)
};

/// A k-server system shared by several classes.
struct MultiClassParams {
  int k = 1;
  std::vector<JobClass> classes;

  /// Load contribution of class n: lambda_n / (k mu_n).
  double rho_of(std::size_t n) const;
  /// Total load; stability requires < 1.
  double rho() const;
  void validate() const;
};

/// Simulation controls (mirrors the two-class SimOptions).
struct MultiClassSimOptions {
  std::uint64_t num_jobs = 200000;
  std::uint64_t warmup_jobs = 20000;
  std::uint64_t seed = 1;
  int batches = 20;
  double confidence = 0.95;
};

/// Per-class and overall results.
struct MultiClassSimResult {
  ConfidenceInterval mean_response_time;
  std::vector<double> class_response_time;  ///< mean per class
  std::vector<std::uint64_t> class_completed;
  double utilization = 0.0;
};

/// Simulates the static priority order `order` (a permutation of class
/// indices; earlier = higher priority).
MultiClassSimResult simulate_multiclass(const MultiClassParams& params,
                                        const std::vector<int>& order,
                                        const MultiClassSimOptions& options = {});

/// Priority orders generalizing the paper's policies:
/// least parallelizable first (cap ascending, ties by larger mu first) —
/// the natural generalization of IF...
std::vector<int> least_parallelizable_first(const MultiClassParams& params);
/// ...and most parallelizable first (the EF generalization).
std::vector<int> most_parallelizable_first(const MultiClassParams& params);
/// Smallest expected size first (mu descending), ignoring caps.
std::vector<int> smallest_size_first(const MultiClassParams& params);

}  // namespace esched
