#include "rng/xoshiro.hpp"

namespace esched {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (int i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = acc;
}

Xoshiro256 Xoshiro256::stream(unsigned stream_index) const {
  Xoshiro256 copy = *this;
  for (unsigned i = 0; i < stream_index; ++i) copy.jump();
  return copy;
}

}  // namespace esched
