#include "rng/distributions.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esched {

double uniform_open01(Xoshiro256& rng) {
  // Take the top 53 bits for a uniform in [0,1), then reflect to (0,1].
  const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
  return 1.0 - u;
}

double uniform(Xoshiro256& rng, double lo, double hi) {
  ESCHED_CHECK(lo <= hi, "uniform bounds must satisfy lo <= hi");
  const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

double exponential(Xoshiro256& rng, double rate) {
  ESCHED_CHECK(rate > 0.0, "exponential rate must be positive");
  return -std::log(uniform_open01(rng)) / rate;
}

bool bernoulli(Xoshiro256& rng, double p) {
  ESCHED_CHECK(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0,1]");
  return uniform_open01(rng) <= p;
}

std::size_t discrete(Xoshiro256& rng, const std::vector<double>& weights) {
  ESCHED_CHECK(!weights.empty(), "discrete weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    ESCHED_CHECK(w >= 0.0, "discrete weights must be non-negative");
    total += w;
  }
  ESCHED_CHECK(total > 0.0, "discrete weights must have positive sum");
  double target = uniform_open01(rng) * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t uniform_index(Xoshiro256& rng, std::uint64_t n) {
  ESCHED_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t draw;
  do {
    draw = rng();
  } while (draw >= limit);
  return draw % n;
}

}  // namespace esched
