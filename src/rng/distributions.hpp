// Sampling routines built directly on the bit generator.
//
// We avoid std::*_distribution because the standard leaves their algorithms
// implementation-defined; owning the inverse-transform code keeps traces
// bit-reproducible across compilers, which the coupled sample-path
// experiments rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/xoshiro.hpp"

namespace esched {

/// Uniform double in (0, 1]; never returns 0 so log() is always finite.
double uniform_open01(Xoshiro256& rng);

/// Uniform double in [lo, hi).
double uniform(Xoshiro256& rng, double lo, double hi);

/// Exponential sample with the given rate (mean 1/rate). rate must be > 0.
double exponential(Xoshiro256& rng, double rate);

/// Bernoulli trial with success probability p in [0, 1].
bool bernoulli(Xoshiro256& rng, double p);

/// Samples an index in [0, weights.size()) with probability proportional to
/// weights[i]. Weights must be non-negative with a positive sum.
std::size_t discrete(Xoshiro256& rng, const std::vector<double>& weights);

/// Uniform integer in [0, n).
std::uint64_t uniform_index(Xoshiro256& rng, std::uint64_t n);

}  // namespace esched
