// Pseudo-random number engines.
//
// The simulator needs (a) reproducible streams so coupled sample-path
// experiments (Theorem 3) can replay the exact same arrival sequence under
// different policies, and (b) cheap independent streams for parallel
// replications. xoshiro256++ provides both: a tiny, fast generator with a
// jump() function that advances 2^128 steps, giving non-overlapping
// subsequences. SplitMix64 is used to seed it, following the authors'
// recommendation (Blackman & Vigna).
#pragma once

#include <array>
#include <cstdint>

namespace esched {

/// SplitMix64: a tiny 64-bit generator used to expand a single seed into
/// the 256-bit xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Advances the state by 2^128 steps; calling jump() n times on copies of
  /// one engine yields n non-overlapping streams.
  void jump();

  /// Returns a copy advanced by `stream_index` jumps — convenience for
  /// carving independent streams out of one master seed.
  Xoshiro256 stream(unsigned stream_index) const;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace esched
