#include "engine/report.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <ostream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/numeric.hpp"
#include "common/table.hpp"
#include "core/exact_ctmc.hpp"
#include "stats/accumulator.hpp"

namespace esched {

namespace {

const std::vector<std::string>& report_header(bool with_size_dist) {
  // Every column is a deterministic function of the point and its solve —
  // wall time and cache provenance stay out on purpose, so shard merges
  // and streaming resumes compare byte-for-byte (they remain available in
  // RunResult and the JSON stats block). The size_dist columns exist only
  // in reports that actually sweep/set a non-exponential size, so every
  // pre-refactor report and golden keeps its exact schema.
  static const std::vector<std::string> header = {
      "k",           "rho",           "mu_i",          "mu_e",
      "elastic_cap", "lambda_i",      "lambda_e",      "policy",
      "solver",      "fit_order",     "imax",          "jmax",
      "et",          "et_i",          "et_e",          "en_i",
      "en_e",        "ci_halfwidth",  "boundary_mass", "num_states",
      "p50_i",       "p95_i",         "p99_i",         "p50_e",
      "p95_e",       "p99_e",         "dom_viol_w",    "dom_viol_wi",
      "dom_gap",     "dom_checkpoints",
      "iterations",  "residual"};
  static const std::vector<std::string> extended = [] {
    std::vector<std::string> h = header;
    h.push_back("size_dist_i");
    h.push_back("size_dist_e");
    return h;
  }();
  return with_size_dist ? extended : header;
}

std::vector<std::string> report_row(const RunPoint& point,
                                    const RunResult& result,
                                    bool with_size_dist) {
  const SystemParams& p = point.params;
  std::vector<std::string> row = {std::to_string(p.k),
          format_double(p.rho()),
          format_double(p.mu_i),
          format_double(p.mu_e),
          std::to_string(p.elastic_cap),
          format_double(p.lambda_i),
          format_double(p.lambda_e),
          point.policy,
          solver_name(point.solver),
          std::to_string(static_cast<int>(point.options.fit_order)),
          std::to_string(point.options.imax),
          std::to_string(point.options.jmax),
          format_double(result.mean_response_time, 12),
          format_double(result.mean_response_time_i, 12),
          format_double(result.mean_response_time_e, 12),
          format_double(result.mean_jobs_i, 12),
          format_double(result.mean_jobs_e, 12),
          format_double(result.ci_halfwidth),
          format_double(result.boundary_mass),
          std::to_string(result.num_states),
          format_double(result.p50_i, 12),
          format_double(result.p95_i, 12),
          format_double(result.p99_i, 12),
          format_double(result.p50_e, 12),
          format_double(result.p95_e, 12),
          format_double(result.p99_e, 12),
          format_double(result.dom_max_violation, 12),
          format_double(result.dom_max_violation_i, 12),
          format_double(result.dom_avg_gap, 12),
          std::to_string(result.dom_checkpoints),
          std::to_string(result.solver_iterations),
          format_double(result.solve_residual)};
  if (with_size_dist) {
    row.push_back(point.options.size_dist_i.canonical());
    row.push_back(point.options.size_dist_e.canonical());
  }
  return row;
}

/// True for the "# summary ..." trailer lines a report CSV ends with
/// (they parse as one comment cell, never as a data row).
bool is_summary_record(const std::vector<std::string>& cells) {
  return cells.size() == 1 && cells.front().rfind("# ", 0) == 0;
}

}  // namespace

bool report_has_size_dists(const std::vector<RunPoint>& points) {
  for (const RunPoint& point : points) {
    if (!point.options.size_dist_i.is_exponential() ||
        !point.options.size_dist_e.is_exponential()) {
      return true;
    }
  }
  return false;
}

CsvSummary::CsvSummary(const std::vector<std::string>& header) {
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (header[c] == "et") {
      et_column_ = static_cast<std::ptrdiff_t>(c);
      break;
    }
  }
}

void CsvSummary::add_row(const std::vector<std::string>& cells) {
  if (et_column_ >= 0) {
    // Parse the formatted cell, not the double it came from: the merge
    // path only has the text, and both paths must agree bitwise.
    const double et =
        std::strtod(cells[static_cast<std::size_t>(et_column_)].c_str(),
                    nullptr);
    if (rows_ == 0) {
      et_sum_ = et_min_ = et_max_ = et;
    } else {
      et_sum_ += et;
      et_min_ = std::min(et_min_, et);
      et_max_ = std::max(et_max_, et);
    }
  }
  ++rows_;
}

void CsvSummary::write(std::ostream& os) const {
  os << "# summary rows=" << rows_ << '\n';
  if (et_column_ >= 0 && rows_ > 0) {
    os << "# summary et_mean="
       << format_double(et_sum_ / static_cast<double>(rows_), 12)
       << " et_min=" << format_double(et_min_, 12)
       << " et_max=" << format_double(et_max_, 12) << '\n';
  }
}

void write_csv_report(const std::string& path,
                      const std::vector<RunPoint>& points,
                      const std::vector<RunResult>& results,
                      std::optional<bool> with_size_dist_opt) {
  ESCHED_CHECK(points.size() == results.size(),
               "points/results size mismatch");
  const bool with_size_dist =
      with_size_dist_opt.value_or(report_has_size_dists(points));
  std::ofstream out(path);
  ESCHED_CHECK(out.good(), "failed to open CSV file: " + path);
  out << csv_encode_row(report_header(with_size_dist)) << '\n';
  CsvSummary summary(report_header(with_size_dist));
  for (std::size_t n = 0; n < points.size(); ++n) {
    const auto row = report_row(points[n], results[n], with_size_dist);
    out << csv_encode_row(row) << '\n';
    summary.add_row(row);
  }
  summary.write(out);
  ESCHED_CHECK(out.good(), "error writing '" + path + "'");
}

StreamingCsvReport::StreamingCsvReport(const std::string& path, bool resume,
                                       bool with_size_dist)
    : path_(path),
      with_size_dist_(with_size_dist),
      summary_(report_header(with_size_dist)) {
  const std::size_t arity = report_header(with_size_dist_).size();
  std::string existing;
  if (resume) {
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      existing = buffer.str();
    }
  }
  if (!existing.empty()) {
    // Keep the longest clean prefix: the matching header plus every
    // complete, well-formed data row; stop at a torn line, a malformed
    // row, or the old summary trailer, and truncate the rest away. A
    // run killed before even the header's newline reached disk left no
    // rows worth keeping — restart fresh rather than error.
    std::size_t offset = 0;
    std::vector<std::string> cells;
    bool complete = false;
    const bool has_header =
        csv_parse_record(existing, &offset, &cells, &complete) && complete;
    if (has_header) {
      ESCHED_CHECK(cells == report_header(with_size_dist_),
                   "--stream resume: '" + path +
                       "' exists with a different header; refusing to "
                       "append (remove it or pick another --out)");
      std::size_t keep = offset;
      while (csv_parse_record(existing, &offset, &cells, &complete)) {
        if (!complete || is_summary_record(cells) || cells.size() != arity) {
          break;
        }
        summary_.add_row(cells);
        resumed_hashes_.push_back(fnv1a64(csv_encode_row(cells)));
        ++resumed_;
        keep = offset;
      }
      // Truncation of the torn tail / old trailer is deferred to the
      // first write (open_for_append): until the kept rows verify
      // against this sweep, the file stays bitwise untouched.
      truncate_at_ = keep;
      next_ = resumed_;
      return;
    }
  }
  out_.open(path, std::ios::trunc);
  ESCHED_CHECK(out_.good(), "failed to open CSV file: " + path);
  out_ << csv_encode_row(report_header(with_size_dist_)) << '\n'
       << std::flush;
  opened_ = true;
}

void StreamingCsvReport::open_for_append() {
  if (opened_) return;
  std::error_code ec;
  std::filesystem::resize_file(path_, truncate_at_, ec);
  ESCHED_CHECK(!ec, "--stream resume: cannot truncate '" + path_ +
                        "': " + ec.message());
  out_.open(path_, std::ios::app);
  ESCHED_CHECK(out_.good(), "failed to open CSV file: " + path_);
  opened_ = true;
}

void StreamingCsvReport::add_row(std::size_t index, const RunPoint& point,
                                 const RunResult& result) {
  ESCHED_CHECK(!finished_, "streaming report already finished");
  ESCHED_CHECK(!failed_, "streaming report in failed state (resumed rows "
                         "did not match this sweep)");
  if (index < resumed_) {
    // Already on disk from the resumed file. The schema header is
    // uniform across scenarios, so verify the kept row really is this
    // sweep's row for this index — resuming onto some other sweep's
    // --out must fail loudly, not mix two reports.
    if (fnv1a64(csv_encode_row(report_row(point, result, with_size_dist_))) !=
        resumed_hashes_[index]) {
      failed_ = true;
      throw Error("--stream resume: row " + std::to_string(index) + " in '" +
                  path_ +
                  "' does not match this sweep (was the file written by a "
                  "different scenario or command line?)");
    }
    ++verified_;
  } else {
    pending_.emplace(index, report_row(point, result, with_size_dist_));
  }
  // Hold all appends until every resumed row has been re-verified: a
  // foreign file must come through entirely untouched, however solve
  // completions interleave.
  if (verified_ < resumed_) return;
  while (!pending_.empty() && pending_.begin()->first == next_) {
    open_for_append();
    const std::vector<std::string>& row = pending_.begin()->second;
    out_ << csv_encode_row(row) << '\n' << std::flush;
    summary_.add_row(row);
    pending_.erase(pending_.begin());
    ++next_;
  }
  ESCHED_CHECK(out_.good(), "error writing '" + path_ + "'");
}

void StreamingCsvReport::finish(std::size_t total) {
  ESCHED_CHECK(!finished_ && !failed_, "streaming report not completable");
  ESCHED_CHECK(pending_.empty() && next_ == total && verified_ == resumed_,
               "streaming report incomplete: " + std::to_string(next_) +
                   " of " + std::to_string(total) + " rows emitted");
  open_for_append();
  summary_.write(out_);
  out_ << std::flush;
  ESCHED_CHECK(out_.good(), "error writing '" + path_ + "'");
  finished_ = true;
}

MergeStats merge_csv_reports(const std::vector<std::string>& inputs,
                             const std::string& out_path) {
  ESCHED_CHECK(!inputs.empty(), "merge needs at least one input CSV");
  // Stream into a sibling temp file and rename at the end: the output
  // replaces `out_path` atomically, so a failed merge leaves no torn
  // file, `--out` may even name one of the inputs, and concurrent merges
  // racing on one --out each publish a complete file (unique temp names —
  // a fixed name would let the loser keep writing into the winner's
  // published artifact).
  const std::string tmp_path = unique_tmp_path(out_path);
  std::vector<std::string> header;
  std::ofstream out;
  CsvSummary summary({});
  MergeStats stats;
  try {
  for (const std::string& input : inputs) {
    std::ifstream in(input, std::ios::binary);
    ESCHED_CHECK(in.good(), "cannot read '" + input + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::size_t offset = 0;
    std::vector<std::string> cells;
    bool complete = false;
    ESCHED_CHECK(csv_parse_record(text, &offset, &cells, &complete) &&
                     complete && !cells.empty(),
                 "'" + input + "' has no CSV header");
    if (header.empty()) {
      header = cells;
      summary = CsvSummary(header);
      out.open(tmp_path);
      ESCHED_CHECK(out.good(), "failed to open CSV file: " + tmp_path);
      out << csv_encode_row(header) << '\n';
    } else {
      ESCHED_CHECK(cells == header,
                   "'" + input + "' has a different header than '" +
                       inputs.front() + "'; refusing to merge");
    }
    while (csv_parse_record(text, &offset, &cells, &complete)) {
      if (is_summary_record(cells)) continue;  // recomputed below
      ESCHED_CHECK(complete, "'" + input + "' ends in a truncated row");
      ESCHED_CHECK(cells.size() == header.size(),
                   "'" + input + "' has a row with " +
                       std::to_string(cells.size()) + " fields (header has " +
                       std::to_string(header.size()) + ")");
      out << csv_encode_row(cells) << '\n';
      summary.add_row(cells);
      ++stats.rows;
    }
    ++stats.files;
  }
  summary.write(out);
  ESCHED_CHECK(out.good(), "error writing '" + tmp_path + "'");
  } catch (...) {
    out.close();
    std::remove(tmp_path.c_str());
    throw;
  }
  out.close();
  atomic_publish_file(tmp_path, out_path);
  return stats;
}

MergeStats merge_json_reports(const std::vector<std::string>& inputs,
                              const std::string& out_path) {
  ESCHED_CHECK(!inputs.empty(), "merge needs at least one input JSON report");
  // Accumulate everything in memory first (reports are rows of numbers; a
  // million-point sweep is tens of MB), then write temp + rename so a
  // failed merge leaves no torn file and --out may name an input.
  std::vector<std::string> point_lines;
  std::vector<std::string> keys;  // the point-object "header"
  std::string keys_source;        // which input defined it (may not be the
                                  // first: zero-point inputs are skipped)
  bool have_keys = false;
  bool any_stats = false;
  double total_points = 0, solved_points = 0, cache_hits = 0, disk_hits = 0;
  double threads = 0, wall_seconds = 0, solve_seconds = 0;
  MergeStats stats;
  for (const std::string& input : inputs) {
    std::ifstream in(input, std::ios::binary);
    ESCHED_CHECK(in.good(), "cannot read '" + input + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const JsonValue root = parse_json(buffer.str(), input);
    const JsonValue* points = root.find("points");
    ESCHED_CHECK(points != nullptr && points->is_array(),
                 "'" + input +
                     "' is not a JSON report (expected a \"points\" array)");
    const auto& items = points->as_array(input + ": points");
    for (std::size_t n = 0; n < items.size(); ++n) {
      const std::string where =
          input + ": points[" + std::to_string(n) + "]";
      const auto& members = items[n].as_object(where);
      std::vector<std::string> item_keys;
      item_keys.reserve(members.size());
      std::string line = "    {";
      for (const auto& [key, value] : members) {
        if (item_keys.size() > 0) line += ", ";
        item_keys.push_back(key);
        line += JsonValue::make_string(key).dump() + ": " + value.dump();
      }
      line += "}";
      if (!have_keys) {
        keys = std::move(item_keys);
        keys_source = input;
        have_keys = true;
      } else {
        // The schema check mirroring the CSV header comparison: every
        // point of every input must carry the same columns in the same
        // order, or the merged document would silently mix schemas.
        ESCHED_CHECK(item_keys == keys,
                     where + " has different fields than '" + keys_source +
                         "'s first point; refusing to merge");
      }
      point_lines.push_back(std::move(line));
      ++stats.rows;
    }
    if (const JsonValue* s = root.find("stats")) {
      const std::string where = input + ": stats";
      any_stats = true;
      const auto add = [&](const char* key, double& sum) {
        if (const JsonValue* v = s->find(key)) {
          sum += v->as_number(where + "." + key);
        }
      };
      add("total_points", total_points);
      add("solved_points", solved_points);
      add("cache_hits", cache_hits);
      add("disk_hits", disk_hits);
      add("wall_seconds", wall_seconds);
      add("solve_seconds", solve_seconds);
      if (const JsonValue* v = s->find("threads")) {
        threads = std::max(threads, v->as_number(where + ".threads"));
      }
    }
    ++stats.files;
  }

  // Unique temp + rename, as in the CSV merge: concurrent merges racing
  // on one --out each publish a complete file.
  const std::string tmp_path = unique_tmp_path(out_path);
  {
    std::ofstream out(tmp_path);
    ESCHED_CHECK(out.good(), "failed to open JSON file: " + tmp_path);
    out << "{\n  \"points\": [\n";
    for (std::size_t n = 0; n < point_lines.size(); ++n) {
      out << point_lines[n] << (n + 1 < point_lines.size() ? "," : "")
          << '\n';
    }
    out << "  ]";
    if (any_stats) {
      out << ",\n  \"stats\": {\"total_points\": "
          << static_cast<long long>(total_points)
          << ", \"solved_points\": " << static_cast<long long>(solved_points)
          << ", \"cache_hits\": " << static_cast<long long>(cache_hits)
          << ", \"disk_hits\": " << static_cast<long long>(disk_hits)
          << ", \"threads\": " << static_cast<long long>(threads)
          << ", \"wall_seconds\": " << format_double(wall_seconds)
          << ", \"solve_seconds\": " << format_double(solve_seconds) << "}";
    }
    out << "\n}\n";
    if (!out.good()) {
      out.close();
      std::remove(tmp_path.c_str());
      throw Error("error writing '" + tmp_path + "'");
    }
  }
  atomic_publish_file(tmp_path, out_path);
  return stats;
}

RowCallback progress_callback(std::size_t total, std::ostream& os,
                              std::size_t offset) {
  // `os` is captured by reference: the callers (the CLI, dist workers)
  // hand in std::cerr or a stream they outlive the sweep with.
  return [total, offset, &os](std::size_t index, const RunPoint& point,
                              const RunResult& result) {
    // Assemble the whole line first and write it with ONE stream
    // insertion: `os` is usually std::cerr shared with other threads and
    // processes (dist workers), and a multi-insertion sequence can
    // interleave into torn lines. One insertion of a complete
    // newline-terminated string keeps lines atomic in practice.
    std::ostringstream line;
    line << "row " << (offset + index + 1) << "/" << total << " "
         << solver_name(point.solver) << " " << point.policy
         << " k=" << point.params.k
         << " rho=" << format_double(point.params.rho())
         << " et=" << format_double(result.mean_response_time) << " ("
         << format_double(result.solve_seconds, 3) << " s)\n";
    os << line.str();
    os.flush();
  };
}

void write_json_report(const std::string& path,
                       const std::vector<RunPoint>& points,
                       const std::vector<RunResult>& results,
                       const SweepStats* stats,
                       std::optional<bool> with_size_dist_opt) {
  ESCHED_CHECK(points.size() == results.size(),
               "points/results size mismatch");
  const bool with_size_dist =
      with_size_dist_opt.value_or(report_has_size_dists(points));
  std::ofstream out(path);
  ESCHED_CHECK(out.good(), "cannot open '" + path + "' for writing");
  const auto& header = report_header(with_size_dist);
  out << "{\n  \"points\": [\n";
  for (std::size_t n = 0; n < points.size(); ++n) {
    const auto row = report_row(points[n], results[n], with_size_dist);
    out << "    {";
    for (std::size_t c = 0; c < header.size(); ++c) {
      if (c > 0) out << ", ";
      // Only the policy/solver/size-dist columns are strings; everything
      // else is emitted numerically (format_double never produces non-JSON
      // text).
      const bool quoted = header[c] == "policy" || header[c] == "solver" ||
                          header[c] == "size_dist_i" ||
                          header[c] == "size_dist_e";
      out << '"' << header[c] << "\": ";
      if (quoted) out << '"' << row[c] << '"';
      else out << row[c];
    }
    out << '}' << (n + 1 < points.size() ? "," : "") << '\n';
  }
  out << "  ]";
  if (stats != nullptr) {
    out << ",\n  \"stats\": {\"total_points\": " << stats->total_points
        << ", \"solved_points\": " << stats->solved_points
        << ", \"cache_hits\": " << stats->cache_hits
        << ", \"disk_hits\": " << stats->disk_hits
        << ", \"threads\": " << stats->threads_used
        << ", \"wall_seconds\": " << format_double(stats->wall_seconds)
        << ", \"solve_seconds\": "
        << format_double(stats->solve_seconds_total) << "}";
  }
  out << "\n}\n";
  ESCHED_CHECK(out.good(), "error writing '" + path + "'");
}

void print_sweep_summary(std::ostream& os, const std::vector<RunPoint>& points,
                         const std::vector<RunResult>& results,
                         const SweepStats& stats, std::size_t max_rows) {
  ESCHED_CHECK(points.size() == results.size(),
               "points/results size mismatch");
  Table table({"k", "rho", "mu_i", "mu_e", "policy", "solver", "E[T]",
               "E[T]_I", "E[T]_E", "cached"});
  const std::size_t shown = std::min(points.size(), max_rows);
  for (std::size_t n = 0; n < shown; ++n) {
    const SystemParams& p = points[n].params;
    table.add_row({std::to_string(p.k), format_double(p.rho()),
                   format_double(p.mu_i), format_double(p.mu_e),
                   points[n].policy, solver_name(points[n].solver),
                   format_double(results[n].mean_response_time),
                   format_double(results[n].mean_response_time_i),
                   format_double(results[n].mean_response_time_e),
                   results[n].from_cache ? "y" : "n"});
  }
  table.print(os);
  if (shown < points.size()) {
    os << "... (" << points.size() - shown << " more rows; see CSV/JSON)\n";
  }
  print_stats_line(os, stats);
}

void print_stats_line(std::ostream& os, const SweepStats& stats) {
  os << "points: " << stats.total_points << " (solved " << stats.solved_points
     << ", cache hits " << stats.cache_hits;
  if (stats.disk_hits > 0) os << ", disk hits " << stats.disk_hits;
  os << ") | threads: " << stats.threads_used
     << " | wall: " << format_double(stats.wall_seconds) << " s\n";
}

// ---------------------------------------------------------------------------
// Named views. Each renders one classic report layout from engine results;
// the formats reproduce the pre-engine harnesses byte for byte (with the
// prose bits injected through ViewOptions), which is what lets the bench
// binaries stay golden while sharing this code with `esched --view`.

namespace {

/// printf into an ostream — the views reproduce printf-era layouts, and
/// matching the historical output exactly is easiest in printf terms.
void osprintf(std::ostream& os, const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  os << buf;
}

/// Row-major shape of an expanded scenario: (cells, truncation, fit,
/// size_dist, policy, solver), mirroring Scenario::expand.
struct GridShape {
  std::size_t ncells = 0;
  std::size_t ntrunc = 1;
  std::size_t nfit = 1;
  std::size_t ndist = 1;
  std::size_t npol = 1;
  std::size_t nsol = 1;

  std::size_t at(std::size_t cell, std::size_t trunc, std::size_t fit,
                 std::size_t dist, std::size_t pol, std::size_t sol) const {
    return ((((cell * ntrunc + trunc) * nfit + fit) * ndist + dist) * npol +
            pol) *
               nsol +
           sol;
  }
};

GridShape shape_of(const Scenario& s) {
  GridShape shape;
  shape.ncells = s.cases.empty()
                     ? s.k_values.size() * s.rho_values.size() *
                           s.mu_i_values.size() * s.mu_e_values.size() *
                           s.elastic_caps.size()
                     : s.cases.size();
  shape.ntrunc = s.trunc_values.empty() ? 1 : s.trunc_values.size();
  shape.nfit = s.fit_orders.empty() ? 1 : s.fit_orders.size();
  shape.ndist = s.size_dists.empty() ? 1 : s.size_dists.size();
  shape.npol = s.policies.size();
  shape.nsol = s.solvers.size();
  return shape;
}

void check_view_inputs(const char* view, const Scenario& scenario,
                       const std::vector<RunPoint>& points,
                       const std::vector<RunResult>& results) {
  ESCHED_CHECK(points.size() == results.size(),
               "points/results size mismatch");
  ESCHED_CHECK(points.size() == scenario.num_points(),
               std::string("view '") + view +
                   "': results do not cover the full scenario grid (did you "
                   "shard? sharded runs support only the 'table' view)");
}

void require(bool condition, const char* view, const std::string& what) {
  ESCHED_CHECK(condition,
               std::string("view '") + view + "' needs " + what);
}

std::size_t solver_index(const Scenario& scenario, SolverKind kind,
                         const char* view) {
  for (std::size_t n = 0; n < scenario.solvers.size(); ++n) {
    if (scenario.solvers[n] == kind) return n;
  }
  throw Error(std::string("view '") + view + "' needs solver '" +
              solver_name(kind) + "' on the scenario's solver axis");
}

/// Labels with defaults: pick options value when provided, else fallback.
std::vector<std::string> labels_or(const std::vector<std::string>& given,
                                   const std::vector<std::string>& fallback,
                                   const char* view, const char* what) {
  if (given.empty()) return fallback;
  ESCHED_CHECK(given.size() == fallback.size(),
               std::string("view '") + view + "': " + what + " needs " +
                   std::to_string(fallback.size()) + " labels");
  return given;
}

// --- heatmap: per-rho winner maps over the (mu_I, mu_E) grid -------------

void print_heatmap_view(std::ostream& os, const Scenario& s,
                        const std::vector<RunResult>& results,
                        const ViewOptions& options) {
  const char* view = "heatmap";
  require(s.cases.empty(), view, "an axes-based scenario (rho/mu grids)");
  require(s.k_values.size() == 1 && s.elastic_caps.size() == 1, view,
          "single k and elastic_cap values");
  require(s.mu_i_values == s.mu_e_values, view,
          "identical mu_i and mu_e grids");
  require(s.policies.size() == 2, view, "exactly two policies");
  const GridShape shape = shape_of(s);
  require(shape.nsol == 1 && shape.ntrunc == 1 && shape.nfit == 1 &&
              shape.ndist == 1,
          view, "a single solver and no truncation/fit/size_dist axes");

  const auto& grid = s.mu_i_values;
  const std::size_t nmu = grid.size();
  const int k = s.k_values.front();
  const std::string& pol0 = s.policies[0];
  const std::string& pol1 = s.policies[1];
  const auto result_at = [&](std::size_t r, std::size_t a, std::size_t b,
                             std::size_t policy) -> const RunResult& {
    return results[shape.at((r * nmu + a) * nmu + b, 0, 0, 0, policy, 0)];
  };

  for (std::size_t r = 0; r < s.rho_values.size(); ++r) {
    const double rho = s.rho_values[r];
    osprintf(os,
             "\n%srho = %.1f, k = %d (rows mu_E top-down, cols mu_I "
             "left-right; %c = %s wins, %c = %s wins)\n",
             options.title_prefix.c_str(), rho, k, pol0[0], pol0.c_str(),
             pol1[0], pol1.c_str());
    osprintf(os, "%7s", "mu_E\\I");
    for (const double mu_i : grid) osprintf(os, "%5.2f", mu_i);
    osprintf(os, "\n");

    int first_wins = 0;
    int second_wins = 0;
    int first_wins_upper = 0;  // mu_I >= mu_E (Theorem 5 region)
    int points_upper = 0;
    for (std::size_t b = nmu; b-- > 0;) {
      const double mu_e = grid[b];
      osprintf(os, "%6.2f ", mu_e);
      for (std::size_t a = 0; a < nmu; ++a) {
        const double mu_i = grid[a];
        const double et0 = result_at(r, a, b, 0).mean_response_time;
        const double et1 = result_at(r, a, b, 1).mean_response_time;
        const bool first_better = et0 <= et1;
        (first_better ? first_wins : second_wins)++;
        if (mu_i >= mu_e - 1e-9) {
          ++points_upper;
          if (first_better) ++first_wins_upper;
        }
        osprintf(os, "%5c", first_better ? pol0[0] : pol1[0]);
      }
      osprintf(os, "\n");
    }
    osprintf(os,
             "summary: %s wins %d points, %s wins %d points; "
             "%s wins %d/%d points with mu_I >= mu_E (paper: all)\n",
             pol0.c_str(), first_wins, pol1.c_str(), second_wins,
             pol0.c_str(), first_wins_upper, points_upper);
  }
}

// --- vs-mu: per-rho E[T] tables along the mu_I axis ----------------------

void print_vs_mu_view(std::ostream& os, const Scenario& s,
                      const std::vector<RunResult>& results,
                      const ViewOptions& options) {
  const char* view = "vs-mu";
  require(s.cases.empty(), view, "an axes-based scenario (rho/mu_i axes)");
  require(s.k_values.size() == 1 && s.mu_e_values.size() == 1 &&
              s.elastic_caps.size() == 1,
          view, "single k, mu_e, and elastic_cap values");
  require(s.policies.size() == 2, view, "exactly two policies");
  const GridShape shape = shape_of(s);
  require(shape.nsol == 1 && shape.ntrunc == 1 && shape.nfit == 1 &&
              shape.ndist == 1,
          view, "a single solver and no truncation/fit/size_dist axes");

  const std::string& pol0 = s.policies[0];
  const std::string& pol1 = s.policies[1];
  const std::size_t nmu = s.mu_i_values.size();
  for (std::size_t r = 0; r < s.rho_values.size(); ++r) {
    Table table({"mu_I", "E[T] " + pol0, "E[T] " + pol1, "winner"});
    for (std::size_t m = 0; m < nmu; ++m) {
      const double et0 =
          results[shape.at(r * nmu + m, 0, 0, 0, 0, 0)].mean_response_time;
      const double et1 =
          results[shape.at(r * nmu + m, 0, 0, 0, 1, 0)].mean_response_time;
      table.add_row({format_double(s.mu_i_values[m]), format_double(et0),
                     format_double(et1), et0 <= et1 ? pol0 : pol1});
    }
    osprintf(os, "\n--- rho = %.1f%s ---\n", s.rho_values[r],
             options.rho_note.c_str());
    table.print(os);
  }
}

// --- vs-k: per-mu_I panels of E[T] along the k axis ----------------------

void print_vs_k_view(std::ostream& os, const Scenario& s,
                     const std::vector<RunResult>& results,
                     const ViewOptions& options) {
  const char* view = "vs-k";
  require(s.cases.empty(), view, "an axes-based scenario (k axis)");
  require(s.rho_values.size() == 1 && s.mu_e_values.size() == 1 &&
              s.elastic_caps.size() == 1,
          view, "single rho, mu_e, and elastic_cap values");
  require(s.policies.size() == 2, view, "exactly two policies");
  const GridShape shape = shape_of(s);
  require(shape.nsol == 1 && shape.ntrunc == 1 && shape.nfit == 1 &&
              shape.ndist == 1,
          view, "a single solver and no truncation/fit/size_dist axes");

  const std::string& pol0 = s.policies[0];
  const std::string& pol1 = s.policies[1];
  std::vector<std::string> default_labels;
  for (const double mu_i : s.mu_i_values) {
    default_labels.push_back("mu_I = " + format_double(mu_i) + ", mu_E = " +
                             format_double(s.mu_e_values.front()));
  }
  const auto labels =
      labels_or(options.panel_labels, default_labels, view, "panel_labels");
  const std::size_t nmu = s.mu_i_values.size();
  for (std::size_t panel = 0; panel < nmu; ++panel) {
    Table table({"k", "E[T] " + pol0, "E[T] " + pol1,
                 "gap " + pol1 + "-" + pol0});
    for (std::size_t n = 0; n < s.k_values.size(); ++n) {
      const double et0 =
          results[shape.at(n * nmu + panel, 0, 0, 0, 0, 0)].mean_response_time;
      const double et1 =
          results[shape.at(n * nmu + panel, 0, 0, 0, 1, 0)].mean_response_time;
      table.add_row({std::to_string(s.k_values[n]), format_double(et0),
                     format_double(et1), format_double(et1 - et0)});
    }
    osprintf(os, "\n--- %s ---\n", labels[panel].c_str());
    table.print(os);
  }
}

// --- family: per-case policy-family E[T] + Thm. 5 check ------------------

void print_family_view(std::ostream& os, const Scenario& s,
                       const std::vector<RunResult>& results,
                       const ViewOptions& options) {
  const char* view = "family";
  require(!s.cases.empty(), view, "a cases-based scenario");
  const GridShape shape = shape_of(s);
  require(shape.nsol == 1 && shape.ntrunc == 1 && shape.nfit == 1 &&
              shape.ndist == 1,
          view, "a single solver and no truncation/fit/size_dist axes");
  const auto policy_labels =
      labels_or(options.policy_labels, s.policies, view, "policy_labels");
  const auto column_labels =
      labels_or(options.column_labels, s.policies, view, "column_labels");

  std::vector<std::string> header = {"mu_I", "mu_E", "rho"};
  for (const auto& label : column_labels) header.push_back("E[T] " + label);
  header.push_back("best");
  header.push_back(policy_labels[0] + " optimal?");
  Table table(std::move(header));

  int theorem5_checks = 0;
  int theorem5_holds = 0;
  for (std::size_t c = 0; c < s.cases.size(); ++c) {
    const CaseSpec& setting = s.cases[c];
    std::vector<double> et;
    et.reserve(shape.npol);
    for (std::size_t p = 0; p < shape.npol; ++p) {
      et.push_back(results[shape.at(c, 0, 0, 0, p, 0)].mean_response_time);
    }
    std::size_t best = 0;
    for (std::size_t n = 1; n < et.size(); ++n) {
      if (et[n] < et[best]) best = n;
    }
    const bool diagonal_or_above = setting.mu_i >= setting.mu_e;
    const bool first_optimal = et[0] <= et[best] * (1.0 + 1e-9);
    if (diagonal_or_above) {
      ++theorem5_checks;
      if (first_optimal) ++theorem5_holds;
    }
    std::vector<std::string> row = {format_double(setting.mu_i),
                                    format_double(setting.mu_e),
                                    format_double(setting.rho)};
    for (const double value : et) row.push_back(format_double(value));
    row.push_back(policy_labels[best]);
    row.push_back(first_optimal ? "yes" : "no");
    table.add_row(std::move(row));
  }
  table.print(os);
  osprintf(os,
           "\nTheorem 5 (mu_I >= mu_E => %s optimal in family): %d/%d "
           "settings hold.\n",
           policy_labels[0].c_str(), theorem5_holds, theorem5_checks);
}

// --- accuracy: QBD vs exact vs simulation per case -----------------------

void print_accuracy_view(std::ostream& os, const Scenario& s,
                         const std::vector<RunResult>& results) {
  const char* view = "accuracy";
  require(!s.cases.empty(), view, "a cases-based scenario");
  const GridShape shape = shape_of(s);
  require(shape.ntrunc == 1 && shape.nfit == 1 && shape.ndist == 1, view,
          "no truncation/fit/size_dist axes");
  const std::size_t qbd = solver_index(s, SolverKind::kQbdAnalysis, view);
  const std::size_t exact = solver_index(s, SolverKind::kExactCtmc, view);
  const std::size_t sim = solver_index(s, SolverKind::kSimulation, view);

  Table table({"k", "mu_I", "mu_E", "rho", "policy", "QBD E[T]",
               "exact E[T]", "sim E[T]", "err vs exact", "err vs sim"});
  double worst_exact_err = 0.0;
  for (std::size_t c = 0; c < s.cases.size(); ++c) {
    const CaseSpec& setting = s.cases[c];
    for (std::size_t p = 0; p < shape.npol; ++p) {
      const double et_qbd =
          results[shape.at(c, 0, 0, 0, p, qbd)].mean_response_time;
      const double et_exact =
          results[shape.at(c, 0, 0, 0, p, exact)].mean_response_time;
      const double et_sim =
          results[shape.at(c, 0, 0, 0, p, sim)].mean_response_time;
      const double err_exact = relative_error(et_qbd, et_exact);
      const double err_sim = relative_error(et_qbd, et_sim);
      worst_exact_err = std::max(worst_exact_err, err_exact);
      table.add_row({std::to_string(setting.k), format_double(setting.mu_i),
                     format_double(setting.mu_e), format_double(setting.rho),
                     s.policies[p], format_double(et_qbd),
                     format_double(et_exact), format_double(et_sim),
                     format_double(100.0 * err_exact, 3) + "%",
                     format_double(100.0 * err_sim, 3) + "%"});
    }
  }
  table.print(os);
  osprintf(os,
           "\nworst QBD-vs-exact error: %.3f%% (paper: <1%%; errors vs "
           "simulation include Monte Carlo noise)\n",
           100.0 * worst_exact_err);
}

// --- tail: per-class response-time percentiles per case ------------------

void print_tail_view(std::ostream& os, const Scenario& s,
                     const std::vector<RunResult>& results) {
  const char* view = "tail";
  require(!s.cases.empty(), view, "a cases-based scenario");
  require(s.options.sim_tails, view,
          "options.sim_tails = true (tail percentiles)");
  const GridShape shape = shape_of(s);
  require(shape.nsol == 1 && shape.ntrunc == 1 && shape.nfit == 1 &&
              shape.ndist == 1,
          view, "a single (sim) solver and no truncation/fit/size_dist axes");

  Table table({"mu_I", "rho", "policy", "mean E[T]", "inel P50", "inel P99",
               "el P50", "el P99"});
  for (std::size_t c = 0; c < s.cases.size(); ++c) {
    const CaseSpec& setting = s.cases[c];
    for (std::size_t p = 0; p < shape.npol; ++p) {
      const RunResult& r = results[shape.at(c, 0, 0, 0, p, 0)];
      table.add_row({format_double(setting.mu_i), format_double(setting.rho),
                     make_policy(s.policies[p])->name(),
                     format_double(r.mean_response_time, 4),
                     format_double(r.p50_i, 4), format_double(r.p99_i, 4),
                     format_double(r.p50_e, 4), format_double(r.p99_e, 4)});
    }
  }
  table.print(os);
}

// --- truncation: exact-solver truncation ablation ------------------------

void print_truncation_view(std::ostream& os, const Scenario& s,
                           const std::vector<RunResult>& results) {
  const char* view = "truncation";
  require(!s.cases.empty(), view, "a cases-based scenario");
  require(s.trunc_values.size() >= 2, view,
          "a truncation axis with at least two levels (last = reference)");
  require(s.policies.size() == 1, view, "a single policy");
  const GridShape shape = shape_of(s);
  require(shape.nfit == 1 && shape.ndist == 1, view,
          "no fit/size_dist axes");
  const std::size_t exact = solver_index(s, SolverKind::kExactCtmc, view);
  const std::size_t qbd = solver_index(s, SolverKind::kQbdAnalysis, view);
  const std::size_t last = s.trunc_values.size() - 1;

  for (std::size_t c = 0; c < s.cases.size(); ++c) {
    const double rho = s.cases[c].rho;
    const double reference =
        results[shape.at(c, last, 0, 0, 0, exact)].mean_response_time;
    const double et_qbd =
        results[shape.at(c, 0, 0, 0, 0, qbd)].mean_response_time;
    Table table({"truncation", "states", "E[T]", "rel err", "boundary mass",
                 "solve ms"});
    for (std::size_t t = 0; t < last; ++t) {
      const RunResult& r = results[shape.at(c, t, 0, 0, 0, exact)];
      table.add_row(
          {std::to_string(s.trunc_values[t]), std::to_string(r.num_states),
           format_double(r.mean_response_time),
           format_double(relative_error(r.mean_response_time, reference), 3),
           format_double(r.boundary_mass, 3),
           format_double(r.solve_seconds * 1000.0, 4)});
    }
    osprintf(os,
             "\n--- rho = %.1f (reference E[T] = %.6f at truncation %ld; "
             "suggested_truncation = %ld; QBD analysis = %.6f, err "
             "%.4f%%, ~0.1 ms) ---\n",
             rho, reference, s.trunc_values[last],
             suggested_truncation(rho, 1e-10), et_qbd,
             100.0 * relative_error(et_qbd, reference));
    table.print(os);
  }
}

// --- fit-order: busy-period moment-matching ablation ---------------------

void print_fit_order_view(std::ostream& os, const Scenario& s,
                          const std::vector<RunResult>& results) {
  const char* view = "fit-order";
  require(!s.cases.empty(), view, "a cases-based scenario");
  require(s.fit_orders == std::vector<int>({1, 2, 3}), view,
          "the fit_order axis [1, 2, 3]");
  const GridShape shape = shape_of(s);
  require(shape.ntrunc == 1 && shape.ndist == 1, view,
          "no truncation/size_dist axes");
  const std::size_t qbd = solver_index(s, SolverKind::kQbdAnalysis, view);
  const std::size_t exact = solver_index(s, SolverKind::kExactCtmc, view);

  Table table({"k", "mu_I", "mu_E", "rho", "policy", "err 1-moment",
               "err 2-moment", "err 3-moment"});
  Accumulator err1_acc, err2_acc, err3_acc;
  for (std::size_t c = 0; c < s.cases.size(); ++c) {
    const CaseSpec& setting = s.cases[c];
    for (std::size_t p = 0; p < shape.npol; ++p) {
      // The exact chain ignores the fit order (one shared solve under the
      // canonical cache key); read it from the first fit cell.
      const double et_exact =
          results[shape.at(c, 0, 0, 0, p, exact)].mean_response_time;
      const double e1 = relative_error(
          results[shape.at(c, 0, 0, 0, p, qbd)].mean_response_time, et_exact);
      const double e2 = relative_error(
          results[shape.at(c, 0, 1, 0, p, qbd)].mean_response_time, et_exact);
      const double e3 = relative_error(
          results[shape.at(c, 0, 2, 0, p, qbd)].mean_response_time, et_exact);
      err1_acc.add(e1);
      err2_acc.add(e2);
      err3_acc.add(e3);
      table.add_row({std::to_string(setting.k), format_double(setting.mu_i),
                     format_double(setting.mu_e), format_double(setting.rho),
                     s.policies[p], format_double(100.0 * e1, 3) + "%",
                     format_double(100.0 * e2, 3) + "%",
                     format_double(100.0 * e3, 3) + "%"});
    }
  }
  table.print(os);
  osprintf(os,
           "\nmean error: 1-moment %.3f%%, 2-moment %.3f%%, 3-moment "
           "%.4f%% — each extra busy-period moment buys roughly an "
           "order of magnitude, which is why §5.2 matches three.\n",
           100.0 * err1_acc.mean(), 100.0 * err2_acc.mean(),
           100.0 * err3_acc.mean());
}

// --- dominance: Thm. 3 pointwise work-dominance check --------------------

void print_dominance_view(std::ostream& os, const Scenario& s,
                          const std::vector<RunResult>& results) {
  const char* view = "dominance";
  require(!s.cases.empty(), view, "a cases-based scenario");
  const GridShape shape = shape_of(s);
  require(shape.nsol == 1 && shape.ntrunc == 1 && shape.nfit == 1 &&
              shape.ndist == 1,
          view, "a single (trace) solver and no truncation/fit/size_dist axes");
  require(s.solvers.front() == SolverKind::kTraceDominance, view,
          "the 'trace' solver");

  Table table({"mu_I", "mu_E", "rho", "policy", "max W viol", "max W_I viol",
               "avg W gap", "checkpoints"});
  double worst_violation = 0.0;
  for (std::size_t c = 0; c < s.cases.size(); ++c) {
    const CaseSpec& setting = s.cases[c];
    for (std::size_t p = 0; p < shape.npol; ++p) {
      const RunResult& r = results[shape.at(c, 0, 0, 0, p, 0)];
      worst_violation = std::max(
          {worst_violation, r.dom_max_violation, r.dom_max_violation_i});
      table.add_row({format_double(setting.mu_i), format_double(setting.mu_e),
                     format_double(setting.rho),
                     make_policy(s.policies[p])->name(),
                     format_double(r.dom_max_violation, 3),
                     format_double(r.dom_max_violation_i, 3),
                     format_double(r.dom_avg_gap),
                     std::to_string(r.dom_checkpoints)});
    }
  }
  table.print(os);
  osprintf(os,
           "\nworst pointwise violation over all runs: %.3g "
           "(theory: exactly 0; float error only)\n",
           worst_violation);
  osprintf(os, "avg W gap >= 0 everywhere: IF keeps the least work in "
               "system, as Theorem 3 proves.\n");
}

// --- scv: size-distribution (SCV) robustness sweep -----------------------

void print_scv_view(std::ostream& os, const Scenario& s,
                    const std::vector<RunResult>& results) {
  const char* view = "scv";
  require(!s.cases.empty(), view, "a cases-based scenario");
  require(!s.size_dists.empty(), view,
          "a size_dist axis (the SCV sweep dimension)");
  const GridShape shape = shape_of(s);
  require(shape.nsol == 1 && shape.ntrunc == 1 && shape.nfit == 1, view,
          "a single solver and no truncation/fit axes");

  std::size_t stable_cases = 0;
  for (std::size_t c = 0; c < s.cases.size(); ++c) {
    const CaseSpec& setting = s.cases[c];
    std::vector<std::string> header = {"size_dist", "SCV"};
    for (const auto& policy : s.policies) header.push_back("E[T] " + policy);
    header.push_back("winner");
    Table table(std::move(header));
    std::size_t first_winner = 0;
    bool winner_stable = true;
    for (std::size_t d = 0; d < shape.ndist; ++d) {
      std::vector<double> et;
      et.reserve(shape.npol);
      for (std::size_t p = 0; p < shape.npol; ++p) {
        et.push_back(
            results[shape.at(c, 0, 0, d, p, 0)].mean_response_time);
      }
      std::size_t best = 0;
      for (std::size_t p = 1; p < et.size(); ++p) {
        if (et[p] < et[best]) best = p;
      }
      if (d == 0) first_winner = best;
      if (best != first_winner) winner_stable = false;
      std::vector<std::string> row = {
          s.size_dists[d].canonical(),
          format_double(s.size_dists[d].scv(), 4)};
      for (const double value : et) row.push_back(format_double(value));
      row.push_back(s.policies[best]);
      table.add_row(std::move(row));
    }
    if (winner_stable) ++stable_cases;
    osprintf(os, "\n--- k = %d, mu_I = %s, mu_E = %s, rho = %s ---\n",
             setting.k, format_double(setting.mu_i).c_str(),
             format_double(setting.mu_e).c_str(),
             format_double(setting.rho).c_str());
    table.print(os);
  }
  osprintf(os,
           "\nwinner stable across the SCV axis in %zu/%zu settings — where "
           "it is, the paper's Exp(mu) policy conclusions carry over to "
           "that size distribution family.\n",
           stable_cases, s.cases.size());
}

}  // namespace

void print_view(const std::string& view, std::ostream& os,
                const Scenario& scenario, const std::vector<RunPoint>& points,
                const std::vector<RunResult>& results, const SweepStats& stats,
                const ViewOptions& options) {
  if (view == "table") {
    ESCHED_CHECK(points.size() == results.size(),
                 "points/results size mismatch");
    print_sweep_summary(os, points, results, stats, options.max_rows);
    return;
  }
  check_view_inputs(view.c_str(), scenario, points, results);
  if (view == "heatmap") return print_heatmap_view(os, scenario, results, options);
  if (view == "vs-mu") return print_vs_mu_view(os, scenario, results, options);
  if (view == "vs-k") return print_vs_k_view(os, scenario, results, options);
  if (view == "family") return print_family_view(os, scenario, results, options);
  if (view == "accuracy") return print_accuracy_view(os, scenario, results);
  if (view == "tail") return print_tail_view(os, scenario, results);
  if (view == "truncation") return print_truncation_view(os, scenario, results);
  if (view == "fit-order") return print_fit_order_view(os, scenario, results);
  if (view == "dominance") return print_dominance_view(os, scenario, results);
  if (view == "scv") return print_scv_view(os, scenario, results);
  std::string all;
  for (const auto& name : report_view_names()) {
    if (!all.empty()) all += ", ";
    all += name;
  }
  throw Error("unknown report view '" + view + "' (expected one of: " + all +
              ")");
}

std::vector<std::string> report_view_names() {
  return {"table",  "heatmap",    "vs-mu",     "vs-k",      "family",
          "accuracy", "tail", "truncation", "fit-order", "dominance",
          "scv"};
}

}  // namespace esched
