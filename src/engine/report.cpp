#include "engine/report.hpp"

#include <fstream>
#include <ostream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace esched {

namespace {

const std::vector<std::string>& report_header() {
  static const std::vector<std::string> header = {
      "k",          "rho",           "mu_i",          "mu_e",
      "elastic_cap", "lambda_i",     "lambda_e",      "policy",
      "solver",     "et",            "et_i",          "et_e",
      "en_i",       "en_e",          "ci_halfwidth",  "boundary_mass",
      "iterations", "residual",      "solve_seconds", "from_cache"};
  return header;
}

std::vector<std::string> report_row(const RunPoint& point,
                                    const RunResult& result) {
  const SystemParams& p = point.params;
  return {std::to_string(p.k),
          format_double(p.rho()),
          format_double(p.mu_i),
          format_double(p.mu_e),
          std::to_string(p.elastic_cap),
          format_double(p.lambda_i),
          format_double(p.lambda_e),
          point.policy,
          solver_name(point.solver),
          format_double(result.mean_response_time, 12),
          format_double(result.mean_response_time_i, 12),
          format_double(result.mean_response_time_e, 12),
          format_double(result.mean_jobs_i, 12),
          format_double(result.mean_jobs_e, 12),
          format_double(result.ci_halfwidth),
          format_double(result.boundary_mass),
          std::to_string(result.solver_iterations),
          format_double(result.solve_residual),
          format_double(result.solve_seconds),
          result.from_cache ? "1" : "0"};
}

}  // namespace

void write_csv_report(const std::string& path,
                      const std::vector<RunPoint>& points,
                      const std::vector<RunResult>& results) {
  ESCHED_CHECK(points.size() == results.size(),
               "points/results size mismatch");
  CsvWriter csv(path, report_header());
  for (std::size_t n = 0; n < points.size(); ++n) {
    csv.add_row(report_row(points[n], results[n]));
  }
}

void write_json_report(const std::string& path,
                       const std::vector<RunPoint>& points,
                       const std::vector<RunResult>& results,
                       const SweepStats* stats) {
  ESCHED_CHECK(points.size() == results.size(),
               "points/results size mismatch");
  std::ofstream out(path);
  ESCHED_CHECK(out.good(), "cannot open '" + path + "' for writing");
  const auto& header = report_header();
  out << "{\n  \"points\": [\n";
  for (std::size_t n = 0; n < points.size(); ++n) {
    const auto row = report_row(points[n], results[n]);
    out << "    {";
    for (std::size_t c = 0; c < header.size(); ++c) {
      if (c > 0) out << ", ";
      // Only the policy/solver columns are strings; everything else is
      // emitted numerically (format_double never produces non-JSON text).
      const bool quoted = header[c] == "policy" || header[c] == "solver";
      out << '"' << header[c] << "\": ";
      if (quoted) out << '"' << row[c] << '"';
      else out << row[c];
    }
    out << '}' << (n + 1 < points.size() ? "," : "") << '\n';
  }
  out << "  ]";
  if (stats != nullptr) {
    out << ",\n  \"stats\": {\"total_points\": " << stats->total_points
        << ", \"solved_points\": " << stats->solved_points
        << ", \"cache_hits\": " << stats->cache_hits
        << ", \"threads\": " << stats->threads_used
        << ", \"wall_seconds\": " << format_double(stats->wall_seconds)
        << "}";
  }
  out << "\n}\n";
  ESCHED_CHECK(out.good(), "error writing '" + path + "'");
}

void print_sweep_summary(std::ostream& os, const std::vector<RunPoint>& points,
                         const std::vector<RunResult>& results,
                         const SweepStats& stats, std::size_t max_rows) {
  ESCHED_CHECK(points.size() == results.size(),
               "points/results size mismatch");
  Table table({"k", "rho", "mu_i", "mu_e", "policy", "solver", "E[T]",
               "E[T]_I", "E[T]_E", "cached"});
  const std::size_t shown = std::min(points.size(), max_rows);
  for (std::size_t n = 0; n < shown; ++n) {
    const SystemParams& p = points[n].params;
    table.add_row({std::to_string(p.k), format_double(p.rho()),
                   format_double(p.mu_i), format_double(p.mu_e),
                   points[n].policy, solver_name(points[n].solver),
                   format_double(results[n].mean_response_time),
                   format_double(results[n].mean_response_time_i),
                   format_double(results[n].mean_response_time_e),
                   results[n].from_cache ? "y" : "n"});
  }
  table.print(os);
  if (shown < points.size()) {
    os << "... (" << points.size() - shown << " more rows; see CSV/JSON)\n";
  }
  os << "points: " << stats.total_points << " (solved " << stats.solved_points
     << ", cache hits " << stats.cache_hits << ") | threads: "
     << stats.threads_used << " | wall: " << format_double(stats.wall_seconds)
     << " s\n";
}

}  // namespace esched
