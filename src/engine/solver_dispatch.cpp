#include "engine/solver_dispatch.hpp"

#include <chrono>

#include "common/error.hpp"
#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "queueing/mmk.hpp"
#include "sim/cluster_sim.hpp"

namespace esched {

namespace {

RunResult run_qbd_analysis(const RunPoint& point) {
  ESCHED_CHECK(point.params.elastic_cap == 0,
               "the QBD analyses cover only the base model (elastic_cap 0)");
  ResponseTimeAnalysis analysis;
  if (point.policy == "EF") {
    analysis = analyze_elastic_first(point.params, point.options.fit_order);
  } else if (point.policy == "IF") {
    analysis = analyze_inelastic_first(point.params, point.options.fit_order);
  } else {
    throw Error("solver 'qbd' analyzes only IF and EF, not '" + point.policy +
                "'; use solver 'exact' or 'sim' for other policies");
  }
  RunResult result;
  result.mean_response_time = analysis.mean_response_time;
  result.mean_response_time_i = analysis.mean_response_time_i;
  result.mean_response_time_e = analysis.mean_response_time_e;
  result.mean_jobs_i = analysis.mean_jobs_i;
  result.mean_jobs_e = analysis.mean_jobs_e;
  result.solver_iterations = analysis.qbd_iterations;
  result.solve_residual = analysis.qbd_spectral_radius;
  return result;
}

RunResult run_exact_ctmc(const RunPoint& point) {
  ExactCtmcOptions options;
  const long derived =
      suggested_truncation(point.params.rho(), point.options.truncation_epsilon);
  options.imax = point.options.imax > 0 ? point.options.imax : derived;
  options.jmax = point.options.jmax > 0 ? point.options.jmax : derived;
  const auto policy = make_policy(point.policy);
  const ExactCtmcResult exact =
      solve_exact_ctmc(point.params, *policy, options);
  RunResult result;
  result.mean_response_time = exact.mean_response_time;
  result.mean_response_time_i = exact.mean_response_time_i;
  result.mean_response_time_e = exact.mean_response_time_e;
  result.mean_jobs_i = exact.mean_jobs_i;
  result.mean_jobs_e = exact.mean_jobs_e;
  result.boundary_mass = exact.boundary_mass;
  result.solver_iterations = exact.solve_info.iterations;
  result.solve_residual = exact.solve_info.residual;
  return result;
}

RunResult run_simulation(const RunPoint& point) {
  SimOptions options;
  options.num_jobs = point.options.sim_jobs;
  options.warmup_jobs = point.options.sim_warmup;
  options.seed = point.seed();
  const auto policy = make_policy(point.policy);
  const SimResult sim = simulate(point.params, *policy, options);
  RunResult result;
  result.mean_response_time = sim.mean_response_time.mean;
  result.mean_response_time_i = sim.inelastic.response_time.mean;
  result.mean_response_time_e = sim.elastic.response_time.mean;
  result.mean_jobs_i = sim.mean_jobs_i;
  result.mean_jobs_e = sim.mean_jobs_e;
  result.ci_halfwidth = sim.mean_response_time.half_width;
  return result;
}

/// Dedicated-cluster baseline: each class alone on the k servers.
/// Inelastic jobs form an M/M/k; a fully elastic class forms an M/M/1 with
/// service rate k mu_E (every elastic job can take all servers). A lower
/// bound useful for sanity-checking the shared-cluster policies.
RunResult run_mmk_baseline(const RunPoint& point) {
  const SystemParams& p = point.params;
  ESCHED_CHECK(p.elastic_cap == 0,
               "the M/M/k baseline assumes fully elastic jobs");
  RunResult result;
  if (p.lambda_i > 0.0) {
    const MMk inelastic(p.lambda_i, p.mu_i, p.k);
    result.mean_response_time_i = inelastic.mean_response_time();
    result.mean_jobs_i = inelastic.mean_jobs();
  }
  if (p.lambda_e > 0.0) {
    const MMk elastic(p.lambda_e, static_cast<double>(p.k) * p.mu_e, 1);
    result.mean_response_time_e = elastic.mean_response_time();
    result.mean_jobs_e = elastic.mean_jobs();
  }
  const double total = p.lambda_i + p.lambda_e;
  ESCHED_CHECK(total > 0.0, "baseline requires some arrivals");
  result.mean_response_time =
      (result.mean_jobs_i + result.mean_jobs_e) / total;
  return result;
}

}  // namespace

RunResult dispatch_run(const RunPoint& point) {
  point.params.validate();
  const auto start = std::chrono::steady_clock::now();
  RunResult result;
  switch (point.solver) {
    case SolverKind::kQbdAnalysis: result = run_qbd_analysis(point); break;
    case SolverKind::kExactCtmc: result = run_exact_ctmc(point); break;
    case SolverKind::kSimulation: result = run_simulation(point); break;
    case SolverKind::kMmkBaseline: result = run_mmk_baseline(point); break;
  }
  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace esched
