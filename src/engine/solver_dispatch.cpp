#include "engine/solver_dispatch.hpp"

#include <array>
#include <chrono>
#include <optional>

#include "common/error.hpp"
#include "core/ef_analysis.hpp"
#include "obs/metrics.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "queueing/mmk.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/coupled.hpp"
#include "sim/trace.hpp"
#include "stats/histogram.hpp"

namespace esched {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(const Clock::time_point& start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-backend observability handles, resolved once per backend so the
/// per-solve updates are lock-free (registry lookup takes a mutex).
struct BackendMetrics {
  Counter& points;        ///< solver.<name>.points
  Counter& errors;        ///< solver.<name>.errors
  LogHistogram& seconds;  ///< solver.<name>.seconds — per-point solve time
  LogHistogram& states;   ///< solver.<name>.states — CTMC state counts
};

BackendMetrics& backend_metrics(SolverKind kind) {
  static const auto make = [](const char* name) {
    MetricsRegistry& m = global_metrics();
    const std::string prefix = std::string("solver.") + name;
    return BackendMetrics{m.counter(prefix + ".points"),
                          m.counter(prefix + ".errors"),
                          m.histogram(prefix + ".seconds"),
                          m.histogram(prefix + ".states")};
  };
  // Indexed by SolverKind; order must match the enum.
  static std::array<BackendMetrics, 5> metrics = {
      make("qbd"), make("exact"), make("sim"), make("mmk"), make("trace")};
  return metrics[static_cast<std::size_t>(kind)];
}

/// Named-rejection counter: solver.<name>.reject.<reason> distinguishes
/// "spec asked this backend for something it cannot do" from real errors.
void count_rejection(const char* solver, const char* reason) {
  global_metrics()
      .counter(std::string("solver.") + solver + ".reject." + reason)
      .add();
}

/// Solvers built on the Exp(mu) model reject non-exponential size specs,
/// naming the offending option so a spec author knows what to change.
void require_exponential_sizes(const RunPoint& point, const char* solver) {
  const auto reject = [&](const char* option, const SizeDistSpec& spec) {
    if (spec.is_exponential()) return;
    count_rejection(solver, "size_dist");
    throw Error(std::string("solver '") + solver +
                "' supports only exponential job sizes, but option '" +
                option + "' is '" + spec.canonical() +
                "'; use solver 'sim' (any distribution) or 'exact' "
                "(phase-type inelastic sizes)");
  };
  reject("size_dist_i", point.options.size_dist_i);
  reject("size_dist_e", point.options.size_dist_e);
}

RunResult run_qbd_analysis(const RunPoint& point) {
  require_exponential_sizes(point, "qbd");
  ESCHED_CHECK(point.params.elastic_cap == 0,
               "the QBD analyses cover only the base model (elastic_cap 0)");
  ResponseTimeAnalysis analysis;
  if (point.policy == "EF") {
    analysis = analyze_elastic_first(point.params, point.options.fit_order);
  } else if (point.policy == "IF") {
    analysis = analyze_inelastic_first(point.params, point.options.fit_order);
  } else {
    count_rejection("qbd", "policy");
    throw Error("solver 'qbd' analyzes only IF and EF, not '" + point.policy +
                "'; use solver 'exact' or 'sim' for other policies");
  }
  RunResult result;
  result.mean_response_time = analysis.mean_response_time;
  result.mean_response_time_i = analysis.mean_response_time_i;
  result.mean_response_time_e = analysis.mean_response_time_e;
  result.mean_jobs_i = analysis.mean_jobs_i;
  result.mean_jobs_e = analysis.mean_jobs_e;
  result.solver_iterations = analysis.qbd_iterations;
  result.solve_residual = analysis.qbd_spectral_radius;
  return result;
}

/// The (imax, jmax) an exact-CTMC point actually solves with: explicit
/// levels win; 0 derives from (rho, truncation_epsilon).
ExactCtmcOptions resolve_exact_options(const RunPoint& point) {
  ExactCtmcOptions options;
  const long derived = suggested_truncation(point.params.rho(),
                                            point.options.truncation_epsilon);
  options.imax = point.options.imax > 0 ? point.options.imax : derived;
  options.jmax = point.options.jmax > 0 ? point.options.jmax : derived;
  options.method = point.options.exact_method;
  return options;
}

RunResult exact_to_run_result(const ExactCtmcResult& exact) {
  RunResult result;
  result.mean_response_time = exact.mean_response_time;
  result.mean_response_time_i = exact.mean_response_time_i;
  result.mean_response_time_e = exact.mean_response_time_e;
  result.mean_jobs_i = exact.mean_jobs_i;
  result.mean_jobs_e = exact.mean_jobs_e;
  result.boundary_mass = exact.boundary_mass;
  result.num_states = static_cast<long>(exact.num_states);
  result.solver_iterations = exact.solve_info.iterations;
  result.solve_residual = exact.solve_info.residual;
  return result;
}

RunResult run_exact_ctmc(const RunPoint& point) {
  // Elastic sizes must stay exponential: the elastic class's aggregate
  // service rate relies on memorylessness. Inelastic sizes may be any
  // (small) phase type via the augmented chain.
  if (!point.options.size_dist_e.is_exponential()) {
    count_rejection("exact", "size_dist");
    throw Error("solver 'exact' supports phase-type sizes for the "
                "inelastic class only, but option 'size_dist_e' is '" +
                point.options.size_dist_e.canonical() +
                "'; use solver 'sim' for non-exponential elastic sizes");
  }
  const auto policy = make_policy(point.policy);
  if (!point.options.size_dist_i.is_exponential()) {
    const PhaseType dist =
        point.options.size_dist_i.compile(point.params.mu_i);
    const ExactCtmcResult exact = solve_exact_ctmc_ph(
        point.params, *policy, dist, resolve_exact_options(point));
    return exact_to_run_result(exact);
  }
  const ExactCtmcResult exact =
      solve_exact_ctmc(point.params, *policy, resolve_exact_options(point));
  return exact_to_run_result(exact);
}

RunResult run_simulation(const RunPoint& point) {
  SimOptions options;
  options.num_jobs = point.options.sim_jobs;
  options.warmup_jobs = point.options.sim_warmup;
  // Raw seeding reproduces the fixed-seed pre-engine harnesses; derived
  // seeding keeps distinct points on independent streams.
  options.seed = point.options.sim_raw_seed ? point.options.base_seed
                                            : point.seed();
  // Exponential specs keep size_dist_* null so the simulator's closed-form
  // sampling path — and therefore its RNG stream — is bitwise identical to
  // the pre-refactor behavior.
  std::optional<PhaseType> dist_i;
  std::optional<PhaseType> dist_e;
  if (!point.options.size_dist_i.is_exponential()) {
    dist_i.emplace(point.options.size_dist_i.compile(point.params.mu_i));
    options.size_dist_i = &*dist_i;
  }
  if (!point.options.size_dist_e.is_exponential()) {
    dist_e.emplace(point.options.size_dist_e.compile(point.params.mu_e));
    options.size_dist_e = &*dist_e;
  }
  std::optional<Histogram> hist_i;
  std::optional<Histogram> hist_e;
  if (point.options.sim_tails) {
    const auto bins = static_cast<std::size_t>(point.options.sim_tail_bins);
    // Generous range; quantiles interpolate within bins.
    hist_i.emplace(0.0, point.options.sim_tail_span / point.params.mu_i, bins);
    hist_e.emplace(0.0, point.options.sim_tail_span / point.params.mu_e, bins);
    options.response_hist_i = &*hist_i;
    options.response_hist_e = &*hist_e;
  }
  const auto policy = make_policy(point.policy);
  const SimResult sim = simulate(point.params, *policy, options);
  RunResult result;
  result.mean_response_time = sim.mean_response_time.mean;
  result.mean_response_time_i = sim.inelastic.response_time.mean;
  result.mean_response_time_e = sim.elastic.response_time.mean;
  result.mean_jobs_i = sim.mean_jobs_i;
  result.mean_jobs_e = sim.mean_jobs_e;
  result.ci_halfwidth = sim.mean_response_time.half_width;
  if (point.options.sim_tails) {
    result.p50_i = hist_i->quantile(0.5);
    result.p95_i = hist_i->quantile(0.95);
    result.p99_i = hist_i->quantile(0.99);
    result.p50_e = hist_e->quantile(0.5);
    result.p95_e = hist_e->quantile(0.95);
    result.p99_e = hist_e->quantile(0.99);
  }
  return result;
}

/// Dedicated-cluster baseline: each class alone on the k servers.
/// Inelastic jobs form an M/M/k; a fully elastic class forms an M/M/1 with
/// service rate k mu_E (every elastic job can take all servers). A lower
/// bound useful for sanity-checking the shared-cluster policies.
RunResult run_mmk_baseline(const RunPoint& point) {
  require_exponential_sizes(point, "mmk");
  const SystemParams& p = point.params;
  ESCHED_CHECK(p.elastic_cap == 0,
               "the M/M/k baseline assumes fully elastic jobs");
  RunResult result;
  if (p.lambda_i > 0.0) {
    const MMk inelastic(p.lambda_i, p.mu_i, p.k);
    result.mean_response_time_i = inelastic.mean_response_time();
    result.mean_jobs_i = inelastic.mean_jobs();
  }
  if (p.lambda_e > 0.0) {
    const MMk elastic(p.lambda_e, static_cast<double>(p.k) * p.mu_e, 1);
    result.mean_response_time_e = elastic.mean_response_time();
    result.mean_jobs_e = elastic.mean_jobs();
  }
  const double total = p.lambda_i + p.lambda_e;
  ESCHED_CHECK(total > 0.0, "baseline requires some arrivals");
  result.mean_response_time =
      (result.mean_jobs_i + result.mean_jobs_e) / total;
  return result;
}

/// Theorem 3 check: replay one fixed trace under IF and under this point's
/// policy, compare the exact piecewise-linear work paths pointwise, and
/// average the work gap over the horizon. The trace derives only from
/// (params, trace_horizon, trace_seed), so every policy of a sweep is
/// coupled to the same arrival sequence — the theorem's setting.
RunResult run_trace_dominance(const RunPoint& point) {
  require_exponential_sizes(point, "trace");
  // Uniform sampling grid for the average gap W_pi(t) - W_IF(t).
  constexpr int kGapSamples = 4000;
  const Trace trace = generate_trace(point.params,
                                     point.options.trace_horizon,
                                     point.options.trace_seed);
  const WorkPath if_path = run_on_trace(trace, point.params, InelasticFirst{});
  const auto policy = make_policy(point.policy);
  const WorkPath other = run_on_trace(trace, point.params, *policy);
  const DominanceReport report = check_dominance(if_path, other);

  RunResult result;
  result.dom_max_violation = report.max_total_violation;
  result.dom_max_violation_i = report.max_inelastic_violation;
  result.dom_checkpoints = static_cast<long>(report.num_checkpoints);
  double gap = 0.0;
  for (int n = 0; n < kGapSamples; ++n) {
    const double t =
        point.options.trace_horizon * (n + 0.5) / kGapSamples;
    gap += other.total_work_at(t) - if_path.total_work_at(t);
  }
  result.dom_avg_gap = gap / kGapSamples;
  return result;
}

}  // namespace

RunResult dispatch_run(const RunPoint& point) {
  point.params.validate();
  BackendMetrics& metrics = backend_metrics(point.solver);
  const auto start = Clock::now();
  RunResult result;
  try {
    switch (point.solver) {
      case SolverKind::kQbdAnalysis: result = run_qbd_analysis(point); break;
      case SolverKind::kExactCtmc: result = run_exact_ctmc(point); break;
      case SolverKind::kSimulation: result = run_simulation(point); break;
      case SolverKind::kMmkBaseline: result = run_mmk_baseline(point); break;
      case SolverKind::kTraceDominance:
        result = run_trace_dominance(point);
        break;
    }
  } catch (...) {
    metrics.errors.add();
    throw;
  }
  result.solve_seconds = seconds_since(start);
  metrics.points.add();
  metrics.seconds.record(result.solve_seconds);
  if (result.num_states > 0) {
    metrics.states.record(static_cast<double>(result.num_states));
  }
  return result;
}

std::string exact_topology_key(const RunPoint& point) {
  if (point.solver != SolverKind::kExactCtmc) return {};
  // The augmented phase-type chain's reachable state space depends on the
  // policy, so those points cannot share a skeleton — solve them solo.
  if (!point.options.size_dist_i.is_exponential() ||
      !point.options.size_dist_e.is_exponential()) {
    return {};
  }
  // The cache key minus the policy field: exactly the inputs that shape
  // the chain topology (params + resolved truncation).
  RunPoint keyed = point;
  // std::string("*") (move-assign) rather than = "*": GCC 12's -Wrestrict
  // false-positives on char_traits::copy inlined from assign(const char*).
  keyed.policy = std::string("*");
  return keyed.cache_key();
}

ExactGroupSolver::ExactGroupSolver(const RunPoint& representative)
    : topology_key_(exact_topology_key(representative)),
      batch_(representative.params, resolve_exact_options(representative)) {
  ESCHED_CHECK(!topology_key_.empty(),
               "exact group requires exact-CTMC points");
}

RunResult ExactGroupSolver::solve(const RunPoint& point) {
  ESCHED_CHECK(exact_topology_key(point) == topology_key_,
               "exact group mixes chain topologies");
  BackendMetrics& metrics = backend_metrics(SolverKind::kExactCtmc);
  const auto start = Clock::now();
  RunResult result;
  try {
    result = exact_to_run_result(batch_.solve(*make_policy(point.policy)));
  } catch (...) {
    metrics.errors.add();
    throw;
  }
  result.solve_seconds = seconds_since(start);
  metrics.points.add();
  metrics.seconds.record(result.solve_seconds);
  if (result.num_states > 0) {
    metrics.states.record(static_cast<double>(result.num_states));
  }
  return result;
}

}  // namespace esched
