// Unified solver dispatch: one entry point that routes a RunPoint to the
// right backend (QBD analysis, exact truncated CTMC, discrete-event
// simulation, or the M/M/k closed forms) and normalizes the output into a
// single RunResult shape, so sweeps can mix solvers freely and reports
// never care which backend produced a row.
#pragma once

#include "engine/scenario.hpp"

namespace esched {

/// Uniform per-point output across all solver backends. Fields a backend
/// does not produce stay at their zero defaults.
struct RunResult {
  double mean_response_time = 0.0;    ///< overall E[T]
  double mean_response_time_i = 0.0;  ///< inelastic E[T]
  double mean_response_time_e = 0.0;  ///< elastic E[T]
  double mean_jobs_i = 0.0;           ///< E[N_I]
  double mean_jobs_e = 0.0;           ///< E[N_E]

  /// Simulation only: half-width of the 95% CI on overall E[T].
  double ci_halfwidth = 0.0;
  /// Exact CTMC only: stationary mass on the truncation boundary.
  double boundary_mass = 0.0;

  // Solver cost, recorded per point.
  int solver_iterations = 0;    ///< SOR sweeps or QBD fixed-point iterations
  double solve_residual = 0.0;  ///< stationary residual / spectral radius
  double solve_seconds = 0.0;   ///< wall time of this point's solve
  bool from_cache = false;      ///< set by the sweep runner on memo hits

  /// The fields that define a point's *answer* — everything except wall
  /// time (solve_seconds) and cache provenance (from_cache) — for bitwise
  /// determinism comparisons.
  friend bool numerically_equal(const RunResult& a, const RunResult& b) {
    return a.mean_response_time == b.mean_response_time &&
           a.mean_response_time_i == b.mean_response_time_i &&
           a.mean_response_time_e == b.mean_response_time_e &&
           a.mean_jobs_i == b.mean_jobs_i && a.mean_jobs_e == b.mean_jobs_e &&
           a.ci_halfwidth == b.ci_halfwidth &&
           a.boundary_mass == b.boundary_mass &&
           a.solver_iterations == b.solver_iterations &&
           a.solve_residual == b.solve_residual;
  }
};

/// Solves one point with its chosen backend. Pure apart from wall-clock
/// timing: equal cache_key() implies numerically_equal results, which is
/// what makes memoization and multi-threaded determinism sound. Throws
/// esched::Error on invalid combinations (e.g. the QBD analyses support
/// only EF/IF on the base model).
RunResult dispatch_run(const RunPoint& point);

}  // namespace esched
