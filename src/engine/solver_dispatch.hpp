// Unified solver dispatch: one entry point that routes a RunPoint to the
// right backend (QBD analysis, exact truncated CTMC, discrete-event
// simulation, the M/M/k closed forms, or the Theorem-3 coupled trace
// replay) and normalizes the output into a single RunResult shape, so
// sweeps can mix solvers freely and reports never care which backend
// produced a row.
#pragma once

#include <string>
#include <vector>

#include "core/exact_ctmc.hpp"
#include "engine/scenario.hpp"

namespace esched {

/// Uniform per-point output across all solver backends. Fields a backend
/// does not produce stay at their zero defaults.
struct RunResult {
  double mean_response_time = 0.0;    ///< overall E[T]
  double mean_response_time_i = 0.0;  ///< inelastic E[T]
  double mean_response_time_e = 0.0;  ///< elastic E[T]
  double mean_jobs_i = 0.0;           ///< E[N_I]
  double mean_jobs_e = 0.0;           ///< E[N_E]

  /// Simulation only: half-width of the 95% CI on overall E[T].
  double ci_halfwidth = 0.0;
  /// Simulation with options.sim_tails: response-time percentiles per
  /// class (the distributional view the paper's mean-only analysis lacks).
  double p50_i = 0.0;
  double p95_i = 0.0;
  double p99_i = 0.0;
  double p50_e = 0.0;
  double p95_e = 0.0;
  double p99_e = 0.0;
  /// Exact CTMC only: stationary mass on the truncation boundary and the
  /// truncated state-space size.
  double boundary_mass = 0.0;
  long num_states = 0;
  /// Trace dominance only (Thm. 3): worst pointwise excess of IF's work
  /// path over this point's policy (theory: 0), same for inelastic work,
  /// the mean work gap W_pi(t) - W_IF(t) over the horizon, and the number
  /// of time checkpoints compared.
  double dom_max_violation = 0.0;
  double dom_max_violation_i = 0.0;
  double dom_avg_gap = 0.0;
  long dom_checkpoints = 0;

  // Solver cost, recorded per point.
  int solver_iterations = 0;    ///< SOR sweeps or QBD fixed-point iterations
  double solve_residual = 0.0;  ///< stationary residual / spectral radius
  double solve_seconds = 0.0;   ///< wall time of this point's solve
  bool from_cache = false;      ///< set by the sweep runner on memo hits

  /// The fields that define a point's *answer* — everything except wall
  /// time (solve_seconds) and cache provenance (from_cache) — for bitwise
  /// determinism comparisons.
  friend bool numerically_equal(const RunResult& a, const RunResult& b) {
    return a.mean_response_time == b.mean_response_time &&
           a.mean_response_time_i == b.mean_response_time_i &&
           a.mean_response_time_e == b.mean_response_time_e &&
           a.mean_jobs_i == b.mean_jobs_i && a.mean_jobs_e == b.mean_jobs_e &&
           a.ci_halfwidth == b.ci_halfwidth && a.p50_i == b.p50_i &&
           a.p95_i == b.p95_i && a.p99_i == b.p99_i && a.p50_e == b.p50_e &&
           a.p95_e == b.p95_e && a.p99_e == b.p99_e &&
           a.boundary_mass == b.boundary_mass &&
           a.num_states == b.num_states &&
           a.dom_max_violation == b.dom_max_violation &&
           a.dom_max_violation_i == b.dom_max_violation_i &&
           a.dom_avg_gap == b.dom_avg_gap &&
           a.dom_checkpoints == b.dom_checkpoints &&
           a.solver_iterations == b.solver_iterations &&
           a.solve_residual == b.solve_residual;
  }
};

/// Solves one point with its chosen backend. Pure apart from wall-clock
/// timing: equal cache_key() implies numerically_equal results, which is
/// what makes memoization and multi-threaded determinism sound. Throws
/// esched::Error on invalid combinations (e.g. the QBD analyses support
/// only EF/IF on the base model).
RunResult dispatch_run(const RunPoint& point);

/// Chain-topology sharing key for exact-CTMC points: two points with equal
/// non-empty keys have identical (params, truncation) and can be solved in
/// one ExactCtmcBatch — only their policies differ. Empty for every other
/// backend.
std::string exact_topology_key(const RunPoint& point);

/// Solves exact-CTMC points that share a topology key, building the chain
/// skeleton once at construction. solve(point) is bitwise identical to
/// dispatch_run(point) apart from solve_seconds, and throws per point, so
/// a caller iterating a group can attribute failures to the right point
/// and keep the results that did solve. solve() reuses the batch's scratch
/// generator, so one group solver must not be shared across threads (the
/// sweep runner hands each topology group to a single thread).
class ExactGroupSolver {
 public:
  /// Builds the shared skeleton from any point of the group.
  explicit ExactGroupSolver(const RunPoint& representative);

  /// `point` must share the representative's topology key.
  RunResult solve(const RunPoint& point);

 private:
  std::string topology_key_;
  ExactCtmcBatch batch_;
};

}  // namespace esched
