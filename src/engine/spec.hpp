// File-based scenario specs: the data-driven front end of the sweep
// engine. A scenario is a small JSON document naming the sweep axes
// (k, rho, mu_i, mu_e, elastic_cap, truncation, fit_order, policy,
// solver) or an explicit `cases` list, per-run `options`, and a default
// report `view`. User files load through the exact same parser that
// registers the built-in figure scenarios, so "what the paper ran" and
// "what a user authors" share one construction path, and a new workload
// is a data file instead of a .cpp.
//
// Schema (all keys optional unless noted):
//   {
//     "name": "fig5-custom",              // identifier (CSV default name)
//     "description": "...",
//     "view": "vs-mu",                    // report view; see engine/report
//     "axes": {                           // cross-product axes
//       "k": [4],                         // numeric axes: value arrays or
//       "rho": [0.5, 0.7, 0.9],           //   {"from","to","step"} ranges
//       "mu_i": {"from": 0.25, "to": 3.5, "step": 0.25},
//       "mu_e": [1],
//       "elastic_cap": [0],
//       "truncation": [10, 20, 40],       // optional: sets imax = jmax
//       "fit_order": [1, 2, 3],           // optional: busy-period moments
//       "policy": ["IF", "EF"],           // strings, see make_policy
//       "solver": ["qbd"]                 // qbd|exact|sim|mmk|trace
//     },
//     "cases": [                          // replaces the five param axes
//       {"k": 4, "mu_i": 1, "mu_e": 1, "rho": 0.5, "elastic_cap": 0}
//     ],
//     "options": {                        // RunOptions, same field names
//       "fit_order": 3, "truncation_epsilon": 1e-9,
//       "imax": 0, "jmax": 0,
//       "sim_jobs": 200000, "sim_warmup": 20000, "base_seed": 1,
//       "sim_raw_seed": false, "sim_tails": false,
//       "sim_tail_span": 400, "sim_tail_bins": 20000,
//       "trace_horizon": 1500, "trace_seed": 2026
//     }
//   }
//
// Errors are precise: every message names the offending field path
// ("axes.rho[2]: expected a number, ..."), so a broken spec is a
// one-glance fix.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "engine/scenario.hpp"

namespace esched {

/// Builds a Scenario from a parsed spec document. Throws esched::Error
/// naming the offending field on unknown keys, type mismatches, empty
/// axes, or invalid values.
Scenario scenario_from_json(const JsonValue& root);

/// Parses `text` as JSON (error positions reported against `origin`) and
/// builds the Scenario.
Scenario parse_scenario_text(const std::string& text,
                             const std::string& origin);

/// Reads and parses a scenario spec file.
Scenario load_scenario_file(const std::string& path);

/// Serializes a Scenario back into spec JSON. Round-trips exactly:
/// scenario_from_json(scenario_to_json(s)) expands to the same RunPoints
/// (axes are emitted as explicit value lists, numbers in round-trippable
/// form).
JsonValue scenario_to_json(const Scenario& scenario);

/// True when a CLI scenario argument names a spec file rather than a
/// built-in: it contains a '/' or ends in ".json".
bool looks_like_spec_path(const std::string& arg);

/// CLI flag overrides applied to every loaded scenario before expansion.
struct SweepOverrides {
  std::optional<std::uint64_t> base_seed;  ///< --seed
  std::uint64_t sim_jobs = 0;              ///< --sim-jobs (0 = keep)
  std::string exact_method;                ///< --exact-method ("" = keep)
};

/// A command line's scenario arguments loaded, overridden, and expanded
/// as ONE sweep — the shared front half of `esched run`, `esched queue
/// init`, and the dist workers. Everything is resolved up front: a typo'd
/// second spec fails before any output exists, and the report schema
/// (whether size_dist columns appear) derives from the FULL expanded
/// grids, never from a shard or chunk slice, so every slice of one sweep
/// emits the same header and `esched merge` accepts them.
struct LoadedSweep {
  std::vector<Scenario> scenarios;
  /// Full expanded grid per scenario (same indexing as `scenarios`).
  std::vector<std::vector<RunPoint>> grids;
  /// report_has_size_dists per grid, and the OR over all of them — the
  /// schema flag every report of this sweep must be written with.
  std::vector<bool> scenario_size_dist;
  bool with_size_dist = false;
  std::size_t total_points = 0;  ///< sum of grid sizes

  /// The grids concatenated in scenario order: the global row order of
  /// the combined report (what --shard and the dist queue slice).
  std::vector<RunPoint> concatenated() const;
};

/// Loads each argument (built-in name or spec path via
/// looks_like_spec_path), applies `overrides`, expands, and derives the
/// combined schema. Throws on unknown names, bad specs, or invalid
/// options — before the caller has produced any output.
LoadedSweep load_sweep(const std::vector<std::string>& scenario_args,
                       const SweepOverrides& overrides = {});

}  // namespace esched
