// Parallel sweep execution with memoization.
//
// The runner takes a flat list of RunPoints (typically Scenario::expand()),
// deduplicates them by cache key, solves the missing unique points on a
// std::thread worker pool, and returns results in input order. A
// mutex-guarded cache persists across run() calls, so repeated points —
// e.g. shared rho-axis baselines across figures — solve exactly once per
// process; an optional disk cache (set_cache_dir) extends that across
// processes and CLI invocations. Exact-CTMC points sharing a chain
// topology (same params + truncation, different policies) are solved as
// one batch so the generator skeleton builds once. Results are
// deterministic in the thread count: each point's solve is pure and its
// RNG seed derives from its cache key, never from scheduling order.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/solver_dispatch.hpp"

namespace esched {

class TieredResultCache;

/// Thread-safe memoization cache keyed on RunPoint::cache_key(), sharded
/// by key hash so a high-thread warm rerun (every point a memo hit) does
/// not serialize every worker on one mutex. Sharding is invisible to
/// callers: which shard holds a key depends only on the key, so contents
/// — and therefore sweep results — are bitwise identical at any thread
/// count.
class ResultCache {
 public:
  std::optional<RunResult> lookup(const std::string& key) const;
  void insert(const std::string& key, const RunResult& result);
  std::size_t size() const;
  void clear();

 private:
  static constexpr std::size_t kShardCount = 16;  // power of two

  struct alignas(64) Shard {  // own cache line: no false sharing of locks
    mutable std::mutex mutex;
    std::unordered_map<std::string, RunResult> results;
  };

  Shard& shard_for(const std::string& key) const;

  mutable std::array<Shard, kShardCount> shards_;
};

/// Bookkeeping for one run() call.
struct SweepStats {
  std::size_t total_points = 0;   ///< points requested
  std::size_t solved_points = 0;  ///< unique points actually solved now
  std::size_t cache_hits = 0;     ///< points served from the memo cache
  std::size_t disk_hits = 0;      ///< of cache_hits, loaded from --cache-dir
  double wall_seconds = 0.0;      ///< end-to-end wall time of run()
  /// Summed wall time of the fresh solves only (cache hits contribute 0),
  /// i.e. the compute this run would have cost single-threaded without a
  /// cache — the honest numerator for cache-effectiveness and ETA math.
  double solve_seconds_total = 0.0;
  int threads_used = 0;
};

/// Row-completion callback: invoked once per input point as soon as its
/// result is available, with the point's original index into the `points`
/// argument. Invocations are serialized (the runner holds an internal
/// mutex around every call), so the callback itself needs no locking, but
/// they arrive in completion order, not input order — streaming consumers
/// reorder (see StreamingCsvReport). Cache/disk hits fire before any
/// worker starts; duplicates of an in-flight point fire when that point's
/// one solve lands. Provenance is honest per delivery: a freshly solved
/// point arrives with from_cache = false and its real solve_seconds, while
/// memo/disk hits and duplicates of an in-flight solve arrive with
/// from_cache = true and solve_seconds = 0 (their cost was paid by the
/// original solve), matching the returned vector.
using RowCallback = std::function<void(
    std::size_t index, const RunPoint& point, const RunResult& result)>;

/// Executes RunPoints on a worker pool of `num_threads` threads
/// (0 = std::thread::hardware_concurrency()).
class SweepRunner {
 public:
  explicit SweepRunner(int num_threads = 0);
  ~SweepRunner();

  /// Solves every point (consulting/filling the caches) and returns
  /// results in input order. `from_cache` is set (and solve_seconds
  /// zeroed) on results that were memoized — including intra-call
  /// duplicates, which solve once. If any
  /// point's solve throws, the first error is re-thrown after all workers
  /// join; successfully solved points stay cached — and have already been
  /// delivered to `on_row`, which is what makes an interrupted streaming
  /// run resumable.
  std::vector<RunResult> run(const std::vector<RunPoint>& points,
                             SweepStats* stats = nullptr,
                             const RowCallback& on_row = nullptr);

  /// Attaches a persistent cache directory (created if missing): memory
  /// misses consult it before solving, and fresh solves are written back.
  /// The directory is a two-tier cache (engine/shm_cache): an mmap'd
  /// open-addressing table serves hits with a lock-free probe, per-entry
  /// files hold what the table cannot. `use_table = false` keeps the
  /// file-per-entry tier only (benches use it to measure the old hot
  /// path). Throws when the directory cannot be created.
  void set_cache_dir(const std::string& directory, bool use_table = true);

  int num_threads() const { return num_threads_; }
  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }

 private:
  int num_threads_;
  ResultCache cache_;
  std::unique_ptr<TieredResultCache> disk_cache_;
};

}  // namespace esched
