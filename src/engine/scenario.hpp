// Declarative scenario specs for the parallel sweep engine.
//
// Every experiment in the paper (Figs. 4-6, the §4 optimality sweeps) is a
// parameter sweep over (k, rho, mu_I, mu_E, policy, solver) — plus, for the
// ablation studies, the truncation level and busy-period fit order. Instead
// of each harness hand-rolling nested loops, a Scenario names the axes and
// expand() produces the cross product as concrete RunPoints that the
// SweepRunner executes on all cores. Scenarios are data: built-ins are
// registered as embedded JSON specs (engine/spec) and user scenarios load
// from disk through the same parser, so there is exactly one construction
// path and new workloads need no recompile.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/params.hpp"
#include "core/policy.hpp"
#include "core/response_time.hpp"
#include "markov/stationary.hpp"
#include "phase/size_dist.hpp"

namespace esched {

/// Which solver backend evaluates a RunPoint.
enum class SolverKind {
  kQbdAnalysis,     ///< §5 busy-period transformation + QBD (EF/IF only)
  kExactCtmc,       ///< truncated 2-D chain (any policy; ground truth)
  kSimulation,      ///< job-level discrete-event simulator
  kMmkBaseline,     ///< dedicated-cluster M/M/k / M/M/1 closed forms
  kTraceDominance,  ///< Thm. 3 coupled trace replay: policy vs IF work paths
};

/// Stable identifier used in CLI flags, CSV output, and cache keys.
const char* solver_name(SolverKind kind);

/// Inverse of solver_name ("qbd", "exact", "sim", "mmk", "trace"). Throws
/// on an unknown name.
SolverKind parse_solver(const std::string& name);

/// Builds a policy from its spec string: "IF", "EF", "FairShare", "CapN"
/// (N a non-negative integer, e.g. "Cap2"), or "IF+idleX" (X a double
/// number of deliberately idled servers). Throws on an unknown spec.
PolicyPtr make_policy(const std::string& spec);

/// Per-run knobs shared by every point of a scenario. Only the fields the
/// point's solver reads take part in its cache key (see cache_key()), so
/// e.g. an exact-CTMC point is shared across fit-order axis values.
struct RunOptions {
  /// Busy-period moment-matching order for the QBD analyses.
  BusyFitOrder fit_order = BusyFitOrder::kThreeMoment;
  /// Exact-CTMC truncation: target boundary mass when imax/jmax are 0.
  double truncation_epsilon = 1e-9;
  long imax = 0;  ///< explicit inelastic truncation (0 = derive from rho)
  long jmax = 0;  ///< explicit elastic truncation (0 = derive from rho)
  /// Exact-CTMC stationary solver ("auto" picks GTH / block / SOR by chain
  /// size and structure); non-auto values enter the cache key.
  StationaryMethod exact_method = StationaryMethod::kAuto;
  /// Simulation controls (kSimulation only).
  std::uint64_t sim_jobs = 200000;
  std::uint64_t sim_warmup = 20000;
  /// Base seed; each point derives its own deterministic seed from this
  /// and its cache key, so results are independent of thread count.
  std::uint64_t base_seed = 1;
  /// Use base_seed directly as the simulation seed instead of deriving a
  /// per-point seed (matches the fixed-seed pre-engine harnesses).
  bool sim_raw_seed = false;
  /// Collect response-time histograms and fill the RunResult tail
  /// percentiles (P50/P95/P99 per class).
  bool sim_tails = false;
  /// Tail histogram shape: per class c the range is [0, sim_tail_span /
  /// mu_c) with sim_tail_bins uniform bins (quantiles interpolate within
  /// bins, so the span is generous and the bins fine).
  double sim_tail_span = 400.0;
  long sim_tail_bins = 20000;
  /// Trace-dominance controls (kTraceDominance only): the fixed arrival
  /// sequence is generated on [0, trace_horizon] from trace_seed.
  double trace_horizon = 1500.0;
  std::uint64_t trace_seed = 2026;
  /// Job-size distributions per class (default: the paper's Exp(mu_c)).
  /// Shapes only — each compiles to a PhaseType scaled to the class mean
  /// 1/mu_c, so variability changes at fixed load. The sim backend accepts
  /// both; exact accepts a phase-type *inelastic* size (state
  /// augmentation) but only exponential elastic sizes; qbd/mmk/trace
  /// require both exponential and reject others with an error naming the
  /// option. Exponential specs keep the pre-refactor cache keys
  /// byte-identical and the closed-form sampling paths.
  SizeDistSpec size_dist_i;
  SizeDistSpec size_dist_e;

  /// Throws esched::Error when a numeric knob is degenerate (sim_jobs not
  /// exceeding sim_warmup, non-positive trace_horizon / tail histogram
  /// shape, truncation_epsilon outside (0,1), ...). Scenario::validate()
  /// calls this, so bad options fail loudly before a sweep runs.
  void validate() const;
};

/// One concrete (params, policy, solver) cell of a sweep.
struct RunPoint {
  SystemParams params;
  std::string policy = "IF";
  SolverKind solver = SolverKind::kQbdAnalysis;
  RunOptions options;

  /// Canonical key identifying this point for memoization: two points with
  /// equal keys are guaranteed to produce identical results. The key is
  /// backend-sensitive — options a solver never reads are omitted — so
  /// e.g. the one QBD solve of an (params, policy) pair is shared across
  /// every truncation-axis value of an ablation sweep.
  std::string cache_key() const;

  /// Deterministic per-point RNG seed (FNV-1a hash of the cache key),
  /// independent of execution order and thread count.
  std::uint64_t seed() const;
};

/// One explicit (k, mu_I, mu_E, rho) spot setting. Scenarios whose
/// interesting points are hand-picked (the §4 optimality table, the
/// accuracy spot grid) list cases instead of spanning a cross product.
struct CaseSpec {
  int k = 4;
  double mu_i = 1.0;
  double mu_e = 1.0;
  double rho = 0.9;
  int elastic_cap = 0;
};

/// Declarative sweep spec: expand() emits the cross product of the axes in
/// row-major order (k, rho, mu_i, mu_e, elastic_cap, truncation,
/// fit_order, size_dist, policy, solver), with `cases` — when non-empty —
/// replacing the first five parameter axes by its explicit settings list.
/// Arrival
/// rates are split equally (lambda_I = lambda_E), the convention of the
/// paper's figures, via SystemParams::from_load.
struct Scenario {
  std::string name = "custom";
  std::string description;
  std::vector<int> k_values{4};
  std::vector<double> rho_values{0.9};
  std::vector<double> mu_i_values{1.0};
  std::vector<double> mu_e_values{1.0};
  std::vector<int> elastic_caps{0};
  /// Explicit settings; non-empty replaces the k/rho/mu/cap axes above.
  std::vector<CaseSpec> cases;
  /// Optional truncation axis (sets options.imax = options.jmax per
  /// point); empty means "no axis" (use the scenario options).
  std::vector<long> trunc_values;
  /// Optional busy-period fit-order axis (values 1..3); empty means "no
  /// axis" (use options.fit_order).
  std::vector<int> fit_orders;
  /// Optional job-size-distribution axis: each value sets BOTH classes'
  /// size distributions per point (the robustness-sweep shape — vary
  /// variability at fixed load). Empty means "no axis" (use
  /// options.size_dist_i / size_dist_e).
  std::vector<SizeDistSpec> size_dists;
  std::vector<std::string> policies{"IF", "EF"};
  std::vector<SolverKind> solvers{SolverKind::kQbdAnalysis};
  RunOptions options;
  /// Default report view (see engine/report print_view); CLI --view wins.
  std::string view = "table";

  /// Product of the axis sizes; equals expand().size().
  std::size_t num_points() const;
  std::vector<RunPoint> expand() const;

  /// Throws esched::Error when an axis is empty or a value is invalid
  /// (unknown policy, unstable rho >= 1, ...).
  void validate() const;
};

/// Contiguous [begin, end) row range of shard `index` of `count` over a
/// `total`-point sweep: begin = floor(index * total / count), computed
/// division-first so it cannot overflow for very large sweeps (the naive
/// index * total product wraps already around 2^64 / count points).
/// Shards partition [0, total) exactly; when total < count the trailing
/// shards are empty (begin == end), which the report layer emits as a
/// header-only CSV that `esched merge` accepts. Throws when count == 0 or
/// index >= count.
std::pair<std::size_t, std::size_t> shard_range(std::size_t total,
                                                std::size_t index,
                                                std::size_t count);

/// Contiguous fixed-size chunk ranges covering [0, total) in row order:
/// chunk c is [c * chunk_size, min((c+1) * chunk_size, total)), so every
/// chunk holds exactly chunk_size points except a possibly-shorter final
/// one. Unlike shard_range — which divides a sweep into a *given number*
/// of slices — this divides it into slices of a *given size*, the unit
/// the distributed work queue (src/dist) hands to workers; `esched merge`
/// of the chunk CSVs in chunk order reproduces the unsharded report, the
/// same invariant shards satisfy. Throws when chunk_size == 0.
std::vector<std::pair<std::size_t, std::size_t>> chunk_ranges(
    std::size_t total, std::size_t chunk_size);

/// Named built-in scenarios, registered as embedded JSON specs through the
/// same loader as user files (engine/spec): "fig4", "fig5", "fig6",
/// "optimality-sweep", plus one per ported bench harness. Throws on an
/// unknown name.
Scenario builtin_scenario(const std::string& name);
std::vector<std::string> builtin_scenario_names();

}  // namespace esched
