// Declarative scenario specs for the parallel sweep engine.
//
// Every experiment in the paper (Figs. 4-6, the §4 optimality sweeps) is a
// parameter sweep over (k, rho, mu_I, mu_E, policy, solver). Instead of
// each harness hand-rolling nested loops, a Scenario names the axes and
// expand() produces the cross product as concrete RunPoints that the
// SweepRunner executes on all cores. Built-in scenarios reproduce the
// paper's figures; future work loads scenarios from disk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/policy.hpp"
#include "core/response_time.hpp"

namespace esched {

/// Which solver backend evaluates a RunPoint.
enum class SolverKind {
  kQbdAnalysis,  ///< §5 busy-period transformation + QBD (EF/IF only)
  kExactCtmc,    ///< truncated 2-D chain (any policy; ground truth)
  kSimulation,   ///< job-level discrete-event simulator
  kMmkBaseline,  ///< dedicated-cluster M/M/k / M/M/1 closed forms
};

/// Stable identifier used in CLI flags, CSV output, and cache keys.
const char* solver_name(SolverKind kind);

/// Inverse of solver_name ("qbd", "exact", "sim", "mmk"). Throws on an
/// unknown name.
SolverKind parse_solver(const std::string& name);

/// Builds a policy from its spec string: "IF", "EF", "FairShare", "CapN"
/// (N a non-negative integer, e.g. "Cap2"), or "IF+idleX" (X a double
/// number of deliberately idled servers). Throws on an unknown spec.
PolicyPtr make_policy(const std::string& spec);

/// Per-run knobs shared by every point of a scenario. All fields take part
/// in the cache key, so changing any of them re-solves.
struct RunOptions {
  /// Busy-period moment-matching order for the QBD analyses.
  BusyFitOrder fit_order = BusyFitOrder::kThreeMoment;
  /// Exact-CTMC truncation: target boundary mass when imax/jmax are 0.
  double truncation_epsilon = 1e-9;
  long imax = 0;  ///< explicit inelastic truncation (0 = derive from rho)
  long jmax = 0;  ///< explicit elastic truncation (0 = derive from rho)
  /// Simulation controls (kSimulation only).
  std::uint64_t sim_jobs = 200000;
  std::uint64_t sim_warmup = 20000;
  /// Base seed; each point derives its own deterministic seed from this
  /// and its cache key, so results are independent of thread count.
  std::uint64_t base_seed = 1;
};

/// One concrete (params, policy, solver) cell of a sweep.
struct RunPoint {
  SystemParams params;
  std::string policy = "IF";
  SolverKind solver = SolverKind::kQbdAnalysis;
  RunOptions options;

  /// Canonical key identifying this point for memoization: two points with
  /// equal keys are guaranteed to produce identical results.
  std::string cache_key() const;

  /// Deterministic per-point RNG seed (FNV-1a hash of the cache key),
  /// independent of execution order and thread count.
  std::uint64_t seed() const;
};

/// Declarative sweep spec: expand() emits the cross product of the axes in
/// row-major order (k, rho, mu_i, mu_e, elastic_cap, policy, solver).
/// Arrival rates are split equally (lambda_I = lambda_E), the convention of
/// the paper's figures, via SystemParams::from_load.
struct Scenario {
  std::string name = "custom";
  std::string description;
  std::vector<int> k_values{4};
  std::vector<double> rho_values{0.9};
  std::vector<double> mu_i_values{1.0};
  std::vector<double> mu_e_values{1.0};
  std::vector<int> elastic_caps{0};
  std::vector<std::string> policies{"IF", "EF"};
  std::vector<SolverKind> solvers{SolverKind::kQbdAnalysis};
  RunOptions options;

  /// Product of the axis sizes; equals expand().size().
  std::size_t num_points() const;
  std::vector<RunPoint> expand() const;

  /// Throws esched::Error when an axis is empty or a value is invalid
  /// (unknown policy, unstable rho >= 1, ...).
  void validate() const;
};

/// Named built-in scenarios: "fig4", "fig5", "fig6", "optimality-sweep".
/// Throws on an unknown name.
Scenario builtin_scenario(const std::string& name);
std::vector<std::string> builtin_scenario_names();

}  // namespace esched
