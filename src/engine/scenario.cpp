#include "engine/scenario.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "core/policies.hpp"

namespace esched {

const char* solver_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::kQbdAnalysis: return "qbd";
    case SolverKind::kExactCtmc: return "exact";
    case SolverKind::kSimulation: return "sim";
    case SolverKind::kMmkBaseline: return "mmk";
  }
  ESCHED_ASSERT(false, "unreachable solver kind");
}

SolverKind parse_solver(const std::string& name) {
  if (name == "qbd") return SolverKind::kQbdAnalysis;
  if (name == "exact") return SolverKind::kExactCtmc;
  if (name == "sim") return SolverKind::kSimulation;
  if (name == "mmk") return SolverKind::kMmkBaseline;
  throw Error("unknown solver '" + name + "' (expected qbd|exact|sim|mmk)");
}

PolicyPtr make_policy(const std::string& spec) {
  if (spec == "IF") return make_inelastic_first();
  if (spec == "EF") return make_elastic_first();
  if (spec == "FairShare") return make_fair_share();
  if (spec.rfind("Cap", 0) == 0 && spec.size() > 3) {
    char* end = nullptr;
    const long cap = std::strtol(spec.c_str() + 3, &end, 10);
    ESCHED_CHECK(end != nullptr && *end == '\0' && cap >= 0,
                 "bad policy spec '" + spec + "': CapN needs integer N >= 0");
    return make_inelastic_cap(static_cast<int>(cap));
  }
  if (spec.rfind("IF+idle", 0) == 0 && spec.size() > 7) {
    char* end = nullptr;
    const double idle = std::strtod(spec.c_str() + 7, &end);
    ESCHED_CHECK(end != nullptr && *end == '\0' && idle >= 0.0,
                 "bad policy spec '" + spec + "': IF+idleX needs X >= 0");
    return make_idling(make_inelastic_first(), idle);
  }
  throw Error("unknown policy spec '" + spec +
              "' (expected IF|EF|FairShare|CapN|IF+idleX)");
}

namespace {

/// Shortest round-trippable decimal form of a double, for cache keys.
std::string key_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::string RunPoint::cache_key() const {
  std::string key;
  key.reserve(160);
  key += "k=" + std::to_string(params.k);
  key += ";li=" + key_double(params.lambda_i);
  key += ";le=" + key_double(params.lambda_e);
  key += ";mi=" + key_double(params.mu_i);
  key += ";me=" + key_double(params.mu_e);
  key += ";cap=" + std::to_string(params.elastic_cap);
  key += ";policy=" + policy;
  key += ";solver=";
  key += solver_name(solver);
  key += ";fit=" + std::to_string(static_cast<int>(options.fit_order));
  key += ";eps=" + key_double(options.truncation_epsilon);
  key += ";imax=" + std::to_string(options.imax);
  key += ";jmax=" + std::to_string(options.jmax);
  key += ";jobs=" + std::to_string(options.sim_jobs);
  key += ";warmup=" + std::to_string(options.sim_warmup);
  key += ";seed=" + std::to_string(options.base_seed);
  return key;
}

std::uint64_t RunPoint::seed() const {
  // FNV-1a over the canonical key: platform-independent and stable, so a
  // point's RNG stream never depends on scheduling order or thread count.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : cache_key()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;  // xoshiro-style generators reject all-zero seeds
}

std::size_t Scenario::num_points() const {
  return k_values.size() * rho_values.size() * mu_i_values.size() *
         mu_e_values.size() * elastic_caps.size() * policies.size() *
         solvers.size();
}

void Scenario::validate() const {
  ESCHED_CHECK(!k_values.empty() && !rho_values.empty() &&
                   !mu_i_values.empty() && !mu_e_values.empty() &&
                   !elastic_caps.empty() && !policies.empty() &&
                   !solvers.empty(),
               "scenario '" + name + "' has an empty axis");
  for (const double rho : rho_values) {
    ESCHED_CHECK(rho >= 0.0 && rho < 1.0,
                 "scenario '" + name + "': rho must be in [0,1)");
  }
  for (const auto& spec : policies) make_policy(spec);  // throws if unknown
  for (const int k : k_values) {
    for (const double mu_i : mu_i_values) {
      for (const double mu_e : mu_e_values) {
        for (const int cap : elastic_caps) {
          SystemParams p = SystemParams::from_load(k, mu_i, mu_e, 0.0);
          p.elastic_cap = cap;
          p.validate();
        }
      }
    }
  }
}

std::vector<RunPoint> Scenario::expand() const {
  validate();
  std::vector<RunPoint> points;
  points.reserve(num_points());
  for (const int k : k_values) {
    for (const double rho : rho_values) {
      for (const double mu_i : mu_i_values) {
        for (const double mu_e : mu_e_values) {
          for (const int cap : elastic_caps) {
            SystemParams p = SystemParams::from_load(k, mu_i, mu_e, rho);
            p.elastic_cap = cap;
            for (const auto& policy : policies) {
              for (const SolverKind solver : solvers) {
                points.push_back(RunPoint{p, policy, solver, options});
              }
            }
          }
        }
      }
    }
  }
  ESCHED_ASSERT(points.size() == num_points(),
                "grid expansion size mismatch");
  return points;
}

namespace {

/// The 0.25-step mu grid of Figures 4 and 5.
std::vector<double> mu_grid() {
  std::vector<double> grid;
  for (double mu = 0.25; mu <= 3.5 + 1e-9; mu += 0.25) grid.push_back(mu);
  return grid;
}

}  // namespace

Scenario builtin_scenario(const std::string& name) {
  Scenario s;
  s.name = name;
  if (name == "fig4") {
    s.description =
        "Fig. 4 winner maps: IF vs EF (QBD analysis) over the (mu_I, mu_E) "
        "grid at rho = 0.5, 0.7, 0.9, k = 4";
    s.rho_values = {0.5, 0.7, 0.9};
    s.mu_i_values = mu_grid();
    s.mu_e_values = mu_grid();
    return s;
  }
  if (name == "fig5") {
    s.description =
        "Fig. 5 response-time curves: E[T] under IF and EF vs mu_I "
        "(k = 4, mu_E = 1) at rho = 0.5, 0.7, 0.9";
    s.rho_values = {0.5, 0.7, 0.9};
    s.mu_i_values = mu_grid();
    return s;
  }
  if (name == "fig6") {
    s.description =
        "Fig. 6 scaling: E[T] under IF and EF vs k = 2..16 at rho = 0.9 "
        "for mu_I in {0.25, 3.25}, mu_E = 1";
    s.k_values.clear();
    for (int k = 2; k <= 16; ++k) s.k_values.push_back(k);
    s.mu_i_values = {0.25, 3.25};
    return s;
  }
  if (name == "optimality-sweep") {
    s.description =
        "§4 optimality check: exact truncated-CTMC E[T] for the policy "
        "family {IF, EF, FairShare, Cap2, IF+idle1} (Thm. 5 / App. B)";
    s.rho_values = {0.5, 0.9};
    s.mu_i_values = {0.25, 1.0, 3.25};
    s.policies = {"IF", "EF", "FairShare", "Cap2", "IF+idle1"};
    s.solvers = {SolverKind::kExactCtmc};
    s.options.truncation_epsilon = 1e-8;
    return s;
  }
  throw Error("unknown scenario '" + name + "'; try one of: " + [] {
    std::string all;
    for (const auto& n : builtin_scenario_names()) {
      if (!all.empty()) all += ", ";
      all += n;
    }
    return all;
  }());
}

std::vector<std::string> builtin_scenario_names() {
  return {"fig4", "fig5", "fig6", "optimality-sweep"};
}

}  // namespace esched
