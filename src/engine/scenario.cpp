#include "engine/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "core/policies.hpp"

namespace esched {

const char* solver_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::kQbdAnalysis: return "qbd";
    case SolverKind::kExactCtmc: return "exact";
    case SolverKind::kSimulation: return "sim";
    case SolverKind::kMmkBaseline: return "mmk";
    case SolverKind::kTraceDominance: return "trace";
  }
  ESCHED_ASSERT(false, "unreachable solver kind");
}

SolverKind parse_solver(const std::string& name) {
  if (name == "qbd") return SolverKind::kQbdAnalysis;
  if (name == "exact") return SolverKind::kExactCtmc;
  if (name == "sim") return SolverKind::kSimulation;
  if (name == "mmk") return SolverKind::kMmkBaseline;
  if (name == "trace") return SolverKind::kTraceDominance;
  throw Error("unknown solver '" + name +
              "' (expected qbd|exact|sim|mmk|trace)");
}

PolicyPtr make_policy(const std::string& spec) {
  if (spec == "IF") return make_inelastic_first();
  if (spec == "EF") return make_elastic_first();
  if (spec == "FairShare") return make_fair_share();
  if (spec.rfind("Cap", 0) == 0 && spec.size() > 3) {
    char* end = nullptr;
    const long cap = std::strtol(spec.c_str() + 3, &end, 10);
    ESCHED_CHECK(end != nullptr && *end == '\0' && cap >= 0,
                 "bad policy spec '" + spec + "': CapN needs integer N >= 0");
    return make_inelastic_cap(static_cast<int>(cap));
  }
  if (spec.rfind("IF+idle", 0) == 0 && spec.size() > 7) {
    char* end = nullptr;
    const double idle = std::strtod(spec.c_str() + 7, &end);
    ESCHED_CHECK(end != nullptr && *end == '\0' && idle >= 0.0,
                 "bad policy spec '" + spec + "': IF+idleX needs X >= 0");
    return make_idling(make_inelastic_first(), idle);
  }
  throw Error("unknown policy spec '" + spec +
              "' (expected IF|EF|FairShare|CapN|IF+idleX)");
}

namespace {

/// Shortest round-trippable decimal form of a double, for cache keys.
std::string key_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void RunOptions::validate() const {
  ESCHED_CHECK(truncation_epsilon > 0.0 && truncation_epsilon < 1.0,
               "options.truncation_epsilon must be in (0,1)");
  ESCHED_CHECK(imax >= 0 && jmax >= 0,
               "options.imax/jmax must be >= 0 (0 = derive from rho)");
  ESCHED_CHECK(sim_jobs > 0, "options.sim_jobs must be positive");
  ESCHED_CHECK(sim_jobs > sim_warmup,
               "options.sim_jobs (" + std::to_string(sim_jobs) +
                   ") must exceed options.sim_warmup (" +
                   std::to_string(sim_warmup) +
                   "); a sweep that is mostly warmup measures noise");
  ESCHED_CHECK(sim_tail_span > 0.0, "options.sim_tail_span must be > 0");
  ESCHED_CHECK(sim_tail_bins > 0, "options.sim_tail_bins must be > 0");
  ESCHED_CHECK(trace_horizon > 0.0, "options.trace_horizon must be > 0");
  const int fit = static_cast<int>(fit_order);
  ESCHED_CHECK(fit >= 1 && fit <= 3, "options.fit_order must be 1, 2, or 3");
}

std::string RunPoint::cache_key() const {
  std::string key;
  key.reserve(160);
  key += "k=" + std::to_string(params.k);
  key += ";li=" + key_double(params.lambda_i);
  key += ";le=" + key_double(params.lambda_e);
  key += ";mi=" + key_double(params.mu_i);
  key += ";me=" + key_double(params.mu_e);
  key += ";cap=" + std::to_string(params.elastic_cap);
  key += ";policy=" + policy;
  key += ";solver=";
  key += solver_name(solver);
  // Backend-sensitive suffix: only knobs this solver actually reads, so an
  // axis a backend ignores (e.g. fit_order for 'exact') shares one solve.
  switch (solver) {
    case SolverKind::kQbdAnalysis:
      key += ";fit=" + std::to_string(static_cast<int>(options.fit_order));
      break;
    case SolverKind::kExactCtmc:
      key += ";eps=" + key_double(options.truncation_epsilon);
      key += ";imax=" + std::to_string(options.imax);
      key += ";jmax=" + std::to_string(options.jmax);
      // Only non-auto methods appear, keeping pre-existing keys — and the
      // disk-cache entries stored under them — byte-identical.
      if (options.exact_method != StationaryMethod::kAuto) {
        key += ";method=";
        key += stationary_method_name(options.exact_method);
      }
      break;
    case SolverKind::kSimulation:
      key += ";jobs=" + std::to_string(options.sim_jobs);
      key += ";warmup=" + std::to_string(options.sim_warmup);
      key += ";seed=" + std::to_string(options.base_seed);
      key += options.sim_raw_seed ? ";raw=1" : ";raw=0";
      if (options.sim_tails) {
        key += ";tails=1;span=" + key_double(options.sim_tail_span);
        key += ";bins=" + std::to_string(options.sim_tail_bins);
      }
      break;
    case SolverKind::kMmkBaseline: break;
    case SolverKind::kTraceDominance:
      key += ";horizon=" + key_double(options.trace_horizon);
      key += ";tseed=" + std::to_string(options.trace_seed);
      break;
  }
  // Size distributions are part of every point's identity — also for the
  // solvers that *reject* non-exponential specs: a qbd point with a
  // non-exp size must not collide with its exponential twin, or the sweep
  // runner's memo/disk cache would hand back the exponential result on a
  // row labelled otherwise instead of the rejection error. Only
  // non-exponential specs appear, so every pre-refactor key — and the
  // disk-cache entries stored under it — stays byte-identical.
  if (!options.size_dist_i.is_exponential()) {
    key += ";sdi=" + options.size_dist_i.canonical();
  }
  if (!options.size_dist_e.is_exponential()) {
    key += ";sde=" + options.size_dist_e.canonical();
  }
  return key;
}

std::uint64_t RunPoint::seed() const {
  // FNV-1a over the canonical key: platform-independent and stable, so a
  // point's RNG stream never depends on scheduling order or thread count.
  const std::uint64_t h = fnv1a64(cache_key());
  return h == 0 ? 1 : h;  // xoshiro-style generators reject all-zero seeds
}

std::size_t Scenario::num_points() const {
  const std::size_t param_cells =
      cases.empty() ? k_values.size() * rho_values.size() *
                          mu_i_values.size() * mu_e_values.size() *
                          elastic_caps.size()
                    : cases.size();
  const std::size_t truncs = trunc_values.empty() ? 1 : trunc_values.size();
  const std::size_t fits = fit_orders.empty() ? 1 : fit_orders.size();
  const std::size_t dists = size_dists.empty() ? 1 : size_dists.size();
  return param_cells * truncs * fits * dists * policies.size() *
         solvers.size();
}

void Scenario::validate() const {
  if (cases.empty()) {
    ESCHED_CHECK(!k_values.empty() && !rho_values.empty() &&
                     !mu_i_values.empty() && !mu_e_values.empty() &&
                     !elastic_caps.empty(),
                 "scenario '" + name + "' has an empty axis");
  }
  ESCHED_CHECK(!policies.empty() && !solvers.empty(),
               "scenario '" + name + "' has an empty axis");
  for (const auto& spec : policies) make_policy(spec);  // throws if unknown
  for (const long trunc : trunc_values) {
    ESCHED_CHECK(trunc >= 1,
                 "scenario '" + name + "': truncation levels must be >= 1");
  }
  for (const int fit : fit_orders) {
    ESCHED_CHECK(fit >= 1 && fit <= 3,
                 "scenario '" + name + "': fit_order must be 1, 2, or 3");
  }
  try {
    options.validate();
  } catch (const Error& e) {
    throw Error("scenario '" + name + "': " + e.what());
  }
  if (!cases.empty()) {
    for (const CaseSpec& c : cases) {
      ESCHED_CHECK(c.rho >= 0.0 && c.rho < 1.0,
                   "scenario '" + name + "': rho must be in [0,1)");
      SystemParams p = SystemParams::from_load(c.k, c.mu_i, c.mu_e, c.rho);
      p.elastic_cap = c.elastic_cap;
      p.validate();
    }
    return;
  }
  for (const double rho : rho_values) {
    ESCHED_CHECK(rho >= 0.0 && rho < 1.0,
                 "scenario '" + name + "': rho must be in [0,1)");
  }
  for (const int k : k_values) {
    for (const double mu_i : mu_i_values) {
      for (const double mu_e : mu_e_values) {
        for (const int cap : elastic_caps) {
          SystemParams p = SystemParams::from_load(k, mu_i, mu_e, 0.0);
          p.elastic_cap = cap;
          p.validate();
        }
      }
    }
  }
}

std::vector<RunPoint> Scenario::expand() const {
  validate();

  std::vector<SystemParams> cells;
  if (cases.empty()) {
    cells.reserve(k_values.size() * rho_values.size() * mu_i_values.size() *
                  mu_e_values.size() * elastic_caps.size());
    for (const int k : k_values) {
      for (const double rho : rho_values) {
        for (const double mu_i : mu_i_values) {
          for (const double mu_e : mu_e_values) {
            for (const int cap : elastic_caps) {
              SystemParams p = SystemParams::from_load(k, mu_i, mu_e, rho);
              p.elastic_cap = cap;
              cells.push_back(p);
            }
          }
        }
      }
    }
  } else {
    cells.reserve(cases.size());
    for (const CaseSpec& c : cases) {
      SystemParams p = SystemParams::from_load(c.k, c.mu_i, c.mu_e, c.rho);
      p.elastic_cap = c.elastic_cap;
      cells.push_back(p);
    }
  }

  // Sentinel-extended optional axes: one pass with "leave options alone".
  const std::vector<long> truncs =
      trunc_values.empty() ? std::vector<long>{0} : trunc_values;
  const std::vector<int> fits =
      fit_orders.empty() ? std::vector<int>{0} : fit_orders;
  // An empty size_dist axis must not touch the options (they may carry
  // explicit per-class specs), so the sentinel is "no assignment".
  const std::size_t ndists = size_dists.empty() ? 1 : size_dists.size();

  std::vector<RunPoint> points;
  points.reserve(num_points());
  for (const SystemParams& p : cells) {
    for (const long trunc : truncs) {
      for (const int fit : fits) {
        for (std::size_t dist = 0; dist < ndists; ++dist) {
          RunOptions point_options = options;
          if (trunc > 0) point_options.imax = point_options.jmax = trunc;
          if (fit > 0) {
            point_options.fit_order = static_cast<BusyFitOrder>(fit);
          }
          if (!size_dists.empty()) {
            point_options.size_dist_i = size_dists[dist];
            point_options.size_dist_e = size_dists[dist];
          }
          for (const auto& policy : policies) {
            for (const SolverKind solver : solvers) {
              points.push_back(RunPoint{p, policy, solver, point_options});
            }
          }
        }
      }
    }
  }
  ESCHED_ASSERT(points.size() == num_points(),
                "grid expansion size mismatch");
  return points;
}

std::pair<std::size_t, std::size_t> shard_range(std::size_t total,
                                                std::size_t index,
                                                std::size_t count) {
  ESCHED_CHECK(count >= 1 && index < count,
               "shard index/count need count >= 1 and index < count");
  // floor(i * total / count) without the i * total product: with
  // total = q * count + r this is q * i + floor(r * i / count), and
  // r * i < count^2 stays in range for any sane shard count.
  ESCHED_CHECK(count <= 0xFFFFFFFFu, "shard count is implausibly large");
  const std::size_t q = total / count;
  const std::size_t r = total % count;
  const auto begin_of = [&](std::size_t i) { return q * i + r * i / count; };
  return {begin_of(index), begin_of(index + 1)};
}

std::vector<std::pair<std::size_t, std::size_t>> chunk_ranges(
    std::size_t total, std::size_t chunk_size) {
  ESCHED_CHECK(chunk_size >= 1, "chunk size must be >= 1");
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(total / chunk_size + 1);
  for (std::size_t begin = 0; begin < total; begin += chunk_size) {
    ranges.emplace_back(begin, std::min(begin + chunk_size, total));
  }
  return ranges;
}

}  // namespace esched
