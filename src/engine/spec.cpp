#include "engine/spec.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "engine/report.hpp"

namespace esched {

namespace {

/// Cap on values a {"from","to","step"} range may expand to — a typo'd
/// step should fail loudly, not allocate a gigapoint grid.
constexpr std::size_t kMaxRangeValues = 100000;

std::string joined(const std::vector<std::string>& names) {
  std::string all;
  for (const auto& n : names) {
    if (!all.empty()) all += ", ";
    all += n;
  }
  return all;
}

void check_known_keys(const JsonValue& object, const std::string& where,
                      const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : object.as_object(where)) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw Error(where + ": unknown key '" + key + "' (expected one of: " +
                  joined(allowed) + ")");
    }
  }
}

/// Numeric axis: an array of numbers, or a {"from","to","step"} range
/// expanded by accumulation (from, from+step, ... while <= to + 1e-9 —
/// the same loop the paper figures' 0.25-step mu grid uses, so a range
/// spec reproduces the built-in grids bitwise).
std::vector<double> parse_numeric_axis(const JsonValue& axis,
                                       const std::string& where) {
  std::vector<double> values;
  if (axis.is_object()) {
    check_known_keys(axis, where, {"from", "to", "step"});
    const JsonValue* from = axis.find("from");
    const JsonValue* to = axis.find("to");
    const JsonValue* step = axis.find("step");
    ESCHED_CHECK(from != nullptr && to != nullptr && step != nullptr,
                 where + ": a range needs all of \"from\", \"to\", \"step\"");
    const double lo = from->as_number(where + ".from");
    const double hi = to->as_number(where + ".to");
    const double by = step->as_number(where + ".step");
    ESCHED_CHECK(by > 0.0, where + ".step: must be > 0");
    ESCHED_CHECK(hi >= lo, where + ": \"to\" must be >= \"from\"");
    for (double v = lo; v <= hi + 1e-9; v += by) {
      ESCHED_CHECK(values.size() < kMaxRangeValues,
                   where + ": range expands to more than " +
                       std::to_string(kMaxRangeValues) + " values");
      values.push_back(v);
    }
    return values;
  }
  const auto& items = axis.as_array(where);
  ESCHED_CHECK(!items.empty(), where + ": expected a non-empty array");
  values.reserve(items.size());
  for (std::size_t n = 0; n < items.size(); ++n) {
    values.push_back(
        items[n].as_number(where + "[" + std::to_string(n) + "]"));
  }
  return values;
}

std::vector<int> to_int_axis(const std::vector<double>& values,
                             const std::string& where, long lo, long hi) {
  std::vector<int> out;
  out.reserve(values.size());
  for (std::size_t n = 0; n < values.size(); ++n) {
    const std::string element = where + "[" + std::to_string(n) + "]";
    out.push_back(static_cast<int>(
        JsonValue::make_number(values[n]).as_integer(element, lo, hi)));
  }
  return out;
}

std::vector<std::string> parse_string_axis(const JsonValue& axis,
                                           const std::string& where) {
  const auto& items = axis.as_array(where);
  ESCHED_CHECK(!items.empty(), where + ": expected a non-empty array");
  std::vector<std::string> out;
  out.reserve(items.size());
  for (std::size_t n = 0; n < items.size(); ++n) {
    out.push_back(items[n].as_string(where + "[" + std::to_string(n) + "]"));
  }
  return out;
}

void parse_axes(const JsonValue& axes, Scenario& scenario) {
  const std::string where = "axes";
  check_known_keys(axes, where,
                   {"k", "rho", "mu_i", "mu_e", "elastic_cap", "truncation",
                    "fit_order", "size_dist", "policy", "solver"});
  if (const JsonValue* v = axes.find("k")) {
    scenario.k_values = to_int_axis(parse_numeric_axis(*v, "axes.k"),
                                    "axes.k", 1, 1000000);
  }
  if (const JsonValue* v = axes.find("rho")) {
    scenario.rho_values = parse_numeric_axis(*v, "axes.rho");
  }
  if (const JsonValue* v = axes.find("mu_i")) {
    scenario.mu_i_values = parse_numeric_axis(*v, "axes.mu_i");
  }
  if (const JsonValue* v = axes.find("mu_e")) {
    scenario.mu_e_values = parse_numeric_axis(*v, "axes.mu_e");
  }
  if (const JsonValue* v = axes.find("elastic_cap")) {
    scenario.elastic_caps = to_int_axis(
        parse_numeric_axis(*v, "axes.elastic_cap"), "axes.elastic_cap", 0,
        1000000);
  }
  if (const JsonValue* v = axes.find("truncation")) {
    const auto values = parse_numeric_axis(*v, "axes.truncation");
    scenario.trunc_values.clear();
    for (std::size_t n = 0; n < values.size(); ++n) {
      scenario.trunc_values.push_back(JsonValue::make_number(values[n]).as_integer(
          "axes.truncation[" + std::to_string(n) + "]", 1, 100000));
    }
  }
  if (const JsonValue* v = axes.find("fit_order")) {
    scenario.fit_orders = to_int_axis(
        parse_numeric_axis(*v, "axes.fit_order"), "axes.fit_order", 1, 3);
  }
  if (const JsonValue* v = axes.find("size_dist")) {
    const auto names = parse_string_axis(*v, "axes.size_dist");
    scenario.size_dists.clear();
    for (std::size_t n = 0; n < names.size(); ++n) {
      try {
        scenario.size_dists.push_back(SizeDistSpec::parse(names[n]));
      } catch (const Error& e) {
        throw Error("axes.size_dist[" + std::to_string(n) + "]: " + e.what());
      }
    }
  }
  if (const JsonValue* v = axes.find("policy")) {
    scenario.policies = parse_string_axis(*v, "axes.policy");
    for (std::size_t n = 0; n < scenario.policies.size(); ++n) {
      try {
        make_policy(scenario.policies[n]);
      } catch (const Error& e) {
        throw Error("axes.policy[" + std::to_string(n) + "]: " + e.what());
      }
    }
  }
  if (const JsonValue* v = axes.find("solver")) {
    const auto names = parse_string_axis(*v, "axes.solver");
    scenario.solvers.clear();
    for (std::size_t n = 0; n < names.size(); ++n) {
      try {
        scenario.solvers.push_back(parse_solver(names[n]));
      } catch (const Error& e) {
        throw Error("axes.solver[" + std::to_string(n) + "]: " + e.what());
      }
    }
  }
}

void parse_cases(const JsonValue& json_cases, Scenario& scenario) {
  const auto& items = json_cases.as_array("cases");
  ESCHED_CHECK(!items.empty(), "cases: expected a non-empty array");
  for (std::size_t n = 0; n < items.size(); ++n) {
    const std::string where = "cases[" + std::to_string(n) + "]";
    check_known_keys(items[n], where,
                     {"k", "mu_i", "mu_e", "rho", "elastic_cap"});
    CaseSpec c;
    const JsonValue* mu_i = items[n].find("mu_i");
    const JsonValue* mu_e = items[n].find("mu_e");
    const JsonValue* rho = items[n].find("rho");
    ESCHED_CHECK(mu_i != nullptr && mu_e != nullptr && rho != nullptr,
                 where + ": a case needs \"mu_i\", \"mu_e\", and \"rho\"");
    c.mu_i = mu_i->as_number(where + ".mu_i");
    c.mu_e = mu_e->as_number(where + ".mu_e");
    c.rho = rho->as_number(where + ".rho");
    if (const JsonValue* v = items[n].find("k")) {
      c.k = static_cast<int>(v->as_integer(where + ".k", 1, 1000000));
    }
    if (const JsonValue* v = items[n].find("elastic_cap")) {
      c.elastic_cap =
          static_cast<int>(v->as_integer(where + ".elastic_cap", 0, 1000000));
    }
    scenario.cases.push_back(c);
  }
}

void parse_options(const JsonValue& json_options, RunOptions& options) {
  const std::string where = "options";
  check_known_keys(json_options, where,
                   {"fit_order", "truncation_epsilon", "imax", "jmax",
                    "method", "sim_jobs", "sim_warmup", "base_seed",
                    "sim_raw_seed", "sim_tails", "sim_tail_span",
                    "sim_tail_bins", "trace_horizon", "trace_seed",
                    "size_dist_i", "size_dist_e"});
  if (const JsonValue* v = json_options.find("fit_order")) {
    options.fit_order = static_cast<BusyFitOrder>(
        v->as_integer("options.fit_order", 1, 3));
  }
  if (const JsonValue* v = json_options.find("truncation_epsilon")) {
    options.truncation_epsilon = v->as_number("options.truncation_epsilon");
    ESCHED_CHECK(options.truncation_epsilon > 0.0 &&
                     options.truncation_epsilon < 1.0,
                 "options.truncation_epsilon: must be in (0,1)");
  }
  if (const JsonValue* v = json_options.find("imax")) {
    options.imax = v->as_integer("options.imax", 0, 100000);
  }
  if (const JsonValue* v = json_options.find("jmax")) {
    options.jmax = v->as_integer("options.jmax", 0, 100000);
  }
  if (const JsonValue* v = json_options.find("method")) {
    try {
      options.exact_method =
          parse_stationary_method(v->as_string("options.method"));
    } catch (const Error& e) {
      throw Error("options.method: " + std::string(e.what()));
    }
  }
  if (const JsonValue* v = json_options.find("sim_jobs")) {
    options.sim_jobs = static_cast<std::uint64_t>(
        v->as_integer("options.sim_jobs", 1, 4000000000LL));
  }
  if (const JsonValue* v = json_options.find("sim_warmup")) {
    options.sim_warmup = static_cast<std::uint64_t>(
        v->as_integer("options.sim_warmup", 0, 4000000000LL));
  }
  if (const JsonValue* v = json_options.find("base_seed")) {
    options.base_seed = static_cast<std::uint64_t>(
        v->as_integer("options.base_seed", 0, 4000000000LL));
  }
  if (const JsonValue* v = json_options.find("sim_raw_seed")) {
    options.sim_raw_seed = v->as_bool("options.sim_raw_seed");
  }
  if (const JsonValue* v = json_options.find("sim_tails")) {
    options.sim_tails = v->as_bool("options.sim_tails");
  }
  if (const JsonValue* v = json_options.find("sim_tail_span")) {
    options.sim_tail_span = v->as_number("options.sim_tail_span");
    ESCHED_CHECK(options.sim_tail_span > 0.0,
                 "options.sim_tail_span: must be > 0");
  }
  if (const JsonValue* v = json_options.find("sim_tail_bins")) {
    options.sim_tail_bins =
        v->as_integer("options.sim_tail_bins", 1, 100000000);
  }
  if (const JsonValue* v = json_options.find("trace_horizon")) {
    options.trace_horizon = v->as_number("options.trace_horizon");
    ESCHED_CHECK(options.trace_horizon > 0.0,
                 "options.trace_horizon: must be > 0");
  }
  if (const JsonValue* v = json_options.find("trace_seed")) {
    options.trace_seed = static_cast<std::uint64_t>(
        v->as_integer("options.trace_seed", 0, 4000000000LL));
  }
  const auto parse_size_dist = [&](const char* key, SizeDistSpec* out) {
    const JsonValue* v = json_options.find(key);
    if (v == nullptr) return;
    const std::string text = v->as_string("options." + std::string(key));
    try {
      *out = SizeDistSpec::parse(text);
    } catch (const Error& e) {
      throw Error("options." + std::string(key) + ": " + e.what());
    }
  };
  parse_size_dist("size_dist_i", &options.size_dist_i);
  parse_size_dist("size_dist_e", &options.size_dist_e);
}

}  // namespace

Scenario scenario_from_json(const JsonValue& root) {
  check_known_keys(root, "scenario spec",
                   {"name", "description", "view", "axes", "cases",
                    "options"});
  Scenario scenario;
  if (const JsonValue* v = root.find("name")) {
    scenario.name = v->as_string("name");
    ESCHED_CHECK(!scenario.name.empty(), "name: must not be empty");
  }
  if (const JsonValue* v = root.find("description")) {
    scenario.description = v->as_string("description");
  }
  if (const JsonValue* v = root.find("view")) {
    scenario.view = v->as_string("view");
    const auto views = report_view_names();
    ESCHED_CHECK(std::find(views.begin(), views.end(), scenario.view) !=
                     views.end(),
                 "view: unknown report view '" + scenario.view +
                     "' (expected one of: " + joined(views) + ")");
  }
  const JsonValue* axes = root.find("axes");
  const JsonValue* json_cases = root.find("cases");
  if (json_cases != nullptr) {
    parse_cases(*json_cases, scenario);
    if (axes != nullptr) {
      for (const char* param_axis :
           {"k", "rho", "mu_i", "mu_e", "elastic_cap"}) {
        ESCHED_CHECK(axes->find(param_axis) == nullptr,
                     std::string("axes.") + param_axis +
                         ": a spec lists either parameter axes or explicit "
                         "\"cases\", not both");
      }
    }
  }
  if (axes != nullptr) parse_axes(*axes, scenario);
  if (const JsonValue* v = root.find("options")) {
    parse_options(*v, scenario.options);
  }
  scenario.validate();  // semantic checks: stability, policy specs, ...
  ESCHED_CHECK(scenario.num_points() > 0,
               "scenario '" + scenario.name + "' expands to an empty grid");
  return scenario;
}

Scenario parse_scenario_text(const std::string& text,
                             const std::string& origin) {
  try {
    return scenario_from_json(parse_json(text, origin));
  } catch (const Error& e) {
    const std::string what = e.what();
    // Parser errors already carry "<origin>:line:col"; prefix the rest.
    if (what.rfind(origin + ":", 0) == 0) throw;
    throw Error(origin + ": " + what);
  }
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  ESCHED_CHECK(in.good(), "cannot open scenario spec '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario_text(buffer.str(), path);
}

JsonValue scenario_to_json(const Scenario& scenario) {
  JsonValue root = JsonValue::make_object();
  root.set("name", JsonValue::make_string(scenario.name));
  if (!scenario.description.empty()) {
    root.set("description", JsonValue::make_string(scenario.description));
  }
  root.set("view", JsonValue::make_string(scenario.view));

  const auto number_array = [](const auto& values) {
    JsonValue array = JsonValue::make_array();
    for (const auto v : values) {
      array.push_back(JsonValue::make_number(static_cast<double>(v)));
    }
    return array;
  };
  const auto string_array = [](const std::vector<std::string>& values) {
    JsonValue array = JsonValue::make_array();
    for (const auto& v : values) array.push_back(JsonValue::make_string(v));
    return array;
  };

  if (!scenario.cases.empty()) {
    JsonValue cases = JsonValue::make_array();
    for (const CaseSpec& c : scenario.cases) {
      JsonValue item = JsonValue::make_object();
      item.set("k", JsonValue::make_number(c.k));
      item.set("mu_i", JsonValue::make_number(c.mu_i));
      item.set("mu_e", JsonValue::make_number(c.mu_e));
      item.set("rho", JsonValue::make_number(c.rho));
      if (c.elastic_cap != 0) {
        item.set("elastic_cap", JsonValue::make_number(c.elastic_cap));
      }
      cases.push_back(std::move(item));
    }
    root.set("cases", std::move(cases));
  }

  JsonValue axes = JsonValue::make_object();
  if (scenario.cases.empty()) {
    axes.set("k", number_array(scenario.k_values));
    axes.set("rho", number_array(scenario.rho_values));
    axes.set("mu_i", number_array(scenario.mu_i_values));
    axes.set("mu_e", number_array(scenario.mu_e_values));
    axes.set("elastic_cap", number_array(scenario.elastic_caps));
  }
  if (!scenario.trunc_values.empty()) {
    axes.set("truncation", number_array(scenario.trunc_values));
  }
  if (!scenario.fit_orders.empty()) {
    axes.set("fit_order", number_array(scenario.fit_orders));
  }
  if (!scenario.size_dists.empty()) {
    JsonValue dists = JsonValue::make_array();
    for (const SizeDistSpec& spec : scenario.size_dists) {
      dists.push_back(JsonValue::make_string(spec.canonical()));
    }
    axes.set("size_dist", std::move(dists));
  }
  axes.set("policy", string_array(scenario.policies));
  JsonValue solver_names = JsonValue::make_array();
  for (const SolverKind solver : scenario.solvers) {
    solver_names.push_back(JsonValue::make_string(solver_name(solver)));
  }
  axes.set("solver", std::move(solver_names));
  root.set("axes", std::move(axes));

  JsonValue options = JsonValue::make_object();
  const RunOptions& o = scenario.options;
  options.set("fit_order",
              JsonValue::make_number(static_cast<int>(o.fit_order)));
  options.set("truncation_epsilon",
              JsonValue::make_number(o.truncation_epsilon));
  options.set("imax", JsonValue::make_number(static_cast<double>(o.imax)));
  options.set("jmax", JsonValue::make_number(static_cast<double>(o.jmax)));
  if (o.exact_method != StationaryMethod::kAuto) {
    options.set("method", JsonValue::make_string(
                              stationary_method_name(o.exact_method)));
  }
  options.set("sim_jobs",
              JsonValue::make_number(static_cast<double>(o.sim_jobs)));
  options.set("sim_warmup",
              JsonValue::make_number(static_cast<double>(o.sim_warmup)));
  options.set("base_seed",
              JsonValue::make_number(static_cast<double>(o.base_seed)));
  options.set("sim_raw_seed", JsonValue::make_bool(o.sim_raw_seed));
  options.set("sim_tails", JsonValue::make_bool(o.sim_tails));
  options.set("sim_tail_span", JsonValue::make_number(o.sim_tail_span));
  options.set("sim_tail_bins",
              JsonValue::make_number(static_cast<double>(o.sim_tail_bins)));
  options.set("trace_horizon", JsonValue::make_number(o.trace_horizon));
  options.set("trace_seed",
              JsonValue::make_number(static_cast<double>(o.trace_seed)));
  // Canonical forms, emitted only when non-default so pre-refactor specs
  // print byte-identically.
  if (!o.size_dist_i.is_exponential()) {
    options.set("size_dist_i",
                JsonValue::make_string(o.size_dist_i.canonical()));
  }
  if (!o.size_dist_e.is_exponential()) {
    options.set("size_dist_e",
                JsonValue::make_string(o.size_dist_e.canonical()));
  }
  root.set("options", std::move(options));
  return root;
}

// ---------------------------------------------------------------------------
// Built-in scenarios, registered as embedded spec documents so they share
// the loader with user files (one construction path, and each doubles as a
// schema example — `esched show <name>` prints the JSON).

namespace {

struct BuiltinSpec {
  const char* name;
  const char* json;
};

constexpr BuiltinSpec kBuiltinSpecs[] = {
    {"fig4", R"json({
      "name": "fig4",
      "description": "Fig. 4 winner maps: IF vs EF (QBD analysis) over the (mu_I, mu_E) grid at rho = 0.5, 0.7, 0.9, k = 4",
      "view": "heatmap",
      "axes": {
        "k": [4],
        "rho": [0.5, 0.7, 0.9],
        "mu_i": {"from": 0.25, "to": 3.5, "step": 0.25},
        "mu_e": {"from": 0.25, "to": 3.5, "step": 0.25},
        "policy": ["IF", "EF"],
        "solver": ["qbd"]
      }
    })json"},
    {"fig5", R"json({
      "name": "fig5",
      "description": "Fig. 5 response-time curves: E[T] under IF and EF vs mu_I (k = 4, mu_E = 1) at rho = 0.5, 0.7, 0.9",
      "view": "vs-mu",
      "axes": {
        "k": [4],
        "rho": [0.5, 0.7, 0.9],
        "mu_i": {"from": 0.25, "to": 3.5, "step": 0.25},
        "mu_e": [1],
        "policy": ["IF", "EF"],
        "solver": ["qbd"]
      }
    })json"},
    {"fig6", R"json({
      "name": "fig6",
      "description": "Fig. 6 scaling: E[T] under IF and EF vs k = 2..16 at rho = 0.9 for mu_I in {0.25, 3.25}, mu_E = 1",
      "view": "vs-k",
      "axes": {
        "k": {"from": 2, "to": 16, "step": 1},
        "rho": [0.9],
        "mu_i": [0.25, 3.25],
        "mu_e": [1],
        "policy": ["IF", "EF"],
        "solver": ["qbd"]
      }
    })json"},
    {"optimality-sweep", R"json({
      "name": "optimality-sweep",
      "description": "S4 optimality check: exact truncated-CTMC E[T] for the policy family {IF, EF, FairShare, Cap2, IF+idle1} (Thm. 5 / App. B)",
      "axes": {
        "k": [4],
        "rho": [0.5, 0.9],
        "mu_i": [0.25, 1, 3.25],
        "mu_e": [1],
        "policy": ["IF", "EF", "FairShare", "Cap2", "IF+idle1"],
        "solver": ["exact"]
      },
      "options": {"truncation_epsilon": 1e-8}
    })json"},
    {"optimality-family", R"json({
      "name": "optimality-family",
      "description": "S4 optimality table (bench_optimality_sweep): exact E[T] for the enumerable policy family across the diagonal spot settings of Thms. 1/5 and App. B",
      "view": "family",
      "cases": [
        {"k": 4, "mu_i": 1, "mu_e": 1, "rho": 0.5},
        {"k": 4, "mu_i": 1, "mu_e": 1, "rho": 0.8},
        {"k": 4, "mu_i": 2, "mu_e": 1, "rho": 0.5},
        {"k": 4, "mu_i": 2, "mu_e": 1, "rho": 0.9},
        {"k": 4, "mu_i": 3.25, "mu_e": 1, "rho": 0.7},
        {"k": 4, "mu_i": 0.25, "mu_e": 1, "rho": 0.5},
        {"k": 4, "mu_i": 0.25, "mu_e": 1, "rho": 0.9},
        {"k": 4, "mu_i": 0.5, "mu_e": 1, "rho": 0.9},
        {"k": 4, "mu_i": 0.9, "mu_e": 1, "rho": 0.7}
      ],
      "axes": {
        "policy": ["IF", "EF", "FairShare", "Cap2", "IF+idle1"],
        "solver": ["exact"]
      },
      "options": {"truncation_epsilon": 1e-9}
    })json"},
    {"analysis-accuracy", R"json({
      "name": "analysis-accuracy",
      "description": "S5 accuracy claim: busy-period QBD vs exact chain vs simulation on a spot grid across the Fig. 4-6 parameter space",
      "view": "accuracy",
      "cases": [
        {"k": 4, "mu_i": 1, "mu_e": 1, "rho": 0.5},
        {"k": 4, "mu_i": 1, "mu_e": 1, "rho": 0.9},
        {"k": 4, "mu_i": 0.25, "mu_e": 1, "rho": 0.7},
        {"k": 4, "mu_i": 3.25, "mu_e": 1, "rho": 0.7},
        {"k": 2, "mu_i": 2, "mu_e": 1, "rho": 0.8},
        {"k": 8, "mu_i": 0.5, "mu_e": 1, "rho": 0.6},
        {"k": 16, "mu_i": 1, "mu_e": 1, "rho": 0.9}
      ],
      "axes": {
        "policy": ["IF", "EF"],
        "solver": ["qbd", "exact", "sim"]
      },
      "options": {
        "truncation_epsilon": 1e-9,
        "sim_jobs": 150000, "sim_warmup": 15000,
        "base_seed": 99, "sim_raw_seed": true
      }
    })json"},
    {"tail-latency", R"json({
      "name": "tail-latency",
      "description": "Response-time tails under IF vs EF at the Fig. 5 extremes: per-class P50/P99 from simulation (the mean-vs-tail trade the paper's objective hides)",
      "view": "tail",
      "cases": [
        {"k": 4, "mu_i": 3.25, "mu_e": 1, "rho": 0.7},
        {"k": 4, "mu_i": 3.25, "mu_e": 1, "rho": 0.9},
        {"k": 4, "mu_i": 0.25, "mu_e": 1, "rho": 0.9}
      ],
      "axes": {
        "policy": ["IF", "EF"],
        "solver": ["sim"]
      },
      "options": {
        "sim_jobs": 250000, "sim_warmup": 25000,
        "base_seed": 1234, "sim_raw_seed": true,
        "sim_tails": true
      }
    })json"},
    {"ablation-truncation", R"json({
      "name": "ablation-truncation",
      "description": "Ablation: exact-solver truncation level vs a deep reference solve (k = 4, mu_I = mu_E = 1) — the cost the QBD analysis avoids",
      "view": "truncation",
      "cases": [
        {"k": 4, "mu_i": 1, "mu_e": 1, "rho": 0.7},
        {"k": 4, "mu_i": 1, "mu_e": 1, "rho": 0.9}
      ],
      "axes": {
        "truncation": [10, 20, 40, 80, 160, 400],
        "policy": ["IF"],
        "solver": ["exact", "qbd"]
      }
    })json"},
    {"ablation-coxian", R"json({
      "name": "ablation-coxian",
      "description": "Ablation: busy-period fit order (1/2/3-moment Coxian) vs the exact chain — why S5.2 matches three moments",
      "view": "fit-order",
      "cases": [
        {"k": 4, "mu_i": 1, "mu_e": 1, "rho": 0.5},
        {"k": 4, "mu_i": 1, "mu_e": 1, "rho": 0.9},
        {"k": 4, "mu_i": 0.25, "mu_e": 1, "rho": 0.7},
        {"k": 4, "mu_i": 3.25, "mu_e": 1, "rho": 0.7},
        {"k": 8, "mu_i": 1, "mu_e": 1, "rho": 0.8},
        {"k": 2, "mu_i": 2, "mu_e": 1, "rho": 0.9}
      ],
      "axes": {
        "fit_order": [1, 2, 3],
        "policy": ["EF", "IF"],
        "solver": ["qbd", "exact"]
      },
      "options": {"truncation_epsilon": 1e-9}
    })json"},
    {"sensitivity-scv", R"json({
      "name": "sensitivity-scv",
      "description": "S6 robustness: E[T] under IF vs EF as the job-size SCV sweeps {0.25, 1, 4, 16} (lognormal moment surrogates, both classes), probing the paper's Exp(mu) size assumption",
      "view": "scv",
      "cases": [
        {"k": 4, "mu_i": 1, "mu_e": 1, "rho": 0.7},
        {"k": 4, "mu_i": 3.25, "mu_e": 1, "rho": 0.7}
      ],
      "axes": {
        "size_dist": ["lognormal:0.25", "lognormal:1", "lognormal:4",
                      "lognormal:16"],
        "policy": ["IF", "EF"],
        "solver": ["sim"]
      },
      "options": {"sim_jobs": 400000, "sim_warmup": 40000}
    })json"},
    {"dominance-thm3", R"json({
      "name": "dominance-thm3",
      "description": "Thm. 3 reproduction: pointwise work dominance of IF over the class P on fixed traces, with the average work gap IF buys",
      "view": "dominance",
      "cases": [
        {"k": 4, "mu_i": 1, "mu_e": 1, "rho": 0.6},
        {"k": 4, "mu_i": 2, "mu_e": 1, "rho": 0.8},
        {"k": 4, "mu_i": 0.25, "mu_e": 1, "rho": 0.9},
        {"k": 4, "mu_i": 3.25, "mu_e": 1, "rho": 0.7},
        {"k": 4, "mu_i": 1, "mu_e": 1, "rho": 0.95}
      ],
      "axes": {
        "policy": ["EF", "FairShare", "Cap1", "Cap2", "Cap3"],
        "solver": ["trace"]
      },
      "options": {"trace_horizon": 1500, "trace_seed": 2026}
    })json"},
};

}  // namespace

Scenario builtin_scenario(const std::string& name) {
  for (const BuiltinSpec& spec : kBuiltinSpecs) {
    if (name == spec.name) {
      Scenario scenario =
          parse_scenario_text(spec.json, "builtin:" + std::string(spec.name));
      ESCHED_ASSERT(scenario.name == name, "builtin spec name mismatch");
      return scenario;
    }
  }
  throw Error("unknown scenario '" + name +
              "'; try one of: " + joined(builtin_scenario_names()));
}

std::vector<std::string> builtin_scenario_names() {
  std::vector<std::string> names;
  for (const BuiltinSpec& spec : kBuiltinSpecs) names.emplace_back(spec.name);
  return names;
}

bool looks_like_spec_path(const std::string& arg) {
  if (arg.find('/') != std::string::npos) return true;
  return arg.size() > 5 && arg.compare(arg.size() - 5, 5, ".json") == 0;
}

std::vector<RunPoint> LoadedSweep::concatenated() const {
  std::vector<RunPoint> all;
  all.reserve(total_points);
  for (const auto& grid : grids) {
    all.insert(all.end(), grid.begin(), grid.end());
  }
  return all;
}

LoadedSweep load_sweep(const std::vector<std::string>& scenario_args,
                       const SweepOverrides& overrides) {
  ESCHED_CHECK(!scenario_args.empty(), "no scenarios given");
  LoadedSweep sweep;
  sweep.scenarios.reserve(scenario_args.size());
  sweep.grids.reserve(scenario_args.size());
  for (const auto& arg : scenario_args) {
    Scenario scenario = looks_like_spec_path(arg) ? load_scenario_file(arg)
                                                  : builtin_scenario(arg);
    if (overrides.base_seed.has_value()) {
      scenario.options.base_seed = *overrides.base_seed;
    }
    if (overrides.sim_jobs > 0) scenario.options.sim_jobs = overrides.sim_jobs;
    if (!overrides.exact_method.empty()) {
      scenario.options.exact_method =
          parse_stationary_method(overrides.exact_method);
    }
    sweep.grids.push_back(scenario.expand());  // validates, incl. options
    sweep.scenarios.push_back(std::move(scenario));
  }
  for (const auto& grid : sweep.grids) {
    sweep.scenario_size_dist.push_back(report_has_size_dists(grid));
    if (sweep.scenario_size_dist.back()) sweep.with_size_dist = true;
    sweep.total_points += grid.size();
  }
  return sweep;
}

}  // namespace esched
