// Mmap'd open-addressing result cache — the hot tier of the persistent
// cache. One fixed-geometry table file (`table.esched`) per cache
// directory, shared MAP_SHARED by every thread and worker process that
// maps it; a warm hit is a lock-free linear probe over fixed-width slots
// instead of a file open + text parse.
//
// Crash/concurrency story (mirrors the dist queue's lease discipline —
// never trust anything that was not atomically published):
//   - A slot's state word is the publication point. Stores claim an empty
//     slot with a CAS (empty -> writing), fill key/payload/checksum, then
//     release-store `valid`; loads acquire-read the state and only then
//     touch the slot body.
//   - The checksum (FNV-1a over key length + key bytes + payload) and the
//     full key stored in the slot mean a torn write, a hash collision, or
//     a corrupt page reads as a miss — never as a wrong result.
//   - A writer killed mid-store leaves its slot wedged at `writing`
//     forever; every reader and writer skips it, and gc's compaction
//     rebuilds the table without it.
//   - Slots are immutable once valid (results are deterministic in the
//     key, so the first writer wins and there is nothing to update).
// Oversized keys (and probe-exhausted stores) spill to the file-per-entry
// DiskResultCache tier; TieredResultCache glues the two together.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/disk_cache.hpp"
#include "engine/solver_dispatch.hpp"

namespace esched {

/// Geometry + occupancy of one table file, for `esched cache info`, gc's
/// byte accounting, and tests that need slot offsets to corrupt bytes.
struct ShmTableInfo {
  std::string path;
  std::uint64_t format_version = 0;
  std::uint64_t slot_count = 0;     ///< power of two
  std::uint64_t slot_bytes = 0;
  std::uint64_t payload_bytes = 0;  ///< run_result_packed_bytes()
  std::uint64_t key_capacity = 0;   ///< longest representable key
  std::uint64_t header_bytes = 0;   ///< slot 0 starts here
  std::uint64_t payload_offset = 0; ///< within a slot
  std::uint64_t key_offset = 0;     ///< within a slot
  std::uint64_t valid_slots = 0;    ///< published entries
  std::uint64_t wedged_slots = 0;   ///< claimed by a dead writer
  std::uintmax_t file_bytes = 0;    ///< apparent size (file is sparse)
};

class ShmResultCache {
 public:
  /// Slot state machine: empty -> writing (CAS claim) -> valid (release
  /// publish). Public so tests can assert on raw slot words.
  static constexpr std::uint64_t kStateEmpty = 0;
  static constexpr std::uint64_t kStateWriting = 1;
  static constexpr std::uint64_t kStateValid = 2;

  static constexpr std::uint64_t kDefaultSlotCount = 32768;  ///< ~16 MiB sparse
  static constexpr std::uint64_t kMinSlotCount = 64;

  /// The table file inside a cache directory.
  static std::string table_path(const std::string& directory);

  /// Maps an existing table; nullptr when the file is absent, the platform
  /// has no mmap, or the header is incompatible (wrong magic/version/
  /// geometry/endianness) — callers fall back to the file tier.
  static std::unique_ptr<ShmResultCache> open_existing(
      const std::string& directory);

  /// open_existing, creating (atomically — concurrent creators race on a
  /// link(2) publish and exactly one table survives) a fresh table of
  /// `slot_count` slots when none exists. `slot_count` is rounded up to a
  /// power of two. nullptr only when the platform cannot mmap or the
  /// directory is unwritable.
  static std::unique_ptr<ShmResultCache> open_or_create(
      const std::string& directory,
      std::uint64_t slot_count = kDefaultSlotCount);

  ~ShmResultCache();
  ShmResultCache(const ShmResultCache&) = delete;
  ShmResultCache& operator=(const ShmResultCache&) = delete;

  /// Lock-free linear probe. A checksum/key mismatch in a valid slot is
  /// skipped (counted as corruption, read as a miss), a `writing` slot is
  /// skipped, an `empty` slot ends the probe.
  std::optional<RunResult> load(const std::string& key) const;

  /// Claims a slot and publishes the entry; false when the key is too long
  /// for a slot or the probe window is full (caller spills to the file
  /// tier). Returns true without writing when the key is already present.
  bool store(const std::string& key, const RunResult& result);

  /// True when `key` fits a slot's inline key area.
  bool representable(const std::string& key) const;

  ShmTableInfo info() const;

  /// Every published entry as a manifest row (tier = "table",
  /// bytes = slot_bytes, age 0 — slots carry a store sequence number, not
  /// a wall-clock time). Ordered oldest store first.
  std::vector<CacheEntryInfo> list_entries() const;

  /// Rebuilds the table keeping only the `keep_newest` most recently
  /// stored entries (wedged and corrupt slots are always dropped), shrinks
  /// the slot count to fit the survivors, and atomically publishes the new
  /// file over the old one, remapping this handle. Concurrent mappers of
  /// the old file keep a consistent (now orphaned) view. Returns the
  /// number of entries dropped.
  std::size_t compact(std::uint64_t keep_newest);

  const std::string& path() const { return path_; }
  std::uint64_t slot_count() const { return slot_count_; }
  std::uint64_t slot_bytes() const;
  std::uint64_t key_capacity() const;

 private:
  ShmResultCache(std::string path, unsigned char* base, std::uint64_t bytes,
                 std::uint64_t slot_count);

  unsigned char* slot_ptr(std::uint64_t index) const;
  void unmap();

  std::string path_;
  unsigned char* base_ = nullptr;  ///< mmap base (header at offset 0)
  std::uint64_t mapped_bytes_ = 0;
  std::uint64_t slot_count_ = 0;
};

/// The two tiers behind --cache-dir: the mmap table for everything that
/// fits a slot, the per-entry files for what does not (and for directories
/// whose table cannot be created). load() promotes file-tier hits into the
/// table so old per-entry caches transparently upgrade; ls/gc see the
/// union of both tiers.
class TieredResultCache {
 public:
  struct Options {
    bool use_table = true;     ///< false: behave exactly like DiskResultCache
    bool create_table = true;  ///< false: map the table only if it exists
    std::uint64_t create_slots = ShmResultCache::kDefaultSlotCount;
  };

  explicit TieredResultCache(std::string directory);
  TieredResultCache(std::string directory, Options options);

  std::optional<RunResult> load(const std::string& key) const;
  void store(const std::string& key, const RunResult& result) const;

  /// Union manifest: file entries (oldest first) then table entries
  /// (oldest store first).
  std::vector<CacheEntryInfo> list_entries(bool with_keys = true) const;

  /// Two-tier gc. The age policy applies to file entries only (table slots
  /// have no wall-clock age). The byte budget counts file bytes plus
  /// slot_bytes per published table entry and evicts files oldest-first,
  /// then compacts the table down to the newest entries that fit.
  CacheGcResult gc(std::optional<double> max_age_seconds,
                   std::optional<std::uintmax_t> max_bytes) const;

  const std::string& directory() const { return files_.directory(); }
  const ShmResultCache* table() const { return table_.get(); }
  ShmResultCache* table() { return table_.get(); }
  const DiskResultCache& files() const { return files_; }

 private:
  DiskResultCache files_;
  std::unique_ptr<ShmResultCache> table_;
};

}  // namespace esched
