#include "engine/sweep_runner.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace esched {

std::optional<RunResult> ResultCache::lookup(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = results_.find(key);
  if (it == results_.end()) return std::nullopt;
  return it->second;
}

void ResultCache::insert(const std::string& key, const RunResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.insert_or_assign(key, result);
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return results_.size();
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.clear();
}

SweepRunner::SweepRunner(int num_threads) : num_threads_(num_threads) {
  ESCHED_CHECK(num_threads >= 0, "thread count must be >= 0");
  if (num_threads_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads_ = hw == 0 ? 1 : static_cast<int>(hw);
  }
}

std::vector<RunResult> SweepRunner::run(const std::vector<RunPoint>& points,
                                        SweepStats* stats) {
  const auto start = std::chrono::steady_clock::now();

  // Deduplicate: first occurrence of each uncached key becomes a job, so a
  // point repeated across figure axes solves exactly once.
  std::vector<std::string> keys;
  keys.reserve(points.size());
  std::vector<std::size_t> jobs;  // indices into `points` to solve now
  std::unordered_map<std::string, std::size_t> seen;
  for (std::size_t n = 0; n < points.size(); ++n) {
    keys.push_back(points[n].cache_key());
    if (seen.count(keys.back()) != 0 || cache_.lookup(keys.back())) continue;
    seen.emplace(keys.back(), n);
    jobs.push_back(n);
  }

  // Fan the unique jobs over the pool via an atomic work index. Each job is
  // independent and pure, so completion order cannot affect the results.
  std::atomic<std::size_t> next_job{0};
  std::mutex error_mutex;
  std::string first_error;
  const auto worker = [&] {
    for (;;) {
      const std::size_t job = next_job.fetch_add(1);
      if (job >= jobs.size()) return;
      const std::size_t n = jobs[job];
      try {
        cache_.insert(keys[n], dispatch_run(points[n]));
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.empty()) {
          first_error = "sweep point '" + keys[n] + "' failed: " + e.what();
        }
      }
    }
  };
  const int pool_size =
      static_cast<int>(std::min<std::size_t>(jobs.size(),
                                             static_cast<std::size_t>(num_threads_)));
  if (pool_size <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(pool_size));
    for (int t = 0; t < pool_size; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }
  if (!first_error.empty()) throw Error(first_error);

  std::vector<RunResult> results;
  results.reserve(points.size());
  std::unordered_map<std::string, bool> solved_now;
  for (const std::size_t n : jobs) solved_now.emplace(keys[n], true);
  std::size_t cache_hits = 0;
  for (std::size_t n = 0; n < points.size(); ++n) {
    auto cached = cache_.lookup(keys[n]);
    ESCHED_ASSERT(cached.has_value(), "sweep result missing from cache");
    RunResult result = *cached;
    // The first solve of a point this call is fresh; everything else —
    // intra-call duplicates and prior-call results — is a cache hit.
    const auto it = solved_now.find(keys[n]);
    result.from_cache = it == solved_now.end() || !it->second;
    if (it != solved_now.end()) it->second = false;
    if (result.from_cache) ++cache_hits;
    results.push_back(result);
  }

  if (stats != nullptr) {
    stats->total_points = points.size();
    stats->solved_points = jobs.size();
    stats->cache_hits = cache_hits;
    stats->threads_used = pool_size;
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  return results;
}

}  // namespace esched
