#include "engine/sweep_runner.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "engine/shm_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace esched {

namespace {

/// Sweep-level observability handles, resolved once (registry lookups
/// take a mutex; these updates must stay off the workers' lock path).
struct RunnerMetrics {
  Counter& points_total;       ///< sweep.points.total
  Counter& points_solved;      ///< sweep.points.solved (fresh solves)
  Counter& points_failed;      ///< sweep.points.failed
  Counter& memo_hits;          ///< sweep.memo.hits
  Counter& disk_hits;          ///< sweep.disk.hits
  Counter& dup_points;         ///< sweep.dup.points (intra-call repeats)
  LogHistogram& point_seconds; ///< sweep.point.seconds (all backends)
  LogHistogram& queue_wait;    ///< sweep.queue_wait.seconds
  LogHistogram& utilization;   ///< sweep.thread.utilization (busy fraction)
  LogHistogram& run_seconds;   ///< sweep.run.seconds (per run() call)
};

RunnerMetrics& runner_metrics() {
  static RunnerMetrics metrics = [] {
    MetricsRegistry& m = global_metrics();
    return RunnerMetrics{m.counter("sweep.points.total"),
                         m.counter("sweep.points.solved"),
                         m.counter("sweep.points.failed"),
                         m.counter("sweep.memo.hits"),
                         m.counter("sweep.disk.hits"),
                         m.counter("sweep.dup.points"),
                         m.histogram("sweep.point.seconds"),
                         m.histogram("sweep.queue_wait.seconds"),
                         m.histogram("sweep.thread.utilization"),
                         m.histogram("sweep.run.seconds")};
  }();
  return metrics;
}

/// The copy of a result handed to callers for cache-served points: honest
/// provenance (from_cache) and ~zero cost (solve_seconds), so ETA and
/// cache-effectiveness arithmetic downstream never double-counts the
/// original solve's wall time. The caches themselves keep real timings.
RunResult cached_copy(const RunResult& result) {
  RunResult copy = result;
  copy.from_cache = true;
  copy.solve_seconds = 0.0;
  return copy;
}

}  // namespace

ResultCache::Shard& ResultCache::shard_for(const std::string& key) const {
  // Same hash family as the disk tier's file names and the mmap table's
  // home slots; the shard index is a pure function of the key, so layout
  // never depends on insertion (i.e. scheduling) order.
  return shards_[fnv1a64(key) & (kShardCount - 1)];
}

std::optional<RunResult> ResultCache::lookup(const std::string& key) const {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.results.find(key);
  if (it == shard.results.end()) return std::nullopt;
  return it->second;
}

void ResultCache::insert(const std::string& key, const RunResult& result) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.results.insert_or_assign(key, result);
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.results.size();
  }
  return total;
}

void ResultCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.results.clear();
  }
}

SweepRunner::SweepRunner(int num_threads) : num_threads_(num_threads) {
  ESCHED_CHECK(num_threads >= 0, "thread count must be >= 0");
  if (num_threads_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads_ = hw == 0 ? 1 : static_cast<int>(hw);
  }
}

SweepRunner::~SweepRunner() = default;

void SweepRunner::set_cache_dir(const std::string& directory, bool use_table) {
  TieredResultCache::Options options;
  options.use_table = use_table;
  disk_cache_ = std::make_unique<TieredResultCache>(directory, options);
}

std::vector<RunResult> SweepRunner::run(const std::vector<RunPoint>& points,
                                        SweepStats* stats,
                                        const RowCallback& on_row) {
  const auto start = std::chrono::steady_clock::now();
  const auto seconds_since_start = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  RunnerMetrics& metrics = runner_metrics();
  metrics.points_total.add(points.size());
  if (TraceWriter* t = global_trace()) {
    t->event("sweep_start",
             {{"points", points.size()}, {"threads", num_threads_}});
  }
  // The sweep span nests under an open chunk span when a dist worker is
  // driving this call (same thread), and is a root otherwise. Point spans
  // solved on pool threads pass this id explicitly — a fresh thread has an
  // empty span stack, so auto-parenting cannot reach across.
  const TraceSpan sweep_span("sweep", {{"points", points.size()},
                                       {"threads", num_threads_}});
  const std::uint64_t sweep_span_id = sweep_span.id();

  // Deduplicate: first occurrence of each uncached key becomes a job, so a
  // point repeated across figure axes solves exactly once. Memory misses
  // consult the disk cache before becoming jobs. Points resolvable right
  // now (memo/disk hits) fire on_row immediately — delivered as
  // cached_copy, since their solve cost was paid earlier — while the rest
  // register as waiters on their key and fire when the one solve of that
  // key lands.
  std::vector<std::string> keys;
  keys.reserve(points.size());
  std::vector<std::size_t> jobs;  // indices into `points` to solve now
  std::unordered_map<std::string, std::size_t> seen;
  std::unordered_map<std::string, std::vector<std::size_t>> waiters;
  std::size_t disk_hits = 0;
  for (std::size_t n = 0; n < points.size(); ++n) {
    keys.push_back(points[n].cache_key());
    if (seen.count(keys.back()) != 0) {
      metrics.dup_points.add();
      if (on_row != nullptr) waiters[keys.back()].push_back(n);
      continue;
    }
    if (auto memoized = cache_.lookup(keys.back())) {
      metrics.memo_hits.add();
      if (TraceWriter* t = global_trace()) {
        t->event("cache_hit", {{"index", n}});
      }
      if (on_row != nullptr) on_row(n, points[n], cached_copy(*memoized));
      continue;
    }
    if (disk_cache_ != nullptr) {
      if (auto loaded = disk_cache_->load(keys.back())) {
        cache_.insert(keys.back(), *loaded);
        ++disk_hits;
        metrics.disk_hits.add();
        if (TraceWriter* t = global_trace()) {
          t->event("disk_hit", {{"index", n}});
        }
        if (on_row != nullptr) on_row(n, points[n], cached_copy(*loaded));
        continue;
      }
    }
    seen.emplace(keys.back(), n);
    jobs.push_back(n);
    if (on_row != nullptr) waiters[keys.back()].push_back(n);
  }

  // Group jobs before fanning out: exact-CTMC points that share a chain
  // topology (same params + truncation, different policies) become one
  // batch job and reuse a single generator skeleton; everything else is a
  // singleton. Batching preserves results bitwise (see ExactCtmcBatch).
  std::vector<std::vector<std::size_t>> groups;
  groups.reserve(jobs.size());
  std::unordered_map<std::string, std::size_t> topology_groups;
  for (const std::size_t n : jobs) {
    const std::string topology = exact_topology_key(points[n]);
    if (topology.empty()) {
      groups.push_back({n});
      continue;
    }
    const auto [it, inserted] = topology_groups.emplace(topology, groups.size());
    if (inserted) {
      groups.push_back({n});
    } else {
      groups[it->second].push_back(n);
    }
  }

  // Fan the job groups over the pool via an atomic work index. Each point's
  // solve is independent and pure, so completion order cannot affect the
  // results.
  std::atomic<std::size_t> next_group{0};
  std::mutex error_mutex;
  std::string first_error;
  const auto record_error = [&](const std::string& key, const char* what) {
    metrics.points_failed.add();
    if (TraceWriter* t = global_trace()) {
      t->event("point_error", {{"key", key}, {"error", what}});
    }
    std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error.empty()) {
      first_error = "sweep point '" + key + "' failed: " + what;
    }
  };
  std::mutex callback_mutex;
  bool callback_failed = false;  // guarded by callback_mutex
  const auto store = [&](std::size_t n, const RunResult& result) {
    cache_.insert(keys[n], result);
    if (disk_cache_ != nullptr) disk_cache_->store(keys[n], result);
    metrics.points_solved.add();
    metrics.point_seconds.record(result.solve_seconds);
    if (TraceWriter* t = global_trace()) {
      t->event("point_done",
               {{"index", n},
                {"solver", solver_name(points[n].solver)},
                {"policy", points[n].policy},
                {"seconds", result.solve_seconds}});
    }
    if (on_row == nullptr) return;
    // Deliver to every input index waiting on this key, serially: the
    // mutex both orders concurrent deliveries and publishes them, so the
    // callback can be lock-free. A throwing callback (e.g. a streaming
    // resume mismatch) fails the whole run with its own message — and
    // ends all further delivery, so a consumer that rejected one row is
    // never handed more — while workers keep solving into the caches.
    // The solving index itself (always the first waiter) sees the fresh
    // result; duplicate indices see a cached_copy, matching the
    // provenance reported on the returned vector.
    std::lock_guard<std::mutex> lock(callback_mutex);
    if (callback_failed) return;
    try {
      for (const std::size_t waiter : waiters[keys[n]]) {
        if (waiter == n) {
          on_row(waiter, points[waiter], result);
        } else {
          on_row(waiter, points[waiter], cached_copy(result));
        }
      }
    } catch (const std::exception& e) {
      callback_failed = true;
      std::lock_guard<std::mutex> error_lock(error_mutex);
      if (first_error.empty()) {
        first_error = std::string("row callback failed: ") + e.what();
      }
    }
  };
  const auto worker = [&] {
    const auto thread_start = std::chrono::steady_clock::now();
    double busy_seconds = 0.0;
    bool worked = false;
    for (;;) {
      const std::size_t g = next_group.fetch_add(1);
      if (g >= groups.size()) break;
      // Time from run() start to pickup: how long this group sat queued
      // behind other work.
      metrics.queue_wait.record(seconds_since_start());
      worked = true;
      const auto group_start = std::chrono::steady_clock::now();
      const std::vector<std::size_t>& group = groups[g];
      if (group.size() == 1) {
        const std::size_t n = group.front();
        try {
          const TraceSpan point_span(
              "point",
              {{"index", n},
               {"solver", solver_name(points[n].solver)},
               {"policy", points[n].policy}},
              sweep_span_id);
          const RunResult result = [&] {
            // Inner solve span: separates pure solver time from the
            // store/deliver tail the point span also covers.
            const TraceSpan solve_span(
                "solve", {{"solver", solver_name(points[n].solver)}});
            return dispatch_run(points[n]);
          }();
          store(n, result);
        } catch (const std::exception& e) {
          record_error(keys[n], e.what());
        }
      } else {
        // Shared-topology batch: build the chain skeleton once, then solve
        // and store per point so one failing policy neither loses the
        // others' results nor gets blamed on the wrong point. A skeleton
        // construction failure (invalid params) is shared by every member.
        try {
          ExactGroupSolver solver(points[group.front()]);
          for (const std::size_t n : group) {
            try {
              const TraceSpan point_span(
                  "point",
                  {{"index", n},
                   {"solver", solver_name(points[n].solver)},
                   {"policy", points[n].policy}},
                  sweep_span_id);
              const RunResult result = [&] {
                const TraceSpan solve_span(
                    "solve", {{"solver", solver_name(points[n].solver)}});
                return solver.solve(points[n]);
              }();
              store(n, result);
            } catch (const std::exception& e) {
              record_error(keys[n], e.what());
            }
          }
        } catch (const std::exception& e) {
          record_error(keys[group.front()], e.what());
        }
      }
      busy_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        group_start)
              .count();
    }
    // Busy fraction of this worker's lifetime — only for threads that
    // actually got work, so a late-starting thread on a drained queue
    // does not drag the distribution toward zero.
    if (worked) {
      const double alive =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        thread_start)
              .count();
      metrics.utilization.record(alive > 0.0 ? busy_seconds / alive : 1.0);
    }
  };
  const int pool_size =
      static_cast<int>(std::min<std::size_t>(groups.size(),
                                             static_cast<std::size_t>(num_threads_)));
  if (pool_size <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(pool_size));
    for (int t = 0; t < pool_size; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }
  if (!first_error.empty()) throw Error(first_error);

  std::vector<RunResult> results;
  results.reserve(points.size());
  std::unordered_map<std::string, bool> solved_now;
  for (const std::size_t n : jobs) solved_now.emplace(keys[n], true);
  std::size_t cache_hits = 0;
  double solve_seconds_total = 0.0;
  for (std::size_t n = 0; n < points.size(); ++n) {
    auto cached = cache_.lookup(keys[n]);
    ESCHED_ASSERT(cached.has_value(), "sweep result missing from cache");
    RunResult result = *cached;
    // The first solve of a point this call is fresh; everything else —
    // intra-call duplicates, prior-call results, disk loads — is a cache
    // hit, and reports ~zero solve_seconds: the cached entry's recorded
    // time was paid by the original solve, and repeating it would inflate
    // cache-effectiveness numbers and ETAs downstream.
    const auto it = solved_now.find(keys[n]);
    result.from_cache = it == solved_now.end() || !it->second;
    if (it != solved_now.end()) it->second = false;
    if (result.from_cache) {
      ++cache_hits;
      result.solve_seconds = 0.0;
    } else {
      solve_seconds_total += result.solve_seconds;
    }
    results.push_back(result);
  }

  const double wall_seconds = seconds_since_start();
  metrics.run_seconds.record(wall_seconds);
  if (TraceWriter* t = global_trace()) {
    t->event("sweep_done", {{"points", points.size()},
                            {"solved", jobs.size()},
                            {"cache_hits", cache_hits},
                            {"wall_seconds", wall_seconds}});
  }
  if (stats != nullptr) {
    stats->total_points = points.size();
    stats->solved_points = jobs.size();
    stats->cache_hits = cache_hits;
    stats->disk_hits = disk_hits;
    stats->threads_used = pool_size;
    stats->wall_seconds = wall_seconds;
    stats->solve_seconds_total = solve_seconds_total;
  }
  return results;
}

}  // namespace esched
