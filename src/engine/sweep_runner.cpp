#include "engine/sweep_runner.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "engine/disk_cache.hpp"

namespace esched {

std::optional<RunResult> ResultCache::lookup(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = results_.find(key);
  if (it == results_.end()) return std::nullopt;
  return it->second;
}

void ResultCache::insert(const std::string& key, const RunResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.insert_or_assign(key, result);
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return results_.size();
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.clear();
}

SweepRunner::SweepRunner(int num_threads) : num_threads_(num_threads) {
  ESCHED_CHECK(num_threads >= 0, "thread count must be >= 0");
  if (num_threads_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads_ = hw == 0 ? 1 : static_cast<int>(hw);
  }
}

SweepRunner::~SweepRunner() = default;

void SweepRunner::set_cache_dir(const std::string& directory) {
  disk_cache_ = std::make_unique<DiskResultCache>(directory);
}

std::vector<RunResult> SweepRunner::run(const std::vector<RunPoint>& points,
                                        SweepStats* stats,
                                        const RowCallback& on_row) {
  const auto start = std::chrono::steady_clock::now();

  // Deduplicate: first occurrence of each uncached key becomes a job, so a
  // point repeated across figure axes solves exactly once. Memory misses
  // consult the disk cache before becoming jobs. Points resolvable right
  // now (memo/disk hits) fire on_row immediately; the rest register as
  // waiters on their key and fire when the one solve of that key lands.
  std::vector<std::string> keys;
  keys.reserve(points.size());
  std::vector<std::size_t> jobs;  // indices into `points` to solve now
  std::unordered_map<std::string, std::size_t> seen;
  std::unordered_map<std::string, std::vector<std::size_t>> waiters;
  std::size_t disk_hits = 0;
  for (std::size_t n = 0; n < points.size(); ++n) {
    keys.push_back(points[n].cache_key());
    if (seen.count(keys.back()) != 0) {
      if (on_row != nullptr) waiters[keys.back()].push_back(n);
      continue;
    }
    if (auto memoized = cache_.lookup(keys.back())) {
      if (on_row != nullptr) on_row(n, points[n], *memoized);
      continue;
    }
    if (disk_cache_ != nullptr) {
      if (auto loaded = disk_cache_->load(keys.back())) {
        cache_.insert(keys.back(), *loaded);
        ++disk_hits;
        if (on_row != nullptr) on_row(n, points[n], *loaded);
        continue;
      }
    }
    seen.emplace(keys.back(), n);
    jobs.push_back(n);
    if (on_row != nullptr) waiters[keys.back()].push_back(n);
  }

  // Group jobs before fanning out: exact-CTMC points that share a chain
  // topology (same params + truncation, different policies) become one
  // batch job and reuse a single generator skeleton; everything else is a
  // singleton. Batching preserves results bitwise (see ExactCtmcBatch).
  std::vector<std::vector<std::size_t>> groups;
  groups.reserve(jobs.size());
  std::unordered_map<std::string, std::size_t> topology_groups;
  for (const std::size_t n : jobs) {
    const std::string topology = exact_topology_key(points[n]);
    if (topology.empty()) {
      groups.push_back({n});
      continue;
    }
    const auto [it, inserted] = topology_groups.emplace(topology, groups.size());
    if (inserted) {
      groups.push_back({n});
    } else {
      groups[it->second].push_back(n);
    }
  }

  // Fan the job groups over the pool via an atomic work index. Each point's
  // solve is independent and pure, so completion order cannot affect the
  // results.
  std::atomic<std::size_t> next_group{0};
  std::mutex error_mutex;
  std::string first_error;
  const auto record_error = [&](const std::string& key, const char* what) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error.empty()) {
      first_error = "sweep point '" + key + "' failed: " + what;
    }
  };
  std::mutex callback_mutex;
  bool callback_failed = false;  // guarded by callback_mutex
  const auto store = [&](std::size_t n, const RunResult& result) {
    cache_.insert(keys[n], result);
    if (disk_cache_ != nullptr) disk_cache_->store(keys[n], result);
    if (on_row == nullptr) return;
    // Deliver to every input index waiting on this key, serially: the
    // mutex both orders concurrent deliveries and publishes them, so the
    // callback can be lock-free. A throwing callback (e.g. a streaming
    // resume mismatch) fails the whole run with its own message — and
    // ends all further delivery, so a consumer that rejected one row is
    // never handed more — while workers keep solving into the caches.
    std::lock_guard<std::mutex> lock(callback_mutex);
    if (callback_failed) return;
    try {
      for (const std::size_t waiter : waiters[keys[n]]) {
        on_row(waiter, points[waiter], result);
      }
    } catch (const std::exception& e) {
      callback_failed = true;
      std::lock_guard<std::mutex> error_lock(error_mutex);
      if (first_error.empty()) {
        first_error = std::string("row callback failed: ") + e.what();
      }
    }
  };
  const auto worker = [&] {
    for (;;) {
      const std::size_t g = next_group.fetch_add(1);
      if (g >= groups.size()) return;
      const std::vector<std::size_t>& group = groups[g];
      if (group.size() == 1) {
        const std::size_t n = group.front();
        try {
          store(n, dispatch_run(points[n]));
        } catch (const std::exception& e) {
          record_error(keys[n], e.what());
        }
        continue;
      }
      // Shared-topology batch: build the chain skeleton once, then solve
      // and store per point so one failing policy neither loses the
      // others' results nor gets blamed on the wrong point. A skeleton
      // construction failure (invalid params) is shared by every member.
      try {
        const ExactGroupSolver solver(points[group.front()]);
        for (const std::size_t n : group) {
          try {
            store(n, solver.solve(points[n]));
          } catch (const std::exception& e) {
            record_error(keys[n], e.what());
          }
        }
      } catch (const std::exception& e) {
        record_error(keys[group.front()], e.what());
      }
    }
  };
  const int pool_size =
      static_cast<int>(std::min<std::size_t>(groups.size(),
                                             static_cast<std::size_t>(num_threads_)));
  if (pool_size <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(pool_size));
    for (int t = 0; t < pool_size; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }
  if (!first_error.empty()) throw Error(first_error);

  std::vector<RunResult> results;
  results.reserve(points.size());
  std::unordered_map<std::string, bool> solved_now;
  for (const std::size_t n : jobs) solved_now.emplace(keys[n], true);
  std::size_t cache_hits = 0;
  for (std::size_t n = 0; n < points.size(); ++n) {
    auto cached = cache_.lookup(keys[n]);
    ESCHED_ASSERT(cached.has_value(), "sweep result missing from cache");
    RunResult result = *cached;
    // The first solve of a point this call is fresh; everything else —
    // intra-call duplicates, prior-call results, disk loads — is a cache
    // hit.
    const auto it = solved_now.find(keys[n]);
    result.from_cache = it == solved_now.end() || !it->second;
    if (it != solved_now.end()) it->second = false;
    if (result.from_cache) ++cache_hits;
    results.push_back(result);
  }

  if (stats != nullptr) {
    stats->total_points = points.size();
    stats->solved_points = jobs.size();
    stats->cache_hits = cache_hits;
    stats->disk_hits = disk_hits;
    stats->threads_used = pool_size;
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  return results;
}

}  // namespace esched
