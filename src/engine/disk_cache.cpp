#include "engine/disk_cache.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#if __has_include(<unistd.h>)
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace esched {

namespace {

constexpr const char* kFormatTag = "esched-cache-v1";

std::string hex_fnv1a(const std::string& text) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(text)));
  return buf;
}

std::string format_field(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::string serialize_run_result(const RunResult& r) {
  std::ostringstream out;
  out << kFormatTag << '\n';
  out << "et " << format_field(r.mean_response_time) << '\n';
  out << "et_i " << format_field(r.mean_response_time_i) << '\n';
  out << "et_e " << format_field(r.mean_response_time_e) << '\n';
  out << "en_i " << format_field(r.mean_jobs_i) << '\n';
  out << "en_e " << format_field(r.mean_jobs_e) << '\n';
  out << "ci " << format_field(r.ci_halfwidth) << '\n';
  out << "p50_i " << format_field(r.p50_i) << '\n';
  out << "p95_i " << format_field(r.p95_i) << '\n';
  out << "p99_i " << format_field(r.p99_i) << '\n';
  out << "p50_e " << format_field(r.p50_e) << '\n';
  out << "p95_e " << format_field(r.p95_e) << '\n';
  out << "p99_e " << format_field(r.p99_e) << '\n';
  out << "boundary " << format_field(r.boundary_mass) << '\n';
  out << "states " << r.num_states << '\n';
  out << "dom_viol " << format_field(r.dom_max_violation) << '\n';
  out << "dom_viol_i " << format_field(r.dom_max_violation_i) << '\n';
  out << "dom_gap " << format_field(r.dom_avg_gap) << '\n';
  out << "dom_checkpoints " << r.dom_checkpoints << '\n';
  out << "iterations " << r.solver_iterations << '\n';
  out << "residual " << format_field(r.solve_residual) << '\n';
  out << "seconds " << format_field(r.solve_seconds) << '\n';
  return out.str();
}

std::optional<RunResult> deserialize_run_result(const std::string& text) {
  std::istringstream in(text);
  std::string tag;
  if (!std::getline(in, tag) || tag != kFormatTag) return std::nullopt;
  RunResult r;
  // Distinct field names, not occurrences: a corrupt entry with one line
  // duplicated and another lost must read as a miss, never as a result
  // with a silently-zeroed metric.
  std::set<std::string> seen;
  std::string name;
  while (in >> name) {
    if (!seen.insert(name).second) return std::nullopt;
    double value = 0.0;
    long integral = 0;
    if (name == "states") {
      if (!(in >> integral)) return std::nullopt;
      r.num_states = integral;
    } else if (name == "dom_checkpoints") {
      if (!(in >> integral)) return std::nullopt;
      r.dom_checkpoints = integral;
    } else if (name == "iterations") {
      if (!(in >> integral)) return std::nullopt;
      r.solver_iterations = static_cast<int>(integral);
    } else {
      if (!(in >> value)) return std::nullopt;
      if (name == "et") r.mean_response_time = value;
      else if (name == "et_i") r.mean_response_time_i = value;
      else if (name == "et_e") r.mean_response_time_e = value;
      else if (name == "en_i") r.mean_jobs_i = value;
      else if (name == "en_e") r.mean_jobs_e = value;
      else if (name == "ci") r.ci_halfwidth = value;
      else if (name == "p50_i") r.p50_i = value;
      else if (name == "p95_i") r.p95_i = value;
      else if (name == "p99_i") r.p99_i = value;
      else if (name == "p50_e") r.p50_e = value;
      else if (name == "p95_e") r.p95_e = value;
      else if (name == "p99_e") r.p99_e = value;
      else if (name == "boundary") r.boundary_mass = value;
      else if (name == "dom_viol") r.dom_max_violation = value;
      else if (name == "dom_viol_i") r.dom_max_violation_i = value;
      else if (name == "dom_gap") r.dom_avg_gap = value;
      else if (name == "residual") r.solve_residual = value;
      else if (name == "seconds") r.solve_seconds = value;
      else return std::nullopt;  // unknown field: written by a newer build
    }
  }
  if (seen.size() != 21) return std::nullopt;
  return r;
}

DiskResultCache::DiskResultCache(std::string directory)
    : directory_(std::move(directory)) {
  ESCHED_CHECK(!directory_.empty(), "cache directory path is empty");
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  ESCHED_CHECK(!ec, "cannot create cache directory '" + directory_ +
                        "': " + ec.message());
}

std::string DiskResultCache::entry_path(const std::string& key) const {
  return directory_ + "/" + hex_fnv1a(key) + ".result";
}

std::optional<RunResult> DiskResultCache::load(const std::string& key) const {
  std::ifstream in(entry_path(key));
  if (!in.good()) return std::nullopt;
  std::string first_line;
  if (!std::getline(in, first_line) || first_line != "key " + key) {
    return std::nullopt;  // hash collision or foreign file: miss
  }
  std::stringstream rest;
  rest << in.rdbuf();
  return deserialize_run_result(rest.str());
}

void DiskResultCache::store(const std::string& key,
                            const RunResult& result) const {
  // Unique temp name per store (pid + in-process counter), then atomic
  // rename: concurrent shard processes may race on the same key and either
  // complete file wins.
  static std::atomic<std::uint64_t> counter{0};
#if __has_include(<unistd.h>)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  const std::string path = entry_path(key);
  const std::string tmp = path + ".tmp." + std::to_string(pid) + "." +
                          std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp);
    if (!out.good()) return;  // unwritable cache: silently skip persistence
    out << "key " << key << '\n' << serialize_run_result(result);
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::remove(tmp.c_str());
}

}  // namespace esched
