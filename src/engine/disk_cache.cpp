#include "engine/disk_cache.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/numeric.hpp"
#include "obs/metrics.hpp"

namespace esched {

namespace {

constexpr const char* kFormatTag = "esched-cache-v1";

/// Disk-cache observability handles, resolved once so load/store stay off
/// the registry mutex.
struct CacheMetrics {
  Counter& hits;                ///< cache.disk.hits
  Counter& misses;              ///< cache.disk.misses
  Counter& stores;              ///< cache.disk.stores
  Counter& gc_removed;          ///< cache.disk.gc.removed
  LogHistogram& load_seconds;   ///< cache.disk.load.seconds
  LogHistogram& store_seconds;  ///< cache.disk.store.seconds
  LogHistogram& gc_seconds;     ///< cache.disk.gc.seconds
};

CacheMetrics& cache_metrics() {
  static CacheMetrics metrics = [] {
    MetricsRegistry& m = global_metrics();
    return CacheMetrics{m.counter("cache.disk.hits"),
                        m.counter("cache.disk.misses"),
                        m.counter("cache.disk.stores"),
                        m.counter("cache.disk.gc.removed"),
                        m.histogram("cache.disk.load.seconds"),
                        m.histogram("cache.disk.store.seconds"),
                        m.histogram("cache.disk.gc.seconds")};
  }();
  return metrics;
}

std::string hex_fnv1a(const std::string& text) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(text)));
  return buf;
}

std::string format_field(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// One persisted RunResult field: its on-disk name and which member it
/// round-trips through. This table is the single source of truth for the
/// serializer, the deserializer, and the expected-field-count check.
struct FieldSpec {
  const char* name;
  double RunResult::* as_double = nullptr;
  long RunResult::* as_long = nullptr;
  int RunResult::* as_int = nullptr;
};

constexpr FieldSpec fd(const char* name, double RunResult::* member) {
  return {name, member, nullptr, nullptr};
}
constexpr FieldSpec fl(const char* name, long RunResult::* member) {
  return {name, nullptr, member, nullptr};
}
constexpr FieldSpec fi(const char* name, int RunResult::* member) {
  return {name, nullptr, nullptr, member};
}

// Order is the on-disk order; names are part of the cache format, so
// renaming one silently invalidates existing entries (they read as
// misses, never as wrong results).
const FieldSpec kRunResultFields[] = {
    fd("et", &RunResult::mean_response_time),
    fd("et_i", &RunResult::mean_response_time_i),
    fd("et_e", &RunResult::mean_response_time_e),
    fd("en_i", &RunResult::mean_jobs_i),
    fd("en_e", &RunResult::mean_jobs_e),
    fd("ci", &RunResult::ci_halfwidth),
    fd("p50_i", &RunResult::p50_i),
    fd("p95_i", &RunResult::p95_i),
    fd("p99_i", &RunResult::p99_i),
    fd("p50_e", &RunResult::p50_e),
    fd("p95_e", &RunResult::p95_e),
    fd("p99_e", &RunResult::p99_e),
    fd("boundary", &RunResult::boundary_mass),
    fl("states", &RunResult::num_states),
    fd("dom_viol", &RunResult::dom_max_violation),
    fd("dom_viol_i", &RunResult::dom_max_violation_i),
    fd("dom_gap", &RunResult::dom_avg_gap),
    fl("dom_checkpoints", &RunResult::dom_checkpoints),
    fi("iterations", &RunResult::solver_iterations),
    fd("residual", &RunResult::solve_residual),
    fd("seconds", &RunResult::solve_seconds),
};

const FieldSpec* find_field(const std::string& name) {
  for (const FieldSpec& field : kRunResultFields) {
    if (name == field.name) return &field;
  }
  return nullptr;
}

}  // namespace

std::size_t run_result_field_count() {
  return std::size(kRunResultFields);
}

std::size_t run_result_packed_bytes() {
  return std::size(kRunResultFields) * 8;
}

void pack_run_result(const RunResult& r, unsigned char* out) {
  for (const FieldSpec& field : kRunResultFields) {
    std::uint64_t word = 0;
    if (field.as_double != nullptr) {
      const double value = r.*field.as_double;
      std::memcpy(&word, &value, sizeof(word));
    } else {
      const std::int64_t value = field.as_long != nullptr
                                     ? static_cast<std::int64_t>(r.*field.as_long)
                                     : static_cast<std::int64_t>(r.*field.as_int);
      std::memcpy(&word, &value, sizeof(word));
    }
    std::memcpy(out, &word, sizeof(word));
    out += sizeof(word);
  }
}

RunResult unpack_run_result(const unsigned char* in) {
  RunResult r;
  for (const FieldSpec& field : kRunResultFields) {
    std::uint64_t word = 0;
    std::memcpy(&word, in, sizeof(word));
    in += sizeof(word);
    if (field.as_double != nullptr) {
      double value = 0.0;
      std::memcpy(&value, &word, sizeof(value));
      r.*field.as_double = value;
    } else {
      std::int64_t value = 0;
      std::memcpy(&value, &word, sizeof(value));
      if (field.as_long != nullptr) r.*field.as_long = static_cast<long>(value);
      else r.*field.as_int = static_cast<int>(value);
    }
  }
  return r;
}

std::string serialize_run_result(const RunResult& r) {
  std::ostringstream out;
  out << kFormatTag << '\n';
  for (const FieldSpec& field : kRunResultFields) {
    out << field.name << ' ';
    if (field.as_double != nullptr) out << format_field(r.*field.as_double);
    else if (field.as_long != nullptr) out << r.*field.as_long;
    else out << r.*field.as_int;
    out << '\n';
  }
  return out.str();
}

std::optional<RunResult> deserialize_run_result(const std::string& text) {
  std::istringstream in(text);
  std::string tag;
  if (!std::getline(in, tag) || tag != kFormatTag) return std::nullopt;
  RunResult r;
  // Distinct field names, not occurrences: a corrupt entry with one line
  // duplicated and another lost must read as a miss, never as a result
  // with a silently-zeroed metric.
  std::set<std::string> seen;
  std::string name;
  while (in >> name) {
    if (!seen.insert(name).second) return std::nullopt;
    const FieldSpec* field = find_field(name);
    if (field == nullptr) return std::nullopt;  // written by a newer build
    if (field->as_double != nullptr) {
      double value = 0.0;
      if (!(in >> value)) return std::nullopt;
      r.*field->as_double = value;
    } else {
      long value = 0;
      if (!(in >> value)) return std::nullopt;
      if (field->as_long != nullptr) r.*field->as_long = value;
      else r.*field->as_int = static_cast<int>(value);
    }
  }
  if (seen.size() != run_result_field_count()) return std::nullopt;
  return r;
}

DiskResultCache::DiskResultCache(std::string directory)
    : directory_(std::move(directory)) {
  ESCHED_CHECK(!directory_.empty(), "cache directory path is empty");
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  ESCHED_CHECK(!ec, "cannot create cache directory '" + directory_ +
                        "': " + ec.message());
}

std::string DiskResultCache::entry_path(const std::string& key) const {
  return directory_ + "/" + hex_fnv1a(key) + ".result";
}

std::optional<RunResult> DiskResultCache::load(const std::string& key) const {
  CacheMetrics& metrics = cache_metrics();
  const ScopedTimer timer(metrics.load_seconds);
  const auto miss = [&] {
    metrics.misses.add();
    return std::nullopt;
  };
  std::ifstream in(entry_path(key));
  if (!in.good()) return miss();
  std::string first_line;
  if (!std::getline(in, first_line) || first_line != "key " + key) {
    return miss();  // hash collision or foreign file: miss
  }
  std::stringstream rest;
  rest << in.rdbuf();
  auto result = deserialize_run_result(rest.str());
  if (!result.has_value()) return miss();
  metrics.hits.add();
  return result;
}

void DiskResultCache::store(const std::string& key,
                            const RunResult& result) const {
  CacheMetrics& metrics = cache_metrics();
  const ScopedTimer timer(metrics.store_seconds, &metrics.stores);
  // Unique temp name (pid + in-process counter, shared discipline from
  // common/atomic_file), streamed serialization, then atomic publish:
  // concurrent shard processes may race on the same key and either
  // complete file wins. An unwritable cache silently skips persistence —
  // the cache is an accelerator, not a correctness dependency — hence the
  // try/catch around the publish instead of atomic_write_file's throw.
  const std::string path = entry_path(key);
  const std::string tmp = unique_tmp_path(path);
  {
    // esched-lint: allow(raw-file-io): streams into a unique temp name
    // from common/atomic_file; published below via atomic_publish_file.
    std::ofstream out(tmp);
    if (!out.good()) return;  // unwritable cache: silently skip persistence
    out << "key " << key << '\n' << serialize_run_result(result);
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return;
    }
  }
  try {
    atomic_publish_file(tmp, path);
  } catch (const Error&) {
    // atomic_publish_file already removed the temp file on failure.
  }
}

std::vector<CacheEntryInfo> DiskResultCache::list_entries(
    bool with_keys) const {
  namespace fs = std::filesystem;
  const auto now = fs::file_time_type::clock::now();
  std::vector<CacheEntryInfo> entries;
  std::error_code ec;
  for (fs::directory_iterator it(directory_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::path& path = it->path();
    if (path.extension() != ".result" || !it->is_regular_file(ec)) continue;
    CacheEntryInfo info;
    info.path = path.string();
    info.bytes = fs::file_size(path, ec);
    if (ec) continue;
    const auto mtime = fs::last_write_time(path, ec);
    if (ec) continue;
    info.age_seconds =
        std::chrono::duration<double>(now - mtime).count();
    if (with_keys) {
      std::ifstream in(info.path);
      std::string first_line;
      if (std::getline(in, first_line) && first_line.rfind("key ", 0) == 0) {
        info.key = first_line.substr(4);
      }
    }
    entries.push_back(std::move(info));
  }
  std::sort(entries.begin(), entries.end(),
            [](const CacheEntryInfo& a, const CacheEntryInfo& b) {
              if (a.age_seconds != b.age_seconds) {
                return a.age_seconds > b.age_seconds;  // oldest first
              }
              return a.path < b.path;
            });
  return entries;
}

CacheGcResult DiskResultCache::gc(std::optional<double> max_age_seconds,
                                  std::optional<std::uintmax_t> max_bytes) const {
  CacheMetrics& metrics = cache_metrics();
  const ScopedTimer timer(metrics.gc_seconds);
  namespace fs = std::filesystem;
  std::error_code ec;
  // Orphaned temp files (a writer died between open and rename) are
  // garbage regardless of the age/size policy — but only once they are
  // demonstrably stale: a live shard process may hold a young one open
  // right now, and unlinking it would silently drop that store.
  constexpr double kTmpStaleSeconds = 3600.0;
  const auto now = fs::file_time_type::clock::now();
  for (fs::directory_iterator it(directory_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.find(".result.tmp.") == std::string::npos) continue;
    std::error_code tmp_ec;
    const auto mtime = fs::last_write_time(it->path(), tmp_ec);
    if (tmp_ec) continue;
    const double age = std::chrono::duration<double>(now - mtime).count();
    if (age > kTmpStaleSeconds) fs::remove(it->path(), ec);
  }

  // Oldest first; keys are not needed for the age/size policy.
  const std::vector<CacheEntryInfo> entries = list_entries(false);
  CacheGcResult result;
  result.scanned = entries.size();
  std::uintmax_t total = 0;
  for (const CacheEntryInfo& entry : entries) total += entry.bytes;
  for (const CacheEntryInfo& entry : entries) {
    const bool too_old =
        max_age_seconds.has_value() && entry.age_seconds > *max_age_seconds;
    const bool over_budget = max_bytes.has_value() && total > *max_bytes;
    if (!too_old && !over_budget) continue;
    std::error_code remove_ec;
    if (!fs::remove(entry.path, remove_ec) || remove_ec) continue;
    ++result.removed;
    metrics.gc_removed.add();
    result.bytes_removed += entry.bytes;
    total -= entry.bytes;
  }
  result.bytes_kept = total;
  return result;
}

}  // namespace esched
