// Sweep result reporting: CSV and JSON persistence plus a console summary,
// built on common/csv and common/table so every scenario emits the same
// uniform schema regardless of which solver produced each row.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/sweep_runner.hpp"

namespace esched {

/// The uniform report schema, one row per RunPoint (input order).
/// Columns: k, rho, mu_i, mu_e, elastic_cap, lambda_i, lambda_e, policy,
/// solver, et, et_i, et_e, en_i, en_e, ci_halfwidth, boundary_mass,
/// iterations, residual, solve_seconds, from_cache.
void write_csv_report(const std::string& path,
                      const std::vector<RunPoint>& points,
                      const std::vector<RunResult>& results);

/// Same rows as a JSON document: {"points": [...], "stats": {...}?}.
void write_json_report(const std::string& path,
                       const std::vector<RunPoint>& points,
                       const std::vector<RunResult>& results,
                       const SweepStats* stats = nullptr);

/// Prints the sweep to `os` as an aligned table (capped at `max_rows` data
/// rows, with an ellipsis note when truncated) followed by a stats line.
void print_sweep_summary(std::ostream& os, const std::vector<RunPoint>& points,
                         const std::vector<RunResult>& results,
                         const SweepStats& stats, std::size_t max_rows = 40);

}  // namespace esched
