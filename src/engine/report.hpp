// Sweep result reporting: CSV and JSON persistence plus named console
// views, built on common/csv and common/table so every scenario emits the
// same uniform schema regardless of which solver produced each row. The
// views render the classic figure/study layouts (winner heat maps, vs-k
// panels, accuracy deltas, tail tables, ...) straight from engine results;
// the bench harnesses and the CLI's --view flag share them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/sweep_runner.hpp"

namespace esched {

/// The uniform report schema, one row per RunPoint (input order). Volatile
/// columns (solve_seconds, from_cache) come last so sharded CSVs can be
/// compared after stripping them.
void write_csv_report(const std::string& path,
                      const std::vector<RunPoint>& points,
                      const std::vector<RunResult>& results);

/// Same rows as a JSON document: {"points": [...], "stats": {...}?}.
void write_json_report(const std::string& path,
                       const std::vector<RunPoint>& points,
                       const std::vector<RunResult>& results,
                       const SweepStats* stats = nullptr);

/// Prints the sweep to `os` as an aligned table (capped at `max_rows` data
/// rows, with an ellipsis note when truncated) followed by a stats line.
void print_sweep_summary(std::ostream& os, const std::vector<RunPoint>& points,
                         const std::vector<RunResult>& results,
                         const SweepStats& stats, std::size_t max_rows = 40);

/// The one-line run trailer ("points: ... | threads: ... | wall: ... s"),
/// including disk hits when a persistent cache served any. Shared by the
/// table view and the CLI's non-table renders so the two never drift.
void print_stats_line(std::ostream& os, const SweepStats& stats);

/// Presentation knobs for the named views. Every field has a generic
/// default; the figure harnesses pass their historical prose so their
/// output stays byte-identical to the pre-engine binaries.
struct ViewOptions {
  /// heatmap: text before "rho = ..." in each map header (e.g.
  /// "Figure 4: ").
  std::string title_prefix;
  /// vs-mu: note appended inside each per-rho rule (e.g. " (mu_I = 1
  /// marks mu_I = mu_E; IF optimal to the right)").
  std::string rho_note;
  /// vs-k: one label per mu_I panel; defaults to "mu_I = <v>, mu_E = <v>".
  std::vector<std::string> panel_labels;
  /// family: display names for the policies (best column / optimality
  /// footer); defaults to the policy specs.
  std::vector<std::string> policy_labels;
  /// family: "E[T] <label>" column headers; defaults to the policy specs.
  std::vector<std::string> column_labels;
  /// table: summary row cap.
  std::size_t max_rows = 40;
};

/// Renders `results` under the named view:
///   table      — generic aligned table + run stats (any scenario)
///   heatmap    — per-rho policy winner maps over the (mu_I, mu_E) grid
///   vs-mu      — per-rho E[T] tables along the mu_I axis (two policies)
///   vs-k       — per-mu_I panels of E[T] along the k axis (two policies)
///   family     — per-case policy-family E[T] + Thm. 5 optimality check
///   accuracy   — QBD vs exact vs simulation relative errors per case
///   tail       — per-class P50/P99 response-time percentiles per case
///   truncation — truncation-level ablation vs deep reference + QBD
///   fit-order  — busy-period fit-order ablation vs the exact chain
///   dominance  — Thm. 3 pointwise work-dominance violations and gaps
/// Throws esched::Error when the scenario lacks the axes a view needs
/// (the message names the requirement) or the view name is unknown.
void print_view(const std::string& view, std::ostream& os,
                const Scenario& scenario, const std::vector<RunPoint>& points,
                const std::vector<RunResult>& results, const SweepStats& stats,
                const ViewOptions& options = {});

/// Names accepted by print_view (and the spec files' "view" key).
std::vector<std::string> report_view_names();

}  // namespace esched
