// Sweep result reporting: CSV and JSON persistence plus named console
// views, built on common/csv and common/table so every scenario emits the
// same uniform schema regardless of which solver produced each row. The
// views render the classic figure/study layouts (winner heat maps, vs-k
// panels, accuracy deltas, tail tables, ...) straight from engine results;
// the bench harnesses and the CLI's --view flag share them.
#pragma once

#include <fstream>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "engine/sweep_runner.hpp"

namespace esched {

/// True when any point carries a non-exponential size distribution, in
/// which case the report schema appends size_dist_i/size_dist_e columns
/// (canonical spec strings). Exponential-only reports keep the exact
/// pre-refactor schema, so every existing golden stays byte-identical.
bool report_has_size_dists(const std::vector<RunPoint>& points);

/// The uniform CSV report schema (one row per RunPoint, input order) is
/// fully deterministic: volatile per-invocation facts — wall time and
/// cache provenance — live in RunResult/SweepStats and the JSON stats
/// block, never in CSV rows. That is what makes shard CSVs merge to the
/// unsharded report byte-for-byte and an interrupted streaming run resume
/// byte-identically. Every CSV report ends in a summary trailer ("# "
/// comment lines) recomputed from the row text alone (see CsvSummary).
///
/// `with_size_dist` selects the size-dist schema; nullopt derives it from
/// `points` via report_has_size_dists. When writing a shard SLICE of a
/// larger sweep, pass report_has_size_dists of the FULL sweep instead —
/// deriving from the slice would let shards of a mixed exp/non-exp
/// size_dist sweep disagree on the header and `esched merge` refuse them.
void write_csv_report(const std::string& path,
                      const std::vector<RunPoint>& points,
                      const std::vector<RunResult>& results,
                      std::optional<bool> with_size_dist = std::nullopt);

/// The deterministic summary trailer of a CSV report: row count plus
/// mean/min/max of the "et" column when the header has one. Accumulates
/// from the *formatted cell text* (not the doubles behind it) in row
/// order, so a merge that re-reads rows from disk reproduces the block
/// byte-for-byte.
class CsvSummary {
 public:
  explicit CsvSummary(const std::vector<std::string>& header);

  /// Folds one data row in (cells must match the header arity).
  void add_row(const std::vector<std::string>& cells);

  /// Writes the "# summary ..." lines.
  void write(std::ostream& os) const;

  std::size_t rows() const { return rows_; }

 private:
  std::ptrdiff_t et_column_ = -1;
  std::size_t rows_ = 0;
  double et_sum_ = 0.0;
  double et_min_ = 0.0;
  double et_max_ = 0.0;
};

/// Streaming CSV report: rows are appended to `path` in input order as a
/// sweep delivers them (feed SweepRunner's RowCallback into add_row), with
/// a flush after every row so a running sweep can be tailed. Completions
/// may arrive out of order; rows are buffered until their predecessors
/// are on disk, so the file is always a clean input-order prefix plus at
/// most one torn line if the process dies mid-write. With resume = true,
/// an existing file with this report's header keeps its complete data
/// rows (any torn tail and old summary trailer are truncated away) and
/// add_row skips the indices already on disk — rerunning the identical
/// command after an interruption yields a byte-identical final CSV.
class StreamingCsvReport {
 public:
  /// Opens `path`. resume = false truncates unconditionally; resume =
  /// true scans an existing file first (throws esched::Error when its
  /// header is complete but does not match the report schema; a file
  /// torn before even the header finished restarts fresh).
  /// `with_size_dist` selects the extended schema with size_dist columns;
  /// a streaming caller must pass what report_has_size_dists would say of
  /// the sweep's points (the CLI derives it from the loaded scenarios) so
  /// streamed files stay byte-identical to batch-written ones.
  StreamingCsvReport(const std::string& path, bool resume,
                     bool with_size_dist = false);

  /// Hands over the result of input index `index`; writes it (and any
  /// buffered successors) once all earlier rows are on disk. An index
  /// already emitted by a resumed file is not rewritten, but its
  /// recomputed row is checked against the kept one — resuming onto a
  /// CSV left by a *different* sweep throws instead of silently mixing
  /// rows, and nothing is appended until every resumed row has been
  /// verified (new rows buffer in the meantime), so a foreign file is
  /// never written to at all. Not thread-safe on its own — SweepRunner
  /// already serializes callback invocations.
  void add_row(std::size_t index, const RunPoint& point,
               const RunResult& result);

  /// Writes the summary trailer and flushes. Requires every index in
  /// [0, total) to have been delivered (or resumed); throws otherwise —
  /// a crashed sweep leaves the file trailer-less and resumable.
  void finish(std::size_t total);

  /// Complete data rows recovered from the pre-existing file.
  std::size_t rows_resumed() const { return resumed_; }
  /// Data rows on disk so far (resumed + newly streamed).
  std::size_t rows_emitted() const { return next_; }

 private:
  /// Truncates the resumed file to its clean prefix and opens it for
  /// appending; deferred to the first actual write so a resume that
  /// fails verification leaves the file bitwise untouched.
  void open_for_append();

  std::string path_;
  bool with_size_dist_ = false;
  std::ofstream out_;
  CsvSummary summary_;
  std::size_t truncate_at_ = 0;  ///< clean-prefix byte length on resume
  bool opened_ = false;
  std::size_t next_ = 0;     ///< lowest index not yet on disk
  std::size_t resumed_ = 0;
  std::size_t verified_ = 0; ///< resumed rows re-checked so far
  bool finished_ = false;
  bool failed_ = false;      ///< a verification failed; refuse all writes
  std::map<std::size_t, std::vector<std::string>> pending_;
  /// FNV-1a of each resumed row's encoded text, for the add_row check.
  std::vector<std::uint64_t> resumed_hashes_;
};

/// Bookkeeping returned by merge_csv_reports.
struct MergeStats {
  std::size_t files = 0;
  std::size_t rows = 0;
};

/// `esched merge`: concatenates the data rows of `inputs` (in argument
/// order — shard order, for shard CSVs) under their common header and
/// recomputes the summary trailer from the merged rows, writing the
/// result to `out_path`. Inputs must share one header byte-for-byte
/// (header-only CSVs from empty shards are fine); their own summary
/// trailers are dropped. Merging shard CSVs of one sweep reproduces the
/// unsharded report exactly. Throws esched::Error on unreadable input,
/// header mismatch, or a malformed/truncated row.
MergeStats merge_csv_reports(const std::vector<std::string>& inputs,
                             const std::string& out_path);

/// `esched merge` for JSON reports (and `esched collect --json`):
/// concatenates the "points" arrays of {"points": [...], "stats": {...}}
/// documents in argument order — shard/chunk order — and recomputes the
/// stats block by summing the inputs' counters (total/solved points,
/// cache/disk hits, wall seconds; threads is the max), mirroring the CSV
/// merge invariant: merged points == the unsharded run's points,
/// value-for-value (numbers re-serialize in shortest round-trip form, so
/// byte identity is NOT promised — the CSV is the byte-exact artifact;
/// wall-clock stats are volatile either way). Every point object must
/// carry the same keys in the same order as the first input's first point
/// (the JSON "header"); inputs with zero points are fine. The stats block
/// is omitted when no input has one. Writes via temp + atomic rename, so
/// out_path may name an input and a failed merge leaves no torn file.
/// Throws esched::Error on unreadable/unparseable input or key mismatch.
MergeStats merge_json_reports(const std::vector<std::string>& inputs,
                              const std::string& out_path);

/// One-line-per-completed-row progress printer for long sweeps: feed the
/// returned callback into SweepRunner::run (or compose it with a
/// streaming report's add_row). Each completed row prints
///   "row <offset+index+1>/<total> <solver> <policy> k=<k> rho=<rho> "
///   "et=<E[T]> (<solve s> s)"
/// to `os`, flushed per line so `esched run --progress` and the dist
/// workers share one tailable progress path. `offset` shifts the printed
/// index for callers running a slice of a larger sweep (shards, queue
/// chunks). The callback is invoked serialized by SweepRunner, so it
/// needs no locking of its own.
RowCallback progress_callback(std::size_t total, std::ostream& os,
                              std::size_t offset = 0);

/// Same rows as a JSON document: {"points": [...], "stats": {...}?}.
/// `with_size_dist` as in write_csv_report.
void write_json_report(const std::string& path,
                       const std::vector<RunPoint>& points,
                       const std::vector<RunResult>& results,
                       const SweepStats* stats = nullptr,
                       std::optional<bool> with_size_dist = std::nullopt);

/// Prints the sweep to `os` as an aligned table (capped at `max_rows` data
/// rows, with an ellipsis note when truncated) followed by a stats line.
void print_sweep_summary(std::ostream& os, const std::vector<RunPoint>& points,
                         const std::vector<RunResult>& results,
                         const SweepStats& stats, std::size_t max_rows = 40);

/// The one-line run trailer ("points: ... | threads: ... | wall: ... s"),
/// including disk hits when a persistent cache served any. Shared by the
/// table view and the CLI's non-table renders so the two never drift.
void print_stats_line(std::ostream& os, const SweepStats& stats);

/// Presentation knobs for the named views. Every field has a generic
/// default; the figure harnesses pass their historical prose so their
/// output stays byte-identical to the pre-engine binaries.
struct ViewOptions {
  /// heatmap: text before "rho = ..." in each map header (e.g.
  /// "Figure 4: ").
  std::string title_prefix;
  /// vs-mu: note appended inside each per-rho rule (e.g. " (mu_I = 1
  /// marks mu_I = mu_E; IF optimal to the right)").
  std::string rho_note;
  /// vs-k: one label per mu_I panel; defaults to "mu_I = <v>, mu_E = <v>".
  std::vector<std::string> panel_labels;
  /// family: display names for the policies (best column / optimality
  /// footer); defaults to the policy specs.
  std::vector<std::string> policy_labels;
  /// family: "E[T] <label>" column headers; defaults to the policy specs.
  std::vector<std::string> column_labels;
  /// table: summary row cap.
  std::size_t max_rows = 40;
};

/// Renders `results` under the named view:
///   table      — generic aligned table + run stats (any scenario)
///   heatmap    — per-rho policy winner maps over the (mu_I, mu_E) grid
///   vs-mu      — per-rho E[T] tables along the mu_I axis (two policies)
///   vs-k       — per-mu_I panels of E[T] along the k axis (two policies)
///   family     — per-case policy-family E[T] + Thm. 5 optimality check
///   accuracy   — QBD vs exact vs simulation relative errors per case
///   tail       — per-class P50/P99 response-time percentiles per case
///   truncation — truncation-level ablation vs deep reference + QBD
///   fit-order  — busy-period fit-order ablation vs the exact chain
///   dominance  — Thm. 3 pointwise work-dominance violations and gaps
///   scv        — per-case E[T] along the size_dist axis (SCV robustness)
/// Throws esched::Error when the scenario lacks the axes a view needs
/// (the message names the requirement) or the view name is unknown.
void print_view(const std::string& view, std::ostream& os,
                const Scenario& scenario, const std::vector<RunPoint>& points,
                const std::vector<RunResult>& results, const SweepStats& stats,
                const ViewOptions& options = {});

/// Names accepted by print_view (and the spec files' "view" key).
std::vector<std::string> report_view_names();

}  // namespace esched
