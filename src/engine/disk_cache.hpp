// Persistent result cache: RunResults stored on disk keyed on
// RunPoint::cache_key(), so repeated CLI invocations (and CI) skip points
// that have already been solved. One small text file per entry, named by
// the FNV-1a hash of the key and carrying the full key inside (a hash
// collision therefore reads as a miss, never as a wrong result). Writes go
// through a temp file + atomic rename, so concurrent shard processes can
// share one cache directory without locking. `esched cache ls/gc` sit on
// the list_entries()/gc() manifest API.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/solver_dispatch.hpp"

namespace esched {

/// Exact text round-trip of a result (doubles via %.17g); load() of a
/// store()d entry reproduces the RunResult bitwise. from_cache is not
/// persisted — provenance belongs to the run that observes the hit.
/// Serializer, deserializer, and the completeness check all iterate one
/// shared field table, so adding a RunResult field means adding exactly
/// one table entry and the three can never desync.
std::string serialize_run_result(const RunResult& result);
/// Inverse of serialize_run_result; std::nullopt on malformed/versioned-out
/// text (a corrupt entry is a miss, not an error).
std::optional<RunResult> deserialize_run_result(const std::string& text);
/// Number of persisted RunResult fields (the shared table's size); a
/// deserialized entry must carry exactly this many distinct fields.
std::size_t run_result_field_count();

/// Fixed binary encoding of the same field table, for the mmap'd table
/// tier (engine/shm_cache): every field occupies 8 host-endian bytes
/// (doubles bit-cast, longs/ints sign-extended to int64), so the packed
/// size is run_result_field_count() * 8 and pack/unpack round-trip a
/// RunResult bitwise. from_cache is not packed, matching the text format.
std::size_t run_result_packed_bytes();
void pack_run_result(const RunResult& result, unsigned char* out);
RunResult unpack_run_result(const unsigned char* in);

/// One cache entry as seen by `esched cache ls/gc`. Entries live in one of
/// two tiers: "table" (a slot in the mmap'd open-addressing table) or
/// "file" (a per-entry .result file, the spill/cold tier).
struct CacheEntryInfo {
  std::string path;         ///< entry file, or the table file for slots
  std::string key;          ///< full cache key stored inside the entry
  std::uintmax_t bytes = 0; ///< file size, or slot size for table entries
  double age_seconds = 0.0; ///< now - mtime at scan time (0 for slots)
  std::string tier = "file";
};

/// Outcome of a gc() pass.
struct CacheGcResult {
  std::size_t scanned = 0;         ///< entries found before eviction
  std::size_t removed = 0;         ///< entries deleted
  std::uintmax_t bytes_removed = 0;
  std::uintmax_t bytes_kept = 0;
};

/// Directory-backed cache. Construction creates the directory (throws when
/// that fails); lookups and stores never throw on I/O problems — a cache
/// that cannot be read just misses, and a failed store leaves the solve
/// result intact.
class DiskResultCache {
 public:
  explicit DiskResultCache(std::string directory);

  std::optional<RunResult> load(const std::string& key) const;
  void store(const std::string& key, const RunResult& result) const;

  /// Manifest of every entry in the directory, oldest first (ties broken
  /// by path for determinism). Unreadable files are skipped. Reading a
  /// key means opening the entry file, so callers that only need
  /// age/size (gc) pass with_keys = false.
  std::vector<CacheEntryInfo> list_entries(bool with_keys = true) const;

  /// Evicts entries oldest-first: first everything older than
  /// `max_age_seconds` (when set), then — while the directory still
  /// exceeds `max_bytes` (when set) — the oldest survivors. Temp files
  /// from crashed writers are removed too once they are stale (> 1 h
  /// old); younger ones may belong to a live concurrent store.
  CacheGcResult gc(std::optional<double> max_age_seconds,
                   std::optional<std::uintmax_t> max_bytes) const;

  const std::string& directory() const { return directory_; }

  /// Path of the entry file a key maps to (exposed for tests/tooling).
  std::string entry_path(const std::string& key) const;

 private:
  std::string directory_;
};

}  // namespace esched
