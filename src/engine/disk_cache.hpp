// Persistent result cache: RunResults stored on disk keyed on
// RunPoint::cache_key(), so repeated CLI invocations (and CI) skip points
// that have already been solved. One small text file per entry, named by
// the FNV-1a hash of the key and carrying the full key inside (a hash
// collision therefore reads as a miss, never as a wrong result). Writes go
// through a temp file + atomic rename, so concurrent shard processes can
// share one cache directory without locking.
#pragma once

#include <optional>
#include <string>

#include "engine/solver_dispatch.hpp"

namespace esched {

/// Exact text round-trip of a result (doubles via %.17g); load() of a
/// store()d entry reproduces the RunResult bitwise. from_cache is not
/// persisted — provenance belongs to the run that observes the hit.
std::string serialize_run_result(const RunResult& result);
/// Inverse of serialize_run_result; std::nullopt on malformed/versioned-out
/// text (a corrupt entry is a miss, not an error).
std::optional<RunResult> deserialize_run_result(const std::string& text);

/// Directory-backed cache. Construction creates the directory (throws when
/// that fails); lookups and stores never throw on I/O problems — a cache
/// that cannot be read just misses, and a failed store leaves the solve
/// result intact.
class DiskResultCache {
 public:
  explicit DiskResultCache(std::string directory);

  std::optional<RunResult> load(const std::string& key) const;
  void store(const std::string& key, const RunResult& result) const;

  const std::string& directory() const { return directory_; }

  /// Path of the entry file a key maps to (exposed for tests/tooling).
  std::string entry_path(const std::string& key) const;

 private:
  std::string directory_;
};

}  // namespace esched
