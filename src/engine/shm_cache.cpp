#include "engine/shm_cache.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/numeric.hpp"
#include "obs/metrics.hpp"

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define ESCHED_SHM_CACHE_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#else
#define ESCHED_SHM_CACHE_POSIX 0
#endif

namespace esched {

namespace {

// ---- on-disk format ------------------------------------------------------
// Header (4096 bytes, offsets below, everything u64 host-endian — the
// endian marker rejects a table written by a foreign-endian host):
constexpr char kMagic[8] = {'E', 'S', 'C', 'H', 'E', 'D', 'T', '1'};
constexpr std::uint64_t kEndianMarker = 0x0123456789abcdefull;
constexpr std::uint64_t kFormatVersion = 1;
constexpr std::uint64_t kHeaderBytes = 4096;
constexpr std::uint64_t kHdrMagic = 0;
constexpr std::uint64_t kHdrEndian = 8;
constexpr std::uint64_t kHdrVersion = 16;
constexpr std::uint64_t kHdrSlotCount = 24;
constexpr std::uint64_t kHdrSlotBytes = 32;
constexpr std::uint64_t kHdrPayloadBytes = 40;
constexpr std::uint64_t kHdrKeyCapacity = 48;
constexpr std::uint64_t kHdrStoreSeq = 56;  ///< atomic: next store sequence

// Slot (512 bytes): the state word at offset 0 is the only word ever
// touched with atomics; everything behind it is written exactly once
// between the CAS claim and the release publish, then immutable.
constexpr std::uint64_t kSlotBytes = 512;
constexpr std::uint64_t kSlotState = 0;
constexpr std::uint64_t kSlotKeyHash = 8;
constexpr std::uint64_t kSlotSeq = 16;
constexpr std::uint64_t kSlotKeyLen = 24;
constexpr std::uint64_t kSlotChecksum = 32;
constexpr std::uint64_t kSlotPayload = 40;

/// Probe window: a lookup or store scans at most this many slots from the
/// key's home slot before giving up (a store that gives up spills to the
/// file tier, so a nearly-full table degrades, never fails).
constexpr std::uint64_t kMaxProbes = 64;

std::uint64_t read_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void write_u64(unsigned char* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

std::atomic_ref<std::uint64_t> as_atomic_u64(unsigned char* p) {
  return std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(p));
}

std::uint64_t key_offset_in_slot() {
  return kSlotPayload + run_result_packed_bytes();
}

std::uint64_t slot_key_capacity() { return kSlotBytes - key_offset_in_slot(); }

/// Chained FNV-1a over (key length, key bytes, payload): the published
/// entry's integrity word. Verified against local copies on load, so a
/// mutated slot can at worst read as a miss.
std::uint64_t entry_checksum(std::uint64_t key_len, const unsigned char* key,
                             const unsigned char* payload,
                             std::uint64_t payload_bytes) {
  std::uint64_t h = fnv1a64_bytes(&key_len, sizeof(key_len));
  h = fnv1a64_bytes(key, key_len, h);
  return fnv1a64_bytes(payload, payload_bytes, h);
}

void fill_header(unsigned char* h, std::uint64_t slot_count,
                 std::uint64_t store_seq) {
  std::memset(h, 0, kHeaderBytes);
  std::memcpy(h + kHdrMagic, kMagic, sizeof(kMagic));
  write_u64(h + kHdrEndian, kEndianMarker);
  write_u64(h + kHdrVersion, kFormatVersion);
  write_u64(h + kHdrSlotCount, slot_count);
  write_u64(h + kHdrSlotBytes, kSlotBytes);
  write_u64(h + kHdrPayloadBytes, run_result_packed_bytes());
  write_u64(h + kHdrKeyCapacity, slot_key_capacity());
  write_u64(h + kHdrStoreSeq, store_seq);
}

/// True when `h` describes a table this build can use. Geometry is part of
/// the contract: a table with a different slot or payload size (an older
/// or newer RunResult) is incompatible and reads as "no table".
bool header_compatible(const unsigned char* h, std::uint64_t file_bytes,
                       std::uint64_t* slot_count_out) {
  if (std::memcmp(h + kHdrMagic, kMagic, sizeof(kMagic)) != 0) return false;
  if (read_u64(h + kHdrEndian) != kEndianMarker) return false;
  if (read_u64(h + kHdrVersion) != kFormatVersion) return false;
  const std::uint64_t slot_count = read_u64(h + kHdrSlotCount);
  if (slot_count == 0 || !std::has_single_bit(slot_count)) return false;
  if (read_u64(h + kHdrSlotBytes) != kSlotBytes) return false;
  if (read_u64(h + kHdrPayloadBytes) != run_result_packed_bytes()) return false;
  if (read_u64(h + kHdrKeyCapacity) != slot_key_capacity()) return false;
  if (file_bytes < kHeaderBytes + slot_count * kSlotBytes) return false;
  *slot_count_out = slot_count;
  return true;
}

/// Mmap/observability handles, resolved once (registry lookups take a
/// mutex; probes must stay off it).
struct ShmMetrics {
  Counter& hits;               ///< cache.shm.hits
  Counter& misses;             ///< cache.shm.misses
  Counter& stores;             ///< cache.shm.stores
  Counter& spills;             ///< cache.shm.spills
  Counter& evictions;          ///< cache.shm.evictions
  LogHistogram& probe_length;  ///< cache.shm.probe.length
};

ShmMetrics& shm_metrics() {
  static ShmMetrics metrics = [] {
    MetricsRegistry& m = global_metrics();
    return ShmMetrics{m.counter("cache.shm.hits"),
                      m.counter("cache.shm.misses"),
                      m.counter("cache.shm.stores"),
                      m.counter("cache.shm.spills"),
                      m.counter("cache.shm.evictions"),
                      m.histogram("cache.shm.probe.length")};
  }();
  return metrics;
}

#if ESCHED_SHM_CACHE_POSIX

/// Maps `path` read-write/shared and validates the header. Returns the
/// base or nullptr; never throws — an unusable table means "no hot tier".
unsigned char* map_table_file(const std::string& path, std::uint64_t* bytes,
                              std::uint64_t* slot_count) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return nullptr;
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < static_cast<off_t>(kHeaderBytes)) {
    ::close(fd);
    return nullptr;
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (base == MAP_FAILED) return nullptr;
  std::uint64_t slots = 0;
  if (!header_compatible(static_cast<unsigned char*>(base), size, &slots)) {
    ::munmap(base, size);
    return nullptr;
  }
  *bytes = size;
  *slot_count = slots;
  return static_cast<unsigned char*>(base);
}

/// Creates the table file if absent: header + zeroed slots, written to a
/// unique temp sibling and published with link(2), so concurrent creators
/// race cleanly — exactly one table survives and every loser maps it.
/// The slot region is ftruncate-extended (sparse), so a fresh default
/// table costs pages only as slots are touched.
bool create_table_file(const std::string& path, std::uint64_t slot_count) {
  const std::string tmp = unique_tmp_path(path);
  const int fd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return false;
  const auto fail = [&] {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  };
  const off_t total =
      static_cast<off_t>(kHeaderBytes + slot_count * kSlotBytes);
  if (::ftruncate(fd, total) != 0) return fail();
  unsigned char header[kHeaderBytes];
  fill_header(header, slot_count, 0);
  if (::pwrite(fd, header, sizeof(header), 0) !=
      static_cast<ssize_t>(sizeof(header))) {
    return fail();
  }
  ::close(fd);
  if (::link(tmp.c_str(), path.c_str()) != 0) {
    const bool lost_race = errno == EEXIST;
    ::unlink(tmp.c_str());
    return lost_race;  // someone else published a table: map theirs
  }
  ::unlink(tmp.c_str());
  return true;
}

#endif  // ESCHED_SHM_CACHE_POSIX

}  // namespace

std::string ShmResultCache::table_path(const std::string& directory) {
  return directory + "/table.esched";
}

std::uint64_t ShmResultCache::slot_bytes() const { return kSlotBytes; }

std::uint64_t ShmResultCache::key_capacity() const {
  return slot_key_capacity();
}

bool ShmResultCache::representable(const std::string& key) const {
  return key.size() <= slot_key_capacity();
}

ShmResultCache::ShmResultCache(std::string path, unsigned char* base,
                               std::uint64_t bytes, std::uint64_t slot_count)
    : path_(std::move(path)),
      base_(base),
      mapped_bytes_(bytes),
      slot_count_(slot_count) {}

ShmResultCache::~ShmResultCache() { unmap(); }

unsigned char* ShmResultCache::slot_ptr(std::uint64_t index) const {
  return base_ + kHeaderBytes + index * kSlotBytes;
}

#if ESCHED_SHM_CACHE_POSIX

void ShmResultCache::unmap() {
  if (base_ != nullptr) ::munmap(base_, mapped_bytes_);
  base_ = nullptr;
  mapped_bytes_ = 0;
}

std::unique_ptr<ShmResultCache> ShmResultCache::open_existing(
    const std::string& directory) {
  const std::string path = table_path(directory);
  std::uint64_t bytes = 0;
  std::uint64_t slots = 0;
  unsigned char* base = map_table_file(path, &bytes, &slots);
  if (base == nullptr) return nullptr;
  return std::unique_ptr<ShmResultCache>(
      new ShmResultCache(path, base, bytes, slots));
}

std::unique_ptr<ShmResultCache> ShmResultCache::open_or_create(
    const std::string& directory, std::uint64_t slot_count) {
  if (auto existing = open_existing(directory)) return existing;
  slot_count = std::bit_ceil(std::max(slot_count, kMinSlotCount));
  if (!create_table_file(table_path(directory), slot_count)) return nullptr;
  return open_existing(directory);
}

#else  // !ESCHED_SHM_CACHE_POSIX

void ShmResultCache::unmap() {}

std::unique_ptr<ShmResultCache> ShmResultCache::open_existing(
    const std::string&) {
  return nullptr;
}

std::unique_ptr<ShmResultCache> ShmResultCache::open_or_create(
    const std::string&, std::uint64_t) {
  return nullptr;
}

#endif  // ESCHED_SHM_CACHE_POSIX

std::optional<RunResult> ShmResultCache::load(const std::string& key) const {
  ShmMetrics& metrics = shm_metrics();
  const std::uint64_t payload_bytes = run_result_packed_bytes();
  const std::uint64_t key_off = key_offset_in_slot();
  if (key.size() > slot_key_capacity()) {
    metrics.misses.add();
    return std::nullopt;
  }
  const std::uint64_t hash = fnv1a64(key);
  const std::uint64_t mask = slot_count_ - 1;
  const std::uint64_t probes = std::min(kMaxProbes, slot_count_);
  unsigned char payload[kSlotBytes];
  unsigned char slot_key[kSlotBytes];
  for (std::uint64_t probe = 0; probe < probes; ++probe) {
    unsigned char* slot = slot_ptr((hash + probe) & mask);
    // The acquire pairs with the storer's release: once `valid` is seen,
    // every body byte written before the publish is visible.
    const std::uint64_t state =
        as_atomic_u64(slot + kSlotState).load(std::memory_order_acquire);
    if (state == kStateEmpty) break;  // end of this key's probe chain
    if (state != kStateValid) continue;  // mid-store or wedged writer
    if (read_u64(slot + kSlotKeyHash) != hash) continue;
    const std::uint64_t key_len = read_u64(slot + kSlotKeyLen);
    if (key_len != key.size() || key_len > slot_key_capacity()) continue;
    // Copy body first, checksum the copies: whatever happens to the slot
    // afterwards, the result we return is the one the checksum vouches
    // for. A mismatch (torn write, corruption) is a miss, never an error.
    std::memcpy(payload, slot + kSlotPayload, payload_bytes);
    std::memcpy(slot_key, slot + key_off, key_len);
    if (std::memcmp(slot_key, key.data(), key_len) != 0) continue;
    const std::uint64_t expected =
        entry_checksum(key_len, slot_key, payload, payload_bytes);
    if (read_u64(slot + kSlotChecksum) != expected) continue;
    metrics.hits.add();
    metrics.probe_length.record(static_cast<double>(probe + 1));
    return unpack_run_result(payload);
  }
  metrics.misses.add();
  return std::nullopt;
}

bool ShmResultCache::store(const std::string& key, const RunResult& result) {
  ShmMetrics& metrics = shm_metrics();
  const std::uint64_t payload_bytes = run_result_packed_bytes();
  const std::uint64_t key_off = key_offset_in_slot();
  if (key.size() > slot_key_capacity()) {
    metrics.spills.add();
    return false;
  }
  const std::uint64_t hash = fnv1a64(key);
  const std::uint64_t mask = slot_count_ - 1;
  const std::uint64_t probes = std::min(kMaxProbes, slot_count_);
  unsigned char payload[kSlotBytes];
  pack_run_result(result, payload);
  for (std::uint64_t probe = 0; probe < probes; ++probe) {
    unsigned char* slot = slot_ptr((hash + probe) & mask);
    auto state = as_atomic_u64(slot + kSlotState);
    const std::uint64_t seen = state.load(std::memory_order_acquire);
    if (seen == kStateValid) {
      // Results are deterministic in the key, so an existing entry for
      // this key makes the store a no-op (first writer wins).
      if (read_u64(slot + kSlotKeyHash) == hash &&
          read_u64(slot + kSlotKeyLen) == key.size() &&
          std::memcmp(slot + key_off, key.data(), key.size()) == 0) {
        return true;
      }
      continue;
    }
    if (seen != kStateEmpty) continue;  // someone else is writing here
    std::uint64_t expected = kStateEmpty;
    if (!state.compare_exchange_strong(expected, kStateWriting,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      continue;  // lost the claim race; probe onward
    }
    // Slot is ours. A crash between here and the publish wedges the slot
    // at `writing` — readers skip it, gc compaction reclaims it.
    const std::uint64_t seq = as_atomic_u64(base_ + kHdrStoreSeq)
                                  .fetch_add(1, std::memory_order_relaxed);
    write_u64(slot + kSlotKeyHash, hash);
    write_u64(slot + kSlotSeq, seq);
    write_u64(slot + kSlotKeyLen, key.size());
    std::memcpy(slot + kSlotPayload, payload, payload_bytes);
    std::memcpy(slot + key_off, key.data(), key.size());
    write_u64(slot + kSlotChecksum,
              entry_checksum(key.size(),
                             reinterpret_cast<const unsigned char*>(key.data()),
                             payload, payload_bytes));
    state.store(kStateValid, std::memory_order_release);
    metrics.stores.add();
    metrics.probe_length.record(static_cast<double>(probe + 1));
    return true;
  }
  metrics.spills.add();  // probe window full: caller stores to the file tier
  return false;
}

ShmTableInfo ShmResultCache::info() const {
  ShmTableInfo info;
  info.path = path_;
  info.format_version = kFormatVersion;
  info.slot_count = slot_count_;
  info.slot_bytes = kSlotBytes;
  info.payload_bytes = run_result_packed_bytes();
  info.key_capacity = slot_key_capacity();
  info.header_bytes = kHeaderBytes;
  info.payload_offset = kSlotPayload;
  info.key_offset = key_offset_in_slot();
  std::error_code ec;
  info.file_bytes = std::filesystem::file_size(path_, ec);
  if (ec) info.file_bytes = 0;
  for (std::uint64_t i = 0; i < slot_count_; ++i) {
    unsigned char* slot = slot_ptr(i);
    const std::uint64_t state =
        as_atomic_u64(slot + kSlotState).load(std::memory_order_acquire);
    if (state == kStateValid) ++info.valid_slots;
    else if (state != kStateEmpty) ++info.wedged_slots;
  }
  return info;
}

std::vector<CacheEntryInfo> ShmResultCache::list_entries() const {
  const std::uint64_t payload_bytes = run_result_packed_bytes();
  const std::uint64_t key_off = key_offset_in_slot();
  struct Row {
    std::uint64_t seq;
    CacheEntryInfo info;
  };
  std::vector<Row> rows;
  for (std::uint64_t i = 0; i < slot_count_; ++i) {
    unsigned char* slot = slot_ptr(i);
    const std::uint64_t state =
        as_atomic_u64(slot + kSlotState).load(std::memory_order_acquire);
    if (state != kStateValid) continue;
    const std::uint64_t key_len = read_u64(slot + kSlotKeyLen);
    if (key_len > slot_key_capacity()) continue;
    const std::uint64_t expected = entry_checksum(
        key_len, slot + key_off, slot + kSlotPayload, payload_bytes);
    if (read_u64(slot + kSlotChecksum) != expected) continue;  // corrupt
    Row row;
    row.seq = read_u64(slot + kSlotSeq);
    row.info.path = path_;
    row.info.key.assign(reinterpret_cast<const char*>(slot + key_off),
                        key_len);
    row.info.bytes = kSlotBytes;
    row.info.age_seconds = 0.0;
    row.info.tier = "table";
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.seq != b.seq) return a.seq < b.seq;  // oldest store first
    return a.info.key < b.info.key;
  });
  std::vector<CacheEntryInfo> entries;
  entries.reserve(rows.size());
  for (Row& row : rows) entries.push_back(std::move(row.info));
  return entries;
}

std::size_t ShmResultCache::compact(std::uint64_t keep_newest) {
#if !ESCHED_SHM_CACHE_POSIX
  (void)keep_newest;
  return 0;
#else
  ShmMetrics& metrics = shm_metrics();
  const std::uint64_t payload_bytes = run_result_packed_bytes();
  const std::uint64_t key_off = key_offset_in_slot();
  // Snapshot the survivors: every valid, checksum-clean entry, newest
  // (highest store seq) preferred. Wedged and corrupt slots never survive
  // a rebuild — that is the point of compaction.
  struct Entry {
    std::uint64_t seq;
    std::string key;
    std::vector<unsigned char> payload;
  };
  std::vector<Entry> entries;
  for (std::uint64_t i = 0; i < slot_count_; ++i) {
    unsigned char* slot = slot_ptr(i);
    const std::uint64_t state =
        as_atomic_u64(slot + kSlotState).load(std::memory_order_acquire);
    if (state != kStateValid) continue;
    const std::uint64_t key_len = read_u64(slot + kSlotKeyLen);
    if (key_len > slot_key_capacity()) continue;
    const std::uint64_t expected = entry_checksum(
        key_len, slot + key_off, slot + kSlotPayload, payload_bytes);
    if (read_u64(slot + kSlotChecksum) != expected) continue;
    Entry entry;
    entry.seq = read_u64(slot + kSlotSeq);
    entry.key.assign(reinterpret_cast<const char*>(slot + key_off), key_len);
    entry.payload.assign(slot + kSlotPayload,
                         slot + kSlotPayload + payload_bytes);
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.key < b.key;
            });
  const std::size_t keep =
      std::min<std::size_t>(entries.size(), keep_newest);
  const std::size_t dropped = entries.size() - keep;
  entries.erase(entries.begin(), entries.end() - static_cast<std::ptrdiff_t>(keep));

  // Rebuild at <= 50% load (retrying larger if survivors cluster past the
  // probe window), renumbering sequences densely from zero.
  std::uint64_t new_count = std::bit_ceil(std::max<std::uint64_t>(
      keep * 2, std::min(slot_count_, kMinSlotCount)));
  std::string image;
  for (;; new_count *= 2) {
    image.assign(kHeaderBytes + new_count * kSlotBytes, '\0');
    unsigned char* buf = reinterpret_cast<unsigned char*>(image.data());
    fill_header(buf, new_count, entries.size());
    const std::uint64_t mask = new_count - 1;
    const std::uint64_t probes = std::min(kMaxProbes, new_count);
    bool ok = true;
    for (std::size_t n = 0; n < entries.size() && ok; ++n) {
      const Entry& entry = entries[n];
      const std::uint64_t hash = fnv1a64(entry.key);
      ok = false;
      for (std::uint64_t probe = 0; probe < probes; ++probe) {
        unsigned char* slot =
            buf + kHeaderBytes + ((hash + probe) & mask) * kSlotBytes;
        if (read_u64(slot + kSlotState) != kStateEmpty) continue;
        write_u64(slot + kSlotState, kStateValid);
        write_u64(slot + kSlotKeyHash, hash);
        write_u64(slot + kSlotSeq, n);
        write_u64(slot + kSlotKeyLen, entry.key.size());
        std::memcpy(slot + kSlotPayload, entry.payload.data(), payload_bytes);
        std::memcpy(slot + key_off, entry.key.data(), entry.key.size());
        write_u64(slot + kSlotChecksum,
                  entry_checksum(entry.key.size(),
                                 reinterpret_cast<const unsigned char*>(
                                     entry.key.data()),
                                 entry.payload.data(), payload_bytes));
        ok = true;
        break;
      }
    }
    if (ok) break;
  }

  // Publish the rebuilt table over the old file and remap. Processes still
  // mapping the old inode keep a consistent (orphaned) view; their stores
  // land in a file nobody new will open — lost cache entries, never lost
  // correctness.
  atomic_write_file(path_, image);
  unmap();
  std::uint64_t bytes = 0;
  std::uint64_t slots = 0;
  base_ = map_table_file(path_, &bytes, &slots);
  ESCHED_CHECK(base_ != nullptr,
               "cannot remap compacted cache table '" + path_ + "'");
  mapped_bytes_ = bytes;
  slot_count_ = slots;
  metrics.evictions.add(dropped);
  return dropped;
#endif
}

// ---- TieredResultCache ---------------------------------------------------

TieredResultCache::TieredResultCache(std::string directory)
    : TieredResultCache(std::move(directory), Options{}) {}

TieredResultCache::TieredResultCache(std::string directory, Options options)
    : files_(std::move(directory)) {
  if (!options.use_table) return;
  table_ = options.create_table
               ? ShmResultCache::open_or_create(files_.directory(),
                                                options.create_slots)
               : ShmResultCache::open_existing(files_.directory());
}

std::optional<RunResult> TieredResultCache::load(const std::string& key) const {
  if (table_ != nullptr) {
    if (auto hit = table_->load(key)) return hit;
  }
  auto file_hit = files_.load(key);
  if (file_hit.has_value() && table_ != nullptr) {
    // Promote: a directory holding only per-entry files upgrades itself
    // entry by entry as keys are touched. The file copy is dropped only
    // once the slot is published, so the entry is never lost — and never
    // counted in both tiers by ls/gc.
    if (table_->store(key, *file_hit)) {
      std::error_code ec;
      std::filesystem::remove(files_.entry_path(key), ec);
    }
  }
  return file_hit;
}

void TieredResultCache::store(const std::string& key,
                              const RunResult& result) const {
  if (table_ != nullptr && table_->store(key, result)) return;
  files_.store(key, result);  // spill tier: oversized key or full table
}

std::vector<CacheEntryInfo> TieredResultCache::list_entries(
    bool with_keys) const {
  std::vector<CacheEntryInfo> entries = files_.list_entries(with_keys);
  if (table_ != nullptr) {
    std::vector<CacheEntryInfo> slots = table_->list_entries();
    entries.insert(entries.end(), std::make_move_iterator(slots.begin()),
                   std::make_move_iterator(slots.end()));
  }
  return entries;
}

CacheGcResult TieredResultCache::gc(
    std::optional<double> max_age_seconds,
    std::optional<std::uintmax_t> max_bytes) const {
  if (table_ == nullptr) return files_.gc(max_age_seconds, max_bytes);

  // Stale table-creation temps (a creator died between open and link) are
  // cruft under the same >1h rule the file tier uses for its own temps.
  namespace fs = std::filesystem;
  constexpr double kTmpStaleSeconds = 3600.0;
  const std::string table_tmp_prefix =
      fs::path(ShmResultCache::table_path(files_.directory()))
          .filename()
          .string() +
      ".tmp.";
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  for (fs::directory_iterator it(files_.directory(), ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind(table_tmp_prefix, 0) != 0) continue;
    std::error_code tmp_ec;
    const auto mtime = fs::last_write_time(it->path(), tmp_ec);
    if (tmp_ec) continue;
    const double age = std::chrono::duration<double>(now - mtime).count();
    if (age > kTmpStaleSeconds) fs::remove(it->path(), ec);
  }

  // Age policy + temp sweep on the file tier; the byte budget is applied
  // below across both tiers (a table slot costs slot_bytes).
  CacheGcResult result = files_.gc(max_age_seconds, std::nullopt);
  ShmTableInfo table_info = table_->info();
  std::vector<CacheEntryInfo> table_entries = table_->list_entries();
  result.scanned += table_entries.size();
  std::uintmax_t file_total = result.bytes_kept;
  std::uintmax_t table_total =
      static_cast<std::uintmax_t>(table_entries.size()) *
      table_info.slot_bytes;
  if (max_bytes.has_value()) {
    // Evict file entries oldest-first until the union fits...
    for (const CacheEntryInfo& entry : files_.list_entries(false)) {
      if (file_total + table_total <= *max_bytes) break;
      std::error_code remove_ec;
      if (!fs::remove(entry.path, remove_ec) || remove_ec) continue;
      ++result.removed;
      result.bytes_removed += entry.bytes;
      file_total -= entry.bytes;
    }
    // ...then drop the oldest table entries by rebuilding around the
    // newest ones that fit the remaining budget.
    if (file_total + table_total > *max_bytes) {
      const std::uintmax_t budget =
          *max_bytes > file_total ? *max_bytes - file_total : 0;
      const std::uint64_t keep = budget / table_info.slot_bytes;
      const std::size_t dropped = table_->compact(keep);
      result.removed += dropped;
      result.bytes_removed +=
          static_cast<std::uintmax_t>(dropped) * table_info.slot_bytes;
      table_total -= static_cast<std::uintmax_t>(dropped) *
                     table_info.slot_bytes;
    }
  } else if (table_info.wedged_slots > 0) {
    // No byte pressure, but dead writers left wedged slots: rebuild to
    // reclaim them, keeping every live entry.
    table_->compact(table_entries.size());
  }
  result.bytes_kept = file_total + table_total;
  return result;
}

}  // namespace esched
