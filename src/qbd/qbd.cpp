#include "qbd/qbd.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/lu.hpp"

namespace esched {

namespace {

void check_nonnegative(const Matrix& m, const char* what) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      ESCHED_CHECK(m(r, c) >= 0.0, std::string("negative rate in ") + what);
    }
  }
}

void check_shape(const Matrix& m, std::size_t n, const char* what) {
  ESCHED_CHECK(m.rows() == n && m.cols() == n,
               std::string("bad block shape for ") + what);
}

/// Row sums of a rate matrix.
Vector row_sums(const Matrix& m) {
  Vector out(m.rows(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) out[r] += m(r, c);
  }
  return out;
}

/// A1-style block: local off-diagonals plus the conservation diagonal
/// -(rowsum(up) + rowsum(local) + rowsum(down)).
Matrix with_diagonal(const Matrix& local, const Matrix& up,
                     const Matrix& down) {
  Matrix a1 = local;
  const Vector su = row_sums(up);
  const Vector sl = row_sums(local);
  const Vector sd = row_sums(down);
  for (std::size_t r = 0; r < a1.rows(); ++r) {
    ESCHED_CHECK(local(r, r) == 0.0,
                 "local blocks must not carry diagonal entries");
    a1(r, r) = -(su[r] + sl[r] + sd[r]);
  }
  return a1;
}

/// Spectral radius via power iteration on |R| (R is non-negative here).
double spectral_radius(const Matrix& r) {
  const std::size_t n = r.rows();
  Vector v(n, 1.0);
  double lambda = 0.0;
  for (int iter = 0; iter < 2000; ++iter) {
    Vector next = matvec(r, v);
    const double norm = max_abs(next);
    if (norm == 0.0) return 0.0;
    for (double& x : next) x /= norm;
    if (std::abs(norm - lambda) < 1e-13 * std::max(1.0, norm)) {
      return norm;
    }
    lambda = norm;
    v.swap(next);
  }
  return lambda;
}

}  // namespace

void QbdProcess::validate() const {
  const std::size_t m = num_phases;
  ESCHED_CHECK(m > 0, "QBD needs at least one phase");
  ESCHED_CHECK(first_repeating >= 1, "first_repeating must be >= 1");
  ESCHED_CHECK(up.size() == first_repeating &&
                   local.size() == first_repeating &&
                   down.size() == first_repeating,
               "boundary block vectors must have first_repeating entries");
  for (std::size_t l = 0; l < first_repeating; ++l) {
    check_shape(up[l], m, "up");
    check_shape(local[l], m, "local");
    check_shape(down[l], m, "down");
    check_nonnegative(up[l], "up");
    check_nonnegative(local[l], "local");
    check_nonnegative(down[l], "down");
  }
  ESCHED_CHECK(max_abs(down[0]) == 0.0, "down[0] must be zero");
  check_shape(rep_up, m, "rep_up");
  check_shape(rep_local, m, "rep_local");
  check_shape(rep_down, m, "rep_down");
  check_nonnegative(rep_up, "rep_up");
  check_nonnegative(rep_local, "rep_local");
  check_nonnegative(rep_down, "rep_down");
}

QbdSolution solve_qbd(const QbdProcess& process, const QbdOptions& options) {
  process.validate();
  const std::size_t m = process.num_phases;
  const std::size_t big_l = process.first_repeating;  // L

  // Repeating generator blocks.
  const Matrix& a0 = process.rep_up;
  const Matrix a1 = with_diagonal(process.rep_local, process.rep_up,
                                  process.rep_down);
  const Matrix& a2 = process.rep_down;

  // --- Iterate R from R <- -(A0 + R^2 A2) A1^{-1} (Neuts' fixed point). ---
  // Right-multiplication by A1^{-1} means solving X A1 = M, i.e.
  // A1^T X^T = M^T, so we factor A1^T once.
  const LuFactorization a1t_lu{a1.transpose()};
  auto right_div_a1 = [&](Matrix m_) {
    return a1t_lu.solve(m_.transpose()).transpose();
  };
  const Matrix neg_a0_a1inv = [&] {
    Matrix rhs = a0;
    rhs *= -1.0;
    return right_div_a1(std::move(rhs));
  }();
  Matrix r(m, m, 0.0);
  int iterations = 0;
  for (; iterations < options.max_r_iterations; ++iterations) {
    // R_next = -(A0 + R^2 A2) A1^{-1} = neg_a0_a1inv + R^2 (-A2) A1^{-1}.
    Matrix r2a2 = matmul(matmul(r, r), a2);
    r2a2 *= -1.0;
    Matrix r_next = neg_a0_a1inv + right_div_a1(std::move(r2a2));
    const double delta = max_abs_diff(r_next, r);
    r = std::move(r_next);
    if (delta < options.r_tolerance) break;
  }
  // Residual of the quadratic equation as a convergence certificate.
  const Matrix residual_mat =
      a0 + matmul(r, a1) + matmul(matmul(r, r), a2);

  QbdSolution sol;
  sol.num_phases = m;
  sol.first_repeating = big_l;
  sol.r_iterations = iterations;
  sol.r_residual = max_abs(residual_mat);
  sol.spectral_radius = spectral_radius(r);
  ESCHED_CHECK(sol.spectral_radius < 1.0 - 1e-9,
               "QBD is not positive recurrent (sp(R) >= 1); check stability");

  // --- Boundary system: unknowns pi_0..pi_L stacked into x (row vector).
  // Balance at levels 0..L with pi_{L+1} = pi_L R, plus normalization
  // sum_{l<L} pi_l 1 + pi_L (I-R)^{-1} 1 = 1 replacing one equation. ---
  const std::size_t n = (big_l + 1) * m;
  auto up_block = [&](std::size_t l) -> const Matrix& {
    return l < big_l ? process.up[l] : process.rep_up;
  };
  auto local_block = [&](std::size_t l) -> const Matrix& {
    return l < big_l ? process.local[l] : process.rep_local;
  };
  auto down_block = [&](std::size_t l) -> const Matrix& {
    return l < big_l ? process.down[l] : process.rep_down;
  };

  // Columns of `system` are equations; rows index unknowns, so that
  // x * system = rhs. Equation block for level l lives in columns [l*m,
  // (l+1)*m).
  Matrix system(n, n, 0.0);
  auto add_block = [&](std::size_t unknown_level, std::size_t eq_level,
                       const Matrix& block) {
    for (std::size_t r_ = 0; r_ < m; ++r_) {
      for (std::size_t c = 0; c < m; ++c) {
        system(unknown_level * m + r_, eq_level * m + c) += block(r_, c);
      }
    }
  };

  for (std::size_t l = 0; l <= big_l; ++l) {
    const Matrix a1_l =
        with_diagonal(local_block(l), up_block(l), down_block(l));
    if (l < big_l) {
      add_block(l, l, a1_l);
      if (l + 1 <= big_l) add_block(l + 1, l, down_block(l + 1));
      if (l >= 1) add_block(l - 1, l, up_block(l - 1));
    } else {
      // Level L folds the tail in: pi_{L-1} U_{L-1} + pi_L (A1 + R A2) = 0.
      Matrix folded = a1_l + matmul(r, a2);
      add_block(l, l, folded);
      if (l >= 1) add_block(l - 1, l, up_block(l - 1));
    }
  }

  // (I - R)^{-1} 1, needed for the normalization and the tail moments.
  const Matrix i_minus_r = Matrix::identity(m) - r;
  const LuFactorization imr_lu{i_minus_r};
  const Vector tail_weight = imr_lu.solve(Vector(m, 1.0));

  // Replace equation column 0 by normalization (the generator's balance
  // equations are linearly dependent, so dropping one loses nothing).
  for (std::size_t l = 0; l <= big_l; ++l) {
    for (std::size_t r_ = 0; r_ < m; ++r_) {
      system(l * m + r_, 0) = (l < big_l) ? 1.0 : tail_weight[r_];
    }
  }
  Vector rhs(n, 0.0);
  rhs[0] = 1.0;

  // Solve x * system = rhs  <=>  system^T x^T = rhs.
  const Vector x = LuFactorization(system.transpose()).solve(rhs);

  sol.boundary.resize(big_l + 1);
  for (std::size_t l = 0; l <= big_l; ++l) {
    sol.boundary[l].assign(x.begin() + static_cast<long>(l * m),
                           x.begin() + static_cast<long>((l + 1) * m));
    for (double v : sol.boundary[l]) {
      ESCHED_ASSERT(v > -1e-9, "negative stationary probability");
    }
  }
  sol.r = std::move(r);
  return sol;
}

Vector QbdSolution::level_distribution(std::size_t level) const {
  ESCHED_CHECK(!boundary.empty(), "unsolved QBD solution");
  if (level <= first_repeating) return boundary[level];
  Vector v = boundary[first_repeating];
  for (std::size_t l = first_repeating; l < level; ++l) v = vecmat(v, r);
  return v;
}

double QbdSolution::level_probability(std::size_t level) const {
  return sum(level_distribution(level));
}

double QbdSolution::mean_level() const {
  ESCHED_CHECK(!boundary.empty(), "unsolved QBD solution");
  const std::size_t big_l = first_repeating;
  double mean = 0.0;
  for (std::size_t l = 0; l < big_l; ++l) {
    mean += static_cast<double>(l) * sum(boundary[l]);
  }
  // Tail: sum_{n>=0} (L+n) pi_L R^n 1
  //     = L pi_L (I-R)^{-1} 1 + pi_L R (I-R)^{-2} 1.
  const std::size_t m = num_phases;
  const Matrix i_minus_r = Matrix::identity(m) - r;
  const LuFactorization imr_lu{i_minus_r};
  const Vector w1 = imr_lu.solve(Vector(m, 1.0));   // (I-R)^{-1} 1
  const Vector w2 = imr_lu.solve(w1);               // (I-R)^{-2} 1
  const Vector& pi_l = boundary[big_l];
  mean += static_cast<double>(big_l) * dot(pi_l, w1);
  mean += dot(vecmat(pi_l, r), w2);
  return mean;
}

Vector QbdSolution::phase_marginal() const {
  ESCHED_CHECK(!boundary.empty(), "unsolved QBD solution");
  const std::size_t m = num_phases;
  Vector marginal(m, 0.0);
  for (std::size_t l = 0; l < first_repeating; ++l) {
    for (std::size_t s = 0; s < m; ++s) marginal[s] += boundary[l][s];
  }
  // Tail: pi_L (I - R)^{-1}, computed by solving x (I-R) = pi_L.
  const Matrix i_minus_r = Matrix::identity(m) - r;
  const Vector tail = LuFactorization(i_minus_r.transpose())
                          .solve(boundary[first_repeating]);
  for (std::size_t s = 0; s < m; ++s) marginal[s] += tail[s];
  return marginal;
}

}  // namespace esched
