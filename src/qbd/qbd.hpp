// Quasi-birth-death (QBD) processes and their matrix-analytic solution.
//
// A QBD is a CTMC whose states are (level, phase) pairs, with transitions
// only between adjacent levels. The paper's busy-period transformation
// (§5.2, Appendix D) turns the 2D-infinite EF and IF chains into exactly
// this shape: the level is the queue length of the deprioritized class and
// the phase tracks the prioritized class / busy-period stage. Following
// §5.3 (refs [34, 43, 44]), the stationary distribution of the repeating
// portion is matrix-geometric, pi_{L+n} = pi_L R^n, where R solves
//   A0 + R A1 + R^2 A2 = 0.
//
// The solver supports level-dependent boundary blocks for levels
// 0..first_repeating-1 (the EF chain needs k of them: inelastic service
// rates min(i,k) mu_I differ below level k).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace esched {

/// A QBD specification. All matrices hold *non-negative off-diagonal
/// rates*; diagonals are derived by the solver from row-sum conservation.
/// Levels 0..first_repeating-1 use the boundary blocks; levels >=
/// first_repeating all use the repeating blocks.
struct QbdProcess {
  std::size_t num_phases = 0;
  std::size_t first_repeating = 1;  // must be >= 1

  /// up[l]: rates level l -> l+1, for l in [0, first_repeating).
  std::vector<Matrix> up;
  /// local[l]: within-level phase-change rates at level l (off-diagonal).
  std::vector<Matrix> local;
  /// down[l]: rates level l -> l-1, for l in [0, first_repeating);
  /// down[0] must be all zeros (there is no level below 0).
  std::vector<Matrix> down;

  Matrix rep_up;     // A0: rates level l -> l+1 for l >= first_repeating
  Matrix rep_local;  // off-diagonal part of A1
  Matrix rep_down;   // A2: rates level l -> l-1 for l >= first_repeating

  /// Validates shapes and sign constraints; throws esched::Error on issues.
  void validate() const;
};

/// Solver tuning knobs.
struct QbdOptions {
  double r_tolerance = 1e-14;  // max-abs change in R between iterations
  int max_r_iterations = 200000;
};

/// Stationary solution of a QBD.
struct QbdSolution {
  /// pi_0..pi_L where L = first_repeating; levels beyond L follow
  /// pi_{L+n} = pi_L R^n.
  std::vector<Vector> boundary;
  Matrix r;

  std::size_t num_phases = 0;
  std::size_t first_repeating = 0;

  int r_iterations = 0;
  double r_residual = 0.0;       // max-abs of A0 + R A1 + R^2 A2
  double spectral_radius = 0.0;  // sp(R); < 1 iff positive recurrent

  /// Stationary probability vector of level l (any l >= 0).
  Vector level_distribution(std::size_t level) const;

  /// P(level == l).
  double level_probability(std::size_t level) const;

  /// E[level] — the stationary mean queue length of the level class.
  double mean_level() const;

  /// Marginal phase distribution aggregated over all levels.
  Vector phase_marginal() const;
};

/// Solves the QBD: iterates R, then solves the finite boundary system with
/// the normalization sum_l pi_l 1 = 1 (geometric tail folded in).
QbdSolution solve_qbd(const QbdProcess& process, const QbdOptions& options = {});

}  // namespace esched
