#include "linalg/csr.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/invariants.hpp"

namespace esched {

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<CsrTriplet> entries) {
  // Stable sort keeps duplicates in input order, so their merge sums in a
  // deterministic (insertion) order.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const CsrTriplet& a, const CsrTriplet& b) {
                     return a.row != b.row ? a.row < b.row : a.col < b.col;
                   });
  CsrMatrix m;
  m.begin_rows(rows, cols);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  std::size_t row = 0;
  for (const CsrTriplet& t : entries) {
    ESCHED_CHECK(t.row < rows && t.col < cols, "triplet index out of range");
    while (row < t.row) {
      m.next_row();
      ++row;
    }
    if (!m.col_idx_.empty() && m.row_ptr_.back() < m.col_idx_.size() &&
        m.col_idx_.back() == t.col) {
      m.values_.back() += t.value;
    } else {
      m.push(t.col, t.value);
    }
  }
  while (row < rows) {
    m.next_row();
    ++row;
  }
  ESCHED_DEBUG_CHECK(check_csr(m, "CsrMatrix::from_triplets"));
  return m;
}

void CsrMatrix::begin_rows(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  row_ptr_.clear();
  row_ptr_.reserve(rows + 1);
  row_ptr_.push_back(0);
  col_idx_.clear();
  values_.clear();
}

void CsrMatrix::push(std::size_t col, double value) {
  ESCHED_ASSERT(!complete(), "push() after the final next_row()");
  ESCHED_ASSERT(col < cols_, "column index out of range");
  ESCHED_ASSERT(col_idx_.size() == row_ptr_.back() ||
                    col_idx_.back() < col,
                "row entries must have strictly ascending columns");
  col_idx_.push_back(col);
  values_.push_back(value);
}

void CsrMatrix::next_row() {
  ESCHED_ASSERT(!complete(), "next_row() past the declared row count");
  row_ptr_.push_back(col_idx_.size());
}

void CsrMatrix::require_complete() const {
  ESCHED_ASSERT(complete(), "CSR matrix queried before construction finished");
}

CsrMatrix CsrMatrix::transposed() const {
  require_complete();
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  // Count entries per column, prefix-sum into row_ptr of the transpose,
  // then place entries row by row; since rows are visited in ascending
  // order, each transposed row ends up sorted by (original) row index.
  t.row_ptr_.assign(cols_ + 1, 0);
  for (std::size_t c : col_idx_) ++t.row_ptr_[c + 1];
  for (std::size_t c = 0; c < cols_; ++c) t.row_ptr_[c + 1] += t.row_ptr_[c];
  t.col_idx_.resize(nnz());
  t.values_.resize(nnz());
  std::vector<std::size_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t slot = cursor[col_idx_[k]]++;
      t.col_idx_[slot] = r;
      t.values_[slot] = values_[k];
    }
  }
  ESCHED_DEBUG_CHECK(check_csr(t, "CsrMatrix::transposed"));
  return t;
}

Vector CsrMatrix::multiply(const Vector& x) const {
  require_complete();
  ESCHED_CHECK(x.size() == cols_, "SpMV dimension mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

Matrix CsrMatrix::to_dense() const {
  require_complete();
  Matrix d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d(r, col_idx_[k]) += values_[k];
    }
  }
  return d;
}

}  // namespace esched
