#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace esched {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  ESCHED_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
               "matrix shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  ESCHED_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
               "matrix shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  ESCHED_CHECK(a.cols() == b.rows(), "matrix shape mismatch in matmul");
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t l = 0; l < a.cols(); ++l) {
      const double ail = a(i, l);
      if (ail == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += ail * b(l, j);
      }
    }
  }
  return out;
}

Vector vecmat(const Vector& x, const Matrix& a) {
  ESCHED_CHECK(x.size() == a.rows(), "shape mismatch in vecmat");
  Vector out(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < a.cols(); ++c) out[c] += xr * a(r, c);
  }
  return out;
}

Vector matvec(const Matrix& a, const Vector& x) {
  ESCHED_CHECK(x.size() == a.cols(), "shape mismatch in matvec");
  Vector out(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
    out[r] = acc;
  }
  return out;
}

double dot(const Vector& a, const Vector& b) {
  ESCHED_CHECK(a.size() == b.size(), "shape mismatch in dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double sum(const Vector& x) {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

double max_abs(const Matrix& a) {
  double best = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      best = std::max(best, std::abs(a(r, c)));
    }
  }
  return best;
}

double max_abs(const Vector& x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  ESCHED_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "matrix shape mismatch in max_abs_diff");
  double best = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      best = std::max(best, std::abs(a(r, c) - b(r, c)));
    }
  }
  return best;
}

void normalize_probability(Vector& x) {
  const double total = sum(x);
  ESCHED_CHECK(total > 0.0, "cannot normalize vector with non-positive sum");
  for (double& v : x) v /= total;
}

}  // namespace esched
