// Flat compressed-sparse-row (CSR) matrix.
//
// The truncated CTMC generators are >99% zeros, so the stationary solvers
// sweep flat row_ptr/col_idx/values arrays instead of nested vectors: one
// allocation per array, unit-stride inner loops, and a cheap counting-sort
// transpose for the in-adjacency the Gauss-Seidel sweeps need. Only the
// structure lives here; what the entries *mean* (off-diagonal rates, implied
// diagonals) is the caller's business.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace esched {

/// One (row, col, value) entry for bulk construction.
struct CsrTriplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix {
 public:
  /// Empty 0 x 0 matrix.
  CsrMatrix() = default;

  /// Builds from unordered triplets. Entries are stable-sorted by
  /// (row, col) and duplicates are merged by summation in input order, so
  /// construction is deterministic for any input order.
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<CsrTriplet> entries);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return col_idx_.size(); }

  /// Row r occupies [row_ptr()[r], row_ptr()[r+1]) of col_idx()/values().
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  std::size_t row_nnz(std::size_t r) const {
    return row_ptr_[r + 1] - row_ptr_[r];
  }
  const std::size_t* row_cols(std::size_t r) const {
    return col_idx_.data() + row_ptr_[r];
  }
  const double* row_values(std::size_t r) const {
    return values_.data() + row_ptr_[r];
  }

  /// Counting-sort transpose. Within each row of the result, entries keep
  /// ascending column order — i.e. the transpose lists, for each original
  /// column, its incoming entries in ascending original-row order, which is
  /// exactly the deterministic sweep order the stationary solvers rely on.
  CsrMatrix transposed() const;

  /// Sparse matrix-vector product y = A x.
  Vector multiply(const Vector& x) const;

  /// Densifies (tests and the GTH bridge only; O(rows * cols) memory).
  Matrix to_dense() const;

  // -- Streaming (re)build --------------------------------------------------
  // For callers that overlay varying values onto a fixed-shape matrix many
  // times (ExactCtmcBatch): begin_rows() resets the matrix but keeps the
  // allocated capacity, push() appends an entry to the open row (columns
  // strictly ascending), next_row() closes it. Exactly `rows` next_row()
  // calls complete the build; queries before completion throw.

  void begin_rows(std::size_t rows, std::size_t cols);
  void push(std::size_t col, double value);
  void next_row();
  bool complete() const { return row_ptr_.size() == rows_ + 1; }

 private:
  void require_complete() const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_ = {0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace esched
