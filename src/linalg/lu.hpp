// LU factorization with partial pivoting, plus solve/inverse built on it.
#pragma once

#include "linalg/matrix.hpp"

namespace esched {

/// LU factorization with partial pivoting of a square matrix. Throws
/// esched::Error when the matrix is numerically singular.
class LuFactorization {
 public:
  explicit LuFactorization(Matrix a);

  std::size_t dim() const { return lu_.rows(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// Solves x^T A = b^T (i.e., A^T x = b) — the form stationary equations
  /// naturally take.
  Vector solve_transposed(const Vector& b) const;

  /// A^{-1}; prefer solve() when possible.
  Matrix inverse() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;  // row permutation applied to inputs
};

/// One-shot convenience: solves A x = b.
Vector lu_solve(Matrix a, const Vector& b);

/// One-shot convenience: A^{-1}.
Matrix lu_inverse(Matrix a);

}  // namespace esched
