// Dense row-major matrix and vector helpers.
//
// The matrix-analytic solver works with small dense blocks (phase counts of
// a few dozen), so a straightforward dense implementation with contiguous
// storage is both simple and fast; no external BLAS is needed.
#pragma once

#include <cstddef>
#include <vector>

namespace esched {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  Matrix transpose() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Matrix product a * b.
Matrix matmul(const Matrix& a, const Matrix& b);

/// Row-vector times matrix: (x^T A)^T.
Vector vecmat(const Vector& x, const Matrix& a);

/// Matrix times column vector: A x.
Vector matvec(const Matrix& a, const Vector& x);

/// Dot product.
double dot(const Vector& a, const Vector& b);

/// Sum of entries.
double sum(const Vector& x);

/// Max-absolute-entry norm of a matrix.
double max_abs(const Matrix& a);

/// Max-absolute-entry norm of a vector.
double max_abs(const Vector& x);

/// Max-absolute elementwise difference.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Scales a vector in place so its entries sum to 1; requires positive sum.
void normalize_probability(Vector& x);

}  // namespace esched
