#include "linalg/lu.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esched {

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  ESCHED_CHECK(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining entry to the diagonal.
    std::size_t pivot = col;
    double best = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double cand = std::abs(lu_(r, col));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    ESCHED_CHECK(best > 1e-300, "matrix is numerically singular");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(pivot, c), lu_(col, c));
      }
      std::swap(perm_[pivot], perm_[col]);
    }
    const double inv_diag = 1.0 / lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_(r, col) * inv_diag;
      lu_(r, col) = factor;  // store the multiplier in place
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(col, c);
      }
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  const std::size_t n = dim();
  ESCHED_CHECK(b.size() == n, "rhs dimension mismatch in LU solve");
  Vector x(n);
  // Forward substitution with the permuted rhs.
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

Matrix LuFactorization::solve(const Matrix& b) const {
  const std::size_t n = dim();
  ESCHED_CHECK(b.rows() == n, "rhs dimension mismatch in LU solve");
  Matrix x(n, b.cols());
  Vector col(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
    const Vector sol = solve(col);
    for (std::size_t r = 0; r < n; ++r) x(r, c) = sol[r];
  }
  return x;
}

Vector LuFactorization::solve_transposed(const Vector& b) const {
  // Solve A^T x = b by solving U^T y = b then L^T z = y, undoing the row
  // permutation at the end (A = P^T L U ⇒ A^T = U^T L^T P).
  const std::size_t n = dim();
  ESCHED_CHECK(b.size() == n, "rhs dimension mismatch in LU solve");
  Vector y(n);
  // U^T is lower triangular: forward substitution.
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[r];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(c, r) * y[c];
    y[r] = acc / lu_(r, r);
  }
  // L^T is upper triangular with unit diagonal: back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(c, ri) * y[c];
    y[ri] = acc;
  }
  // x = P^T y: entry perm_[r] of x is y[r].
  Vector x(n);
  for (std::size_t r = 0; r < n; ++r) x[perm_[r]] = y[r];
  return x;
}

Matrix LuFactorization::inverse() const {
  return solve(Matrix::identity(dim()));
}

Vector lu_solve(Matrix a, const Vector& b) {
  return LuFactorization(std::move(a)).solve(b);
}

Matrix lu_inverse(Matrix a) {
  return LuFactorization(std::move(a)).inverse();
}

}  // namespace esched
