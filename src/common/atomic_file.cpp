#include "common/atomic_file.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#if __has_include(<unistd.h>)
#include <unistd.h>
#endif

#include "common/error.hpp"

namespace esched {

std::string unique_tmp_path(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
#if __has_include(<unistd.h>)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return path + ".tmp." + std::to_string(pid) + "." +
         std::to_string(counter.fetch_add(1));
}

void atomic_write_file(const std::string& path, const std::string& text) {
  const std::string tmp = unique_tmp_path(path);
  {
    std::ofstream out(tmp, std::ios::binary);
    ESCHED_CHECK(out.good(), "cannot open '" + tmp + "' for writing");
    out << text;
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      throw Error("error writing '" + tmp + "'");
    }
  }
  atomic_publish_file(tmp, path);
}

void atomic_publish_file(const std::string& tmp, const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::remove(tmp.c_str());
  ESCHED_CHECK(!ec, "cannot move '" + tmp + "' into place at '" + path +
                        "': " + ec.message());
}

}  // namespace esched
