// Gated runtime invariant layer (-DESCHED_DEBUG_INVARIANTS=ON).
//
// Cheap structural assertions at subsystem boundaries: conservative
// generators before stationary solves, sorted/bounded CSR structure after
// construction, probability vectors on solver outputs, lease-state
// transitions in the distributed queue. The check functions always exist
// (tests call them directly in every build type); the ESCHED_DEBUG_CHECK
// macro compiles call sites to nothing unless the CMake option is ON, so
// release hot paths pay zero cost. Sanitizer CI builds enable the option,
// so memory/race detection and structural validation compound.
//
// Failures throw esched::Error via the same detail::fail path as
// ESCHED_CHECK/ESCHED_ASSERT, tagged "debug invariant".
#pragma once

#include <cstddef>
#include <string>

#include "linalg/csr.hpp"
#include "linalg/matrix.hpp"

#if defined(ESCHED_DEBUG_INVARIANTS) && ESCHED_DEBUG_INVARIANTS
#define ESCHED_DEBUG_CHECK(call)        \
  do {                                  \
    ::esched::invariants::call;         \
  } while (0)
#else
#define ESCHED_DEBUG_CHECK(call) ((void)0)
#endif

namespace esched::invariants {

/// True when the translation units were compiled with the invariant layer
/// active (i.e. ESCHED_DEBUG_CHECK call sites are live).
constexpr bool enabled() {
#if defined(ESCHED_DEBUG_INVARIANTS) && ESCHED_DEBUG_INVARIANTS
  return true;
#else
  return false;
#endif
}

/// Ad-hoc boolean invariant: throws esched::Error naming `where` when
/// `condition` is false. Prefer the structural checks below where one fits.
void require(bool condition, const char* where, const std::string& what);

/// A CTMC generator split as (off-diagonal CSR `rates`, per-state
/// `exit_rates`): every stored rate must be finite and >= 0, no diagonal
/// entries, and each row's rate sum must equal its exit rate to roundoff
/// (conservative generator). O(nnz).
void check_generator(const CsrMatrix& rates, const Vector& exit_rates,
                     const char* where);

/// A dense generator: finite entries, nonnegative off-diagonals,
/// nonpositive diagonal, row sums ~ 0 relative to the row's magnitude.
void check_generator_dense(const Matrix& q, const char* where);

/// A probability vector: finite, entries >= -1e-12 (roundoff-negative is
/// tolerated, genuinely negative mass is not), sum within 1e-8 of 1.
void check_probability_vector(const Vector& pi, const char* where);

/// CSR structural contract after from_triplets()/transposed(): row_ptr
/// monotone covering col_idx/values exactly, columns strictly ascending
/// within each row and < cols(). O(nnz).
void check_csr(const CsrMatrix& m, const char* where);

}  // namespace esched::invariants
