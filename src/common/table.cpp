#include "common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace esched {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ESCHED_CHECK(!header_.empty(), "table header must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
  ESCHED_CHECK(cells.size() == header_.size(),
               "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_double(double value, int digits) {
  std::ostringstream oss;
  oss << std::setprecision(digits) << value;
  return oss.str();
}

}  // namespace esched
