// Minimal dependency-free JSON: a recursive-descent parser producing a
// JsonValue tree, and a serializer whose number formatting round-trips
// doubles exactly. Exists so scenario specs can live in user-authored
// files (engine/spec) without pulling a third-party library into the
// build. Errors carry line:column positions and, through the typed
// accessors, the offending field path, so a bad spec fails with a message
// that names what to fix.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace esched {

/// One node of a parsed JSON document. Object member order is preserved
/// (specs serialize back in a stable, diffable order).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  /// Value semantics: copies are deep (a copied object/array never
  /// aliases the original's children), moves are cheap.
  JsonValue(const JsonValue& other);
  JsonValue& operator=(const JsonValue& other);
  JsonValue(JsonValue&&) = default;
  JsonValue& operator=(JsonValue&&) = default;
  ~JsonValue() = default;

  static JsonValue make_null();
  static JsonValue make_bool(bool value);
  static JsonValue make_number(double value);
  static JsonValue make_string(std::string value);
  static JsonValue make_array(Array items = {});
  static JsonValue make_object(Object members = {});

  Kind kind() const { return kind_; }
  const char* kind_name() const;
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; `where` names the field in error messages (e.g.
  /// "axes.rho[2]"). Throw esched::Error on a kind mismatch.
  bool as_bool(const std::string& where) const;
  double as_number(const std::string& where) const;
  /// as_number that additionally requires an integral value within
  /// [lo, hi]; the error message names `where` and the valid range.
  /// 64-bit on every platform (LLP64 included) so billion-scale bounds
  /// like sim_jobs limits never overflow.
  long long as_integer(const std::string& where, long long lo,
                       long long hi) const;
  const std::string& as_string(const std::string& where) const;
  const Array& as_array(const std::string& where) const;
  const Object& as_object(const std::string& where) const;

  /// Object lookup: nullptr when the key is absent (or not an object).
  const JsonValue* find(const std::string& key) const;

  /// Builder helpers for serialization.
  void push_back(JsonValue item);                      // array
  void set(const std::string& key, JsonValue value);   // object

  /// Serializes the tree. Numbers use the shortest decimal form that
  /// parses back to the same double, so dump/parse round-trips are exact.
  std::string dump(int indent = 2) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Indirect so the recursive layout stays movable; the copy operations
  // above clone these so copies never share children.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses a complete JSON document (trailing garbage is an error). Throws
/// esched::Error with "<origin>:line:col: ..." positions; pass the file
/// name (or any label) as `origin`.
JsonValue parse_json(const std::string& text,
                     const std::string& origin = "json");

/// Shortest decimal form of `value` that strtod parses back bitwise equal.
std::string json_number_to_string(double value);

}  // namespace esched
