// Small numeric helpers shared by the analysis and simulation modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace esched {

/// Relative error of `value` against `reference`, falling back to absolute
/// error when the reference is (near) zero.
inline double relative_error(double value, double reference) {
  const double denom = std::abs(reference);
  if (denom < 1e-12) return std::abs(value - reference);
  return std::abs(value - reference) / denom;
}

/// True when `a` and `b` agree to within `rel_tol` relative error (or
/// `abs_tol` absolute error near zero).
inline bool approx_equal(double a, double b, double rel_tol = 1e-9,
                         double abs_tol = 1e-12) {
  return std::abs(a - b) <= std::max(abs_tol, rel_tol * std::max(std::abs(a),
                                                                 std::abs(b)));
}

/// Clamps `x` into [lo, hi].
inline double clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

/// True when `x` is a finite, non-NaN double.
inline bool is_finite(double x) { return std::isfinite(x); }

/// Squares its argument.
inline double sq(double x) { return x * x; }

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// FNV-1a over a byte string: platform-independent, stable across runs.
/// Used for deterministic per-point RNG seeds and disk-cache file names.
inline constexpr std::uint64_t kFnv1a64OffsetBasis = 14695981039346656037ull;

/// FNV-1a over a raw byte range, seedable so independent pieces (key
/// length, key bytes, payload) chain into one checksum. Same function as
/// fnv1a64 below when seeded with the offset basis.
inline std::uint64_t fnv1a64_bytes(const void* data, std::size_t size,
                                   std::uint64_t seed = kFnv1a64OffsetBasis) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t fnv1a64(const std::string& text) {
  return fnv1a64_bytes(text.data(), text.size());
}

}  // namespace esched
