// Error handling primitives used across the library.
//
// The library reports precondition violations and numeric failures by
// throwing esched::Error (a std::runtime_error). ESCHED_CHECK is used at
// public API boundaries; ESCHED_ASSERT guards internal invariants and is
// compiled in all build types (the cost is negligible next to the numeric
// work these modules do, and silent invariant violations in a solver are
// far more expensive than a branch).
#pragma once

#include <stdexcept>
#include <string>

namespace esched {

/// Exception type thrown on precondition violations and numeric failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& message);
}  // namespace detail

/// Checks a user-facing precondition; throws esched::Error on failure.
#define ESCHED_CHECK(cond, message)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::esched::detail::fail("precondition", #cond, __FILE__, __LINE__, \
                             (message));                                \
    }                                                                   \
  } while (0)

/// Checks an internal invariant; throws esched::Error on failure.
#define ESCHED_ASSERT(cond, message)                                  \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::esched::detail::fail("invariant", #cond, __FILE__, __LINE__,  \
                             (message));                              \
    }                                                                 \
  } while (0)

}  // namespace esched
