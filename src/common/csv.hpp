// Minimal CSV writer so each experiment harness can persist the series it
// prints (one CSV per figure, written next to the binary).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace esched {

/// Writes rows of cells to a CSV file. Values are written verbatim (the
/// harnesses only emit numbers and bare identifiers, so no quoting is
/// needed).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one data row; must match the header arity.
  void add_row(const std::vector<std::string>& cells);

  /// Number of data rows written so far.
  std::size_t num_rows() const { return num_rows_; }

 private:
  std::ofstream out_;
  std::size_t arity_;
  std::size_t num_rows_ = 0;
};

}  // namespace esched
