// CSV writing and reading with RFC-4180 quoting, shared by the report
// layer (engine/report), the `esched merge` subcommand, and the per-figure
// bench harnesses. Fields containing a comma, double quote, or newline are
// quoted on write and unquoted on read, so a scenario or policy label can
// hold any text without corrupting row structure.
#pragma once

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

namespace esched {

/// RFC-4180 encoding of one field: returned verbatim unless it contains a
/// comma, double quote, CR, or LF, in which case it is wrapped in double
/// quotes with embedded quotes doubled. Canonical: fields that need no
/// quoting are never quoted, so encode(decode(line)) == line for lines
/// this module produced.
std::string csv_encode_field(const std::string& field);

/// One record: encoded fields joined by commas (no trailing newline).
std::string csv_encode_row(const std::vector<std::string>& cells);

/// Parses the record starting at `*offset` in `text`, honoring quoting
/// (quoted fields may span commas and newlines), and advances `*offset`
/// past the record's terminating newline. Returns false when `*offset` is
/// already at the end of `text`; otherwise fills `cells` with the decoded
/// fields and sets `*complete` to whether the record ended in an
/// (unquoted) newline — a record cut short by EOF, e.g. the torn last
/// line of an interrupted streaming run, reads as incomplete. A lone
/// "\r\n" terminator is accepted and stripped.
bool csv_parse_record(const std::string& text, std::size_t* offset,
                      std::vector<std::string>* cells, bool* complete);

/// Convenience: decodes one complete record (no embedded newline). Throws
/// esched::Error when `line` does not parse as a single complete record.
std::vector<std::string> csv_decode_row(const std::string& line);

/// Writes rows of cells to a CSV file with RFC-4180 quoting.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one data row; must match the header arity.
  void add_row(const std::vector<std::string>& cells);

  /// Number of data rows written so far.
  std::size_t num_rows() const { return num_rows_; }

 private:
  std::ofstream out_;
  std::size_t arity_;
  std::size_t num_rows_ = 0;
};

}  // namespace esched
