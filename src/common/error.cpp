#include "common/error.hpp"

#include <sstream>

namespace esched::detail {

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& message) {
  std::ostringstream oss;
  oss << "esched " << kind << " violation: " << message << " [" << expr
      << " at " << file << ":" << line << "]";
  throw Error(oss.str());
}

}  // namespace esched::detail
