#include "common/invariants.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esched::invariants {

namespace {

[[noreturn]] void fail(const char* where, const std::string& what) {
  throw Error(std::string("debug invariant violated in ") + where + ": " +
              what);
}

}  // namespace

void require(bool condition, const char* where, const std::string& what) {
  if (!condition) fail(where, what);
}

void check_generator(const CsrMatrix& rates, const Vector& exit_rates,
                     const char* where) {
  if (rates.rows() != rates.cols()) fail(where, "generator is not square");
  if (exit_rates.size() != rates.rows()) {
    fail(where, "exit-rate dimension mismatch");
  }
  for (std::size_t s = 0; s < rates.rows(); ++s) {
    const std::size_t* cols = rates.row_cols(s);
    const double* vals = rates.row_values(s);
    const std::size_t nnz = rates.row_nnz(s);
    double row_sum = 0.0;
    for (std::size_t k = 0; k < nnz; ++k) {
      if (cols[k] == s) {
        fail(where, "diagonal entry stored in off-diagonal rate matrix at "
                    "state " + std::to_string(s));
      }
      if (!std::isfinite(vals[k]) || vals[k] < 0.0) {
        fail(where, "negative or non-finite rate " + std::to_string(vals[k]) +
                    " at state " + std::to_string(s));
      }
      row_sum += vals[k];
    }
    const double exit = exit_rates[s];
    if (!std::isfinite(exit) || exit < 0.0) {
      fail(where, "negative or non-finite exit rate at state " +
                  std::to_string(s));
    }
    // Conservative generator: row sum of off-diagonals == exit rate, up to
    // accumulation roundoff relative to the row's magnitude.
    const double tol = 1e-9 * std::max(1.0, std::max(row_sum, exit));
    if (std::abs(row_sum - exit) > tol) {
      fail(where, "row " + std::to_string(s) + " is not conservative: rate "
                  "sum " + std::to_string(row_sum) + " vs exit rate " +
                  std::to_string(exit));
    }
  }
}

void check_generator_dense(const Matrix& q, const char* where) {
  if (q.rows() != q.cols()) fail(where, "generator is not square");
  for (std::size_t r = 0; r < q.rows(); ++r) {
    double row_sum = 0.0;
    double row_mag = 0.0;
    for (std::size_t c = 0; c < q.cols(); ++c) {
      const double v = q(r, c);
      if (!std::isfinite(v)) {
        fail(where, "non-finite generator entry at row " + std::to_string(r));
      }
      if (c != r && v < 0.0) {
        fail(where, "negative off-diagonal " + std::to_string(v) +
                    " at row " + std::to_string(r));
      }
      if (c == r && v > 0.0) {
        fail(where, "positive diagonal " + std::to_string(v) + " at row " +
                    std::to_string(r));
      }
      row_sum += v;
      row_mag = std::max(row_mag, std::abs(v));
    }
    if (std::abs(row_sum) > 1e-9 * std::max(1.0, row_mag)) {
      fail(where, "row " + std::to_string(r) + " sums to " +
                  std::to_string(row_sum) + ", not 0");
    }
  }
}

void check_probability_vector(const Vector& pi, const char* where) {
  if (pi.empty()) fail(where, "empty probability vector");
  double sum = 0.0;
  for (std::size_t s = 0; s < pi.size(); ++s) {
    const double p = pi[s];
    if (!std::isfinite(p)) {
      fail(where, "non-finite probability at state " + std::to_string(s));
    }
    if (p < -1e-12) {
      fail(where, "negative probability " + std::to_string(p) + " at state " +
                  std::to_string(s));
    }
    sum += p;
  }
  if (std::abs(sum - 1.0) > 1e-8) {
    fail(where, "probabilities sum to " + std::to_string(sum) + ", not 1");
  }
}

void check_csr(const CsrMatrix& m, const char* where) {
  const std::vector<std::size_t>& row_ptr = m.row_ptr();
  const std::vector<std::size_t>& col_idx = m.col_idx();
  if (row_ptr.size() != m.rows() + 1) {
    fail(where, "row_ptr size " + std::to_string(row_ptr.size()) +
                " does not match rows + 1");
  }
  if (row_ptr.front() != 0 || row_ptr.back() != col_idx.size()) {
    fail(where, "row_ptr does not cover col_idx exactly");
  }
  if (col_idx.size() != m.values().size()) {
    fail(where, "col_idx/values length mismatch");
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      fail(where, "row_ptr not monotone at row " + std::to_string(r));
    }
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col_idx[k] >= m.cols()) {
        fail(where, "column index out of range at row " + std::to_string(r));
      }
      if (k > row_ptr[r] && col_idx[k - 1] >= col_idx[k]) {
        fail(where, "columns not strictly ascending in row " +
                    std::to_string(r));
      }
    }
  }
}

}  // namespace esched::invariants
