// Crash-safe file publication: write a sibling temp file, then rename it
// into place. POSIX rename atomicity means a reader never observes a torn
// file under the final name, and concurrent writers racing on one path
// each publish a complete file (last rename wins). Shared by the report
// mergers, the disk-backed work queue (src/dist), and anything else that
// must never leave a half-written artifact.
#pragma once

#include <string>

namespace esched {

/// A collision-safe sibling temp name for `path`: "<path>.tmp.<pid>.<n>"
/// with a process-wide counter, so concurrent writers — including several
/// in one process — never share a temp file. Files matching ".tmp." are
/// recognized as sweepable cruft by the queue's and cache's gc passes.
std::string unique_tmp_path(const std::string& path);

/// Atomically replaces `path` with `text` (unique temp + rename). Throws
/// esched::Error on failure, removing the temp file first.
void atomic_write_file(const std::string& path, const std::string& text);

/// Atomically moves `tmp` (a fully-written file) into place at `path`.
/// Throws esched::Error on failure, removing `tmp` first. The publish
/// half of atomic_write_file, for writers that stream into the temp file
/// themselves.
void atomic_publish_file(const std::string& tmp, const std::string& path);

}  // namespace esched
