#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace esched {

JsonValue::JsonValue(const JsonValue& other)
    : kind_(other.kind_),
      bool_(other.bool_),
      number_(other.number_),
      string_(other.string_),
      array_(other.array_ ? std::make_shared<Array>(*other.array_) : nullptr),
      object_(other.object_ ? std::make_shared<Object>(*other.object_)
                            : nullptr) {}

JsonValue& JsonValue::operator=(const JsonValue& other) {
  if (this != &other) *this = JsonValue(other);  // copy-construct, then move
  return *this;
}

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  ESCHED_CHECK(std::isfinite(value), "JSON numbers must be finite");
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::make_array(Array items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::make_shared<Array>(std::move(items));
  return v;
}

JsonValue JsonValue::make_object(Object members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::make_shared<Object>(std::move(members));
  return v;
}

const char* JsonValue::kind_name() const {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "a boolean";
    case Kind::kNumber: return "a number";
    case Kind::kString: return "a string";
    case Kind::kArray: return "an array";
    case Kind::kObject: return "an object";
  }
  return "unknown";
}

bool JsonValue::as_bool(const std::string& where) const {
  ESCHED_CHECK(is_bool(), where + ": expected a boolean, got " +
                              std::string(kind_name()));
  return bool_;
}

double JsonValue::as_number(const std::string& where) const {
  ESCHED_CHECK(is_number(), where + ": expected a number, got " +
                                std::string(kind_name()));
  return number_;
}

long long JsonValue::as_integer(const std::string& where, long long lo,
                                long long hi) const {
  const double value = as_number(where);
  ESCHED_CHECK(value == std::floor(value) &&
                   value >= static_cast<double>(lo) &&
                   value <= static_cast<double>(hi),
               where + ": expected an integer in [" + std::to_string(lo) +
                   ", " + std::to_string(hi) + "], got " +
                   json_number_to_string(value));
  return static_cast<long long>(value);
}

const std::string& JsonValue::as_string(const std::string& where) const {
  ESCHED_CHECK(is_string(), where + ": expected a string, got " +
                                std::string(kind_name()));
  return string_;
}

const JsonValue::Array& JsonValue::as_array(const std::string& where) const {
  ESCHED_CHECK(is_array(), where + ": expected an array, got " +
                               std::string(kind_name()));
  return *array_;
}

const JsonValue::Object& JsonValue::as_object(const std::string& where) const {
  ESCHED_CHECK(is_object(), where + ": expected an object, got " +
                                std::string(kind_name()));
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : *object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue item) {
  ESCHED_CHECK(is_array(), "push_back on a non-array JSON value");
  array_->push_back(std::move(item));
}

void JsonValue::set(const std::string& key, JsonValue value) {
  ESCHED_CHECK(is_object(), "set on a non-object JSON value");
  for (auto& [name, existing] : *object_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  object_->emplace_back(key, std::move(value));
}

std::string json_number_to_string(double value) {
  // Prefer the shortest %.<p>g form that survives a strtod round trip;
  // %.17g always does.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

namespace {

void escape_into(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_into(const JsonValue& v, int indent, int depth, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
  const char* sep = indent > 0 ? "\n" : "";
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out += "null"; return;
    case JsonValue::Kind::kBool:
      out += v.as_bool("dump") ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      out += json_number_to_string(v.as_number("dump"));
      return;
    case JsonValue::Kind::kString: escape_into(v.as_string("dump"), out); return;
    case JsonValue::Kind::kArray: {
      const auto& items = v.as_array("dump");
      if (items.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      out += sep;
      for (std::size_t n = 0; n < items.size(); ++n) {
        if (indent > 0) out += pad;
        dump_into(items[n], indent, depth + 1, out);
        if (n + 1 < items.size()) out += indent > 0 ? "," : ", ";
        out += sep;
      }
      if (indent > 0) out += close_pad;
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      const auto& members = v.as_object("dump");
      if (members.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      out += sep;
      for (std::size_t n = 0; n < members.size(); ++n) {
        if (indent > 0) out += pad;
        escape_into(members[n].first, out);
        out += ": ";
        dump_into(members[n].second, indent, depth + 1, out);
        if (n + 1 < members.size()) out += indent > 0 ? "," : ", ";
        out += sep;
      }
      if (indent > 0) out += close_pad;
      out += '}';
      return;
    }
  }
}

/// Recursive-descent JSON parser tracking line/column for error messages.
class Parser {
 public:
  Parser(const std::string& text, const std::string& origin)
      : text_(text), origin_(origin) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ < text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t n = 0; n < pos_ && n < text_.size(); ++n) {
      if (text_[n] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw Error(origin_ + ":" + std::to_string(line) + ":" +
                std::to_string(col) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    // Bound recursion so a pathologically nested document (e.g. 100k
    // consecutive '[') errors with a position instead of overflowing the
    // stack.
    if (depth_ >= 200) fail("nesting deeper than 200 levels");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("invalid literal (expected 'true')");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("invalid literal (expected 'false')");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("invalid literal (expected 'null')");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    ++depth_;
    JsonValue::Object members;
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      if (peek() != '"') fail("object keys must be strings");
      std::string key = parse_string();
      for (const auto& [existing, unused] : members) {
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      }
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        --depth_;
        return JsonValue::make_object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    ++depth_;
    JsonValue::Array items;
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        --depth_;
        return JsonValue::make_array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int n = 0; n < 4; ++n) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // Reject surrogates outright: encoding them raw would produce
          // invalid UTF-8 (CESU-8) that silently corrupts names and CSV
          // output. Scenario specs are ASCII identifiers and numbers;
          // astral code points are not worth the pair-decoding machinery.
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("\\u surrogate escapes are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    skip_whitespace();
    // Enforce JSON's number grammar positionally before handing the span
    // to strtod (which is laxer: hex, "inf", "+5", ".5", "01", "5.").
    //   -? (0 | [1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?
    const std::size_t start = pos_;
    std::size_t p = pos_;
    const auto digits = [&](const char* what) {
      const std::size_t first = p;
      while (p < text_.size() && text_[p] >= '0' && text_[p] <= '9') ++p;
      if (p == first) {
        pos_ = p;
        fail(std::string("invalid number: expected ") + what);
      }
    };
    if (p < text_.size() && text_[p] == '-') ++p;
    if (p < text_.size() && text_[p] == '0') {
      ++p;  // a leading zero stands alone ("01" is not JSON)
    } else {
      digits("a digit");
    }
    if (p < text_.size() && text_[p] == '.') {
      ++p;
      digits("a digit after '.'");
    }
    if (p < text_.size() && (text_[p] == 'e' || text_[p] == 'E')) {
      ++p;
      if (p < text_.size() && (text_[p] == '+' || text_[p] == '-')) ++p;
      digits("a digit in the exponent");
    }
    char* end = nullptr;
    const double value = std::strtod(text_.c_str() + start, &end);
    const auto parsed = static_cast<std::size_t>(end - text_.c_str());
    if (parsed != p) fail("invalid JSON value");
    if (!std::isfinite(value)) fail("number out of double range");
    pos_ = p;
    return JsonValue::make_number(value);
  }

  const std::string& text_;
  const std::string origin_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_into(*this, indent, 0, out);
  return out;
}

JsonValue parse_json(const std::string& text, const std::string& origin) {
  return Parser(text, origin).parse_document();
}

}  // namespace esched
