// Fixed-width ASCII table printer used by the experiment harnesses to emit
// the rows/series the paper's figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace esched {

/// Accumulates rows of string cells and prints them as an aligned table.
///
/// Usage:
///   Table t({"mu_I", "E[T] IF", "E[T] EF"});
///   t.add_row({format(mu), format(tif), format(tef)});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, rule, rows) to `os`.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (default 5).
std::string format_double(double value, int digits = 5);

}  // namespace esched
