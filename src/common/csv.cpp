#include "common/csv.hpp"

#include "common/error.hpp"

namespace esched {

namespace {
void write_row(std::ofstream& out, const std::vector<std::string>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) out << ',';
    out << cells[c];
  }
  out << '\n';
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  ESCHED_CHECK(out_.good(), "failed to open CSV file: " + path);
  ESCHED_CHECK(arity_ > 0, "CSV header must be non-empty");
  write_row(out_, header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  ESCHED_CHECK(cells.size() == arity_, "CSV row arity must match header");
  write_row(out_, cells);
  ++num_rows_;
}

}  // namespace esched
