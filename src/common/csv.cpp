#include "common/csv.hpp"

#include "common/error.hpp"

namespace esched {

std::string csv_encode_field(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quoting) return field;
  std::string encoded;
  encoded.reserve(field.size() + 2);
  encoded.push_back('"');
  for (const char c : field) {
    if (c == '"') encoded.push_back('"');
    encoded.push_back(c);
  }
  encoded.push_back('"');
  return encoded;
}

std::string csv_encode_row(const std::vector<std::string>& cells) {
  std::string row;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) row.push_back(',');
    row += csv_encode_field(cells[c]);
  }
  return row;
}

bool csv_parse_record(const std::string& text, std::size_t* offset,
                      std::vector<std::string>* cells, bool* complete) {
  cells->clear();
  *complete = false;
  std::size_t i = *offset;
  if (i >= text.size()) return false;
  std::string cell;
  bool in_quotes = false;
  bool cell_quoted = false;  // this cell began with an opening quote
  const auto finish_cell = [&] {
    cells->push_back(cell);
    cell.clear();
    cell_quoted = false;
  };
  while (i < text.size()) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      cell.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && cell.empty() && !cell_quoted) {
      in_quotes = true;
      cell_quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      finish_cell();
      ++i;
      continue;
    }
    if (c == '\n' ||
        (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n')) {
      finish_cell();
      *offset = i + (c == '\r' ? 2 : 1);
      *complete = true;
      return true;
    }
    // Lenient on technically malformed input (a stray quote inside an
    // unquoted cell, a bare CR, or text after a closing quote): taken
    // literally.
    cell.push_back(c);
    ++i;
  }
  // EOF before a terminating newline: the record is readable but
  // incomplete — an interrupted writer's torn last line lands here.
  finish_cell();
  *offset = i;
  return true;
}

std::vector<std::string> csv_decode_row(const std::string& line) {
  std::size_t offset = 0;
  std::vector<std::string> cells;
  bool complete = false;
  const std::string text = line + "\n";
  ESCHED_CHECK(csv_parse_record(text, &offset, &cells, &complete) &&
                   complete && offset == text.size(),
               "malformed CSV row: " + line);
  return cells;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  ESCHED_CHECK(out_.good(), "failed to open CSV file: " + path);
  ESCHED_CHECK(arity_ > 0, "CSV header must be non-empty");
  out_ << csv_encode_row(header) << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  ESCHED_CHECK(cells.size() == arity_, "CSV row arity must match header");
  out_ << csv_encode_row(cells) << '\n';
  ++num_rows_;
}

}  // namespace esched
