#include "srpt/srpt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace esched {

namespace {

void check_jobs(const std::vector<BatchJob>& jobs, int k) {
  ESCHED_CHECK(!jobs.empty(), "need at least one job");
  ESCHED_CHECK(k >= 1, "need at least one server");
  for (const auto& j : jobs) {
    ESCHED_CHECK(j.size > 0.0, "job sizes must be positive");
    ESCHED_CHECK(j.cap > 0.0, "job caps must be positive");
  }
}

}  // namespace

BatchScheduleResult priority_schedule(const std::vector<BatchJob>& jobs,
                                      int k, const std::vector<int>& order,
                                      double speed) {
  check_jobs(jobs, k);
  ESCHED_CHECK(order.size() == jobs.size(), "order must be a permutation");
  ESCHED_CHECK(speed > 0.0, "speed must be positive");

  const std::size_t n = jobs.size();
  std::vector<double> remaining(n);
  for (std::size_t j = 0; j < n; ++j) remaining[j] = jobs[j].size;
  std::vector<bool> done(n, false);

  BatchScheduleResult result;
  result.completion_times.assign(n, 0.0);
  double now = 0.0;
  std::size_t finished = 0;

  while (finished < n) {
    // Hand out servers down the priority list.
    std::vector<double> rate(n, 0.0);
    double servers_left = static_cast<double>(k);
    for (int idx : order) {
      const auto j = static_cast<std::size_t>(idx);
      if (done[j] || servers_left <= 1e-12) continue;
      const double give = std::min(jobs[j].cap, servers_left);
      rate[j] = give * speed;
      servers_left -= give;
    }
    // Next completion under these constant rates.
    double dt = std::numeric_limits<double>::infinity();
    std::size_t next_done = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (done[j] || rate[j] <= 0.0) continue;
      const double candidate = remaining[j] / rate[j];
      if (candidate < dt) {
        dt = candidate;
        next_done = j;
      }
    }
    ESCHED_ASSERT(next_done < n, "no job is making progress");
    now += dt;
    for (std::size_t j = 0; j < n; ++j) {
      if (!done[j] && rate[j] > 0.0) {
        remaining[j] = std::max(0.0, remaining[j] - rate[j] * dt);
      }
    }
    remaining[next_done] = 0.0;
    done[next_done] = true;
    result.completion_times[next_done] = now;
    result.total_response_time += now;
    ++finished;
  }
  result.makespan = now;
  return result;
}

BatchScheduleResult srpt_k_schedule(const std::vector<BatchJob>& jobs, int k,
                                    double speed) {
  check_jobs(jobs, k);
  std::vector<int> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return jobs[static_cast<std::size_t>(a)].size <
           jobs[static_cast<std::size_t>(b)].size;
  });
  return priority_schedule(jobs, k, order, speed);
}

double best_static_priority_cost(const std::vector<BatchJob>& jobs, int k) {
  check_jobs(jobs, k);
  ESCHED_CHECK(jobs.size() <= 9, "exhaustive search limited to n <= 9");
  std::vector<int> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best,
                    priority_schedule(jobs, k, order).total_response_time);
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

}  // namespace esched
