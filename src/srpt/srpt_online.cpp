#include "srpt/srpt_online.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace esched {

namespace {

void check_jobs(const std::vector<OnlineJob>& jobs) {
  ESCHED_CHECK(!jobs.empty(), "need at least one job");
  for (const auto& j : jobs) {
    ESCHED_CHECK(j.release >= 0.0, "release times must be non-negative");
    ESCHED_CHECK(j.size > 0.0, "job sizes must be positive");
    ESCHED_CHECK(j.cap > 0.0, "job caps must be positive");
  }
}

}  // namespace

OnlineScheduleResult srpt_k_online(const std::vector<OnlineJob>& jobs,
                                   int k) {
  check_jobs(jobs);
  ESCHED_CHECK(k >= 1, "need at least one server");
  const std::size_t n = jobs.size();

  std::vector<double> remaining(n);
  for (std::size_t j = 0; j < n; ++j) remaining[j] = jobs[j].size;
  std::vector<bool> released(n, false), done(n, false);
  // Releases in time order.
  std::vector<std::size_t> release_order(n);
  std::iota(release_order.begin(), release_order.end(), 0);
  std::stable_sort(release_order.begin(), release_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].release < jobs[b].release;
                   });

  OnlineScheduleResult result;
  result.completion_times.assign(n, 0.0);
  double now = 0.0;
  std::size_t next_release = 0;
  std::size_t finished = 0;

  while (finished < n) {
    // Admit all jobs released by `now`.
    while (next_release < n &&
           jobs[release_order[next_release]].release <= now + 1e-15) {
      released[release_order[next_release++]] = true;
    }
    // Active jobs by remaining size (SRPT), ties by input order.
    std::vector<std::size_t> active;
    for (std::size_t j = 0; j < n; ++j) {
      if (released[j] && !done[j]) active.push_back(j);
    }
    const double upcoming =
        next_release < n ? jobs[release_order[next_release]].release : kInf;
    if (active.empty()) {
      ESCHED_ASSERT(upcoming < kInf, "idle with no future releases");
      now = upcoming;
      continue;
    }
    std::stable_sort(active.begin(), active.end(),
                     [&](std::size_t a, std::size_t b) {
                       return remaining[a] < remaining[b];
                     });
    // Servers down the SRPT list, each job up to its cap.
    std::vector<double> rate(n, 0.0);
    double left = static_cast<double>(k);
    for (std::size_t j : active) {
      if (left <= 1e-12) break;
      rate[j] = std::min(jobs[j].cap, left);
      left -= rate[j];
    }
    // Next event: completion or release.
    double dt = upcoming - now;
    std::size_t completing = n;
    for (std::size_t j : active) {
      if (rate[j] <= 0.0) continue;
      const double candidate = remaining[j] / rate[j];
      if (candidate < dt) {
        dt = candidate;
        completing = j;
      }
    }
    ESCHED_ASSERT(dt < kInf, "scheduler is stuck");
    for (std::size_t j : active) {
      if (rate[j] > 0.0) {
        remaining[j] = std::max(0.0, remaining[j] - rate[j] * dt);
      }
    }
    now += dt;
    if (completing < n) {
      remaining[completing] = 0.0;
      done[completing] = true;
      result.completion_times[completing] = now;
      result.total_response_time += now - jobs[completing].release;
      ++finished;
    }
  }
  return result;
}

double single_machine_srpt_cost(const std::vector<OnlineJob>& jobs,
                                double speed) {
  check_jobs(jobs);
  ESCHED_CHECK(speed > 0.0, "speed must be positive");
  // Same event loop, but exactly one job (the SRPT choice) runs at `speed`.
  const std::size_t n = jobs.size();
  std::vector<double> remaining(n);
  for (std::size_t j = 0; j < n; ++j) remaining[j] = jobs[j].size;
  std::vector<bool> released(n, false), done(n, false);
  std::vector<std::size_t> release_order(n);
  std::iota(release_order.begin(), release_order.end(), 0);
  std::stable_sort(release_order.begin(), release_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].release < jobs[b].release;
                   });
  double now = 0.0;
  double total = 0.0;
  std::size_t next_release = 0;
  std::size_t finished = 0;
  while (finished < n) {
    while (next_release < n &&
           jobs[release_order[next_release]].release <= now + 1e-15) {
      released[release_order[next_release++]] = true;
    }
    std::size_t best = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (released[j] && !done[j] &&
          (best == n || remaining[j] < remaining[best])) {
        best = j;
      }
    }
    const double upcoming =
        next_release < n ? jobs[release_order[next_release]].release : kInf;
    if (best == n) {
      ESCHED_ASSERT(upcoming < kInf, "idle with no future releases");
      now = upcoming;
      continue;
    }
    const double to_finish = remaining[best] / speed;
    if (now + to_finish <= upcoming) {
      now += to_finish;
      remaining[best] = 0.0;
      done[best] = true;
      total += now - jobs[best].release;
      ++finished;
    } else {
      remaining[best] -= (upcoming - now) * speed;
      now = upcoming;
    }
  }
  return total;
}

double online_lower_bound(const std::vector<OnlineJob>& jobs, int k) {
  check_jobs(jobs);
  ESCHED_CHECK(k >= 1, "need at least one server");
  const double relaxation =
      single_machine_srpt_cost(jobs, static_cast<double>(k));
  double processing = 0.0;
  for (const auto& j : jobs) {
    processing += j.size / std::min(j.cap, static_cast<double>(k));
  }
  return std::max(relaxation, processing);
}

}  // namespace esched
