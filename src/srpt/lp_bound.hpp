// The LP lower bound of Appendix A.
//
// The relaxation (LP_primal)
//   min sum_j sum_t (t/x_j + 1/(2 k_j)) y_jt
//   s.t. sum_t y_jt >= x_j (every job finishes),
//        sum_j y_jt <= k  (capacity),  y >= 0
// lower-bounds the optimal total response time. Its optimum has a closed
// form: process jobs serially in SPT order at full speed k (an exchange
// argument — moving work of a smaller job earlier always reduces the
// t-weighted term, and the 1/(2 k_j) term is schedule-independent):
//   LP* = sum_j (U_j + x_j / 2) / k + sum_j x_j / (2 k_j),
// where U_j is the total size of jobs strictly before j in SPT order.
// lp_cost_of_serial_order() evaluates the LP objective of any serial
// order so tests can confirm SPT is the argmin.
#pragma once

#include <vector>

#include "srpt/srpt.hpp"

namespace esched {

/// Closed-form LP lower bound (serial SPT at speed k).
double lp_lower_bound(const std::vector<BatchJob>& jobs, int k);

/// LP objective value of the feasible solution that processes jobs
/// serially at speed k in the given order — equals lp_lower_bound() when
/// `order` is SPT; strictly larger otherwise (used in tests).
double lp_cost_of_serial_order(const std::vector<BatchJob>& jobs, int k,
                               const std::vector<int>& order);

}  // namespace esched
