// Online SRPT-k with release times (the setting of the paper's §1.4 /
// prior-work discussion, where SRPT-k is Θ(log min(p, n/k))-competitive).
//
// Jobs arrive over time; at every arrival/completion the scheduler
// reorders by REMAINING size (true SRPT, unlike the batch Appendix-A
// variant's static inherent-size priority) and hands servers down the
// list, each job up to its parallelizability cap. A lower bound comes
// from two relaxations: (a) one speed-k machine running single-machine
// SRPT (optimal for the relaxation), and (b) the per-job processing bound
// x_j / min(cap_j, k) added to its release time.
#pragma once

#include <vector>

#include "srpt/srpt.hpp"

namespace esched {

/// A job with a release time.
struct OnlineJob {
  double release = 0.0;
  double size = 0.0;
  double cap = 1.0;
};

/// Result of an online schedule.
struct OnlineScheduleResult {
  std::vector<double> completion_times;  // input order
  double total_response_time = 0.0;      // sum of (completion - release)
};

/// Runs online SRPT-k (remaining-size priority, caps respected) on `k`
/// unit-speed servers.
OnlineScheduleResult srpt_k_online(const std::vector<OnlineJob>& jobs, int k);

/// Total response time of preemptive SRPT on a single machine of speed
/// `speed` (ignoring caps) — with speed = k this is a valid lower bound
/// for any k-server schedule of the same jobs.
double single_machine_srpt_cost(const std::vector<OnlineJob>& jobs,
                                double speed);

/// max( single-machine speed-k SRPT cost,
///      sum_j x_j / min(cap_j, k) )  — both relax any feasible schedule.
double online_lower_bound(const std::vector<OnlineJob>& jobs, int k);

}  // namespace esched
