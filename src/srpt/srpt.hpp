// Worst-case scheduling of parallelizable jobs arriving at time 0
// (paper Appendix A).
//
// Each job j has inherent size x_j and a parallelizability cap k_j: given
// k' <= k servers it processes at rate min(k_j, k'). The generalized
// SRPT-k algorithm sorts jobs by inherent size and hands out servers down
// that priority list, each job taking up to its cap. Theorem 9 shows this
// is a 4-approximation for total (equivalently mean) response time; we
// verify it against the LP lower bound of lp_bound.hpp.
#pragma once

#include <vector>

namespace esched {

/// A parallelizable job: inherent size and speedup cap (both positive;
/// cap may exceed k, which means "fully elastic").
struct BatchJob {
  double size = 0.0;
  double cap = 1.0;
};

/// Result of running a batch schedule.
struct BatchScheduleResult {
  std::vector<double> completion_times;  // per job, in input order
  double total_response_time = 0.0;      // = sum of completions (release 0)
  double makespan = 0.0;
};

/// Runs generalized SRPT-k: static priority by inherent size (ties by input
/// order), each job up to min(cap, remaining servers), speed-`speed`
/// servers. Piecewise-constant rates between completions.
BatchScheduleResult srpt_k_schedule(const std::vector<BatchJob>& jobs, int k,
                                    double speed = 1.0);

/// Runs the same server-filling rule under an arbitrary static priority
/// `order` (a permutation of job indices; earlier = higher priority).
BatchScheduleResult priority_schedule(const std::vector<BatchJob>& jobs,
                                      int k, const std::vector<int>& order,
                                      double speed = 1.0);

/// Exhaustively searches all static priority orders (n <= 9) and returns
/// the best total response time — a strong baseline for tiny instances.
double best_static_priority_cost(const std::vector<BatchJob>& jobs, int k);

}  // namespace esched
