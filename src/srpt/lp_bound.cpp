#include "srpt/lp_bound.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace esched {

double lp_cost_of_serial_order(const std::vector<BatchJob>& jobs, int k,
                               const std::vector<int>& order) {
  ESCHED_CHECK(!jobs.empty(), "need at least one job");
  ESCHED_CHECK(k >= 1, "need at least one server");
  ESCHED_CHECK(order.size() == jobs.size(), "order must be a permutation");
  const double kd = static_cast<double>(k);
  // Job j occupies [U/k, (U + x_j)/k] at rate k; its t-weighted integral is
  // the interval midpoint times x_j, contributing (U + x_j/2)/k per unit
  // divided by x_j — i.e. exactly (U + x_j/2)/k.
  double cost = 0.0;
  double elapsed_work = 0.0;
  for (int idx : order) {
    const BatchJob& job = jobs[static_cast<std::size_t>(idx)];
    ESCHED_CHECK(job.size > 0.0 && job.cap > 0.0,
                 "jobs must have positive size and cap");
    cost += (elapsed_work + 0.5 * job.size) / kd;
    cost += 0.5 * job.size / job.cap;
    elapsed_work += job.size;
  }
  return cost;
}

double lp_lower_bound(const std::vector<BatchJob>& jobs, int k) {
  std::vector<int> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return jobs[static_cast<std::size_t>(a)].size <
           jobs[static_cast<std::size_t>(b)].size;
  });
  return lp_cost_of_serial_order(jobs, k, order);
}

}  // namespace esched
