// The worker side of the distributed sweep queue: a claim -> solve ->
// commit loop over a queue directory (src/dist/work_queue). Any number of
// `esched work` processes — across machines sharing the filesystem — run
// this loop against one queue; chunk results are deterministic, so races
// (duplicate claims after a lease expiry, double commits) converge on
// identical bytes instead of corrupting the sweep.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

namespace esched {

struct WorkerOptions {
  /// SweepRunner threads per chunk (0 = all hardware threads).
  int threads = 0;
  /// Shared persistent result cache (--cache-dir): workers re-solving a
  /// reclaimed chunk hit the crashed worker's stored points instead of
  /// recomputing them. Every worker process mmaps the directory's
  /// open-addressing table (engine/shm_cache), so a warm hit is one
  /// lock-free probe of shared memory; the table's publish-or-skip slot
  /// protocol mirrors the lease discipline — a worker killed mid-store
  /// wedges one slot (reclaimed by `cache gc`), never corrupts a result.
  std::string cache_dir;
  /// Lease owner stamp; empty = default_worker_owner() (host.pid).
  std::string owner;
  /// A lease whose heartbeat (bumped per completed row) is older than
  /// this is treated as crashed and requeued. Must comfortably exceed
  /// the slowest single point's solve time.
  double lease_ttl_seconds = 60.0;
  /// Poll interval while other workers hold the remaining leases.
  int poll_ms = 500;
  /// Stop after this many chunks (0 = run until the queue drains).
  std::size_t max_chunks = 0;
  /// When false, exit as soon as no task is claimable instead of waiting
  /// for other workers' leases to finish or expire.
  bool wait_for_stragglers = true;
  /// Per-row progress lines (engine progress_callback) on `log`.
  bool progress = false;
  /// Crash-test hook (`esched work --abandon`): claim one chunk, then
  /// exit WITHOUT solving or releasing it — deterministically simulates
  /// a worker dying mid-chunk so tests/CI can exercise lease expiry and
  /// requeue without racing a kill signal.
  bool abandon = false;
  /// Worker chatter (claims, commits, requeues); nullptr = silent.
  std::ostream* log = nullptr;
  /// When nonempty, publish live metrics snapshots to
  /// `<telemetry_dir>/<owner>.metrics.json` every
  /// telemetry_interval_seconds (plus a final snapshot at exit) for
  /// `esched status` to merge into the fleet view. Observation only.
  std::string telemetry_dir;
  double telemetry_interval_seconds = 2.0;
};

struct WorkerSummary {
  std::size_t chunks_solved = 0;
  std::size_t points_solved = 0;
  std::size_t chunks_requeued = 0;   ///< expired leases this worker requeued
  std::size_t chunks_abandoned = 0;  ///< abandon-hook claims left leased
  /// Chunks THIS worker marked terminally failed (their solve threw —
  /// deterministic, so they are not requeued; see WorkQueue failures()).
  std::size_t chunks_failed = 0;
  /// Failure markers on the whole queue at exit (any worker's).
  std::size_t queue_failed = 0;
  /// True when the loop exited because every chunk is committed (rather
  /// than max_chunks, abandon, a no-wait idle exit, or failures).
  bool queue_drained = false;
  double wall_seconds = 0.0;
};

/// "<hostname>.<pid>" — distinct per worker process on a shared
/// filesystem.
std::string default_worker_owner();

/// Runs the worker loop against the queue at `queue_dir` until it drains
/// (or an options limit stops it). Throws esched::Error when the
/// directory is not a queue, a solve fails, or the queue is broken
/// (chunks that are neither pending, leased, nor done).
WorkerSummary run_worker(const std::string& queue_dir,
                         const WorkerOptions& options);

}  // namespace esched
