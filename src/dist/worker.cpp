#include "dist/worker.hpp"

#include <chrono>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#if __has_include(<unistd.h>)
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "dist/work_queue.hpp"
#include "engine/report.hpp"
#include "engine/sweep_runner.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace esched {

namespace {

/// Worker log lines go to a stream shared with the runner's progress
/// callback and, under a multi-process fleet, with sibling workers'
/// stderr: assemble each line fully and emit it with ONE insertion so
/// concurrent writers cannot interleave torn lines.
void log_line(std::ostream* log, const std::string& line) {
  if (log == nullptr) return;
  *log << line + "\n";
  log->flush();
}

}  // namespace

std::string default_worker_owner() {
  std::string host = "worker";
#if __has_include(<unistd.h>)
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    host = buf;
  }
  return host + "." + std::to_string(static_cast<long>(::getpid()));
#else
  return host;
#endif
}

namespace {

/// Solves one claimed chunk and commits it. Every completed row bumps the
/// lease heartbeat, so the TTL needs to cover single points, not whole
/// chunks.
void solve_chunk(WorkQueue& queue, const ChunkTask& task,
                 const std::string& owner, SweepRunner& runner,
                 const WorkerOptions& options) {
  // The chunk span covers claim-to-commit; the runner's sweep span nests
  // under it automatically (same thread).
  const TraceSpan chunk_span("chunk",
                             {{"chunk", task.chunk}, {"owner", owner}});
  const std::vector<RunPoint>& all = queue.expanded_points();
  const std::vector<RunPoint> slice(
      all.begin() + static_cast<std::ptrdiff_t>(task.begin),
      all.begin() + static_cast<std::ptrdiff_t>(task.end));
  RowCallback progress;
  if (options.progress && options.log != nullptr) {
    progress = progress_callback(queue.manifest().total_points, *options.log,
                                 task.begin);
  }
  const RowCallback on_row = [&queue, &task, &progress](
                                 std::size_t index, const RunPoint& point,
                                 const RunResult& result) {
    // A false return means the lease was reclaimed out from under us
    // (heartbeat stalled past the TTL on a slow point). Keep solving:
    // the commit below writes bytes identical to the reclaimer's.
    queue.heartbeat(task.chunk);
    if (progress) progress(index, point, result);
  };
  SweepStats stats;
  const std::vector<RunResult> results = runner.run(slice, &stats, on_row);
  queue.commit(task, owner, slice, results, stats);
}

}  // namespace

WorkerSummary run_worker(const std::string& queue_dir,
                         const WorkerOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  WorkQueue queue(queue_dir);
  const QueueManifest& manifest = queue.manifest();
  const std::string owner =
      options.owner.empty() ? default_worker_owner() : options.owner;
  queue.expanded_points();  // expand (and validate) once, before claiming
  if (TraceWriter* t = global_trace()) {
    t->event("worker_start",
             {{"owner", owner}, {"queue", queue_dir},
              {"chunks", manifest.num_chunks}});
  }
  // Root of this process's span tree; chunk spans nest under it.
  const TraceSpan worker_span("worker",
                              {{"owner", owner}, {"queue", queue_dir}});
  // Live fleet telemetry for `esched status`: periodic snapshots for the
  // worker's lifetime, a final one when this scope unwinds.
  std::unique_ptr<TelemetryPublisher> telemetry;
  if (!options.telemetry_dir.empty()) {
    TelemetryOptions telemetry_options;
    telemetry_options.dir = options.telemetry_dir;
    telemetry_options.owner = owner;
    telemetry_options.interval_seconds = options.telemetry_interval_seconds;
    telemetry = std::make_unique<TelemetryPublisher>(
        std::move(telemetry_options));
  }

  queue.sweep_stale_tmp();  // crashed writers' orphans, once per startup

  SweepRunner runner(options.threads);
  if (!options.cache_dir.empty()) runner.set_cache_dir(options.cache_dir);

  WorkerSummary summary;
  std::ostream* log = options.log;
  // The abandon hook simulates ONE crash by default; an explicit
  // max_chunks widens it (e.g. a test wedging several leases at once).
  // An abandoning worker also never waits for stragglers — idling until
  // its own wedged leases expire would just re-abandon them.
  const std::size_t max_chunks =
      options.abandon && options.max_chunks == 0 ? 1 : options.max_chunks;
  const bool wait_for_stragglers =
      options.wait_for_stragglers && !options.abandon;
  // Consecutive idle scans with nothing pending, nothing leased, and the
  // queue not drained: transient (between two non-atomic scans) once or
  // twice, a lost-files bug every time.
  int broken_scans = 0;
  for (;;) {
    if (max_chunks > 0 &&
        summary.chunks_solved + summary.chunks_abandoned >= max_chunks) {
      break;
    }
    summary.chunks_requeued += queue.reclaim_expired(options.lease_ttl_seconds);

    // One directory scan, then claim down the whole sorted list — a
    // per-chunk rescan would make draining an N-chunk queue O(N^2) task
    // reads per worker. The per-task is_done() check supplies the
    // freshness a rescan would: a chunk that committed (or was claimed)
    // since the scan is skipped or loses its claim race cleanly.
    bool claimed = false;
    for (const ChunkTask& task : queue.pending_tasks()) {
      if (max_chunks > 0 &&
          summary.chunks_solved + summary.chunks_abandoned >= max_chunks) {
        break;
      }
      if (queue.is_done(task.chunk) || queue.is_failed(task.chunk)) {
        // A reclaim/commit race left a stray task behind a finished (or
        // terminally failed) chunk; sweep it up instead of solving it
        // again.
        queue.discard_task(task.chunk);
        continue;
      }
      if (!queue.claim(task, owner)) continue;  // lost the race; next task
      claimed = true;
      if (options.abandon) {
        ++summary.chunks_abandoned;
        log_line(log, "worker " + owner + ": abandoned chunk " +
                          std::to_string(task.chunk) +
                          " (lease left to expire)");
        // Rescan via the outer loop; its max_chunks check ends the run
        // once enough leases are wedged (one by default).
        break;
      }
      try {
        solve_chunk(queue, task, owner, runner, options);
      } catch (const std::exception& e) {
        // A throwing solve is deterministic — a requeue would crash the
        // next worker identically and cycle the chunk through the fleet
        // forever. Mark it terminally failed and keep working; status
        // and collect surface the recorded error.
        queue.record_failure(task, owner, e.what());
        ++summary.chunks_failed;
        log_line(log, "worker " + owner + ": chunk " +
                          std::to_string(task.chunk) +
                          " FAILED permanently: " + e.what());
        continue;
      }
      ++summary.chunks_solved;
      summary.points_solved += task.end - task.begin;
      log_line(log, "worker " + owner + ": chunk " +
                        std::to_string(task.chunk) + " done (" +
                        std::to_string(task.end - task.begin) + " points)");
    }
    if (claimed) {
      broken_scans = 0;
      continue;
    }

    // Idle path: name-only directory tallies — polled every poll_ms by
    // every waiting worker, so no per-record file reads here.
    const LightCounts counts = queue.light_counts();
    summary.queue_failed = counts.failed;
    if (counts.done + counts.failed >= manifest.num_chunks) {
      summary.queue_drained = counts.failed == 0;
      break;
    }
    if (counts.pending == 0 && counts.leased == 0) {
      if (++broken_scans >= 5) {
        throw Error(
            "queue '" + queue_dir + "' is broken: " +
            std::to_string(manifest.num_chunks - counts.done -
                           counts.failed) +
            " chunks are neither pending, leased, done, nor failed (task "
            "files lost?)");
      }
    } else {
      broken_scans = 0;
      if (!wait_for_stragglers) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
  }

  summary.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (log != nullptr) {
    std::ostringstream line;
    line << "worker " << owner << ": " << summary.chunks_solved
         << " chunks solved (" << summary.points_solved << " points), "
         << summary.chunks_requeued << " requeued";
    if (summary.queue_failed > 0) {
      line << ", " << summary.queue_failed << " failed on the queue";
    }
    line << (summary.queue_drained ? ", queue drained" : "") << " in "
         << summary.wall_seconds << " s";
    log_line(log, line.str());
  }
  if (TraceWriter* t = global_trace()) {
    t->event("worker_done", {{"owner", owner},
                             {"chunks", summary.chunks_solved},
                             {"points", summary.points_solved},
                             {"seconds", summary.wall_seconds}});
  }
  return summary;
}

}  // namespace esched
