// Filesystem lease primitives for the distributed work queue (src/dist).
//
// The queue's whole coordination protocol is built on one POSIX fact: a
// rename within a filesystem is atomic. A task is claimed by renaming its
// file from tasks/ into leases/ — exactly one racing process wins, the
// losers see ENOENT and move on, and there is no instant at which the
// chunk exists in both directories or neither. A lease's heartbeat is its
// file's mtime, bumped by the owner as rows complete; a lease whose
// heartbeat is older than the TTL belongs to a crashed (or wedged) worker
// and is reclaimed by renaming it back into tasks/. No locks, no
// daemons, no network: any shared filesystem with atomic rename (local
// disk, NFS) carries the queue.
//
// Clock caveat: heartbeats are file mtimes, so expiry compares the
// writer's clock against the reader's. Across machines, keep clocks
// within a small fraction of the lease TTL (and mind NFS attribute-cache
// delays) or size the TTL generously — skew past the TTL makes live
// leases look expired (reclaim thrash; still correct, since re-solves
// produce identical bytes, but wasteful) or delays real reclaims by the
// skew. On one machine there is one clock and none of this applies.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace esched {

/// One live lease as seen by a queue scan.
struct LeaseInfo {
  std::size_t chunk = 0;
  std::string path;
  /// Owner stamped into the lease file after the claim; empty when the
  /// stamp is missing or the file is torn (still reclaimable by age).
  std::string owner;
  double age_seconds = 0.0;  ///< now - last heartbeat (file mtime)
};

/// Atomically moves `from` to `to` (claim: tasks/ -> leases/; requeue:
/// leases/ -> tasks/). Returns false when the source no longer exists —
/// another process won the race — and throws esched::Error on genuinely
/// unexpected filesystem failures (permissions, cross-device, ...).
bool atomic_move(const std::string& from, const std::string& to);

/// Heartbeat: bumps `path`'s mtime to now. Returns false when the file
/// is gone — the lease was reclaimed out from under its owner (the owner
/// keeps solving; committing a reclaimed chunk is harmless because chunk
/// results are deterministic, so both writers produce identical bytes).
bool touch_heartbeat(const std::string& path);

/// Seconds since `path`'s last heartbeat (mtime); nullopt when it is
/// gone or unreadable.
std::optional<double> heartbeat_age_seconds(const std::string& path);

}  // namespace esched
