#include "dist/work_queue.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/invariants.hpp"
#include "common/json.hpp"
#include "engine/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace esched {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestFormat = "esched-queue-v1";

/// Queue-protocol observability handles, resolved once per process.
struct DistMetrics {
  Counter& claimed;               ///< dist.lease.claimed
  Counter& claim_lost;            ///< dist.lease.claim_lost (lost races)
  Counter& requeued;              ///< dist.lease.requeued (expired leases)
  Counter& heartbeats;            ///< dist.heartbeats
  Counter& committed;             ///< dist.chunks.committed
  Counter& failed;                ///< dist.chunks.failed
  LogHistogram& claim_seconds;    ///< dist.claim.seconds
  LogHistogram& commit_seconds;   ///< dist.commit.seconds
};

DistMetrics& dist_metrics() {
  static DistMetrics metrics = [] {
    MetricsRegistry& m = global_metrics();
    return DistMetrics{m.counter("dist.lease.claimed"),
                       m.counter("dist.lease.claim_lost"),
                       m.counter("dist.lease.requeued"),
                       m.counter("dist.heartbeats"),
                       m.counter("dist.chunks.committed"),
                       m.counter("dist.chunks.failed"),
                       m.histogram("dist.claim.seconds"),
                       m.histogram("dist.commit.seconds")};
  }();
  return metrics;
}

std::string chunk_file_name(std::size_t chunk) {
  // Zero-padded so lexical directory order equals chunk order; the parse
  // below keys on the digits, so wider ids (> 999999 chunks) still work.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "chunk-%06zu", chunk);
  return buf;
}

/// Chunk index from a "chunk-NNN<suffix>" file name; nullopt for foreign
/// files (editor backups, tmp cruft, ...).
std::optional<std::size_t> parse_chunk_file_name(const std::string& name,
                                                 const std::string& suffix) {
  constexpr const char* kPrefix = "chunk-";
  const std::size_t prefix_len = 6;
  if (name.rfind(kPrefix, 0) != 0) return std::nullopt;
  if (name.size() <= prefix_len + suffix.size()) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  std::size_t value = 0;
  for (std::size_t n = prefix_len; n < name.size() - suffix.size(); ++n) {
    if (name[n] < '0' || name[n] > '9') return std::nullopt;
    value = value * 10 + static_cast<std::size_t>(name[n] - '0');
  }
  return value;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t as_index(const JsonValue& v, const std::string& where) {
  return static_cast<std::size_t>(
      v.as_integer(where, 0, std::numeric_limits<long long>::max()));
}

std::string task_json(const ChunkTask& task, const std::string& owner) {
  JsonValue root = JsonValue::make_object();
  root.set("chunk", JsonValue::make_number(static_cast<double>(task.chunk)));
  root.set("begin", JsonValue::make_number(static_cast<double>(task.begin)));
  root.set("end", JsonValue::make_number(static_cast<double>(task.end)));
  if (!owner.empty()) root.set("owner", JsonValue::make_string(owner));
  return root.dump() + "\n";
}

/// Parses a task/lease body. Extra keys (the owner stamp of a requeued
/// lease) are ignored; anything torn or type-mismatched reads as nullopt.
std::optional<ChunkTask> parse_task_text(const std::string& text) {
  try {
    const JsonValue root = parse_json(text, "task");
    const JsonValue* chunk = root.find("chunk");
    const JsonValue* begin = root.find("begin");
    const JsonValue* end = root.find("end");
    if (chunk == nullptr || begin == nullptr || end == nullptr) {
      return std::nullopt;
    }
    ChunkTask task;
    task.chunk = as_index(*chunk, "task.chunk");
    task.begin = as_index(*begin, "task.begin");
    task.end = as_index(*end, "task.end");
    return task;
  } catch (const std::exception&) {
    return std::nullopt;  // torn file: skipped by every scan
  }
}

std::optional<std::string> parse_owner_text(const std::string& text) {
  try {
    const JsonValue root = parse_json(text, "lease");
    if (const JsonValue* owner = root.find("owner")) {
      return owner->as_string("lease.owner");
    }
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

void create_directory_checked(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  ESCHED_CHECK(!ec,
               "cannot create queue directory '" + path + "': " + ec.message());
}

}  // namespace

WorkQueue::WorkQueue(std::string directory)
    : directory_(std::move(directory)) {
  ESCHED_CHECK(!directory_.empty(), "queue directory path is empty");
  const std::string manifest_path = directory_ + "/queue.json";
  const auto text = read_file(manifest_path);
  ESCHED_CHECK(text.has_value(),
               "'" + directory_ +
                   "' is not a work queue (no queue.json manifest; create "
                   "one with `esched queue init`)");
  const JsonValue root = parse_json(*text, manifest_path);
  const JsonValue* format = root.find("format");
  ESCHED_CHECK(format != nullptr &&
                   format->as_string("queue.format") == kManifestFormat,
               manifest_path + ": unknown queue format (expected '" +
                   kManifestFormat + "')");
  const auto field = [&](const char* name) -> const JsonValue& {
    const JsonValue* v = root.find(name);
    ESCHED_CHECK(v != nullptr, manifest_path + ": missing key '" +
                                   std::string(name) + "'");
    return *v;
  };
  manifest_.chunk_size = as_index(field("chunk_size"), "queue.chunk_size");
  manifest_.total_points =
      as_index(field("total_points"), "queue.total_points");
  manifest_.num_chunks = as_index(field("num_chunks"), "queue.num_chunks");
  manifest_.with_size_dist =
      field("with_size_dist").as_bool("queue.with_size_dist");
  const auto& scenarios = field("scenarios").as_array("queue.scenarios");
  ESCHED_CHECK(!scenarios.empty(), manifest_path + ": no scenarios");
  for (const JsonValue& spec : scenarios) {
    manifest_.scenarios.push_back(scenario_from_json(spec));
  }
  ESCHED_CHECK(manifest_.chunk_size >= 1,
               manifest_path + ": chunk_size must be >= 1");
  ESCHED_CHECK(manifest_.num_chunks ==
                   chunk_ranges(manifest_.total_points, manifest_.chunk_size)
                       .size(),
               manifest_path + ": num_chunks does not match total_points / "
                               "chunk_size");
}

WorkQueue WorkQueue::init(const std::string& directory,
                          const LoadedSweep& sweep, std::size_t chunk_size) {
  ESCHED_CHECK(chunk_size >= 1, "queue chunk size must be >= 1");
  ESCHED_CHECK(sweep.total_points > 0, "queue init: the sweep has no points");
  const std::string manifest_path = directory + "/queue.json";
  create_directory_checked(directory);
  ESCHED_CHECK(!fs::exists(manifest_path),
               "'" + directory +
                   "' already holds a queue; collect or remove it first");
  create_directory_checked(directory + "/tasks");
  create_directory_checked(directory + "/leases");
  create_directory_checked(directory + "/results");
  create_directory_checked(directory + "/done");
  create_directory_checked(directory + "/failed");

  const auto ranges = chunk_ranges(sweep.total_points, chunk_size);
  for (std::size_t c = 0; c < ranges.size(); ++c) {
    const ChunkTask task{c, ranges[c].first, ranges[c].second};
    atomic_write_file(directory + "/tasks/" + chunk_file_name(c) + ".json",
                      task_json(task, ""));
  }

  // Manifest last: a queue becomes visible to workers only once every
  // task file is in place.
  JsonValue root = JsonValue::make_object();
  root.set("format", JsonValue::make_string(kManifestFormat));
  root.set("chunk_size",
           JsonValue::make_number(static_cast<double>(chunk_size)));
  root.set("total_points",
           JsonValue::make_number(static_cast<double>(sweep.total_points)));
  root.set("num_chunks",
           JsonValue::make_number(static_cast<double>(ranges.size())));
  root.set("with_size_dist", JsonValue::make_bool(sweep.with_size_dist));
  JsonValue scenarios = JsonValue::make_array();
  for (const Scenario& scenario : sweep.scenarios) {
    scenarios.push_back(scenario_to_json(scenario));
  }
  root.set("scenarios", std::move(scenarios));
  atomic_write_file(manifest_path, root.dump() + "\n");
  return WorkQueue(directory);
}

std::string WorkQueue::task_path(std::size_t chunk) const {
  return directory_ + "/tasks/" + chunk_file_name(chunk) + ".json";
}
std::string WorkQueue::lease_path(std::size_t chunk) const {
  return directory_ + "/leases/" + chunk_file_name(chunk) + ".json";
}
std::string WorkQueue::result_csv_path(std::size_t chunk) const {
  return directory_ + "/results/" + chunk_file_name(chunk) + ".csv";
}
std::string WorkQueue::result_json_path(std::size_t chunk) const {
  return directory_ + "/results/" + chunk_file_name(chunk) + ".json";
}
std::string WorkQueue::done_path(std::size_t chunk) const {
  return directory_ + "/done/" + chunk_file_name(chunk) + ".json";
}
std::string WorkQueue::failed_path(std::size_t chunk) const {
  return directory_ + "/failed/" + chunk_file_name(chunk) + ".json";
}

std::vector<ChunkTask> WorkQueue::pending_tasks() const {
  std::vector<ChunkTask> tasks;
  std::error_code ec;
  for (fs::directory_iterator it(directory_ + "/tasks", ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    const auto chunk = parse_chunk_file_name(name, ".json");
    if (!chunk.has_value() || *chunk >= manifest_.num_chunks) continue;
    const auto text = read_file(it->path().string());
    if (!text.has_value()) continue;
    const auto task = parse_task_text(*text);
    if (!task.has_value() || task->chunk != *chunk ||
        task->begin >= task->end || task->end > manifest_.total_points) {
      continue;  // torn or foreign: ignored by every scan
    }
    tasks.push_back(*task);
  }
  std::sort(tasks.begin(), tasks.end(),
            [](const ChunkTask& a, const ChunkTask& b) {
              return a.chunk < b.chunk;
            });
  return tasks;
}

std::vector<LeaseInfo> WorkQueue::leases() const {
  std::vector<LeaseInfo> result;
  std::error_code ec;
  for (fs::directory_iterator it(directory_ + "/leases", ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    const auto chunk = parse_chunk_file_name(name, ".json");
    if (!chunk.has_value() || *chunk >= manifest_.num_chunks) continue;
    LeaseInfo lease;
    lease.chunk = *chunk;
    lease.path = it->path().string();
    const auto age = heartbeat_age_seconds(lease.path);
    if (!age.has_value()) continue;  // vanished between scan and stat
    lease.age_seconds = *age;
    if (const auto text = read_file(lease.path)) {
      if (const auto owner = parse_owner_text(*text)) lease.owner = *owner;
    }
    result.push_back(std::move(lease));
  }
  std::sort(result.begin(), result.end(),
            [](const LeaseInfo& a, const LeaseInfo& b) {
              return a.chunk < b.chunk;
            });
  return result;
}

std::vector<ChunkRecord> WorkQueue::completed() const {
  std::vector<ChunkRecord> records;
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  for (fs::directory_iterator it(directory_ + "/done", ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    const auto chunk = parse_chunk_file_name(name, ".json");
    if (!chunk.has_value() || *chunk >= manifest_.num_chunks) continue;
    const auto text = read_file(it->path().string());
    if (!text.has_value()) continue;
    try {
      const JsonValue root = parse_json(*text, "done");
      ChunkRecord record;
      record.chunk = *chunk;
      std::error_code age_ec;
      const auto mtime = fs::last_write_time(it->path(), age_ec);
      if (!age_ec) {
        record.age_seconds = std::max(
            0.0, std::chrono::duration<double>(now - mtime).count());
      }
      const JsonValue* begin = root.find("begin");
      const JsonValue* end_v = root.find("end");
      const JsonValue* rows = root.find("rows");
      if (begin == nullptr || end_v == nullptr || rows == nullptr) continue;
      record.begin = as_index(*begin, "done.begin");
      record.end = as_index(*end_v, "done.end");
      record.rows = as_index(*rows, "done.rows");
      if (const JsonValue* owner = root.find("owner")) {
        record.owner = owner->as_string("done.owner");
      }
      if (const JsonValue* seconds = root.find("solve_seconds")) {
        record.solve_seconds = seconds->as_number("done.solve_seconds");
      }
      records.push_back(std::move(record));
    } catch (const std::exception&) {
      continue;  // torn record: the chunk reads as unfinished
    }
  }
  std::sort(records.begin(), records.end(),
            [](const ChunkRecord& a, const ChunkRecord& b) {
              return a.chunk < b.chunk;
            });
  return records;
}

QueueCounts WorkQueue::counts(double lease_ttl_seconds) const {
  QueueCounts counts;
  // Scan order matters: tasks, then leases, then done markers. A chunk
  // being claimed moves tasks -> leases atomically (no gap); one being
  // committed gains its done marker BEFORE its lease is removed, so
  // scanning done last can only over-count transiently, never lose a
  // chunk.
  counts.pending = pending_tasks().size();
  std::set<std::string> owners;
  for (const LeaseInfo& lease : leases()) {
    ++counts.leased;
    if (lease.age_seconds > lease_ttl_seconds) {
      ++counts.expired;
    } else if (!lease.owner.empty()) {
      owners.insert(lease.owner);
    }
  }
  counts.active_workers = owners.size();
  for (const ChunkRecord& record : completed()) {
    ++counts.done;
    counts.done_points += record.rows;
    counts.done_seconds += record.solve_seconds;
  }
  counts.failed = failures().size();
  return counts;
}

bool WorkQueue::is_done(std::size_t chunk) const {
  std::error_code ec;
  return fs::exists(done_path(chunk), ec);
}

bool WorkQueue::is_failed(std::size_t chunk) const {
  std::error_code ec;
  return fs::exists(failed_path(chunk), ec) && !is_done(chunk);
}

void WorkQueue::record_failure(const ChunkTask& task, const std::string& owner,
                               const std::string& error) const {
  // A terminal-failure marker must name an in-range chunk and carry the
  // solver's message — status/collect surface it verbatim, and an empty
  // error would read as a torn marker.
  ESCHED_DEBUG_CHECK(require(task.chunk < manifest_.num_chunks &&
                                 !error.empty(),
                             "WorkQueue::record_failure",
                             "failure marker without chunk/error"));
  if (is_done(task.chunk)) return;  // someone else's solve landed: not failed
  JsonValue record = JsonValue::make_object();
  record.set("chunk",
             JsonValue::make_number(static_cast<double>(task.chunk)));
  record.set("owner", JsonValue::make_string(owner));
  record.set("error", JsonValue::make_string(error));
  atomic_write_file(failed_path(task.chunk), record.dump() + "\n");
  dist_metrics().failed.add();
  if (TraceWriter* t = global_trace()) {
    t->event("chunk_failed", {{"chunk", task.chunk},
                              {"owner", owner},
                              {"error", error}});
  }
  // Drop the lease WITHOUT requeueing: the engine's solves are
  // deterministic, so every retry of this chunk would fail identically —
  // cycling it through the fleet would just crash worker after worker.
  std::error_code ec;
  fs::remove(lease_path(task.chunk), ec);
}

std::vector<FailureRecord> WorkQueue::failures() const {
  std::vector<FailureRecord> records;
  std::error_code ec;
  for (fs::directory_iterator it(directory_ + "/failed", ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    const auto chunk = parse_chunk_file_name(name, ".json");
    if (!chunk.has_value() || *chunk >= manifest_.num_chunks) continue;
    if (is_done(*chunk)) continue;  // a later (or racing) solve succeeded
    FailureRecord record;
    record.chunk = *chunk;
    if (const auto text = read_file(it->path().string())) {
      try {
        const JsonValue root = parse_json(*text, "failed");
        if (const JsonValue* owner = root.find("owner")) {
          record.owner = owner->as_string("failed.owner");
        }
        if (const JsonValue* error = root.find("error")) {
          record.error = error->as_string("failed.error");
        }
      } catch (const std::exception&) {
        // Torn marker: still a failure, just without the prose.
      }
    }
    records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end(),
            [](const FailureRecord& a, const FailureRecord& b) {
              return a.chunk < b.chunk;
            });
  return records;
}

LightCounts WorkQueue::light_counts() const {
  // Directory-name tallies only — no file reads or JSON parses. This is
  // what worker idle loops poll (possibly every --poll-ms across a
  // fleet); the full counts() below reads every record and is for
  // `esched status`.
  LightCounts counts;
  const auto tally = [&](const char* sub, const std::string& suffix,
                         std::set<std::size_t>* chunks) {
    std::size_t n = 0;
    std::error_code ec;
    for (fs::directory_iterator it(directory_ + sub, ec), end;
         !ec && it != end; it.increment(ec)) {
      const auto chunk =
          parse_chunk_file_name(it->path().filename().string(), suffix);
      if (!chunk.has_value() || *chunk >= manifest_.num_chunks) continue;
      ++n;
      if (chunks != nullptr) chunks->insert(*chunk);
    }
    return n;
  };
  std::set<std::size_t> done_chunks;
  counts.pending = tally("/tasks", ".json", nullptr);
  counts.leased = tally("/leases", ".json", nullptr);
  counts.done = tally("/done", ".json", &done_chunks);
  std::set<std::size_t> failed_chunks;
  tally("/failed", ".json", &failed_chunks);
  for (const std::size_t chunk : failed_chunks) {
    if (done_chunks.count(chunk) == 0) ++counts.failed;
  }
  return counts;
}

bool WorkQueue::claim(const ChunkTask& task, const std::string& owner) const {
  // Lease-state transition: only an in-range pending task may become a
  // lease. An out-of-range chunk here means a foreign or hand-edited task
  // file slipped past pending_tasks()'s filters.
  ESCHED_DEBUG_CHECK(require(
      task.chunk < manifest_.num_chunks && task.begin <= task.end &&
          task.end <= manifest_.total_points,
      "WorkQueue::claim", "task outside the manifest's chunk/point range"));
  DistMetrics& metrics = dist_metrics();
  const ScopedTimer timer(metrics.claim_seconds);
  // Freshen the task BEFORE the claiming rename: rename preserves mtime,
  // so a task that sat queued longer than the TTL (queue init'd Friday,
  // workers started Monday) would otherwise become a lease that a
  // concurrent reclaim scan could steal back in the instant before our
  // first heartbeat — leaving the chunk pending AND leased at once.
  touch_heartbeat(task_path(task.chunk));
  if (!atomic_move(task_path(task.chunk), lease_path(task.chunk))) {
    metrics.claim_lost.add();
    return false;  // lost the race
  }
  // Stamp the owner (also refreshing the heartbeat). The rewrite is
  // atomic, so a concurrent scan sees either the bare task body or the
  // stamped one, never a torn line.
  atomic_write_file(lease_path(task.chunk), task_json(task, owner));
  metrics.claimed.add();
  if (TraceWriter* t = global_trace()) {
    t->event("lease_claim", {{"chunk", task.chunk}, {"owner", owner}});
  }
  return true;
}

bool WorkQueue::heartbeat(std::size_t chunk) const {
  dist_metrics().heartbeats.add();
  return touch_heartbeat(lease_path(chunk));
}

std::size_t WorkQueue::reclaim_expired(double lease_ttl_seconds) const {
  std::size_t requeued = 0;
  for (const LeaseInfo& lease : leases()) {
    if (lease.age_seconds <= lease_ttl_seconds) continue;
    // Lease-state transition: only an expired, in-range lease may go back
    // to pending. leases() filters out-of-range names, so a violation here
    // means the scan or the expiry arithmetic regressed.
    ESCHED_DEBUG_CHECK(require(
        lease.chunk < manifest_.num_chunks &&
            lease.age_seconds > lease_ttl_seconds,
        "WorkQueue::reclaim_expired", "requeue of a live or foreign lease"));
    if (is_done(lease.chunk)) {
      // The owner died between its done marker and the lease removal —
      // the chunk is finished; just drop the stale lease.
      std::error_code ec;
      fs::remove(lease.path, ec);
      continue;
    }
    if (atomic_move(lease.path, task_path(lease.chunk))) {
      // Freshen the requeued task's mtime (rename kept the stale one), so
      // the next claim's lease starts with a live-looking heartbeat even
      // before claim()'s own touch lands.
      touch_heartbeat(task_path(lease.chunk));
      ++requeued;
      dist_metrics().requeued.add();
      if (TraceWriter* t = global_trace()) {
        t->event("lease_requeue",
                 {{"chunk", lease.chunk}, {"owner", lease.owner}});
      }
    }
  }
  return requeued;
}

void WorkQueue::discard_task(std::size_t chunk) const {
  std::error_code ec;
  fs::remove(task_path(chunk), ec);
}

std::size_t WorkQueue::sweep_stale_tmp() const {
  constexpr double kStaleSeconds = 3600.0;
  std::size_t removed = 0;
  const auto now = fs::file_time_type::clock::now();
  for (const char* sub :
       {"/tasks", "/leases", "/results", "/done", "/failed", ""}) {
    std::error_code ec;
    for (fs::directory_iterator it(directory_ + sub, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string name = it->path().filename().string();
      if (name.find(".tmp.") == std::string::npos) continue;
      std::error_code tmp_ec;
      const auto mtime = fs::last_write_time(it->path(), tmp_ec);
      if (tmp_ec) continue;
      const double age =
          std::chrono::duration<double>(now - mtime).count();
      if (age <= kStaleSeconds) continue;
      if (fs::remove(it->path(), tmp_ec) && !tmp_ec) ++removed;
    }
  }
  return removed;
}

void WorkQueue::commit(const ChunkTask& task, const std::string& owner,
                       const std::vector<RunPoint>& points,
                       const std::vector<RunResult>& results,
                       const SweepStats& stats) const {
  ESCHED_CHECK(points.size() == task.end - task.begin &&
                   points.size() == results.size(),
               "chunk commit size mismatch");
  DistMetrics& metrics = dist_metrics();
  const ScopedTimer timer(metrics.commit_seconds, &metrics.committed);
  // Result files first (each temp + atomic rename, so a torn chunk CSV
  // can never sit under the final name), then the done marker, then the
  // lease. Dying between any two steps is recoverable: the lease expires
  // and the re-solve rewrites identical bytes.
  const std::string csv_tmp = unique_tmp_path(result_csv_path(task.chunk));
  write_csv_report(csv_tmp, points, results, manifest_.with_size_dist);
  atomic_publish_file(csv_tmp, result_csv_path(task.chunk));

  const std::string json_tmp = unique_tmp_path(result_json_path(task.chunk));
  write_json_report(json_tmp, points, results, &stats,
                    manifest_.with_size_dist);
  atomic_publish_file(json_tmp, result_json_path(task.chunk));

  JsonValue record = JsonValue::make_object();
  record.set("chunk",
             JsonValue::make_number(static_cast<double>(task.chunk)));
  record.set("begin",
             JsonValue::make_number(static_cast<double>(task.begin)));
  record.set("end", JsonValue::make_number(static_cast<double>(task.end)));
  record.set("rows",
             JsonValue::make_number(static_cast<double>(points.size())));
  record.set("owner", JsonValue::make_string(owner));
  record.set("solve_seconds", JsonValue::make_number(stats.wall_seconds));
  atomic_write_file(done_path(task.chunk), record.dump() + "\n");
  // Commit-order invariant: once the done marker is published the chunk
  // must read as done (done_path and is_done agree), or status/collect
  // would re-solve a committed chunk forever.
  ESCHED_DEBUG_CHECK(require(is_done(task.chunk), "WorkQueue::commit",
                             "done marker published but is_done() is false"));

  std::error_code ec;
  fs::remove(lease_path(task.chunk), ec);  // best-effort; expiry cleans up
  if (TraceWriter* t = global_trace()) {
    t->event("chunk_commit", {{"chunk", task.chunk},
                              {"owner", owner},
                              {"rows", points.size()},
                              {"seconds", stats.wall_seconds}});
  }
}

const std::vector<RunPoint>& WorkQueue::expanded_points() {
  if (!expanded_.empty() || manifest_.total_points == 0) return expanded_;
  expanded_.reserve(manifest_.total_points);
  for (const Scenario& scenario : manifest_.scenarios) {
    const auto grid = scenario.expand();
    expanded_.insert(expanded_.end(), grid.begin(), grid.end());
  }
  ESCHED_CHECK(expanded_.size() == manifest_.total_points,
               "queue '" + directory_ +
                   "': manifest total_points does not match its scenarios' "
                   "expansion (was queue.json edited by hand?)");
  return expanded_;
}

std::vector<std::string> WorkQueue::collectable_paths(bool json) const {
  // Failed chunks first: they are terminal (deterministic solves retry
  // identically), so "wait for workers" would be the wrong advice.
  const std::vector<FailureRecord> failed = failures();
  if (!failed.empty()) {
    std::string what = "queue '" + directory_ + "' cannot be collected: " +
                       std::to_string(failed.size()) +
                       " chunk(s) failed permanently (chunk " +
                       std::to_string(failed.front().chunk) + ": " +
                       failed.front().error +
                       "); the sweep spec cannot complete as queued — fix "
                       "it and re-init";
    throw Error(what);
  }
  std::set<std::size_t> done_chunks;
  for (const ChunkRecord& record : completed()) {
    done_chunks.insert(record.chunk);
  }
  std::vector<std::size_t> unfinished;
  for (std::size_t c = 0; c < manifest_.num_chunks; ++c) {
    if (done_chunks.count(c) == 0) unfinished.push_back(c);
  }
  if (!unfinished.empty()) {
    std::string ids;
    for (std::size_t n = 0; n < unfinished.size() && n < 8; ++n) {
      if (n > 0) ids += ",";
      ids += std::to_string(unfinished[n]);
    }
    if (unfinished.size() > 8) {
      ids += ",... (+" + std::to_string(unfinished.size() - 8) + " more)";
    }
    throw Error("queue '" + directory_ + "' is incomplete: " +
                std::to_string(unfinished.size()) + " of " +
                std::to_string(manifest_.num_chunks) +
                " chunks unfinished (chunks " + ids +
                "); run `esched work --queue-dir " + directory_ +
                "` to finish them");
  }
  std::vector<std::string> paths;
  paths.reserve(manifest_.num_chunks);
  for (std::size_t c = 0; c < manifest_.num_chunks; ++c) {
    const std::string path = json ? result_json_path(c) : result_csv_path(c);
    std::error_code ec;
    ESCHED_CHECK(fs::exists(path, ec),
                 "queue '" + directory_ + "': chunk " + std::to_string(c) +
                     " is marked done but its result file '" + path +
                     "' is missing");
    paths.push_back(path);
  }
  return paths;
}

}  // namespace esched
