// The distributed sweep queue: a dependency-free, filesystem-backed work
// queue that lets many worker processes — on one machine or across
// machines sharing a filesystem — chew through one scenario sweep
// cooperatively, built directly on the engine's determinism guarantees
// (deterministic per-point seeding, byte-stable CSV reports, mergeable
// shards).
//
// On-disk layout of a queue directory Q:
//
//   Q/queue.json            manifest: embedded scenario specs, chunk size,
//                           total points, report schema flag. Written LAST
//                           during init (atomic rename), so a concurrent
//                           worker sees either no queue or a complete one.
//   Q/tasks/chunk-NNNNNN.json
//                           one pending work unit: a contiguous [begin,
//                           end) slice of the combined expanded grid.
//   Q/leases/chunk-NNNNNN.json
//                           a claimed unit. Claiming IS the atomic rename
//                           tasks/ -> leases/ (src/dist/lease). The owner
//                           is stamped inside; the heartbeat is the file's
//                           mtime, bumped as rows complete. Leases whose
//                           heartbeat exceeds the TTL are reclaimed by
//                           renaming back into tasks/.
//   Q/results/chunk-NNNNNN.csv (+ .json)
//                           the chunk's report slice, written via temp +
//                           atomic rename — a torn result file can never
//                           appear under this name. Chunk CSVs carry the
//                           manifest's schema flag, so `esched collect`
//                           (merge_csv_reports in chunk order) reproduces
//                           the unsharded `esched run` CSV byte for byte.
//   Q/done/chunk-NNNNNN.json
//                           completion record (rows, owner, solve wall
//                           time) — the commit marker `status` and
//                           `collect` trust, written after the result.
//   Q/failed/chunk-NNNNNN.json
//                           terminal-failure marker (owner + solver error
//                           text) for a chunk whose solve THREW. Solves
//                           are deterministic, so such a chunk is not
//                           requeued — cycling it would crash worker
//                           after worker; `status` reports it and
//                           `collect` refuses with the recorded error.
//
// Crash safety falls out of the commit order (result, done marker, lease
// removal — each an atomic rename): a worker that dies mid-chunk leaves a
// lease that expires and is requeued; one that dies mid-commit leaves
// either nothing (re-solve) or a complete result (the re-solve rewrites
// identical bytes, because chunk results are deterministic). Double
// solves after a reclaim race are therefore harmless, never wrong.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dist/lease.hpp"
#include "engine/spec.hpp"
#include "engine/sweep_runner.hpp"

namespace esched {

/// The queue's immutable description, persisted as Q/queue.json. The
/// scenario specs are EMBEDDED (scenario_to_json round-trips expansion
/// exactly), so workers need only the queue directory — not the spec
/// files or built-in names the initiator used.
struct QueueManifest {
  std::size_t chunk_size = 0;
  std::size_t total_points = 0;
  std::size_t num_chunks = 0;
  /// Combined report schema flag (report_has_size_dists over the FULL
  /// grids): every chunk CSV/JSON is written with it, so all chunks share
  /// one header whatever slice they cover.
  bool with_size_dist = false;
  std::vector<Scenario> scenarios;
};

/// One work unit: chunk `chunk` covers rows [begin, end) of the combined
/// expanded grid (scenarios concatenated in manifest order).
struct ChunkTask {
  std::size_t chunk = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// A chunk's completion record (Q/done/chunk-N.json).
struct ChunkRecord {
  std::size_t chunk = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t rows = 0;
  std::string owner;
  double solve_seconds = 0.0;  ///< the committing worker's solve wall time
  /// Age of the done record (now - its mtime) at scan time: how long ago
  /// the chunk committed. What `esched status --watch` computes rolling
  /// throughput and ETA from.
  double age_seconds = 0.0;
};

/// A chunk's terminal-failure marker (Q/failed/chunk-N.json).
struct FailureRecord {
  std::size_t chunk = 0;
  std::string owner;
  std::string error;  ///< the solver's message (empty when the marker tore)
};

/// One `esched status` snapshot. Scan order (tasks, then leases, then
/// done markers) guarantees a chunk mid-commit is seen somewhere; the
/// counts can still be momentarily stale while workers run — they are a
/// progress report, not a barrier.
struct QueueCounts {
  std::size_t pending = 0;
  std::size_t leased = 0;
  std::size_t expired = 0;  ///< of leased: heartbeat older than the TTL
  std::size_t done = 0;
  std::size_t failed = 0;   ///< terminal failures (excluding done chunks)
  std::size_t done_points = 0;
  double done_seconds = 0.0;     ///< sum of committed solve wall times
  std::size_t active_workers = 0;  ///< distinct owners on live leases
};

/// Chunk-state tallies derived from directory NAMES alone — no file
/// reads, no JSON parsing. What worker idle loops poll every --poll-ms
/// (a fleet polling the full counts() would re-parse every done record
/// twice a second); `esched status` uses counts() for owners and ETA.
struct LightCounts {
  std::size_t pending = 0;
  std::size_t leased = 0;
  std::size_t done = 0;
  std::size_t failed = 0;  ///< excluding done chunks
};

/// Handle on a queue directory. Opening requires an existing manifest;
/// init() creates one. All scanning methods tolerate torn or foreign
/// files (a crashed writer's partial JSON is skipped, never fatal) —
/// atomic renames mean torn files can only be stray cruft, not protocol
/// state. Instances are cheap and single-threaded; concurrency happens
/// between processes through the filesystem, not through this object.
class WorkQueue {
 public:
  /// Opens an existing queue (throws esched::Error when `directory` has
  /// no readable manifest — including the mid-init window).
  explicit WorkQueue(std::string directory);

  /// Creates and populates a queue for `sweep` split into chunks of
  /// `chunk_size` points: writes every task file, then the manifest last.
  /// Throws when the directory already holds a queue.
  static WorkQueue init(const std::string& directory, const LoadedSweep& sweep,
                        std::size_t chunk_size);

  const QueueManifest& manifest() const { return manifest_; }
  const std::string& directory() const { return directory_; }

  std::string task_path(std::size_t chunk) const;
  std::string lease_path(std::size_t chunk) const;
  std::string result_csv_path(std::size_t chunk) const;
  std::string result_json_path(std::size_t chunk) const;
  std::string done_path(std::size_t chunk) const;
  std::string failed_path(std::size_t chunk) const;

  /// Pending work units, sorted by chunk index. Torn/foreign files and
  /// out-of-range chunk ids are skipped.
  std::vector<ChunkTask> pending_tasks() const;

  /// Live leases (owner empty when the stamp is unreadable — still
  /// reclaimable by age).
  std::vector<LeaseInfo> leases() const;

  /// Parsed completion records, sorted by chunk. Torn records are
  /// skipped — their chunks simply read as unfinished and get re-solved.
  std::vector<ChunkRecord> completed() const;

  QueueCounts counts(double lease_ttl_seconds) const;
  LightCounts light_counts() const;

  bool is_done(std::size_t chunk) const;
  bool is_failed(std::size_t chunk) const;

  /// Marks a chunk whose solve threw as terminally failed (no-op when a
  /// racing worker already committed it) and drops the lease without
  /// requeueing — deterministic solves retry identically, so cycling the
  /// chunk through the fleet would just crash every worker in turn.
  void record_failure(const ChunkTask& task, const std::string& owner,
                      const std::string& error) const;

  /// Parsed failure markers, sorted by chunk, excluding chunks that a
  /// racing worker nevertheless completed.
  std::vector<FailureRecord> failures() const;

  /// Tries to claim `task` by the atomic tasks/ -> leases/ rename; true
  /// when this caller won. On success the lease is stamped with `owner`
  /// (atomic rewrite), which also sets the first heartbeat.
  bool claim(const ChunkTask& task, const std::string& owner) const;

  /// Bumps the heartbeat of a held lease; false when the lease is gone
  /// (reclaimed out from under the owner).
  bool heartbeat(std::size_t chunk) const;

  /// Requeues every lease whose heartbeat is older than the TTL (crashed
  /// workers); leases of already-done chunks are dropped instead. Returns
  /// the number of chunks requeued.
  std::size_t reclaim_expired(double lease_ttl_seconds) const;

  /// Removes a stray task file whose chunk already committed (possible
  /// after a reclaim/commit race). No-op when absent.
  void discard_task(std::size_t chunk) const;

  /// Sweeps up '.tmp.' files orphaned by crashed writers across the
  /// queue's subdirectories — but only once they are demonstrably stale
  /// (> 1 h old, the disk cache's convention): a younger one may belong
  /// to a live writer mid-store. Workers run this on startup and
  /// `esched collect` before merging, so tolerated crashes do not leak
  /// disk forever. Returns the number of files removed.
  std::size_t sweep_stale_tmp() const;

  /// Commits a solved chunk: result CSV and JSON via temp + atomic
  /// rename, then the done record, then the lease is dropped. `results`
  /// must cover exactly [task.begin, task.end) of the combined grid.
  void commit(const ChunkTask& task, const std::string& owner,
              const std::vector<RunPoint>& points,
              const std::vector<RunResult>& results,
              const SweepStats& stats) const;

  /// The combined expanded grid (manifest scenarios concatenated),
  /// computed once and cached. Throws when the expansion disagrees with
  /// the manifest's recorded total — a hand-edited or version-skewed
  /// queue must fail loudly, not solve the wrong rows.
  const std::vector<RunPoint>& expanded_points();

  /// Validates completeness for `esched collect` and returns the result
  /// file paths in chunk order (the merge order that reproduces the
  /// unsharded report). Throws esched::Error carrying the first failure
  /// marker's error when any chunk failed terminally, naming the
  /// unfinished chunks when any chunk lacks a done record, and the
  /// affected chunk when a done record's result file is missing.
  std::vector<std::string> collectable_paths(bool json) const;

 private:
  WorkQueue() = default;

  std::string directory_;
  QueueManifest manifest_;
  std::vector<RunPoint> expanded_;  ///< lazy cache for expanded_points()
};

}  // namespace esched
