#include "dist/lease.hpp"

#include <chrono>
#include <filesystem>
#include <system_error>

#include "common/error.hpp"

namespace esched {

namespace fs = std::filesystem;

bool atomic_move(const std::string& from, const std::string& to) {
  std::error_code ec;
  // esched-lint: allow(raw-file-io): this rename IS the queue's atomic
  // claim/requeue primitive — it moves an already-complete file between
  // protocol directories, it never publishes new content.
  fs::rename(from, to, ec);
  if (!ec) return true;
  // The one *expected* failure is losing a claim/requeue race: the source
  // was already renamed away by someone else. Everything else (EACCES,
  // EXDEV, ...) means the queue directory itself is broken and silence
  // would wedge the worker loop.
  if (ec == std::errc::no_such_file_or_directory) return false;
  throw Error("cannot move '" + from + "' to '" + to + "': " + ec.message());
}

bool touch_heartbeat(const std::string& path) {
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  return !ec;
}

std::optional<double> heartbeat_age_seconds(const std::string& path) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return std::nullopt;
  return std::chrono::duration<double>(fs::file_time_type::clock::now() -
                                       mtime)
      .count();
}

}  // namespace esched
