// Structured JSONL trace of sweep lifecycle events. Each event serializes
// to exactly one line — {"t": <seconds>, "ev": "<type>", "pid": <pid>,
// "seq": <n>, ...fields} — so the file is greppable, `jq`-able, and
// appendable by design. Timestamps are steady_clock seconds relative to
// the writer's construction (monotonic: immune to wall-clock adjustment,
// and directly comparable across events of one run); `pid` and the
// per-process monotonic `seq` let `esched trace report` merge traces from
// many workers and order them deterministically by (t, pid, seq).
//
// Producers throughout the engine emit through the process-global sink
// (set_global_trace); when no sink is installed — the default — emission
// is a single relaxed atomic load, so traces cost nothing unless
// requested with `esched run --trace`. Like the metrics layer, tracing is
// observation only: it must never change report bytes, RNG streams, or
// cache keys.
//
// Event reference (producer → types):
//   sweep   → sweep_start, point_start, point_done, point_error,
//             cache_hit, disk_hit, sweep_done
//   dist    → lease_claim, lease_requeue, chunk_commit, chunk_failed,
//             worker_start, worker_done
//   spans   → span_begin, span_end (see TraceSpan below): paired events
//             carrying {span, parent, name}, forming the per-process span
//             tree worker → chunk → sweep → point → solve that
//             `esched trace report` reconstructs across workers
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace esched {

/// One "key": value field of a trace event, built from the common value
/// shapes so call sites stay terse.
struct TraceField {
  TraceField(const char* k, const std::string& v)
      : key(k), value(JsonValue::make_string(v)) {}
  TraceField(const char* k, const char* v)
      : key(k), value(JsonValue::make_string(v)) {}
  TraceField(const char* k, double v)
      : key(k), value(JsonValue::make_number(v)) {}
  TraceField(const char* k, int v)
      : key(k), value(JsonValue::make_number(static_cast<double>(v))) {}
  TraceField(const char* k, long v)
      : key(k), value(JsonValue::make_number(static_cast<double>(v))) {}
  TraceField(const char* k, std::size_t v)
      : key(k), value(JsonValue::make_number(static_cast<double>(v))) {}
  TraceField(const char* k, bool v) : key(k), value(JsonValue::make_bool(v)) {}

  const char* key;
  JsonValue value;
};

/// Append-only JSONL event sink. Thread-safe: each event is formatted into
/// a buffer first and written with one fwrite under the writer's mutex,
/// then flushed, so concurrent producers never tear a line and a reader
/// tailing the file sees complete events promptly.
class TraceWriter {
 public:
  /// Opens (truncates) `path`. Throws esched::Error when it cannot.
  explicit TraceWriter(const std::string& path);
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;
  ~TraceWriter();

  /// Emits {"t": <seconds since construction>, "ev": type, "pid": <pid>,
  /// "seq": <per-writer monotonic>, ...fields}.
  void event(const char* type, std::initializer_list<TraceField> fields = {});
  /// Same, for call sites that assemble fields dynamically (span events).
  void event(const char* type, const std::vector<TraceField>& fields);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_;
  std::chrono::steady_clock::time_point start_;
  long pid_;
  std::atomic<std::uint64_t> seq_{0};
  std::mutex mutex_;
};

/// Installs `writer` (may be nullptr) as the process-global trace sink.
/// The caller keeps ownership and must clear the sink before destroying
/// the writer. Returns the previous sink.
TraceWriter* set_global_trace(TraceWriter* writer);

/// The current sink, or nullptr when tracing is off. Producers use
///   if (TraceWriter* t = global_trace()) t->event("point_done", {...});
/// so a disabled trace costs one relaxed load.
TraceWriter* global_trace();

/// Opens a span on the global sink: emits span_begin carrying a fresh
/// per-process span id, the parent id, and `name`, then pushes the id on
/// this THREAD's span stack so nested spans parent automatically. Pass a
/// nonzero `parent` to attach under a span opened on another thread (the
/// sweep runner does this for point spans solved on pool threads).
/// Returns 0 — and emits nothing — when tracing is off.
std::uint64_t trace_span_begin(const char* name,
                               std::initializer_list<TraceField> fields = {},
                               std::uint64_t parent = 0);

/// Closes `span_id`: pops it from this thread's span stack and emits
/// span_end. A 0 id (span opened while tracing was off) is a no-op.
void trace_span_end(std::uint64_t span_id, const char* name);

/// RAII span: begin on construction, end at scope exit. The span
/// vocabulary (worker → chunk → sweep → point → solve) is documented in
/// README "Observability"; `esched trace report` rebuilds the tree.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     std::initializer_list<TraceField> fields = {},
                     std::uint64_t parent = 0)
      : name_(name), id_(trace_span_begin(name, fields, parent)) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { trace_span_end(id_, name_); }

  /// This span's id, for explicit cross-thread parenting (0 = tracing
  /// was off when the span opened).
  std::uint64_t id() const { return id_; }

 private:
  const char* name_;
  std::uint64_t id_;
};

}  // namespace esched
