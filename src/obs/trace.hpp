// Structured JSONL trace of sweep lifecycle events. Each event serializes
// to exactly one line — {"t": <seconds>, "ev": "<type>", ...fields} — so
// the file is greppable, `jq`-able, and appendable by design. Timestamps
// are steady_clock seconds relative to the writer's construction
// (monotonic: immune to wall-clock adjustment, and directly comparable
// across events of one run).
//
// Producers throughout the engine emit through the process-global sink
// (set_global_trace); when no sink is installed — the default — emission
// is a single relaxed atomic load, so traces cost nothing unless
// requested with `esched run --trace`. Like the metrics layer, tracing is
// observation only: it must never change report bytes, RNG streams, or
// cache keys.
//
// Event reference (producer → types):
//   sweep   → sweep_start, point_start, point_done, point_error,
//             cache_hit, disk_hit, sweep_done
//   dist    → lease_claim, lease_requeue, chunk_commit, chunk_failed,
//             worker_start, worker_done
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>

#include "common/json.hpp"

namespace esched {

/// One "key": value field of a trace event, built from the common value
/// shapes so call sites stay terse.
struct TraceField {
  TraceField(const char* k, const std::string& v)
      : key(k), value(JsonValue::make_string(v)) {}
  TraceField(const char* k, const char* v)
      : key(k), value(JsonValue::make_string(v)) {}
  TraceField(const char* k, double v)
      : key(k), value(JsonValue::make_number(v)) {}
  TraceField(const char* k, int v)
      : key(k), value(JsonValue::make_number(static_cast<double>(v))) {}
  TraceField(const char* k, long v)
      : key(k), value(JsonValue::make_number(static_cast<double>(v))) {}
  TraceField(const char* k, std::size_t v)
      : key(k), value(JsonValue::make_number(static_cast<double>(v))) {}
  TraceField(const char* k, bool v) : key(k), value(JsonValue::make_bool(v)) {}

  const char* key;
  JsonValue value;
};

/// Append-only JSONL event sink. Thread-safe: each event is formatted into
/// a buffer first and written with one fwrite under the writer's mutex,
/// then flushed, so concurrent producers never tear a line and a reader
/// tailing the file sees complete events promptly.
class TraceWriter {
 public:
  /// Opens (truncates) `path`. Throws esched::Error when it cannot.
  explicit TraceWriter(const std::string& path);
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;
  ~TraceWriter();

  /// Emits {"t": <seconds since construction>, "ev": type, ...fields}.
  void event(const char* type, std::initializer_list<TraceField> fields = {});

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
};

/// Installs `writer` (may be nullptr) as the process-global trace sink.
/// The caller keeps ownership and must clear the sink before destroying
/// the writer. Returns the previous sink.
TraceWriter* set_global_trace(TraceWriter* writer);

/// The current sink, or nullptr when tracing is off. Producers use
///   if (TraceWriter* t = global_trace()) t->event("point_done", {...});
/// so a disabled trace costs one relaxed load.
TraceWriter* global_trace();

}  // namespace esched
