#include "obs/telemetry.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

#if __has_include(<unistd.h>)
#include <unistd.h>
#endif

namespace esched {

namespace fs = std::filesystem;

namespace {

constexpr const char* kTelemetrySuffix = ".metrics.json";

long current_pid() {
#if __has_include(<unistd.h>)
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

/// Publisher-side observability observes itself too: tick count and write
/// cost, resolved once (registry lookups take a mutex).
struct TelemetryMetrics {
  Counter& snapshots;       ///< telemetry.snapshots.written
  LogHistogram& write_time; ///< telemetry.write.seconds
};

TelemetryMetrics& telemetry_metrics() {
  static TelemetryMetrics metrics = [] {
    MetricsRegistry& m = global_metrics();
    return TelemetryMetrics{m.counter("telemetry.snapshots.written"),
                            m.histogram("telemetry.write.seconds")};
  }();
  return metrics;
}

}  // namespace

std::string telemetry_file_stem(const std::string& owner) {
  if (owner.empty()) return "worker";
  std::string stem = owner;
  for (char& c : stem) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    if (!safe) c = '_';
  }
  return stem;
}

std::string telemetry_path(const std::string& dir, const std::string& owner) {
  return (fs::path(dir) / (telemetry_file_stem(owner) + kTelemetrySuffix))
      .string();
}

TelemetryPublisher::TelemetryPublisher(TelemetryOptions options)
    : options_(std::move(options)),
      path_(telemetry_path(options_.dir, options_.owner)),
      start_(std::chrono::steady_clock::now()) {
  if (options_.registry == nullptr) options_.registry = &global_metrics();
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    throw Error("cannot create telemetry dir '" + options_.dir +
                "': " + ec.message());
  }
  publish(/*final_snapshot=*/false);  // visible to the fleet immediately
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      // wait_for uses steady_clock; wakes early only on stop.
      stop_cv_.wait_for(
          lock, std::chrono::duration<double>(options_.interval_seconds),
          [this] { return stop_; });
      if (stop_) return;
      lock.unlock();
      try {
        publish(/*final_snapshot=*/false);
      } catch (const std::exception&) {
        // A failed tick (disk full, dir removed) must not kill the worker;
        // the next tick retries and status sees a growing heartbeat lag.
      }
      lock.lock();
    }
  });
}

TelemetryPublisher::~TelemetryPublisher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  try {
    publish(/*final_snapshot=*/true);
  } catch (const std::exception&) {
    // Destructors must not throw; a lost final snapshot degrades the
    // fleet view by one interval, nothing more.
  }
}

void TelemetryPublisher::publish(bool final_snapshot) {
  const ScopedTimer timer(telemetry_metrics().write_time,
                          &telemetry_metrics().snapshots);
  JsonValue doc = JsonValue::make_object();
  doc.set("telemetry_schema_version",
          JsonValue::make_number(
              static_cast<double>(kTelemetrySchemaVersion)));
  doc.set("owner", JsonValue::make_string(options_.owner));
  doc.set("pid",
          JsonValue::make_number(static_cast<double>(current_pid())));
  doc.set("final", JsonValue::make_bool(final_snapshot));
  doc.set("uptime_seconds",
          JsonValue::make_number(std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - start_)
                                     .count()));
  doc.set("metrics", options_.registry->snapshot().to_json());
  atomic_write_file(path_, doc.dump() + "\n");
}

FleetSnapshot read_fleet_telemetry(const std::string& dir) {
  FleetSnapshot fleet;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return fleet;  // no directory yet: empty fleet, not an error
  const auto now = fs::file_time_type::clock::now();
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) continue;  // mid-publish
    if (name.size() <= std::string(kTelemetrySuffix).size() ||
        name.compare(name.size() - std::string(kTelemetrySuffix).size(),
                     std::string::npos, kTelemetrySuffix) != 0) {
      continue;  // foreign file, not ours to judge
    }
    WorkerTelemetry worker;
    try {
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream text;
      text << in.rdbuf();
      const JsonValue doc = parse_json(text.str(), name);
      const JsonValue* version = doc.find("telemetry_schema_version");
      if (version == nullptr ||
          version->as_integer(name, 1, 1000000) != kTelemetrySchemaVersion) {
        throw Error(name + ": unsupported telemetry_schema_version");
      }
      if (const JsonValue* owner = doc.find("owner")) {
        worker.owner = owner->as_string(name + ".owner");
      }
      if (const JsonValue* pid = doc.find("pid")) {
        worker.pid = static_cast<long>(
            pid->as_integer(name + ".pid", 0, 1LL << 31));
      }
      if (const JsonValue* final_flag = doc.find("final")) {
        worker.final_snapshot = final_flag->as_bool(name + ".final");
      }
      if (const JsonValue* uptime = doc.find("uptime_seconds")) {
        worker.uptime_seconds = uptime->as_number(name + ".uptime_seconds");
      }
      const JsonValue* metrics = doc.find("metrics");
      if (metrics == nullptr) throw Error(name + ": no metrics member");
      worker.metrics = metrics_snapshot_from_json(*metrics, name);
    } catch (const std::exception&) {
      // Torn (pre-atomic-write crash debris), foreign, or version-skewed:
      // reads as absent.
      ++fleet.skipped_files;
      continue;
    }
    const auto mtime = fs::last_write_time(entry.path(), ec);
    if (!ec) {
      worker.age_seconds = std::max(
          0.0, std::chrono::duration<double>(now - mtime).count());
    }
    fleet.workers.push_back(std::move(worker));
  }
  std::sort(fleet.workers.begin(), fleet.workers.end(),
            [](const WorkerTelemetry& a, const WorkerTelemetry& b) {
              return a.owner != b.owner ? a.owner < b.owner : a.pid < b.pid;
            });
  std::vector<MetricsSnapshot> snapshots;
  snapshots.reserve(fleet.workers.size());
  for (const WorkerTelemetry& worker : fleet.workers) {
    snapshots.push_back(worker.metrics);
  }
  fleet.merged = merge_metrics_snapshots(snapshots);
  return fleet;
}

}  // namespace esched
