#include "obs/bench_diff.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace esched {

const BenchCaseStats* BenchSnapshot::find(const std::string& name) const {
  for (const BenchCaseStats& c : cases) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

BenchSnapshot load_bench_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ESCHED_CHECK(in.good(), "cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = parse_json(buffer.str(), path);

  const JsonValue* format = root.find("format");
  ESCHED_CHECK(format != nullptr &&
                   format->as_string("format") == kBenchFormat,
               path + ": missing or wrong \"format\" tag (expected \"" +
                   kBenchFormat + "\")");
  const JsonValue* version = root.find("schema_version");
  ESCHED_CHECK(version != nullptr &&
                   version->as_integer("schema_version", 1, 1000000) ==
                       kBenchSchemaVersion,
               path + ": unsupported schema_version (this build knows " +
                   std::to_string(kBenchSchemaVersion) + ")");
  const JsonValue* mode = root.find("mode");
  ESCHED_CHECK(mode != nullptr && (mode->as_string("mode") == "full" ||
                                   mode->as_string("mode") == "smoke"),
               path + ": \"mode\" must be \"full\" or \"smoke\"");
  const JsonValue* host = root.find("host");
  ESCHED_CHECK(host != nullptr && host->is_object(),
               path + ": missing \"host\" object");
  for (const char* key : {"hostname", "compiler"}) {
    ESCHED_CHECK(host->find(key) != nullptr,
                 path + ": host lacks \"" + key + "\"");
  }
  const JsonValue* benchmarks = root.find("benchmarks");
  ESCHED_CHECK(benchmarks != nullptr && benchmarks->is_array() &&
                   !benchmarks->as_array("benchmarks").empty(),
               path + ": missing or empty \"benchmarks\" array");

  BenchSnapshot snapshot;
  snapshot.path = path;
  snapshot.mode = mode->as_string("mode");
  for (const JsonValue& entry : benchmarks->as_array("benchmarks")) {
    BenchCaseStats stats;
    stats.name = entry.find("name") != nullptr
                     ? entry.find("name")->as_string("benchmarks[].name")
                     : "";
    ESCHED_CHECK(!stats.name.empty(),
                 path + ": benchmark entry lacks \"name\"");
    const std::string where = path + ": " + stats.name;
    const JsonValue* iterations = entry.find("iterations");
    ESCHED_CHECK(iterations != nullptr,
                 where + ": missing \"iterations\"");
    stats.iterations =
        iterations->as_integer(where + ".iterations", 1, 1000000000);
    // The percentile chain must be monotone; a snapshot violating it was
    // not produced by the harness and must not feed the gate.
    double last = 0.0;
    const auto checked = [&](const char* key) {
      const JsonValue* v = entry.find(key);
      ESCHED_CHECK(v != nullptr, where + ": missing \"" + key + "\"");
      const double value = v->as_number(where + "." + key);
      ESCHED_CHECK(value >= 0.0, where + ": " + key + " is negative");
      ESCHED_CHECK(value + 1e-12 >= last,
                   where + ": " + key +
                       " is not monotone with the preceding percentile");
      last = value;
      return value;
    };
    stats.min_seconds = checked("min_seconds");
    stats.p50_seconds = checked("p50_seconds");
    stats.p90_seconds = checked("p90_seconds");
    stats.p99_seconds = checked("p99_seconds");
    stats.max_seconds = checked("max_seconds");
    const JsonValue* mean = entry.find("mean_seconds");
    ESCHED_CHECK(mean != nullptr &&
                     mean->as_number(where + ".mean_seconds") >= 0.0,
                 where + ": missing mean_seconds");
    stats.mean_seconds = mean->as_number(where + ".mean_seconds");
    if (const JsonValue* items = entry.find("items_per_second")) {
      stats.items_per_second = items->as_number(where + ".items_per_second");
    }
    snapshot.cases.push_back(std::move(stats));
  }
  return snapshot;
}

namespace {

double ratio(double old_value, double new_value) {
  if (old_value > 0.0) return new_value / old_value;
  return new_value > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
}

}  // namespace

BenchDiffResult diff_bench_snapshots(const BenchSnapshot& old_snapshot,
                                     const BenchSnapshot& new_snapshot,
                                     double threshold) {
  BenchDiffResult diff;
  diff.threshold = threshold;
  for (const BenchCaseStats& new_case : new_snapshot.cases) {
    const BenchCaseStats* old_case = old_snapshot.find(new_case.name);
    if (old_case == nullptr) {
      diff.only_new.push_back(new_case.name);
      continue;
    }
    BenchCaseDelta delta;
    delta.name = new_case.name;
    delta.old_mean = old_case->mean_seconds;
    delta.new_mean = new_case.mean_seconds;
    delta.old_p50 = old_case->p50_seconds;
    delta.new_p50 = new_case.p50_seconds;
    delta.mean_ratio = ratio(delta.old_mean, delta.new_mean);
    delta.p50_ratio = ratio(delta.old_p50, delta.new_p50);
    delta.regressed = delta.mean_ratio > 1.0 + threshold &&
                      delta.p50_ratio > 1.0 + threshold;
    if (delta.regressed) ++diff.regressions;
    diff.cases.push_back(std::move(delta));
  }
  for (const BenchCaseStats& old_case : old_snapshot.cases) {
    if (new_snapshot.find(old_case.name) == nullptr) {
      diff.only_old.push_back(old_case.name);
    }
  }
  return diff;
}

void print_bench_diff(const BenchDiffResult& diff, std::ostream& out) {
  char line[256];
  std::snprintf(line, sizeof(line), "%-44s %12s %12s %8s %8s\n", "case",
                "old mean s", "new mean s", "mean", "p50");
  out << line;
  for (const BenchCaseDelta& delta : diff.cases) {
    std::snprintf(line, sizeof(line),
                  "%-44s %12.6f %12.6f %+7.1f%% %+7.1f%%%s\n",
                  delta.name.c_str(), delta.old_mean, delta.new_mean,
                  100.0 * (delta.mean_ratio - 1.0),
                  100.0 * (delta.p50_ratio - 1.0),
                  delta.regressed ? "  REGRESSED" : "");
    out << line;
  }
  for (const std::string& name : diff.only_new) {
    out << "  new case (no baseline): " << name << "\n";
  }
  for (const std::string& name : diff.only_old) {
    out << "  case disappeared: " << name << "\n";
  }
  std::snprintf(line, sizeof(line),
                "%zu case%s compared, %zu regression%s (threshold +%.0f%% on "
                "both mean and p50)\n",
                diff.cases.size(), diff.cases.size() == 1 ? "" : "s",
                diff.regressions, diff.regressions == 1 ? "" : "s",
                100.0 * diff.threshold);
  out << line;
}

}  // namespace esched
