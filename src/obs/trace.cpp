#include "obs/trace.hpp"

#include <cerrno>
#include <cstring>
#include <vector>

#if __has_include(<unistd.h>)
#include <unistd.h>
#endif

#include "common/error.hpp"

namespace esched {

namespace {

std::atomic<TraceWriter*> g_trace{nullptr};

long current_pid() {
#if __has_include(<unistd.h>)
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

/// Span ids are per-process (unique under one pid, which is how the
/// report merger scopes them); 0 is reserved for "no span / no parent".
std::atomic<std::uint64_t> g_next_span{1};

/// This thread's stack of open span ids — what makes nested TraceSpans
/// parent automatically without threading ids through call signatures.
thread_local std::vector<std::uint64_t> t_span_stack;

}  // namespace

TraceWriter::TraceWriter(const std::string& path)
    : path_(path),
      // esched-lint: allow(raw-file-io): the JSONL trace is a deliberately
      // live, tailable append sink (one fwrite + flush per complete line),
      // not a publish-on-completion artifact — temp + rename would hide
      // the stream until process exit.
      file_(std::fopen(path.c_str(), "wb")),
      start_(std::chrono::steady_clock::now()),
      pid_(current_pid()) {
  if (file_ == nullptr) {
    throw Error("cannot open trace file '" + path +
                "': " + std::strerror(errno));
  }
}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceWriter::event(const char* type,
                        std::initializer_list<TraceField> fields) {
  event(type, std::vector<TraceField>(fields.begin(), fields.end()));
}

void TraceWriter::event(const char* type,
                        const std::vector<TraceField>& fields) {
  const double t =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  // Build the whole line before taking the lock: serialization is the
  // expensive part and needs no synchronization.
  JsonValue line = JsonValue::make_object();
  line.set("t", JsonValue::make_number(t));
  line.set("ev", JsonValue::make_string(type));
  line.set("pid", JsonValue::make_number(static_cast<double>(pid_)));
  // The sequence is assigned OUTSIDE the writer mutex, so two events can
  // land in the file out of seq order — the report merger's (t, pid, seq)
  // sort restores the assignment order either way.
  line.set("seq", JsonValue::make_number(static_cast<double>(
                      seq_.fetch_add(1, std::memory_order_relaxed))));
  for (const TraceField& field : fields) {
    line.set(field.key, JsonValue(field.value));
  }
  std::string text = line.dump(/*indent=*/0);
  text.push_back('\n');
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(text.data(), 1, text.size(), file_);
  std::fflush(file_);
}

TraceWriter* set_global_trace(TraceWriter* writer) {
  return g_trace.exchange(writer, std::memory_order_acq_rel);
}

TraceWriter* global_trace() {
  return g_trace.load(std::memory_order_acquire);
}

std::uint64_t trace_span_begin(const char* name,
                               std::initializer_list<TraceField> fields,
                               std::uint64_t parent) {
  TraceWriter* writer = global_trace();
  if (writer == nullptr) return 0;
  const std::uint64_t id =
      g_next_span.fetch_add(1, std::memory_order_relaxed);
  if (parent == 0 && !t_span_stack.empty()) parent = t_span_stack.back();
  t_span_stack.push_back(id);
  // span/parent/name lead the custom fields so every span_begin line is
  // self-describing.
  std::vector<TraceField> all;
  all.reserve(fields.size() + 3);
  all.push_back({"span", static_cast<std::size_t>(id)});
  all.push_back({"parent", static_cast<std::size_t>(parent)});
  all.push_back({"name", name});
  for (const TraceField& field : fields) all.push_back(field);
  writer->event("span_begin", all);
  return id;
}

void trace_span_end(std::uint64_t span_id, const char* name) {
  if (span_id == 0) return;
  // Pop this span (normally the top; a mismatched interleaving — e.g. a
  // span object outliving its children on another thread — just erases
  // the id wherever it sits, keeping the stack from leaking).
  for (std::size_t n = t_span_stack.size(); n-- > 0;) {
    if (t_span_stack[n] == span_id) {
      t_span_stack.erase(t_span_stack.begin() +
                         static_cast<std::ptrdiff_t>(n));
      break;
    }
  }
  TraceWriter* writer = global_trace();
  if (writer == nullptr) return;  // sink detached while the span was open
  writer->event("span_end", {{"span", static_cast<std::size_t>(span_id)},
                             {"name", name}});
}

}  // namespace esched
