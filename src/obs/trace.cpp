#include "obs/trace.hpp"

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace esched {

namespace {

std::atomic<TraceWriter*> g_trace{nullptr};

}  // namespace

TraceWriter::TraceWriter(const std::string& path)
    : path_(path),
      // esched-lint: allow(raw-file-io): the JSONL trace is a deliberately
      // live, tailable append sink (one fwrite + flush per complete line),
      // not a publish-on-completion artifact — temp + rename would hide
      // the stream until process exit.
      file_(std::fopen(path.c_str(), "wb")),
      start_(std::chrono::steady_clock::now()) {
  if (file_ == nullptr) {
    throw Error("cannot open trace file '" + path +
                "': " + std::strerror(errno));
  }
}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceWriter::event(const char* type,
                        std::initializer_list<TraceField> fields) {
  const double t =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  // Build the whole line before taking the lock: serialization is the
  // expensive part and needs no synchronization.
  JsonValue line = JsonValue::make_object();
  line.set("t", JsonValue::make_number(t));
  line.set("ev", JsonValue::make_string(type));
  for (const TraceField& field : fields) {
    line.set(field.key, JsonValue(field.value));
  }
  std::string text = line.dump(/*indent=*/0);
  text.push_back('\n');
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(text.data(), 1, text.size(), file_);
  std::fflush(file_);
}

TraceWriter* set_global_trace(TraceWriter* writer) {
  return g_trace.exchange(writer, std::memory_order_acq_rel);
}

TraceWriter* global_trace() {
  return g_trace.load(std::memory_order_acquire);
}

}  // namespace esched
