// Bench snapshot loading and trajectory comparison. The perf harness
// (bench/perf_solvers.cpp) emits schema-versioned BENCH_perf.json
// snapshots; this module is the single place that knows that schema, so
// `bench_perf_solvers --validate` and `esched bench diff` cannot drift
// apart. `esched bench diff old.json new.json` compares the snapshots
// case by case and exits nonzero on a regression, which is what lets CI
// gate the perf trajectory instead of eyeballing it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace esched {

/// The snapshot format tag and version the harness writes and this loader
/// accepts. Bump the version when the JSON layout changes shape.
inline constexpr const char* kBenchFormat = "esched-bench";
inline constexpr int kBenchSchemaVersion = 1;

/// One benchmark case's recorded statistics.
struct BenchCaseStats {
  std::string name;
  long long iterations = 0;
  double mean_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double p50_seconds = 0.0;
  double p90_seconds = 0.0;
  double p99_seconds = 0.0;
  double items_per_second = 0.0;  ///< 0 when the case records none
};

/// A parsed, validated snapshot.
struct BenchSnapshot {
  std::string path;  ///< where it was loaded from (for messages)
  std::string mode;  ///< "full" or "smoke"
  std::vector<BenchCaseStats> cases;  ///< in file order

  /// nullptr when no case has that name.
  const BenchCaseStats* find(const std::string& name) const;
};

/// Parses and validates `path`: format tag, schema_version, mode, host
/// info, and per-case percentile monotonicity. Throws esched::Error
/// naming the offending field on any violation — this is the validation
/// `bench_perf_solvers --validate` applies to its own output.
BenchSnapshot load_bench_snapshot(const std::string& path);

/// One case present in both snapshots.
struct BenchCaseDelta {
  std::string name;
  double old_mean = 0.0;
  double new_mean = 0.0;
  double old_p50 = 0.0;
  double new_p50 = 0.0;
  double mean_ratio = 1.0;  ///< new/old (1.0 when old is 0 and new is 0)
  double p50_ratio = 1.0;
  bool regressed = false;
};

struct BenchDiffResult {
  std::vector<BenchCaseDelta> cases;   ///< new-snapshot order
  std::vector<std::string> only_old;   ///< cases that disappeared
  std::vector<std::string> only_new;   ///< cases that appeared
  double threshold = 0.0;
  std::size_t regressions = 0;
};

/// Case-by-case comparison. A case REGRESSES when both its mean and its
/// p50 grew by more than `threshold` (fractional: 0.25 = +25%) — requiring
/// both keeps a single outlier iteration from failing the gate, while a
/// real slowdown moves the median too. Cases present in only one snapshot
/// are listed but never regress (renames must not break the gate).
BenchDiffResult diff_bench_snapshots(const BenchSnapshot& old_snapshot,
                                     const BenchSnapshot& new_snapshot,
                                     double threshold);

/// Human-readable table: per-case deltas (regressions flagged), appeared/
/// disappeared cases, and a one-line verdict.
void print_bench_diff(const BenchDiffResult& diff, std::ostream& out);

}  // namespace esched
