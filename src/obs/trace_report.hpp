// Multi-worker trace merging and span-tree reconstruction — the analysis
// half of src/obs/trace. Each worker writes its own JSONL trace with
// per-process span ids; `esched trace report a.jsonl b.jsonl` feeds them
// here, where events are ordered deterministically by (t, pid, seq) and
// the span_begin/span_end pairs are rebuilt into per-process trees
// (worker → chunk → sweep → point → solve). The report prints a per-phase
// time breakdown (total vs self time), a slowest-spans table, and a
// flamegraph-ready folded-stack form (`--format folded`).
//
// Robust by construction: a torn final line (killed worker), a foreign
// line, or a span left open at the kill point must degrade the report
// (counted in malformed_lines / unclosed_spans), never abort it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace esched {

/// One reconstructed span.
struct TraceReportSpan {
  std::size_t file = 0;  ///< index into the input file list
  long pid = 0;
  std::uint64_t id = 0;         ///< per-process span id
  std::uint64_t parent_id = 0;  ///< 0 = root
  std::string name;
  double t_begin = 0.0;
  double t_end = 0.0;   ///< last event time of its file when !closed
  bool closed = false;  ///< saw the matching span_end
  /// Custom span_begin fields ("index" = "3", "solver" = "qbd", ...) in
  /// emission order, values rendered as strings.
  std::vector<std::pair<std::string, std::string>> fields;
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  std::size_t parent = kNoParent;     ///< index into TraceForest::spans
  std::vector<std::size_t> children;  ///< indices into TraceForest::spans

  double duration() const { return t_end - t_begin; }
};

/// Every span from every input file, in deterministic (t, pid, seq)
/// begin order, linked into trees.
struct TraceForest {
  std::vector<TraceReportSpan> spans;
  std::vector<std::size_t> roots;  ///< spans with no (resolvable) parent
  std::size_t files = 0;
  std::size_t events = 0;           ///< parsed JSONL events, all types
  std::size_t malformed_lines = 0;  ///< unparsable or field-less lines
  std::size_t unclosed_spans = 0;   ///< begun but never ended

  /// Span duration minus its children's durations, clamped at 0 (clock
  /// granularity can make a child nominally outlast its parent).
  double self_seconds(std::size_t index) const;
  /// Root-to-span name path, e.g. {"worker", "chunk", "sweep", "point"}.
  std::vector<std::string> path(std::size_t index) const;
};

/// Parses and merges the trace files. Throws esched::Error only when a
/// file cannot be opened; bad content degrades into the counters above.
TraceForest build_trace_forest(const std::vector<std::string>& files);

/// Per-phase breakdown + slowest-spans table (`rows` rows).
void print_trace_report(const TraceForest& forest, std::ostream& out,
                        std::size_t rows);

/// Folded-stack lines — "worker;chunk;sweep;point 1234" with self time in
/// integer microseconds, aggregated per path and sorted lexicographically
/// — the input format flamegraph.pl and speedscope consume directly.
void print_trace_folded(const TraceForest& forest, std::ostream& out);

}  // namespace esched
