#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/atomic_file.hpp"
#include "common/error.hpp"

namespace esched {

namespace obs_detail {

std::size_t shard_index() {
  // Round-robin assignment spreads threads evenly over shards; the mask
  // needs kMetricShards to be a power of two.
  static_assert((kMetricShards & (kMetricShards - 1)) == 0,
                "kMetricShards must be a power of two");
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return slot;
}

void atomic_add(std::atomic<double>& value, double delta) {
  double expected = value.load(std::memory_order_relaxed);
  while (!value.compare_exchange_weak(expected, expected + delta,
                                      std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& value, double candidate) {
  double expected = value.load(std::memory_order_relaxed);
  while (candidate < expected &&
         !value.compare_exchange_weak(expected, candidate,
                                      std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& value, double candidate) {
  double expected = value.load(std::memory_order_relaxed);
  while (candidate > expected &&
         !value.compare_exchange_weak(expected, candidate,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace obs_detail

std::uint64_t Counter::total() const {
  std::uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

std::size_t histogram_bucket(double value) {
  // ilogb(v) is the unbiased binary exponent: 2^e <= v < 2^(e+1). Shift by
  // -kHistMinExp so the first representable bucket lands at index 0, then
  // clamp: sub-range values (including 0 and any accidental negative)
  // fall into bucket 0, overflow into the top bucket.
  if (!(value > 0.0) || !std::isfinite(value)) return 0;
  const long idx = static_cast<long>(std::ilogb(value)) - kHistMinExp;
  if (idx < 0) return 0;
  if (idx >= static_cast<long>(kHistBuckets)) return kHistBuckets - 1;
  return static_cast<std::size_t>(idx);
}

double histogram_bucket_lo(std::size_t b) {
  return std::ldexp(1.0, static_cast<int>(b) + kHistMinExp);
}

double histogram_bucket_hi(std::size_t b) {
  return std::ldexp(1.0, static_cast<int>(b) + kHistMinExp + 1);
}

void LogHistogram::record(double value) {
  Shard& shard = shards_[obs_detail::shard_index()];
  shard.buckets[histogram_bucket(value)].fetch_add(1,
                                                   std::memory_order_relaxed);
  obs_detail::atomic_add(shard.sum, value);
  // First sample of a shard seeds min/max; count orders the check, which
  // is safe because one thread always maps to one shard.
  if (shard.count.fetch_add(1, std::memory_order_relaxed) == 0) {
    shard.min.store(value, std::memory_order_relaxed);
    shard.max.store(value, std::memory_order_relaxed);
  } else {
    obs_detail::atomic_min(shard.min, value);
    obs_detail::atomic_max(shard.max, value);
  }
}

void LogHistogram::reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(0.0, std::memory_order_relaxed);
    shard.max.store(0.0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
  }
}

double LogHistogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Nearest-rank target, then linear interpolation across the bucket that
  // contains it. Clamping to [min, max] keeps estimates inside the
  // observed range even when a bucket is far wider than its samples.
  const double target = q * static_cast<double>(count);
  std::uint64_t below = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(below + in_bucket) >= target) {
      const double frac =
          (target - static_cast<double>(below)) / static_cast<double>(in_bucket);
      const double lo = histogram_bucket_lo(b);
      const double hi = histogram_bucket_hi(b);
      const double estimate = lo + frac * (hi - lo);
      return std::min(max, std::max(min, estimate));
    }
    below += in_bucket;
  }
  return max;
}

LogHistogram::Snapshot LogHistogram::snapshot() const {
  Snapshot out;
  bool seeded = false;
  for (const Shard& shard : shards_) {
    const std::uint64_t n = shard.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    out.count += n;
    out.sum += shard.sum.load(std::memory_order_relaxed);
    const double lo = shard.min.load(std::memory_order_relaxed);
    const double hi = shard.max.load(std::memory_order_relaxed);
    if (!seeded) {
      out.min = lo;
      out.max = hi;
      seeded = true;
    } else {
      out.min = std::min(out.min, lo);
      out.max = std::max(out.max, hi);
    }
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      out.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

JsonValue MetricsSnapshot::to_json() const {
  JsonValue root = JsonValue::make_object();
  root.set("schema_version",
           JsonValue::make_number(static_cast<double>(kMetricsSchemaVersion)));
  JsonValue counters_obj = JsonValue::make_object();
  for (const auto& [name, value] : counters) {
    counters_obj.set(name, JsonValue::make_number(static_cast<double>(value)));
  }
  root.set("counters", std::move(counters_obj));
  JsonValue gauges_obj = JsonValue::make_object();
  for (const auto& [name, value] : gauges) {
    gauges_obj.set(name, JsonValue::make_number(value));
  }
  root.set("gauges", std::move(gauges_obj));
  JsonValue hists_obj = JsonValue::make_object();
  for (const auto& [name, snap] : histograms) {
    JsonValue h = JsonValue::make_object();
    h.set("count", JsonValue::make_number(static_cast<double>(snap.count)));
    h.set("sum", JsonValue::make_number(snap.sum));
    h.set("min", JsonValue::make_number(snap.min));
    h.set("max", JsonValue::make_number(snap.max));
    h.set("mean", JsonValue::make_number(snap.mean()));
    h.set("p50", JsonValue::make_number(snap.quantile(0.50)));
    h.set("p90", JsonValue::make_number(snap.quantile(0.90)));
    h.set("p99", JsonValue::make_number(snap.quantile(0.99)));
    JsonValue buckets = JsonValue::make_array();
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      JsonValue entry = JsonValue::make_object();
      entry.set("lo", JsonValue::make_number(histogram_bucket_lo(b)));
      entry.set("hi", JsonValue::make_number(histogram_bucket_hi(b)));
      entry.set("count",
                JsonValue::make_number(static_cast<double>(snap.buckets[b])));
      buckets.push_back(std::move(entry));
    }
    h.set("buckets", std::move(buckets));
    hists_obj.set(name, std::move(h));
  }
  root.set("histograms", std::move(hists_obj));
  return root;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& [n, value] : counters) {
    if (n == name) return value;
  }
  return 0;
}

double MetricsSnapshot::gauge_value(const std::string& name) const {
  for (const auto& [n, value] : gauges) {
    if (n == name) return value;
  }
  return 0.0;
}

const LogHistogram::Snapshot* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const auto& [n, snap] : histograms) {
    if (n == name) return &snap;
  }
  return nullptr;
}

MetricsSnapshot metrics_snapshot_from_json(const JsonValue& doc,
                                           const std::string& where) {
  const JsonValue* version = doc.find("schema_version");
  if (version == nullptr ||
      version->as_integer(where + ".schema_version", 1, 1000000) !=
          kMetricsSchemaVersion) {
    throw Error(where + ": missing or unsupported metrics schema_version "
                        "(this build knows " +
                std::to_string(kMetricsSchemaVersion) + ")");
  }
  MetricsSnapshot out;
  if (const JsonValue* counters = doc.find("counters")) {
    for (const auto& [name, value] :
         counters->as_object(where + ".counters")) {
      out.counters.emplace_back(
          name, static_cast<std::uint64_t>(value.as_integer(
                    where + ".counters." + name, 0,
                    std::numeric_limits<long long>::max())));
    }
  }
  if (const JsonValue* gauges = doc.find("gauges")) {
    for (const auto& [name, value] : gauges->as_object(where + ".gauges")) {
      out.gauges.emplace_back(name,
                              value.as_number(where + ".gauges." + name));
    }
  }
  if (const JsonValue* hists = doc.find("histograms")) {
    for (const auto& [name, h] : hists->as_object(where + ".histograms")) {
      const std::string hw = where + ".histograms." + name;
      LogHistogram::Snapshot snap;
      snap.count = static_cast<std::uint64_t>(
          h.find("count") == nullptr
              ? 0
              : h.find("count")->as_integer(
                    hw + ".count", 0, std::numeric_limits<long long>::max()));
      if (const JsonValue* v = h.find("sum")) snap.sum = v->as_number(hw);
      if (const JsonValue* v = h.find("min")) snap.min = v->as_number(hw);
      if (const JsonValue* v = h.find("max")) snap.max = v->as_number(hw);
      if (const JsonValue* buckets = h.find("buckets")) {
        for (const JsonValue& entry : buckets->as_array(hw + ".buckets")) {
          const JsonValue* lo = entry.find("lo");
          const JsonValue* count = entry.find("count");
          if (lo == nullptr || count == nullptr) {
            throw Error(hw + ": bucket entry lacks lo/count");
          }
          // `lo` is the bucket's exact power-of-two lower bound, so
          // histogram_bucket maps it straight back to its index.
          snap.buckets[histogram_bucket(lo->as_number(hw + ".lo"))] +=
              static_cast<std::uint64_t>(count->as_integer(
                  hw + ".count", 0, std::numeric_limits<long long>::max()));
        }
      }
      out.histograms.emplace_back(name, snap);
    }
  }
  return out;
}

namespace {

/// Folds `from` into `into` bucket-wise; quantiles of the result come from
/// the merged buckets, never from averaging per-process quantiles.
void merge_histogram_snapshots(LogHistogram::Snapshot& into,
                               const LogHistogram::Snapshot& from) {
  if (from.count == 0) return;
  if (into.count == 0) {
    into = from;
    return;
  }
  into.sum += from.sum;
  into.min = std::min(into.min, from.min);
  into.max = std::max(into.max, from.max);
  into.count += from.count;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    into.buckets[b] += from.buckets[b];
  }
}

}  // namespace

MetricsSnapshot merge_metrics_snapshots(
    const std::vector<MetricsSnapshot>& snapshots) {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LogHistogram::Snapshot> histograms;
  for (const MetricsSnapshot& snap : snapshots) {
    for (const auto& [name, value] : snap.counters) counters[name] += value;
    for (const auto& [name, value] : snap.gauges) gauges[name] += value;
    for (const auto& [name, hist] : snap.histograms) {
      merge_histogram_snapshots(histograms[name], hist);
    }
  }
  MetricsSnapshot out;
  // std::map iteration restores the name order to_json relies on.
  for (const auto& [name, value] : counters) {
    out.counters.emplace_back(name, value);
  }
  for (const auto& [name, value] : gauges) out.gauges.emplace_back(name, value);
  for (const auto& [name, hist] : histograms) {
    out.histograms.emplace_back(name, hist);
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LogHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LogHistogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  // std::map iteration is already name-sorted, which is what makes the
  // serialized snapshot deterministic.
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->total());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    out.histograms.emplace_back(name, hist->snapshot());
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
  for (auto& entry : histograms_) entry.second->reset();
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

void write_metrics_json(const MetricsRegistry& registry,
                        const std::string& path) {
  atomic_write_file(path, registry.snapshot().to_json().dump() + "\n");
}

ScopedTimer::ScopedTimer(LogHistogram& hist, Counter* count)
    : hist_(hist), count_(count), start_(std::chrono::steady_clock::now()) {}

double ScopedTimer::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

ScopedTimer::~ScopedTimer() {
  hist_.record(elapsed_seconds());
  if (count_ != nullptr) count_->add();
}

}  // namespace esched
