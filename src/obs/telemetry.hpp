// Live fleet telemetry: each worker (or run) periodically publishes its
// metrics snapshot to `<dir>/<owner>.metrics.json` from a background
// interval thread, plus a final snapshot at exit, so `esched status` can
// merge the fleet's counters and histograms while the sweep is still
// running instead of inferring progress from done-record mtimes.
//
// Every publication goes through atomic_write_file (temp + rename), so a
// reader never sees a torn document — a worker SIGKILLed mid-write leaves
// at worst a stale previous snapshot and a sweepable '.tmp.' orphan, and
// a snapshot that fails to parse is skipped by the merger (reads as
// absent), never fatal. Heartbeat lag is the file's mtime age, the same
// wall-clock-free convention the lease protocol uses.
//
// Like the rest of src/obs, telemetry is observation only: publishing
// never changes report bytes, RNG streams, or cache keys.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace esched {

/// Version of the telemetry document wrapper (the `metrics` member inside
/// it is versioned separately by kMetricsSchemaVersion).
inline constexpr int kTelemetrySchemaVersion = 1;

/// `owner` reduced to a safe file stem: characters outside
/// [A-Za-z0-9._-] become '_', an empty owner becomes "worker". Pure, so
/// publisher and reader agree on the path without coordination.
std::string telemetry_file_stem(const std::string& owner);

/// `<dir>/<stem(owner)>.metrics.json`.
std::string telemetry_path(const std::string& dir, const std::string& owner);

struct TelemetryOptions {
  std::string dir;    ///< created if missing
  std::string owner;  ///< file stem + the document's owner field
  double interval_seconds = 2.0;
  /// Registry to snapshot; nullptr = global_metrics().
  const MetricsRegistry* registry = nullptr;
};

/// Publishes periodic snapshots on a background thread for its lifetime:
/// one immediately at construction (so the fleet view sees the worker the
/// moment it starts), one per interval, and a final one (final: true) at
/// destruction. Construction throws esched::Error when the directory
/// cannot be created or the first snapshot cannot be written — telemetry
/// that silently goes nowhere would defeat its purpose.
class TelemetryPublisher {
 public:
  explicit TelemetryPublisher(TelemetryOptions options);
  TelemetryPublisher(const TelemetryPublisher&) = delete;
  TelemetryPublisher& operator=(const TelemetryPublisher&) = delete;
  ~TelemetryPublisher();

  /// Snapshots the registry and publishes atomically, on demand.
  void publish(bool final_snapshot = false);

  const std::string& path() const { return path_; }

 private:
  TelemetryOptions options_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;  // guarded by mutex_
  std::thread thread_;
};

/// One worker's parsed telemetry document.
struct WorkerTelemetry {
  std::string owner;
  long pid = 0;
  bool final_snapshot = false;   ///< written by the exit path, not a tick
  double uptime_seconds = 0.0;   ///< publisher lifetime at snapshot time
  double age_seconds = 0.0;      ///< now - file mtime: heartbeat lag
  MetricsSnapshot metrics;
};

/// The merged fleet view `esched status` renders.
struct FleetSnapshot {
  std::vector<WorkerTelemetry> workers;  ///< sorted by owner (stable frames)
  MetricsSnapshot merged;  ///< counters/gauges summed, histograms
                           ///< bucket-merged (quantiles re-derived)
  std::size_t skipped_files = 0;  ///< unparsable or foreign files ignored
};

/// Reads and merges every '*.metrics.json' under `dir`. Torn, foreign,
/// and '.tmp.' files are counted in skipped_files and otherwise ignored;
/// a missing or empty directory yields an empty snapshot — status must
/// degrade, not throw, while a fleet is mid-flight.
FleetSnapshot read_fleet_telemetry(const std::string& dir);

}  // namespace esched
