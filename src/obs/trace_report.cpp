#include "obs/trace_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <tuple>

#include "common/error.hpp"
#include "common/json.hpp"

namespace esched {

namespace {

/// One parsed JSONL line, carrying just what ordering and span matching
/// need; non-span events keep only their sort key (they still count).
struct RawEvent {
  double t = 0.0;
  long pid = 0;
  std::uint64_t seq = 0;
  std::size_t file = 0;
  enum class Kind { kBegin, kEnd, kOther } kind = Kind::kOther;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::string name;
  std::vector<std::pair<std::string, std::string>> fields;
};

/// The merge order the trace schema promises: t first (one run's
/// steady-clock timeline), then pid, then the per-process seq that
/// restores each writer's emission order under equal timestamps.
bool event_order(const RawEvent& a, const RawEvent& b) {
  return std::tie(a.t, a.pid, a.seq, a.file) <
         std::tie(b.t, b.pid, b.seq, b.file);
}

std::string field_to_string(const JsonValue& value) {
  if (value.is_string()) return value.as_string("field");
  return value.dump(/*indent=*/0);
}

}  // namespace

double TraceForest::self_seconds(std::size_t index) const {
  const TraceReportSpan& span = spans[index];
  double children_seconds = 0.0;
  for (const std::size_t child : span.children) {
    children_seconds += spans[child].duration();
  }
  return std::max(0.0, span.duration() - children_seconds);
}

std::vector<std::string> TraceForest::path(std::size_t index) const {
  std::vector<std::string> names;
  for (std::size_t n = index; n != TraceReportSpan::kNoParent;
       n = spans[n].parent) {
    names.push_back(spans[n].name);
  }
  std::reverse(names.begin(), names.end());
  return names;
}

TraceForest build_trace_forest(const std::vector<std::string>& files) {
  TraceForest forest;
  forest.files = files.size();
  std::vector<RawEvent> events;
  std::vector<double> file_end(files.size(), 0.0);  // last event time seen
  for (std::size_t f = 0; f < files.size(); ++f) {
    std::ifstream in(files[f], std::ios::binary);
    if (!in.good()) {
      throw Error("cannot read trace file '" + files[f] + "'");
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      RawEvent event;
      event.file = f;
      try {
        const JsonValue doc = parse_json(line, files[f]);
        const JsonValue* t = doc.find("t");
        const JsonValue* ev = doc.find("ev");
        if (t == nullptr || ev == nullptr) throw Error("not a trace event");
        event.t = t->as_number("t");
        const std::string& type = ev->as_string("ev");
        if (const JsonValue* pid = doc.find("pid")) {
          event.pid = static_cast<long>(pid->as_number("pid"));
        }
        if (const JsonValue* seq = doc.find("seq")) {
          event.seq = static_cast<std::uint64_t>(seq->as_number("seq"));
        }
        if (type == "span_begin" || type == "span_end") {
          event.kind = type == "span_begin" ? RawEvent::Kind::kBegin
                                            : RawEvent::Kind::kEnd;
          const JsonValue* span = doc.find("span");
          if (span == nullptr) throw Error("span event without span id");
          event.span = static_cast<std::uint64_t>(span->as_number("span"));
          if (const JsonValue* parent = doc.find("parent")) {
            event.parent =
                static_cast<std::uint64_t>(parent->as_number("parent"));
          }
          if (const JsonValue* name = doc.find("name")) {
            event.name = name->as_string("name");
          }
          if (event.kind == RawEvent::Kind::kBegin) {
            for (const auto& [key, value] : doc.as_object("event")) {
              if (key == "t" || key == "ev" || key == "pid" || key == "seq" ||
                  key == "span" || key == "parent" || key == "name") {
                continue;
              }
              event.fields.emplace_back(key, field_to_string(value));
            }
          }
        }
      } catch (const std::exception&) {
        // A SIGKILLed worker's torn final line, or a foreign line: skip.
        ++forest.malformed_lines;
        continue;
      }
      file_end[f] = std::max(file_end[f], event.t);
      events.push_back(std::move(event));
    }
  }
  forest.events = events.size();
  std::sort(events.begin(), events.end(), event_order);

  // Replay in merged order. Span ids are per-process, so the lookup key
  // scopes them by (file, pid) — two workers' span 7s never collide.
  std::map<std::tuple<std::size_t, long, std::uint64_t>, std::size_t> by_id;
  for (const RawEvent& event : events) {
    if (event.kind == RawEvent::Kind::kBegin) {
      TraceReportSpan span;
      span.file = event.file;
      span.pid = event.pid;
      span.id = event.span;
      span.parent_id = event.parent;
      span.name = event.name;
      span.t_begin = event.t;
      span.t_end = file_end[event.file];  // until the matching end arrives
      span.fields = event.fields;
      if (event.parent != 0) {
        const auto parent =
            by_id.find({event.file, event.pid, event.parent});
        if (parent != by_id.end()) span.parent = parent->second;
      }
      const std::size_t index = forest.spans.size();
      by_id[{event.file, event.pid, event.span}] = index;
      if (span.parent != TraceReportSpan::kNoParent) {
        forest.spans[span.parent].children.push_back(index);
      } else {
        forest.roots.push_back(index);
      }
      forest.spans.push_back(std::move(span));
    } else if (event.kind == RawEvent::Kind::kEnd) {
      const auto found = by_id.find({event.file, event.pid, event.span});
      if (found == by_id.end()) {
        ++forest.malformed_lines;  // end without a begin
        continue;
      }
      TraceReportSpan& span = forest.spans[found->second];
      span.t_end = std::max(span.t_begin, event.t);
      span.closed = true;
    }
  }
  for (const TraceReportSpan& span : forest.spans) {
    if (!span.closed) ++forest.unclosed_spans;
  }
  return forest;
}

namespace {

void appendf(std::ostream& out, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[512];
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out << buf;
}

}  // namespace

void print_trace_report(const TraceForest& forest, std::ostream& out,
                        std::size_t rows) {
  appendf(out,
          "trace report: %zu file%s, %zu events, %zu spans "
          "(%zu unclosed, %zu malformed lines)\n",
          forest.files, forest.files == 1 ? "" : "s", forest.events,
          forest.spans.size(), forest.unclosed_spans, forest.malformed_lines);
  if (forest.spans.empty()) {
    out << "  no spans — was the trace recorded with this esched version?\n";
    return;
  }

  struct Phase {
    std::size_t count = 0;
    double total = 0.0;
    double self = 0.0;
  };
  std::map<std::string, Phase> phases;  // sorted → stable output
  for (std::size_t n = 0; n < forest.spans.size(); ++n) {
    Phase& phase = phases[forest.spans[n].name];
    ++phase.count;
    phase.total += forest.spans[n].duration();
    phase.self += forest.self_seconds(n);
  }
  std::vector<std::pair<std::string, Phase>> ordered(phases.begin(),
                                                     phases.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.total > b.second.total;
                   });
  appendf(out, "\nphase breakdown (self = total minus child spans):\n");
  appendf(out, "  %-12s %8s %12s %12s %12s\n", "span", "count", "total s",
          "self s", "mean s");
  for (const auto& [name, phase] : ordered) {
    appendf(out, "  %-12s %8zu %12.6f %12.6f %12.6f\n", name.c_str(),
            phase.count, phase.total, phase.self,
            phase.total / static_cast<double>(phase.count));
  }

  // Slowest spans: the "point" phase when present (the unit of sweep
  // work), otherwise whatever phase dominates total time.
  std::string focus = phases.count("point") != 0 ? "point"
                                                 : ordered.front().first;
  std::vector<std::size_t> slow;
  for (std::size_t n = 0; n < forest.spans.size(); ++n) {
    if (forest.spans[n].name == focus) slow.push_back(n);
  }
  std::stable_sort(slow.begin(), slow.end(),
                   [&](std::size_t a, std::size_t b) {
                     return forest.spans[a].duration() >
                            forest.spans[b].duration();
                   });
  if (slow.size() > rows) slow.resize(rows);
  appendf(out, "\nslowest %s spans:\n", focus.c_str());
  for (const std::size_t n : slow) {
    const TraceReportSpan& span = forest.spans[n];
    appendf(out, "  %10.6f s  pid %ld%s", span.duration(), span.pid,
            span.fields.empty() ? "" : " ");
    for (std::size_t f = 0; f < span.fields.size(); ++f) {
      out << (f == 0 ? "" : " ") << span.fields[f].first << "="
          << span.fields[f].second;
    }
    if (!span.closed) out << "  [unclosed]";
    out << "\n";
  }
}

void print_trace_folded(const TraceForest& forest, std::ostream& out) {
  // Aggregate SELF time per root-to-span name path so the stack values
  // sum to total traced time, the invariant flamegraph tooling expects.
  std::map<std::string, std::uint64_t> folded;
  for (std::size_t n = 0; n < forest.spans.size(); ++n) {
    const std::vector<std::string> names = forest.path(n);
    std::string stack;
    for (const std::string& name : names) {
      if (!stack.empty()) stack += ';';
      stack += name;
    }
    folded[stack] += static_cast<std::uint64_t>(
        std::llround(forest.self_seconds(n) * 1e6));
  }
  for (const auto& [stack, micros] : folded) {
    out << stack << " " << micros << "\n";
  }
}

}  // namespace esched
