// Dependency-free process metrics: a registry of named counters, gauges,
// and log-bucketed histograms designed so the hot path never takes a
// lock. Counters and histograms stripe their state across a fixed set of
// cache-line-padded shards; each thread hashes to a shard on first touch
// and from then on updates it with relaxed atomics, so concurrent solver
// threads never contend on a mutex and rarely on a cache line (the
// shared-counter idiom from MAGPIE's threaded samplers). snapshot() merges
// the shards into plain structs sorted by name, and to_json() serializes
// them under a stable, versioned schema (kMetricsSchemaVersion) suitable
// for `esched run --metrics-out`.
//
// Instrumentation must never perturb results: nothing here touches RNG
// streams, cache keys, or report bytes — recording is observation only,
// and the registry is always live (there is no "enabled" flag to thread
// through call sites; an unread counter costs one relaxed fetch_add).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace esched {

/// Version of the JSON layout emitted by MetricsSnapshot::to_json /
/// write_metrics_json. Bump when renaming or restructuring fields.
inline constexpr int kMetricsSchemaVersion = 1;

/// Shards per striped metric. A power of two (shard choice masks the low
/// bits of a thread counter) sized to make same-shard collisions rare at
/// typical sweep thread counts without bloating per-metric memory.
inline constexpr std::size_t kMetricShards = 16;

namespace obs_detail {

/// Destination size for alignas: one shard per cache line so two threads
/// bumping different shards never false-share.
inline constexpr std::size_t kCacheLine = 64;

/// This thread's shard index, assigned round-robin on first use. Stable
/// for the thread's lifetime and shared by every metric, so a thread's
/// updates always land on the same stripe.
std::size_t shard_index();

/// value += delta on an atomic double via compare-exchange (portable to
/// C++17; fetch_add on atomic<double> is C++20). Relaxed ordering: shards
/// are merged only after threads quiesce or for approximate snapshots.
void atomic_add(std::atomic<double>& value, double delta);

/// min/max folding with the same CAS loop.
void atomic_min(std::atomic<double>& value, double candidate);
void atomic_max(std::atomic<double>& value, double candidate);

}  // namespace obs_detail

/// Monotonically increasing event count. add() is lock-free and
/// wait-free-ish (one relaxed fetch_add on this thread's shard).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) {
    shards_[obs_detail::shard_index()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum across shards. Approximate while writers are active (each shard
  /// read is atomic but the sum is not a consistent cut); exact once they
  /// quiesce.
  std::uint64_t total() const;

  /// Zeroes every shard (for tests and between-run resets). Not atomic
  /// with respect to concurrent add().
  void reset();

 private:
  struct alignas(obs_detail::kCacheLine) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-writer-wins instantaneous value (queue depth, thread count, ...).
/// Gauges are low-rate, so a single atomic slot suffices.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) { obs_detail::atomic_add(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed description of the log-bucketed histogram layout: bucket b spans
/// [2^(b + kHistMinExp), 2^(b + kHistMinExp + 1)). With kHistMinExp = -30
/// bucket 0 starts near 0.93 ns — below any timer tick we can observe —
/// and bucket 63 ends above 8e9 seconds, so durations and state counts
/// both fit. Values below the first boundary (including 0) clamp into
/// bucket 0; values at or above the last boundary clamp into the top
/// bucket. Boundaries are exact powers of two, so tests can place values
/// on either side of a boundary without floating-point ambiguity.
inline constexpr int kHistMinExp = -30;
inline constexpr std::size_t kHistBuckets = 64;

/// Bucket index for `value` under the layout above.
std::size_t histogram_bucket(double value);
/// [lo, hi) bounds of bucket `b`.
double histogram_bucket_lo(std::size_t b);
double histogram_bucket_hi(std::size_t b);

/// Log-bucketed distribution of a nonnegative quantity (seconds, states).
/// record() is lock-free: one relaxed fetch_add into this thread's shard's
/// bucket plus CAS updates of the shard's sum/min/max.
class LogHistogram {
 public:
  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  void record(double value);
  void reset();

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    std::array<std::uint64_t, kHistBuckets> buckets{};

    double mean() const { return count == 0 ? 0.0 : sum / count; }
    /// Quantile estimate: locate the bucket holding the q-th sample and
    /// interpolate linearly inside it, clamped to the observed [min, max].
    double quantile(double q) const;
  };
  Snapshot snapshot() const;

 private:
  struct alignas(obs_detail::kCacheLine) Shard {
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  // valid only when count > 0
    std::atomic<double> max{0.0};
    std::atomic<std::uint64_t> count{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Merged, order-stable view of a registry at one instant.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, LogHistogram::Snapshot>> histograms;

  /// Stable schema (kMetricsSchemaVersion): top-level schema_version plus
  /// one object per metric family; histogram entries carry count / sum /
  /// min / max / mean / p50 / p90 / p99 and the non-empty buckets as
  /// {lo, hi, count}. Names sort lexicographically, so equal event
  /// sequences serialize to identical bytes.
  JsonValue to_json() const;

  /// Looks up a counter/gauge/histogram by name (the vectors are sorted,
  /// but a linear scan is fine at snapshot cardinality). Returns 0 / 0.0 /
  /// nullptr when the metric was never registered.
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  const LogHistogram::Snapshot* find_histogram(const std::string& name) const;
};

/// Parses a snapshot serialized by MetricsSnapshot::to_json back into
/// struct form (the inverse the fleet merger needs). Histogram buckets are
/// relocated by their recorded `lo` bound — exact powers of two, so the
/// round trip is lossless. Throws esched::Error on a malformed document or
/// an unsupported schema_version.
MetricsSnapshot metrics_snapshot_from_json(const JsonValue& doc,
                                           const std::string& where);

/// Merges per-process snapshots into one fleet-wide snapshot: counters and
/// gauges sum by name, histograms merge BUCKET-WISE (counts added, sums
/// added, min/max folded) so quantiles of the result are re-derived from
/// the combined distribution — never averaged across processes, which
/// would be wrong for any skewed distribution.
MetricsSnapshot merge_metrics_snapshots(
    const std::vector<MetricsSnapshot>& snapshots);

/// Named-metric registry. Lookup/creation takes a mutex, so call sites on
/// hot paths should resolve their handles once (function-local static or
/// member reference) and then update lock-free; returned references stay
/// valid and stable for the registry's lifetime (reset() zeroes values in
/// place rather than destroying metrics).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LogHistogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  /// Zeroes every registered metric, keeping handles valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

/// The process-wide registry every esched layer records into.
MetricsRegistry& global_metrics();

/// Snapshots `registry` and writes its JSON (trailing newline) to `path`
/// via atomic_write_file, so a watcher never reads a torn file.
void write_metrics_json(const MetricsRegistry& registry,
                        const std::string& path);

/// RAII wall-time probe: records seconds-elapsed into `hist` (and
/// optionally bumps `count`) at scope exit. steady_clock, so wall-clock
/// jumps never produce negative durations.
class ScopedTimer {
 public:
  explicit ScopedTimer(LogHistogram& hist, Counter* count = nullptr);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

  /// Seconds since construction, without stopping the timer.
  double elapsed_seconds() const;

 private:
  LogHistogram& hist_;
  Counter* count_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace esched
