// Absorbing-chain analysis: expected time spent in each transient state
// before absorption, and expected accumulated rewards.
//
// This powers the Theorem 6 counterexample: with no arrivals the job-count
// chain is absorbing at (0,0), and the mean response time equals
// E[∫ N(t) dt] / (initial number of jobs) — an accumulated reward with
// reward rate N(state).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "markov/ctmc.hpp"

namespace esched {

/// Expected total time spent in each state before absorption, starting from
/// the distribution `initial` (which must be supported on transient states).
/// States with zero exit rate are treated as absorbing and receive
/// occupancy 0. Solved exactly via dense LU: x^T (-Q_TT) = initial^T.
Vector expected_occupancy(const SparseCtmc& chain, const Vector& initial);

/// Expected accumulated reward before absorption: sum_s occupancy(s) *
/// reward_rate(s).
double expected_accumulated_reward(const SparseCtmc& chain,
                                   const Vector& initial,
                                   const Vector& reward_rate);

/// Expected time to absorption (reward rate 1 on transient states).
double expected_time_to_absorption(const SparseCtmc& chain,
                                   const Vector& initial);

}  // namespace esched
