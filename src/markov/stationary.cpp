#include "markov/stationary.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace esched {

Vector gth_stationary(Matrix q) {
  ESCHED_CHECK(q.rows() == q.cols(), "generator must be square");
  const std::size_t n = q.rows();
  ESCHED_CHECK(n >= 1, "generator must be non-empty");
  // GTH elimination uses only the off-diagonal (non-negative) rates and
  // performs no subtractions, so it is backward stable for probabilities.
  for (std::size_t m = n; m-- > 1;) {
    double s = 0.0;
    for (std::size_t j = 0; j < m; ++j) s += q(m, j);
    ESCHED_CHECK(s > 0.0, "chain is reducible: state has no path down");
    for (std::size_t i = 0; i < m; ++i) q(i, m) /= s;
    for (std::size_t i = 0; i < m; ++i) {
      const double factor = q(i, m);
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < m; ++j) {
        if (j != i) q(i, j) += factor * q(m, j);
      }
    }
  }
  Vector pi(n, 0.0);
  pi[0] = 1.0;
  for (std::size_t m = 1; m < n; ++m) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += pi[i] * q(i, m);
    pi[m] = acc;
  }
  normalize_probability(pi);
  return pi;
}

Vector gth_stationary(const SparseCtmc& chain) {
  return gth_stationary(chain.dense_generator());
}

namespace {

/// Incoming adjacency: for each state, the transitions that enter it.
std::vector<std::vector<CtmcTransition>> incoming_adjacency(
    const SparseCtmc& chain) {
  std::vector<std::vector<CtmcTransition>> in(chain.num_states());
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    for (const auto& t : chain.transitions_from(s)) in[t.to].push_back(t);
  }
  return in;
}

}  // namespace

double stationary_residual(const SparseCtmc& chain, const Vector& pi) {
  ESCHED_CHECK(pi.size() == chain.num_states(), "pi dimension mismatch");
  Vector flow(chain.num_states(), 0.0);
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    flow[s] -= pi[s] * chain.exit_rate(s);
    for (const auto& t : chain.transitions_from(s)) {
      flow[t.to] += pi[s] * t.rate;
    }
  }
  return max_abs(flow);
}

Vector sor_stationary(const SparseCtmc& chain, double tol, int max_iters,
                      double omega, StationarySolveInfo* info) {
  ESCHED_CHECK(omega > 0.0 && omega < 2.0, "SOR omega must be in (0,2)");
  const std::size_t n = chain.num_states();
  const auto in = incoming_adjacency(chain);
  Vector pi(n, 1.0 / static_cast<double>(n));
  StationarySolveInfo local;
  for (local.iterations = 1; local.iterations <= max_iters;
       ++local.iterations) {
    for (std::size_t s = 0; s < n; ++s) {
      const double exit = chain.exit_rate(s);
      if (exit == 0.0) continue;  // absorbing states keep their mass
      double inflow = 0.0;
      for (const auto& t : in[s]) inflow += pi[t.from] * t.rate;
      const double gs = inflow / exit;
      pi[s] = (1.0 - omega) * pi[s] + omega * gs;
    }
    normalize_probability(pi);
    // Checking the residual every sweep would double the work; every 10th
    // sweep keeps the overhead low while stopping promptly.
    if (local.iterations % 10 == 0 || local.iterations == max_iters) {
      local.residual = stationary_residual(chain, pi);
      if (local.residual < tol) {
        local.converged = true;
        break;
      }
    }
  }
  // On non-convergence the for-loop increment leaves the counter one past
  // the last sweep actually performed; clamp so callers see the true work.
  local.iterations = std::min(local.iterations, max_iters);
  if (info != nullptr) *info = local;
  return pi;
}

Vector power_stationary(const SparseCtmc& chain, double tol, int max_iters,
                        StationarySolveInfo* info) {
  const std::size_t n = chain.num_states();
  // Strictly exceed the max exit rate so the uniformized DTMC is aperiodic.
  const double uniformization = chain.max_exit_rate() * 1.05 + 1e-9;
  Vector pi(n, 1.0 / static_cast<double>(n));
  Vector next(n, 0.0);
  StationarySolveInfo local;
  for (local.iterations = 1; local.iterations <= max_iters;
       ++local.iterations) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      const double stay = 1.0 - chain.exit_rate(s) / uniformization;
      next[s] += pi[s] * stay;
      for (const auto& t : chain.transitions_from(s)) {
        next[t.to] += pi[s] * t.rate / uniformization;
      }
    }
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      delta = std::max(delta, std::abs(next[s] - pi[s]));
    }
    pi.swap(next);
    if (delta * uniformization < tol) {
      local.converged = true;
      break;
    }
  }
  local.iterations = std::min(local.iterations, max_iters);
  normalize_probability(pi);
  local.residual = stationary_residual(chain, pi);
  if (info != nullptr) *info = local;
  return pi;
}

}  // namespace esched
