#include "markov/stationary.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/invariants.hpp"

namespace esched {

const char* stationary_method_name(StationaryMethod method) {
  switch (method) {
    case StationaryMethod::kAuto: return "auto";
    case StationaryMethod::kGth: return "gth";
    case StationaryMethod::kSor: return "sor";
    case StationaryMethod::kBlock: return "block";
  }
  ESCHED_ASSERT(false, "unreachable stationary method");
  return "";
}

StationaryMethod parse_stationary_method(const std::string& name) {
  if (name == "auto") return StationaryMethod::kAuto;
  if (name == "gth") return StationaryMethod::kGth;
  if (name == "sor") return StationaryMethod::kSor;
  if (name == "block") return StationaryMethod::kBlock;
  throw Error("unknown stationary method '" + name +
              "' (expected auto, gth, sor, or block)");
}

Vector gth_stationary(Matrix q) {
  // No generator-structure debug check here: the block solver feeds this
  // entry censored generators whose diagonal/row sums carry elimination
  // roundoff GTH is insensitive to. The CSR overload below checks instead.
  ESCHED_CHECK(q.rows() == q.cols(), "generator must be square");
  const std::size_t n = q.rows();
  ESCHED_CHECK(n >= 1, "generator must be non-empty");
  // GTH elimination uses only the off-diagonal (non-negative) rates and
  // performs no subtractions, so it is backward stable for probabilities.
  for (std::size_t m = n; m-- > 1;) {
    double s = 0.0;
    for (std::size_t j = 0; j < m; ++j) s += q(m, j);
    ESCHED_CHECK(s > 0.0, "chain is reducible: state has no path down");
    for (std::size_t i = 0; i < m; ++i) q(i, m) /= s;
    for (std::size_t i = 0; i < m; ++i) {
      const double factor = q(i, m);
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < m; ++j) {
        if (j != i) q(i, j) += factor * q(m, j);
      }
    }
  }
  Vector pi(n, 0.0);
  pi[0] = 1.0;
  for (std::size_t m = 1; m < n; ++m) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += pi[i] * q(i, m);
    pi[m] = acc;
  }
  normalize_probability(pi);
  ESCHED_DEBUG_CHECK(check_probability_vector(pi, "gth_stationary"));
  return pi;
}

Vector gth_stationary(const SparseCtmc& chain) {
  return gth_stationary(chain.dense_generator());
}

Vector gth_stationary(const CsrMatrix& rates, const Vector& exit_rates) {
  ESCHED_CHECK(rates.rows() == rates.cols(), "generator must be square");
  ESCHED_CHECK(exit_rates.size() == rates.rows(),
               "exit-rate dimension mismatch");
  ESCHED_DEBUG_CHECK(check_generator(rates, exit_rates, "gth_stationary"));
  Matrix q = rates.to_dense();
  for (std::size_t s = 0; s < rates.rows(); ++s) q(s, s) = -exit_rates[s];
  return gth_stationary(std::move(q));
}

namespace {

/// Residual computed from the in-adjacency (the transpose the SOR sweep
/// already built): bitwise identical to the scatter form below, because for
/// each target state the incoming contributions arrive in ascending source
/// order with the -pi[s] * exit term interleaved exactly where source == s
/// falls in that order.
double residual_from_incoming(const CsrMatrix& in, const Vector& exit_rates,
                              const Vector& pi) {
  const std::size_t n = in.rows();
  double worst = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t* from = in.row_cols(s);
    const double* rate = in.row_values(s);
    const std::size_t nnz = in.row_nnz(s);
    double acc = 0.0;
    bool subtracted = false;
    for (std::size_t k = 0; k < nnz; ++k) {
      if (!subtracted && from[k] > s) {
        acc -= pi[s] * exit_rates[s];
        subtracted = true;
      }
      acc += pi[from[k]] * rate[k];
    }
    if (!subtracted) acc -= pi[s] * exit_rates[s];
    worst = std::max(worst, std::abs(acc));
  }
  return worst;
}

}  // namespace

double stationary_residual(const CsrMatrix& rates, const Vector& exit_rates,
                           const Vector& pi) {
  ESCHED_CHECK(pi.size() == rates.rows(), "pi dimension mismatch");
  Vector flow(rates.rows(), 0.0);
  for (std::size_t s = 0; s < rates.rows(); ++s) {
    flow[s] -= pi[s] * exit_rates[s];
    const std::size_t* to = rates.row_cols(s);
    const double* rate = rates.row_values(s);
    const std::size_t nnz = rates.row_nnz(s);
    for (std::size_t k = 0; k < nnz; ++k) flow[to[k]] += pi[s] * rate[k];
  }
  return max_abs(flow);
}

double stationary_residual(const SparseCtmc& chain, const Vector& pi) {
  return stationary_residual(chain.rate_matrix(), chain.exit_rates(), pi);
}

Vector sor_stationary(const CsrMatrix& rates, const Vector& exit_rates,
                      double tol, int max_iters, double omega,
                      StationarySolveInfo* info) {
  ESCHED_CHECK(omega > 0.0 && omega < 2.0, "SOR omega must be in (0,2)");
  ESCHED_CHECK(exit_rates.size() == rates.rows(),
               "exit-rate dimension mismatch");
  ESCHED_DEBUG_CHECK(check_generator(rates, exit_rates, "sor_stationary"));
  const std::size_t n = rates.rows();
  // One transpose per solve: the Gauss-Seidel update of pi[s] gathers over
  // the transitions *entering* s, and the convergence check reuses it.
  const CsrMatrix in = rates.transposed();
  Vector pi(n, 1.0 / static_cast<double>(n));
  StationarySolveInfo local;
  for (local.iterations = 1; local.iterations <= max_iters;
       ++local.iterations) {
    for (std::size_t s = 0; s < n; ++s) {
      const double exit = exit_rates[s];
      if (exit == 0.0) continue;  // absorbing states keep their mass
      const std::size_t* from = in.row_cols(s);
      const double* rate = in.row_values(s);
      const std::size_t nnz = in.row_nnz(s);
      double inflow = 0.0;
      for (std::size_t k = 0; k < nnz; ++k) inflow += pi[from[k]] * rate[k];
      const double gs = inflow / exit;
      pi[s] = (1.0 - omega) * pi[s] + omega * gs;
    }
    normalize_probability(pi);
    // Checking the residual every sweep would double the work; every 10th
    // sweep keeps the overhead low while stopping promptly.
    if (local.iterations % 10 == 0 || local.iterations == max_iters) {
      local.residual = residual_from_incoming(in, exit_rates, pi);
      if (local.residual < tol) {
        local.converged = true;
        break;
      }
    }
  }
  // On non-convergence the for-loop increment leaves the counter one past
  // the last sweep actually performed; clamp so callers see the true work.
  local.iterations = std::min(local.iterations, max_iters);
  if (info != nullptr) *info = local;
  ESCHED_DEBUG_CHECK(check_probability_vector(pi, "sor_stationary"));
  return pi;
}

Vector sor_stationary(const SparseCtmc& chain, double tol, int max_iters,
                      double omega, StationarySolveInfo* info) {
  return sor_stationary(chain.rate_matrix(), chain.exit_rates(), tol,
                        max_iters, omega, info);
}

Vector power_stationary(const CsrMatrix& rates, const Vector& exit_rates,
                        double tol, int max_iters,
                        StationarySolveInfo* info) {
  ESCHED_CHECK(exit_rates.size() == rates.rows(),
               "exit-rate dimension mismatch");
  ESCHED_DEBUG_CHECK(check_generator(rates, exit_rates, "power_stationary"));
  const std::size_t n = rates.rows();
  // Strictly exceed the max exit rate so the uniformized DTMC is aperiodic.
  double max_exit = 0.0;
  for (double r : exit_rates) max_exit = std::max(max_exit, r);
  const double uniformization = max_exit * 1.05 + 1e-9;
  const CsrMatrix in = rates.transposed();
  Vector pi(n, 1.0 / static_cast<double>(n));
  Vector next(n, 0.0);
  StationarySolveInfo local;
  for (local.iterations = 1; local.iterations <= max_iters;
       ++local.iterations) {
    for (std::size_t s = 0; s < n; ++s) {
      // Gather form of pi P: incoming contributions in ascending source
      // order, with the stay term interleaved where source == s falls.
      const std::size_t* from = in.row_cols(s);
      const double* rate = in.row_values(s);
      const std::size_t nnz = in.row_nnz(s);
      double acc = 0.0;
      bool stayed = false;
      for (std::size_t k = 0; k < nnz; ++k) {
        if (!stayed && from[k] > s) {
          acc += pi[s] * (1.0 - exit_rates[s] / uniformization);
          stayed = true;
        }
        acc += pi[from[k]] * rate[k] / uniformization;
      }
      if (!stayed) acc += pi[s] * (1.0 - exit_rates[s] / uniformization);
      next[s] = acc;
    }
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      delta = std::max(delta, std::abs(next[s] - pi[s]));
    }
    pi.swap(next);
    if (delta * uniformization < tol) {
      local.converged = true;
      break;
    }
  }
  local.iterations = std::min(local.iterations, max_iters);
  normalize_probability(pi);
  local.residual = residual_from_incoming(in, exit_rates, pi);
  if (info != nullptr) *info = local;
  ESCHED_DEBUG_CHECK(check_probability_vector(pi, "power_stationary"));
  return pi;
}

Vector power_stationary(const SparseCtmc& chain, double tol, int max_iters,
                        StationarySolveInfo* info) {
  return power_stationary(chain.rate_matrix(), chain.exit_rates(), tol,
                          max_iters, info);
}

}  // namespace esched
