// Transient analysis of finite CTMCs via uniformization.
//
// pi(t) = pi(0) exp(Q t) computed as a Poisson mixture of DTMC powers:
//   pi(t) = sum_k e^{-Lt} (Lt)^k / k! * pi(0) P^k,  P = I + Q / L.
// Used for the expectation version of Theorem 3 — E[W(t)] trajectories
// under different policies from a common start state — and as a general
// library feature (numerically exact to a controllable Poisson tail).
#pragma once

#include "linalg/matrix.hpp"
#include "markov/ctmc.hpp"

namespace esched {

/// Distribution at time t starting from `initial` (t >= 0). `tail_epsilon`
/// bounds the truncated Poisson mass (total variation error).
Vector transient_distribution(const SparseCtmc& chain, const Vector& initial,
                              double t, double tail_epsilon = 1e-12);

/// Expected instantaneous reward E[r(X(t))] at each requested time, reusing
/// one uniformization pass per time point. `times` must be non-decreasing.
Vector transient_expected_reward(const SparseCtmc& chain,
                                 const Vector& initial,
                                 const Vector& reward_rate,
                                 const Vector& times,
                                 double tail_epsilon = 1e-12);

}  // namespace esched
