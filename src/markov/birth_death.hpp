// First-passage-time moments in birth-death chains.
//
// Used to validate the closed-form M/M/1 busy-period moments that feed the
// busy-period transformation (paper §5.2): the busy period is exactly the
// first passage time from state 1 to state 0 of the M/M/1 queue-length
// chain. The recursion below computes the first three moments of the
// downward first-passage time exactly on a truncated chain.
#pragma once

#include <vector>

namespace esched {

/// Raw moments (m1, m2, m3) of a distribution.
struct Moments3 {
  double m1 = 0.0;
  double m2 = 0.0;
  double m3 = 0.0;

  /// Squared coefficient of variation m2/m1^2 - 1.
  double scv() const;
};

/// Moments of the first passage time from state 1 to state 0 in a
/// birth-death chain with birth rates `birth[i]` and death rates `death[i]`
/// for states i = 1..N (vectors are indexed from state 1; size N). The
/// chain is truncated at N: births from state N are ignored, which is
/// accurate when the chain is stable and N is large enough that the
/// probability of reaching N is negligible.
///
/// Recursion (T_i = passage time i -> i-1, a_i = birth_i/(birth_i+death_i)):
///   T_i = X_i + Bernoulli(a_i) * (T_{i+1} + T_i'),  X_i ~ Exp(birth+death)
/// which yields linear equations for each moment given the higher level's.
Moments3 birth_death_descent_moments(const std::vector<double>& birth,
                                     const std::vector<double>& death);

}  // namespace esched
