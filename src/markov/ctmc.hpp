// Sparse continuous-time Markov chain representation.
//
// States are dense indices 0..n-1; the caller owns the mapping from model
// states (e.g., (i, j) job counts) to indices. Only off-diagonal rates are
// stored; diagonals are implied by row sums. The build phase accumulates
// flat triplets; freeze() compacts them into a CsrMatrix so the stationary
// solvers sweep contiguous arrays instead of nested vectors.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/matrix.hpp"

namespace esched {

/// One off-diagonal transition of a CTMC.
struct CtmcTransition {
  std::size_t from;
  std::size_t to;
  double rate;
};

/// Lightweight random-access view of one state's outgoing transitions,
/// backed by a frozen chain's CSR row. Iteration yields CtmcTransition by
/// value, so existing range-for callers are unchanged.
class TransitionRange {
 public:
  TransitionRange(std::size_t from, const std::size_t* cols,
                  const double* rates, std::size_t size)
      : from_(from), cols_(cols), rates_(rates), size_(size) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  CtmcTransition operator[](std::size_t k) const {
    return {from_, cols_[k], rates_[k]};
  }

  class iterator {
   public:
    using value_type = CtmcTransition;
    using difference_type = std::ptrdiff_t;

    iterator(const TransitionRange* range, std::size_t k)
        : range_(range), k_(k) {}
    CtmcTransition operator*() const { return (*range_)[k_]; }
    iterator& operator++() {
      ++k_;
      return *this;
    }
    bool operator==(const iterator& other) const { return k_ == other.k_; }
    bool operator!=(const iterator& other) const { return k_ != other.k_; }

   private:
    const TransitionRange* range_;
    std::size_t k_;
  };

  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, size_); }

 private:
  std::size_t from_;
  const std::size_t* cols_;
  const double* rates_;
  std::size_t size_;
};

/// Sparse CTMC: triplet builder before freeze(), flat CSR after.
class SparseCtmc {
 public:
  explicit SparseCtmc(std::size_t num_states);

  std::size_t num_states() const { return num_states_; }

  /// Adds an off-diagonal transition; rate must be >= 0 (zero is dropped),
  /// from != to. Duplicate (from, to) pairs accumulate.
  void add_rate(std::size_t from, std::size_t to, double rate);

  /// Compacts the pending triplets into CSR (sorting each row by
  /// destination and merging duplicates); must be called before queries.
  void freeze();

  bool frozen() const { return frozen_; }

  /// Total exit rate of a state (sum of off-diagonal rates).
  double exit_rate(std::size_t state) const;

  /// Largest exit rate over all states (the uniformization constant).
  double max_exit_rate() const;

  /// Transitions leaving `state` (valid after freeze()), sorted by
  /// destination. The view borrows the chain's storage; it is valid only
  /// while the chain is alive and unmodified.
  TransitionRange transitions_from(std::size_t state) const;

  /// All transitions, grouped by source state.
  std::vector<CtmcTransition> all_transitions() const;

  /// The frozen off-diagonal rate matrix (CSR). The diagonal is implied:
  /// Q(s, s) = -exit_rate(s).
  const CsrMatrix& rate_matrix() const;

  /// All exit rates, indexed by state (valid before and after freeze()).
  const Vector& exit_rates() const { return exit_rates_; }

  /// Dense generator matrix Q (rows sum to zero). Only sensible for small
  /// chains; used by the GTH solver and in tests.
  Matrix dense_generator() const;

 private:
  std::size_t num_states_;
  bool frozen_ = false;
  std::vector<CsrTriplet> pending_;
  CsrMatrix rates_;
  Vector exit_rates_;
};

}  // namespace esched
