// Sparse continuous-time Markov chain representation.
//
// States are dense indices 0..n-1; the caller owns the mapping from model
// states (e.g., (i, j) job counts) to indices. Only off-diagonal rates are
// stored; diagonals are implied by row sums.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace esched {

/// One off-diagonal transition of a CTMC.
struct CtmcTransition {
  std::size_t from;
  std::size_t to;
  double rate;
};

/// Sparse CTMC builder with per-state adjacency (CSR-like after freeze()).
class SparseCtmc {
 public:
  explicit SparseCtmc(std::size_t num_states);

  std::size_t num_states() const { return num_states_; }

  /// Adds an off-diagonal transition; rate must be >= 0 (zero is dropped),
  /// from != to. Duplicate (from, to) pairs accumulate.
  void add_rate(std::size_t from, std::size_t to, double rate);

  /// Sorts and merges transitions; must be called before queries below.
  void freeze();

  bool frozen() const { return frozen_; }

  /// Total exit rate of a state (sum of off-diagonal rates).
  double exit_rate(std::size_t state) const;

  /// Largest exit rate over all states (the uniformization constant).
  double max_exit_rate() const;

  /// Transitions leaving `state` (valid after freeze()).
  const std::vector<CtmcTransition>& transitions_from(std::size_t state) const;

  /// All transitions, grouped by source state.
  std::vector<CtmcTransition> all_transitions() const;

  /// Dense generator matrix Q (rows sum to zero). Only sensible for small
  /// chains; used by the GTH solver and in tests.
  Matrix dense_generator() const;

 private:
  std::size_t num_states_;
  bool frozen_ = false;
  std::vector<std::vector<CtmcTransition>> adj_;
  std::vector<double> exit_rates_;
};

}  // namespace esched
