// Stationary distribution solvers for finite CTMCs.
//
// Four algorithms with different size/robustness trade-offs:
//  - GTH elimination: O(n^3), no subtractions (numerically exact for
//    probabilities), the right choice for n up to ~1-2k states.
//  - Gauss-Seidel/SOR on the balance equations: sparse, O(nnz) per sweep,
//    for truncated 2-D chains without usable structure.
//  - Block-tridiagonal GTH elimination (markov/block_solver.hpp): direct,
//    O(levels * block^3), for level-structured chains.
//  - Uniformized power iteration: simple and always convergent for ergodic
//    chains; used as a cross-check in tests.
//
// Each iterative solver takes either a SparseCtmc or the raw
// (rate matrix, exit rates) pair; the latter lets batch callers overlay
// rates into a reusable CSR scratch without constructing a chain object.
#pragma once

#include <string>

#include "linalg/csr.hpp"
#include "linalg/matrix.hpp"
#include "markov/ctmc.hpp"

namespace esched {

/// Stationary-solver selection for the exact-CTMC backend. kAuto picks
/// dense GTH for small chains, the block-tridiagonal direct solver when
/// the chain is level-structured and the factor storage fits the memory
/// budget, and SOR otherwise.
enum class StationaryMethod { kAuto, kGth, kSor, kBlock };

/// Stable identifier used in spec files, cache keys, and metrics.
const char* stationary_method_name(StationaryMethod method);

/// Inverse of stationary_method_name ("auto", "gth", "sor", "block").
/// Throws on an unknown name.
StationaryMethod parse_stationary_method(const std::string& name);

/// Result of a stationary solve.
struct StationarySolveInfo {
  int iterations = 0;     // 0 for the direct (GTH / block) solvers
  double residual = 0.0;  // max |pi Q| entry at exit
  bool converged = false;
  /// Which solver actually ran ("gth", "sor", "block"); filled by the
  /// exact-CTMC backend's method selection, empty when a solver was
  /// invoked directly.
  std::string method;
};

/// GTH (Grassmann-Taksar-Heyman) elimination on a dense generator. The
/// chain must be irreducible. Returns the stationary probability vector.
Vector gth_stationary(Matrix generator);

/// Convenience overloads densifying a sparse generator (off-diagonal rate
/// matrix plus implied diagonal -exit_rates[s]).
Vector gth_stationary(const SparseCtmc& chain);
Vector gth_stationary(const CsrMatrix& rates, const Vector& exit_rates);

/// Gauss-Seidel / SOR iteration on the global balance equations of a sparse
/// CTMC. `omega` in (0, 2); omega = 1 is plain Gauss-Seidel. Iterates until
/// the residual max|pi Q| drops below `tol` or `max_iters` sweeps elapse.
/// The in-adjacency is built once per call as a CSR transpose and reused
/// by the convergence checks.
Vector sor_stationary(const SparseCtmc& chain, double tol = 1e-12,
                      int max_iters = 20000, double omega = 1.0,
                      StationarySolveInfo* info = nullptr);
Vector sor_stationary(const CsrMatrix& rates, const Vector& exit_rates,
                      double tol = 1e-12, int max_iters = 20000,
                      double omega = 1.0, StationarySolveInfo* info = nullptr);

/// Uniformized power iteration: P = I + Q/Lambda, pi <- pi P until stable.
Vector power_stationary(const SparseCtmc& chain, double tol = 1e-12,
                        int max_iters = 1000000,
                        StationarySolveInfo* info = nullptr);
Vector power_stationary(const CsrMatrix& rates, const Vector& exit_rates,
                        double tol = 1e-12, int max_iters = 1000000,
                        StationarySolveInfo* info = nullptr);

/// Residual max_s |(pi Q)_s| — a direct check that `pi` satisfies balance.
double stationary_residual(const SparseCtmc& chain, const Vector& pi);
double stationary_residual(const CsrMatrix& rates, const Vector& exit_rates,
                           const Vector& pi);

}  // namespace esched
