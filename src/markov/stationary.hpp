// Stationary distribution solvers for finite CTMCs.
//
// Three algorithms with different size/robustness trade-offs:
//  - GTH elimination: O(n^3), no subtractions (numerically exact for
//    probabilities), the right choice for n up to ~1-2k states.
//  - Gauss-Seidel/SOR on the balance equations: sparse, O(nnz) per sweep,
//    for the truncated 2-D chains (tens of thousands of states).
//  - Uniformized power iteration: simple and always convergent for ergodic
//    chains; used as a cross-check in tests.
#pragma once

#include "linalg/matrix.hpp"
#include "markov/ctmc.hpp"

namespace esched {

/// Result of an iterative stationary solve.
struct StationarySolveInfo {
  int iterations = 0;
  double residual = 0.0;  // max |pi Q| entry at exit
  bool converged = false;
};

/// GTH (Grassmann-Taksar-Heyman) elimination on a dense generator. The
/// chain must be irreducible. Returns the stationary probability vector.
Vector gth_stationary(Matrix generator);

/// Convenience overload building the dense generator from a sparse chain.
Vector gth_stationary(const SparseCtmc& chain);

/// Gauss-Seidel / SOR iteration on the global balance equations of a sparse
/// CTMC. `omega` in (0, 2); omega = 1 is plain Gauss-Seidel. Iterates until
/// the residual max|pi Q| drops below `tol` or `max_iters` sweeps elapse.
Vector sor_stationary(const SparseCtmc& chain, double tol = 1e-12,
                      int max_iters = 20000, double omega = 1.0,
                      StationarySolveInfo* info = nullptr);

/// Uniformized power iteration: P = I + Q/Lambda, pi <- pi P until stable.
Vector power_stationary(const SparseCtmc& chain, double tol = 1e-12,
                        int max_iters = 1000000,
                        StationarySolveInfo* info = nullptr);

/// Residual max_s |(pi Q)_s| — a direct check that `pi` satisfies balance.
double stationary_residual(const SparseCtmc& chain, const Vector& pi);

}  // namespace esched
