#include "markov/ctmc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esched {

SparseCtmc::SparseCtmc(std::size_t num_states)
    : num_states_(num_states), adj_(num_states), exit_rates_(num_states, 0.0) {
  ESCHED_CHECK(num_states > 0, "CTMC needs at least one state");
}

void SparseCtmc::add_rate(std::size_t from, std::size_t to, double rate) {
  ESCHED_CHECK(!frozen_, "cannot add transitions after freeze()");
  ESCHED_CHECK(from < num_states_ && to < num_states_,
               "transition endpoint out of range");
  ESCHED_CHECK(from != to, "self-loops are not allowed in a CTMC generator");
  ESCHED_CHECK(rate >= 0.0, "transition rate must be non-negative");
  if (rate == 0.0) return;
  adj_[from].push_back({from, to, rate});
  exit_rates_[from] += rate;
}

void SparseCtmc::freeze() {
  ESCHED_CHECK(!frozen_, "freeze() called twice");
  for (auto& row : adj_) {
    std::sort(row.begin(), row.end(),
              [](const CtmcTransition& a, const CtmcTransition& b) {
                return a.to < b.to;
              });
    // Merge duplicate destinations.
    std::vector<CtmcTransition> merged;
    merged.reserve(row.size());
    for (const auto& t : row) {
      if (!merged.empty() && merged.back().to == t.to) {
        merged.back().rate += t.rate;
      } else {
        merged.push_back(t);
      }
    }
    row = std::move(merged);
  }
  frozen_ = true;
}

double SparseCtmc::exit_rate(std::size_t state) const {
  ESCHED_CHECK(state < num_states_, "state out of range");
  return exit_rates_[state];
}

double SparseCtmc::max_exit_rate() const {
  double best = 0.0;
  for (double r : exit_rates_) best = std::max(best, r);
  return best;
}

const std::vector<CtmcTransition>& SparseCtmc::transitions_from(
    std::size_t state) const {
  ESCHED_CHECK(frozen_, "freeze() must be called before queries");
  ESCHED_CHECK(state < num_states_, "state out of range");
  return adj_[state];
}

std::vector<CtmcTransition> SparseCtmc::all_transitions() const {
  ESCHED_CHECK(frozen_, "freeze() must be called before queries");
  std::vector<CtmcTransition> out;
  for (const auto& row : adj_) out.insert(out.end(), row.begin(), row.end());
  return out;
}

Matrix SparseCtmc::dense_generator() const {
  ESCHED_CHECK(frozen_, "freeze() must be called before queries");
  Matrix q(num_states_, num_states_);
  for (std::size_t s = 0; s < num_states_; ++s) {
    for (const auto& t : adj_[s]) q(t.from, t.to) += t.rate;
    q(s, s) = -exit_rates_[s];
  }
  return q;
}

}  // namespace esched
