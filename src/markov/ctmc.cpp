#include "markov/ctmc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esched {

SparseCtmc::SparseCtmc(std::size_t num_states)
    : num_states_(num_states), exit_rates_(num_states, 0.0) {
  ESCHED_CHECK(num_states > 0, "CTMC needs at least one state");
}

void SparseCtmc::add_rate(std::size_t from, std::size_t to, double rate) {
  ESCHED_CHECK(!frozen_, "cannot add transitions after freeze()");
  ESCHED_CHECK(from < num_states_ && to < num_states_,
               "transition endpoint out of range");
  ESCHED_CHECK(from != to, "self-loops are not allowed in a CTMC generator");
  ESCHED_CHECK(rate >= 0.0, "transition rate must be non-negative");
  if (rate == 0.0) return;
  pending_.push_back({from, to, rate});
  exit_rates_[from] += rate;
}

void SparseCtmc::freeze() {
  ESCHED_CHECK(!frozen_, "freeze() called twice");
  rates_ =
      CsrMatrix::from_triplets(num_states_, num_states_, std::move(pending_));
  pending_ = {};
  frozen_ = true;
}

double SparseCtmc::exit_rate(std::size_t state) const {
  ESCHED_CHECK(state < num_states_, "state out of range");
  return exit_rates_[state];
}

double SparseCtmc::max_exit_rate() const {
  double best = 0.0;
  for (double r : exit_rates_) best = std::max(best, r);
  return best;
}

TransitionRange SparseCtmc::transitions_from(std::size_t state) const {
  ESCHED_CHECK(frozen_, "freeze() must be called before queries");
  ESCHED_CHECK(state < num_states_, "state out of range");
  return TransitionRange(state, rates_.row_cols(state),
                         rates_.row_values(state), rates_.row_nnz(state));
}

std::vector<CtmcTransition> SparseCtmc::all_transitions() const {
  ESCHED_CHECK(frozen_, "freeze() must be called before queries");
  std::vector<CtmcTransition> out;
  out.reserve(rates_.nnz());
  for (std::size_t s = 0; s < num_states_; ++s) {
    for (const CtmcTransition t : transitions_from(s)) out.push_back(t);
  }
  return out;
}

const CsrMatrix& SparseCtmc::rate_matrix() const {
  ESCHED_CHECK(frozen_, "freeze() must be called before queries");
  return rates_;
}

Matrix SparseCtmc::dense_generator() const {
  ESCHED_CHECK(frozen_, "freeze() must be called before queries");
  Matrix q = rates_.to_dense();
  for (std::size_t s = 0; s < num_states_; ++s) q(s, s) = -exit_rates_[s];
  return q;
}

}  // namespace esched
