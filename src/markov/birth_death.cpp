#include "markov/birth_death.hpp"

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace esched {

double Moments3::scv() const {
  ESCHED_CHECK(m1 > 0.0, "scv of degenerate distribution");
  return m2 / (m1 * m1) - 1.0;
}

Moments3 birth_death_descent_moments(const std::vector<double>& birth,
                                     const std::vector<double>& death) {
  const std::size_t n = birth.size();
  ESCHED_CHECK(n >= 1, "need at least one state");
  ESCHED_CHECK(death.size() == n, "birth/death size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    ESCHED_CHECK(death[i] > 0.0, "death rates must be positive");
    ESCHED_CHECK(birth[i] >= 0.0, "birth rates must be non-negative");
  }

  // Top state: births truncated, so T_N ~ Exp(death_N).
  double m1 = 1.0 / death[n - 1];
  double m2 = 2.0 / sq(death[n - 1]);
  double m3 = 6.0 / (death[n - 1] * sq(death[n - 1]));

  // Walk down: level i uses level i+1's (m1, m2, m3).
  for (std::size_t idx = n - 1; idx-- > 0;) {
    const double lam = birth[idx];
    const double mu = death[idx];
    const double total = lam + mu;
    const double a = lam / total;          // P(go up before down)
    const double ex1 = 1.0 / total;        // E[X], X ~ Exp(total)
    const double ex2 = 2.0 / sq(total);
    const double ex3 = 6.0 / (total * sq(total));

    // First moment: m = ex1 + a (m_up + m)  =>  m (1-a) = ex1 + a m_up.
    const double new_m1 = (ex1 + a * m1) / (1.0 - a);

    // Second moment: T = X + D with D = (T_up + T') w.p. a, else 0;
    // X independent of D. E[T^2] = E[X^2] + 2 E[X] E[D] + E[D^2].
    const double ed1 = a * (m1 + new_m1);
    // E[D^2] = a (m2_up + 2 m1_up m1 + m2): contains the unknown m2.
    const double new_m2 =
        (ex2 + 2.0 * ex1 * ed1 + a * (m2 + 2.0 * m1 * new_m1)) / (1.0 - a);

    // Third moment: E[T^3] = E[X^3] + 3E[X^2]E[D] + 3E[X]E[D^2] + E[D^3],
    // E[D^3] = a (m3_up + 3 m2_up m1 + 3 m1_up m2 + m3).
    const double ed2 = a * (m2 + 2.0 * m1 * new_m1 + new_m2);
    const double new_m3 =
        (ex3 + 3.0 * ex2 * ed1 + 3.0 * ex1 * ed2 +
         a * (m3 + 3.0 * m2 * new_m1 + 3.0 * m1 * new_m2)) /
        (1.0 - a);

    m1 = new_m1;
    m2 = new_m2;
    m3 = new_m3;
  }
  return {m1, m2, m3};
}

}  // namespace esched
