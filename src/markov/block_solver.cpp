#include "markov/block_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/invariants.hpp"
#include "linalg/lu.hpp"

namespace esched {

namespace {

/// Per-state (level, index-within-level) coordinates plus the per-level
/// state lists. Within a level, states keep ascending global order, so the
/// construction is deterministic.
struct LevelPartition {
  std::vector<std::uint32_t> level;       // = level_of (validated)
  std::vector<std::size_t> local;         // index within the level
  std::vector<std::vector<std::size_t>> states;  // per level, ascending
};

LevelPartition partition_levels(const std::vector<std::uint32_t>& level_of,
                                std::size_t n) {
  ESCHED_CHECK(level_of.size() == n, "level_of dimension mismatch");
  std::uint32_t max_level = 0;
  for (std::uint32_t l : level_of) max_level = std::max(max_level, l);
  const std::size_t num_levels = static_cast<std::size_t>(max_level) + 1;
  LevelPartition p;
  p.level = level_of;
  p.local.resize(n);
  p.states.resize(num_levels);
  for (std::size_t s = 0; s < n; ++s) {
    p.local[s] = p.states[level_of[s]].size();
    p.states[level_of[s]].push_back(s);
  }
  for (std::size_t l = 0; l < num_levels; ++l) {
    ESCHED_CHECK(!p.states[l].empty(),
                 "level " + std::to_string(l) +
                     " is empty: levels must be contiguous 0..L-1 (the "
                     "chain is reducible across levels)");
  }
  return p;
}

/// File-local LU for the censored level generators (-S)^T. Same pivoting
/// and singularity conventions as LuFactorization, but tuned for this
/// caller: the update loop touches only the nonzero entries of the pivot
/// row, and the factors are compressed into sparse column/row lists for
/// the many solves that follow. The level generators are banded except in
/// the few fold-modified columns (see the backward sweep), and (-S)^T is
/// column-wise diagonally dominant, so pivoting essentially never swaps
/// and the elimination preserves the caller's dense-rows-last ordering —
/// the factors stay near the sparsity of the inputs instead of filling.
class FoldFactor {
 public:
  explicit FoldFactor(Matrix g) {
    const std::size_t n = g.rows();
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
    std::vector<std::size_t> urow;
    for (std::size_t col = 0; col < n; ++col) {
      std::size_t pivot = col;
      double best = std::abs(g(col, col));
      for (std::size_t r = col + 1; r < n; ++r) {
        const double cand = std::abs(g(r, col));
        if (cand > best) {
          best = cand;
          pivot = r;
        }
      }
      ESCHED_CHECK(best > 1e-300, "matrix is numerically singular");
      if (pivot != col) {
        for (std::size_t c = 0; c < n; ++c) std::swap(g(pivot, c), g(col, c));
        std::swap(perm_[pivot], perm_[col]);
      }
      const double inv_diag = 1.0 / g(col, col);
      urow.clear();
      for (std::size_t c = col + 1; c < n; ++c) {
        if (g(col, c) != 0.0) urow.push_back(c);
      }
      for (std::size_t r = col + 1; r < n; ++r) {
        const double factor = g(r, col) * inv_diag;
        g(r, col) = factor;
        if (factor == 0.0) continue;
        for (const std::size_t c : urow) g(r, c) -= factor * g(col, c);
      }
    }
    diag_.resize(n);
    l_cols_.resize(n);
    u_rows_.resize(n);
    for (std::size_t r = 0; r < n; ++r) {
      diag_[r] = g(r, r);
      for (std::size_t c = r + 1; c < n; ++c) {
        if (g(r, c) != 0.0) u_rows_[r].emplace_back(c, g(r, c));
        if (g(c, r) != 0.0) l_cols_[r].emplace_back(c, g(c, r));
      }
    }
  }

  std::size_t dim() const { return diag_.size(); }

  /// Solves G x = b.
  Vector solve(const Vector& b) const {
    const std::size_t n = dim();
    Vector x(n);
    for (std::size_t r = 0; r < n; ++r) x[r] = b[perm_[r]];
    for (std::size_t k = 0; k < n; ++k) {
      const double xk = x[k];
      if (xk == 0.0) continue;
      for (const auto& [r, m] : l_cols_[k]) x[r] -= m * xk;
    }
    for (std::size_t k = n; k-- > 0;) {
      double acc = x[k];
      for (const auto& [c, v] : u_rows_[k]) acc -= v * x[c];
      x[k] = acc / diag_[k];
    }
    return x;
  }

  /// Solves G^T x = b (G = P^T L U ⇒ G^T = U^T L^T P).
  Vector solve_transposed(const Vector& b) const {
    const std::size_t n = dim();
    Vector y = b;
    for (std::size_t k = 0; k < n; ++k) {
      const double yk = y[k] / diag_[k];
      y[k] = yk;
      if (yk == 0.0) continue;
      for (const auto& [c, v] : u_rows_[k]) y[c] -= v * yk;
    }
    for (std::size_t k = n; k-- > 0;) {
      double acc = y[k];
      for (const auto& [r, m] : l_cols_[k]) acc -= m * y[r];
      y[k] = acc;
    }
    Vector x(n);
    for (std::size_t r = 0; r < n; ++r) x[perm_[r]] = y[r];
    return x;
  }

 private:
  std::vector<std::size_t> perm_;
  Vector diag_;
  /// Strict lower factor by column / strict upper factor by row.
  std::vector<std::vector<std::pair<std::size_t, double>>> l_cols_;
  std::vector<std::vector<std::pair<std::size_t, double>>> u_rows_;
};

/// A level's factored censored generator: FoldFactor over (-S_{l+1})^T
/// symmetrically permuted so the fold-densified indices come last (banded
/// elimination first, dense fill confined to the trailing block).
struct LevelFactor {
  std::vector<std::size_t> order;  ///< permuted index -> level-local index
  std::optional<FoldFactor> factor;

  Vector solve(const Vector& v) const {
    return unpermute(factor->solve(permute(v)));
  }
  Vector solve_transposed(const Vector& v) const {
    return unpermute(factor->solve_transposed(permute(v)));
  }

  Vector permute(const Vector& v) const {
    Vector p(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) p[i] = v[order[i]];
    return p;
  }
  Vector unpermute(const Vector& p) const {
    Vector v(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) v[order[i]] = p[i];
    return v;
  }
};

}  // namespace

std::size_t block_solver_workspace_bytes(
    const std::vector<std::uint32_t>& level_of) {
  if (level_of.empty()) return 0;
  std::uint32_t max_level = 0;
  for (std::uint32_t l : level_of) max_level = std::max(max_level, l);
  std::vector<std::size_t> size(static_cast<std::size_t>(max_level) + 1, 0);
  for (std::uint32_t l : level_of) ++size[l];
  std::size_t doubles = 0;
  std::size_t max_block = 0;
  for (std::size_t l = 0; l < size.size(); ++l) {
    max_block = std::max(max_block, size[l]);
    if (l > 0) doubles += size[l] * size[l];  // kept LU factor of -S_l^T
  }
  doubles += 3 * max_block * max_block;  // S, its transpose, next scratch
  return doubles * sizeof(double);
}

double block_solver_flop_estimate(const CsrMatrix& rates,
                                  const std::vector<std::uint32_t>& level_of) {
  const std::size_t n = rates.rows();
  if (n == 0 || level_of.size() != n) return 0.0;
  std::uint32_t max_level = 0;
  for (std::uint32_t l : level_of) max_level = std::max(max_level, l);
  const std::size_t num_levels = static_cast<std::size_t>(max_level) + 1;
  std::vector<double> size(num_levels, 0.0);
  for (std::uint32_t l : level_of) size[l] += 1.0;
  // m_l = distinct level-l states hit by a down-transition; these are the
  // columns the fold densifies when level l's censored block is factored.
  std::vector<char> is_target(n, 0);
  std::vector<double> dense(num_levels, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t* to = rates.row_cols(s);
    const std::size_t nnz = rates.row_nnz(s);
    for (std::size_t k = 0; k < nnz; ++k) {
      const std::size_t t = to[k];
      if (level_of[t] + 1 == level_of[s] && is_target[t] == 0) {
        is_target[t] = 1;
        dense[level_of[t]] += 1.0;
      }
    }
  }
  double flops = size[0] * size[0] * size[0];  // dense GTH on S_0
  for (std::size_t l = 1; l < num_levels; ++l) {
    flops += size[l] * dense[l] * dense[l] + dense[l] * dense[l] * dense[l];
  }
  return flops;
}

Vector block_tridiagonal_stationary(const CsrMatrix& rates,
                                    const Vector& exit_rates,
                                    const std::vector<std::uint32_t>& level_of,
                                    StationarySolveInfo* info) {
  ESCHED_CHECK(rates.rows() == rates.cols(), "generator must be square");
  const std::size_t n = rates.rows();
  ESCHED_CHECK(exit_rates.size() == n, "exit-rate dimension mismatch");
  ESCHED_DEBUG_CHECK(
      check_generator(rates, exit_rates, "block_tridiagonal_stationary"));
  const LevelPartition part = partition_levels(level_of, n);
  const std::size_t num_levels = part.states.size();

  // Validate the level structure once up front so the elimination below
  // can assume |level(from) - level(to)| <= 1, and that every level can be
  // left downwards at all — a level with no down-transitions makes the
  // censored blocks exactly singular (everything below it is transient),
  // which the direct elimination cannot represent; callers fall back to an
  // iterative solver for such chains.
  std::vector<bool> has_down(num_levels, false);
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t* to = rates.row_cols(s);
    const std::size_t nnz = rates.row_nnz(s);
    for (std::size_t k = 0; k < nnz; ++k) {
      const long diff = static_cast<long>(part.level[s]) -
                        static_cast<long>(part.level[to[k]]);
      ESCHED_CHECK(diff >= -1 && diff <= 1,
                   "transition " + std::to_string(s) + " -> " +
                       std::to_string(to[k]) + " jumps from level " +
                       std::to_string(part.level[s]) + " to level " +
                       std::to_string(part.level[to[k]]) +
                       ": the chain is not level-structured");
      if (diff == 1) has_down[part.level[s]] = true;
    }
  }
  for (std::size_t l = 1; l < num_levels; ++l) {
    ESCHED_CHECK(has_down[l],
                 "level " + std::to_string(l) +
                     " has no transitions to level " + std::to_string(l - 1) +
                     ": the chain is reducible across levels (everything "
                     "below is transient); use an iterative solver");
  }

  // Dense within-level block A_l with the implied diagonal -exit. Exit
  // rates include transitions to *other* levels, so the diagonal of S_l
  // carries the escape mass GTH later treats as censored.
  const auto level_block = [&](std::size_t l) {
    const std::vector<std::size_t>& states = part.states[l];
    const std::size_t b = states.size();
    Matrix a(b, b);
    for (std::size_t r = 0; r < b; ++r) {
      const std::size_t u = states[r];
      a(r, r) = -exit_rates[u];
      const std::size_t* to = rates.row_cols(u);
      const double* rate = rates.row_values(u);
      const std::size_t nnz = rates.row_nnz(u);
      for (std::size_t k = 0; k < nnz; ++k) {
        if (part.level[to[k]] == l) a(r, part.local[to[k]]) += rate[k];
      }
    }
    return a;
  };

  // Backward sweep: S starts as A_{L-1}; each step folds level l+1 into
  // level l. The expected-visits factor R_l = B_l (-S_{l+1})^{-1} is never
  // formed densely: the fold S_l = A_l + R_l C_{l+1} needs only
  // X = (-S_{l+1})^{-1} C_{l+1} — one triangular solve per nonzero COLUMN
  // of C, and down-transitions land on few level-l states — and the
  // forward pass needs only pi_l R_l, one solve against the kept factor
  // per level. That replaces b solves per level (every row of R) with
  // ~|cols(C)| + 1, which is what makes the direct solve beat SOR on the
  // phase-augmented chains.
  std::vector<std::optional<LevelFactor>> up_factor(
      num_levels > 0 ? num_levels - 1 : 0);
  Matrix s_block = level_block(num_levels - 1);
  // Columns of the current s_block that a fold has touched: A_l is sparse,
  // and the fold only densifies the columns that receive down-transitions,
  // so marking them lets each factorization order the dense part last.
  std::vector<bool> fold_marks(part.states[num_levels - 1].size(), false);
  Vector rhs;
  for (std::size_t l = num_levels - 1; l-- > 0;) {
    const std::vector<std::size_t>& states = part.states[l];
    const std::vector<std::size_t>& above = part.states[l + 1];
    const std::size_t b = states.size();
    const std::size_t b_up = above.size();

    // Factor G = (-S_{l+1})^T: solve(v) then gives v^T (-S_{l+1})^{-1}
    // (the forward-pass direction, cache-friendly) and solve_transposed(c)
    // gives (-S_{l+1})^{-1} c (the X columns below). Fold-densified columns
    // of S become dense rows of G; order them last so the leading sparse
    // part eliminates without fill spreading.
    LevelFactor lf;
    lf.order.reserve(b_up);
    for (std::size_t i = 0; i < b_up; ++i) {
      if (!fold_marks[i]) lf.order.push_back(i);
    }
    for (std::size_t i = 0; i < b_up; ++i) {
      if (fold_marks[i]) lf.order.push_back(i);
    }
    Matrix g(b_up, b_up);
    for (std::size_t r = 0; r < b_up; ++r) {
      for (std::size_t c = 0; c < b_up; ++c) {
        g(r, c) = -s_block(lf.order[c], lf.order[r]);
      }
    }
    lf.factor.emplace(std::move(g));
    up_factor[l] = std::move(lf);
    const LevelFactor& factor = *up_factor[l];

    // C_{l+1} packed by target column (level-l local index).
    std::vector<std::vector<std::pair<std::size_t, double>>> c_cols(b);
    for (std::size_t r2 = 0; r2 < b_up; ++r2) {
      const std::size_t u2 = above[r2];
      const std::size_t* to = rates.row_cols(u2);
      const double* rate = rates.row_values(u2);
      const std::size_t nnz = rates.row_nnz(u2);
      for (std::size_t k = 0; k < nnz; ++k) {
        if (part.level[to[k]] == l) {
          c_cols[part.local[to[k]]].emplace_back(r2, rate[k]);
        }
      }
    }

    // S_l = A_l + B_l X, one active column at a time.
    Matrix next = level_block(l);
    for (std::size_t c = 0; c < b; ++c) {
      if (c_cols[c].empty()) continue;
      rhs.assign(b_up, 0.0);
      for (const auto& [r2, w] : c_cols[c]) rhs[r2] += w;
      const Vector x = factor.solve_transposed(rhs);
      for (std::size_t i = 0; i < b; ++i) {
        const std::size_t u = states[i];
        const std::size_t* to = rates.row_cols(u);
        const double* rate = rates.row_values(u);
        const std::size_t nnz = rates.row_nnz(u);
        double acc = 0.0;
        for (std::size_t k = 0; k < nnz; ++k) {
          if (part.level[to[k]] == l + 1) acc += rate[k] * x[part.local[to[k]]];
        }
        next(i, c) += acc;
      }
    }
    s_block = std::move(next);
    fold_marks.assign(b, false);
    for (std::size_t c = 0; c < b; ++c) {
      if (!c_cols[c].empty()) fold_marks[c] = true;
    }
  }

  // The censored generator S_0 is a proper (conservative up to roundoff)
  // generator of the level-0 process; GTH ignores its diagonal, so row-sum
  // drift is harmless — only clamp roundoff-negative off-diagonals.
  const std::size_t b0 = part.states[0].size();
  for (std::size_t r = 0; r < b0; ++r) {
    for (std::size_t c = 0; c < b0; ++c) {
      if (r != c && s_block(r, c) < 0.0) s_block(r, c) = 0.0;
    }
  }
  Vector level_pi = gth_stationary(std::move(s_block));

  Vector pi(n, 0.0);
  for (std::size_t r = 0; r < b0; ++r) pi[part.states[0][r]] = level_pi[r];
  for (std::size_t l = 0; l + 1 < num_levels; ++l) {
    // pi_{l+1} = pi_l R_l = (pi_l B_l) (-S_{l+1})^{-1}. Exact arithmetic
    // keeps this non-negative (R is an expected-visits matrix); clamp the
    // roundoff dust so downstream mass sums keep the old >= 0 guarantee.
    const std::vector<std::size_t>& states = part.states[l];
    const std::vector<std::size_t>& above = part.states[l + 1];
    rhs.assign(above.size(), 0.0);
    for (std::size_t i = 0; i < states.size(); ++i) {
      const std::size_t u = states[i];
      const std::size_t* to = rates.row_cols(u);
      const double* rate = rates.row_values(u);
      const std::size_t nnz = rates.row_nnz(u);
      for (std::size_t k = 0; k < nnz; ++k) {
        if (part.level[to[k]] == l + 1) {
          rhs[part.local[to[k]]] += level_pi[i] * rate[k];
        }
      }
    }
    level_pi = up_factor[l]->solve(rhs);
    for (double& v : level_pi) {
      if (v < 0.0) v = 0.0;
    }
    for (std::size_t c = 0; c < above.size(); ++c) {
      pi[above[c]] = level_pi[c];
    }
  }
  normalize_probability(pi);
  ESCHED_DEBUG_CHECK(check_probability_vector(pi, "block_tridiagonal_stationary"));

  if (info != nullptr) {
    info->iterations = 0;
    info->converged = true;
    info->residual = stationary_residual(rates, exit_rates, pi);
  }
  return pi;
}

Vector block_tridiagonal_stationary(const SparseCtmc& chain,
                                    const std::vector<std::uint32_t>& level_of,
                                    StationarySolveInfo* info) {
  return block_tridiagonal_stationary(chain.rate_matrix(),
                                      chain.exit_rates(), level_of, info);
}

}  // namespace esched
