#include "markov/transient.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esched {

namespace {

/// One DTMC step of the uniformized chain: out = in * P, P = I + Q/L.
void uniformized_step(const SparseCtmc& chain, double uniformization,
                      const Vector& in, Vector& out) {
  const std::size_t n = chain.num_states();
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const double mass = in[s];
    if (mass == 0.0) continue;
    out[s] += mass * (1.0 - chain.exit_rate(s) / uniformization);
    for (const auto& tr : chain.transitions_from(s)) {
      out[tr.to] += mass * tr.rate / uniformization;
    }
  }
}

}  // namespace

Vector transient_distribution(const SparseCtmc& chain, const Vector& initial,
                              double t, double tail_epsilon) {
  const std::size_t n = chain.num_states();
  ESCHED_CHECK(initial.size() == n, "initial distribution dimension mismatch");
  ESCHED_CHECK(t >= 0.0, "time must be non-negative");
  ESCHED_CHECK(tail_epsilon > 0.0, "tail_epsilon must be positive");
  if (t == 0.0) return initial;

  const double uniformization = chain.max_exit_rate() * 1.02 + 1e-12;
  const double lt = uniformization * t;
  Vector power = initial;  // pi(0) P^k
  Vector next(n);
  Vector result(n, 0.0);
  double log_poisson = -lt;  // log weight at k = 0
  double tail = 1.0;
  // Poisson mixture; stop once the remaining mass is below tail_epsilon
  // and we are past the mode (weights are then decreasing).
  for (int k = 0; k < 10000000; ++k) {
    const double w = std::exp(log_poisson);
    if (w > 0.0) {
      for (std::size_t s = 0; s < n; ++s) result[s] += w * power[s];
      tail -= w;
    }
    if (tail < tail_epsilon && static_cast<double>(k) > lt) break;
    uniformized_step(chain, uniformization, power, next);
    power.swap(next);
    log_poisson += std::log(lt) - std::log(static_cast<double>(k + 1));
  }
  // Renormalize away the dropped tail (keeps the result a distribution).
  double total = 0.0;
  for (double v : result) total += v;
  ESCHED_ASSERT(total > 0.0, "transient distribution lost all mass");
  for (double& v : result) v /= total;
  return result;
}

Vector transient_expected_reward(const SparseCtmc& chain,
                                 const Vector& initial,
                                 const Vector& reward_rate,
                                 const Vector& times, double tail_epsilon) {
  ESCHED_CHECK(reward_rate.size() == chain.num_states(),
               "reward dimension mismatch");
  Vector out;
  out.reserve(times.size());
  double prev = -1.0;
  for (double t : times) {
    ESCHED_CHECK(t >= 0.0 && t >= prev, "times must be non-decreasing");
    prev = t;
    const Vector dist = transient_distribution(chain, initial, t,
                                               tail_epsilon);
    out.push_back(dot(dist, reward_rate));
  }
  return out;
}

}  // namespace esched
