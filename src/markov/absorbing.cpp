#include "markov/absorbing.hpp"

#include "common/error.hpp"
#include "linalg/lu.hpp"

namespace esched {

Vector expected_occupancy(const SparseCtmc& chain, const Vector& initial) {
  const std::size_t n = chain.num_states();
  ESCHED_CHECK(initial.size() == n, "initial distribution dimension mismatch");

  // Identify transient states (positive exit rate) and build the dense
  // negated transient sub-generator.
  std::vector<std::size_t> transient;
  std::vector<std::size_t> index_of(n, n);  // n = "not transient"
  for (std::size_t s = 0; s < n; ++s) {
    if (chain.exit_rate(s) > 0.0) {
      index_of[s] = transient.size();
      transient.push_back(s);
    } else {
      ESCHED_CHECK(initial[s] == 0.0,
                   "initial mass on an absorbing state is not supported");
    }
  }
  const std::size_t m = transient.size();
  Vector occupancy(n, 0.0);
  if (m == 0) return occupancy;

  Matrix neg_qtt(m, m);
  for (std::size_t ti = 0; ti < m; ++ti) {
    const std::size_t s = transient[ti];
    neg_qtt(ti, ti) = chain.exit_rate(s);
    for (const auto& t : chain.transitions_from(s)) {
      if (index_of[t.to] != n) neg_qtt(ti, index_of[t.to]) -= t.rate;
    }
  }
  Vector alpha(m);
  for (std::size_t ti = 0; ti < m; ++ti) alpha[ti] = initial[transient[ti]];

  // x^T (-Q_TT) = alpha^T  <=>  (-Q_TT)^T x = alpha.
  const Vector x = LuFactorization(std::move(neg_qtt)).solve_transposed(alpha);
  for (std::size_t ti = 0; ti < m; ++ti) {
    ESCHED_ASSERT(x[ti] > -1e-9, "negative expected occupancy");
    occupancy[transient[ti]] = x[ti];
  }
  return occupancy;
}

double expected_accumulated_reward(const SparseCtmc& chain,
                                   const Vector& initial,
                                   const Vector& reward_rate) {
  ESCHED_CHECK(reward_rate.size() == chain.num_states(),
               "reward dimension mismatch");
  const Vector occupancy = expected_occupancy(chain, initial);
  return dot(occupancy, reward_rate);
}

double expected_time_to_absorption(const SparseCtmc& chain,
                                   const Vector& initial) {
  Vector ones(chain.num_states(), 0.0);
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    if (chain.exit_rate(s) > 0.0) ones[s] = 1.0;
  }
  return expected_accumulated_reward(chain, initial, ones);
}

}  // namespace esched
