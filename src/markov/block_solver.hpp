// Block-tridiagonal direct stationary solver for level-structured CTMCs.
//
// The truncated (N_I, N_E) chains — including the phase-augmented chain —
// only move between adjacent levels of N_I, so grouping states by level
// yields a block-tridiagonal generator
//
//     [ A_0  B_0            ]
//     [ C_1  A_1  B_1       ]
//     [      C_2  A_2  ...  ]
//
// which GTH-style block elimination solves *exactly* in O(levels * block^3)
// time and O(levels * block^2) memory instead of dense O(n^3) / O(n^2):
// censoring the chain on levels 0..l gives the backward recursion
//
//     S_{L-1} = A_{L-1},   S_l = A_l + R_l C_{l+1},
//     R_l     = B_l (-S_{l+1})^{-1},
//
// where R_l(r, c) is the expected number of visits to state c of level l+1
// (before returning to level l+1... censored below l+1) per unit time spent
// in state r of level l — in particular R_l >= 0 elementwise, so the
// forward accumulation pi_{l+1} = pi_l R_l is subtraction-free like scalar
// GTH. pi_0 solves the censored generator S_0 by dense GTH; the R factors
// then roll the distribution back up level by level.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/csr.hpp"
#include "markov/ctmc.hpp"
#include "markov/stationary.hpp"

namespace esched {

/// Solves the stationary distribution of a level-structured CTMC given as
/// an off-diagonal rate matrix plus exit rates. `level_of[s]` assigns each
/// state to a level; levels must be contiguous (0..L-1 all non-empty) and
/// every transition must stay within a level or move to an adjacent one —
/// violations throw esched::Error naming the offending structure. `info`
/// (optional) reports iterations == 0, converged == true, and the measured
/// residual, like the dense GTH path.
Vector block_tridiagonal_stationary(const CsrMatrix& rates,
                                    const Vector& exit_rates,
                                    const std::vector<std::uint32_t>& level_of,
                                    StationarySolveInfo* info = nullptr);

/// Convenience overload for a frozen chain.
Vector block_tridiagonal_stationary(const SparseCtmc& chain,
                                    const std::vector<std::uint32_t>& level_of,
                                    StationarySolveInfo* info = nullptr);

/// Estimated peak workspace of block_tridiagonal_stationary for this level
/// partition: the stored R factors (sum of b_l * b_{l+1} doubles) plus the
/// dense per-level blocks (a few max-block-squared). Used by the exact
/// backend's auto method selection to fall back to SOR rather than blow
/// the memory budget on degenerate partitions (e.g. one giant level).
std::size_t block_solver_workspace_bytes(
    const std::vector<std::uint32_t>& level_of);

/// Estimated floating-point work of block_tridiagonal_stationary on this
/// chain. The elimination is only cheap when the fold densifies few
/// columns: per interior level the factorization costs roughly
/// b_l * m_l^2 (updates into the m_l fold-densified rows) plus m_l^3 (the
/// trailing dense block), where m_l counts the level-l states that receive
/// down-transitions. Chains whose every state is a down-target (m ~ b)
/// degrade to dense O(levels * block^3) work, and auto method selection
/// uses this estimate to prefer SOR there.
double block_solver_flop_estimate(const CsrMatrix& rates,
                                  const std::vector<std::uint32_t>& level_of);

}  // namespace esched
