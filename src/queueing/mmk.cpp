#include "queueing/mmk.hpp"

#include "common/error.hpp"

namespace esched {

MMk::MMk(double lambda_in, double mu_in, int k_in)
    : lambda(lambda_in), mu(mu_in), k(k_in) {
  ESCHED_CHECK(lambda >= 0.0, "arrival rate must be non-negative");
  ESCHED_CHECK(mu > 0.0, "service rate must be positive");
  ESCHED_CHECK(k >= 1, "need at least one server");
}

double MMk::erlang_b() const {
  const double a = offered_load();
  // B(0) = 1; B(n) = a B(n-1) / (n + a B(n-1)) — numerically stable.
  double b = 1.0;
  for (int n = 1; n <= k; ++n) {
    b = a * b / (static_cast<double>(n) + a * b);
  }
  return b;
}

double MMk::erlang_c() const {
  ESCHED_CHECK(stable(), "Erlang-C requires utilization < 1");
  const double rho = utilization();
  const double b = erlang_b();
  return b / (1.0 - rho * (1.0 - b));
}

double MMk::mean_wait() const {
  ESCHED_CHECK(stable(), "M/M/k metrics require utilization < 1");
  return erlang_c() / (static_cast<double>(k) * mu - lambda);
}

double MMk::mean_response_time() const { return mean_wait() + 1.0 / mu; }

double MMk::mean_jobs() const { return lambda * mean_response_time(); }

}  // namespace esched
