// Closed-form M/M/1 results.
//
// Under Elastic-First the elastic class is exactly an M/M/1 with arrival
// rate lambda_E and service rate k*mu_E (paper §5.2, Observation 1), and
// both chains' busy-period transformations need the first three moments of
// an M/M/1 busy period.
#pragma once

#include "markov/birth_death.hpp"

namespace esched {

/// M/M/1 queue with Poisson(lambda) arrivals and Exp(mu) service.
struct MM1 {
  double lambda = 0.0;
  double mu = 0.0;

  MM1(double lambda_in, double mu_in);

  double utilization() const { return lambda / mu; }
  bool stable() const { return lambda < mu; }

  /// Mean response time E[T] = 1/(mu - lambda).
  double mean_response_time() const;

  /// Mean number in system E[N] = rho/(1-rho).
  double mean_jobs() const;

  /// Mean waiting (queueing) time E[W] = E[T] - 1/mu.
  double mean_wait() const;

  /// First three raw moments of the busy period (the time from an arrival
  /// into an empty system until the system next empties):
  ///   m1 = 1/(mu-lambda), m2 = 2 mu/(mu-lambda)^3,
  ///   m3 = 6 mu (mu+lambda)/(mu-lambda)^5.
  /// Derived from the busy-period LST functional equation; validated in
  /// tests against birth-death first-passage recursions and simulation.
  Moments3 busy_period_moments() const;
};

}  // namespace esched
