// Closed-form M/M/k results (Erlang-B / Erlang-C).
//
// Under Inelastic-First the inelastic class is exactly an M/M/k with
// arrival rate lambda_I and per-server rate mu_I (paper Appendix D).
#pragma once

namespace esched {

/// M/M/k queue with Poisson(lambda) arrivals, k servers of rate mu each.
struct MMk {
  double lambda = 0.0;
  double mu = 0.0;
  int k = 1;

  MMk(double lambda_in, double mu_in, int k_in);

  double offered_load() const { return lambda / mu; }
  double utilization() const { return lambda / (mu * static_cast<double>(k)); }
  bool stable() const { return utilization() < 1.0; }

  /// Erlang-B blocking probability of an M/M/k/k loss system with the same
  /// offered load (computed by the stable recurrence; also the building
  /// block for Erlang-C).
  double erlang_b() const;

  /// Erlang-C probability that an arrival must queue, P(wait > 0).
  double erlang_c() const;

  /// Mean waiting time E[W] = C / (k mu - lambda).
  double mean_wait() const;

  /// Mean response time E[T] = E[W] + 1/mu.
  double mean_response_time() const;

  /// Mean number in system E[N] = lambda E[T].
  double mean_jobs() const;
};

}  // namespace esched
