#include "queueing/mm1.hpp"

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace esched {

MM1::MM1(double lambda_in, double mu_in) : lambda(lambda_in), mu(mu_in) {
  ESCHED_CHECK(lambda >= 0.0, "arrival rate must be non-negative");
  ESCHED_CHECK(mu > 0.0, "service rate must be positive");
}

double MM1::mean_response_time() const {
  ESCHED_CHECK(stable(), "M/M/1 metrics require lambda < mu");
  return 1.0 / (mu - lambda);
}

double MM1::mean_jobs() const {
  ESCHED_CHECK(stable(), "M/M/1 metrics require lambda < mu");
  const double rho = utilization();
  return rho / (1.0 - rho);
}

double MM1::mean_wait() const { return mean_response_time() - 1.0 / mu; }

Moments3 MM1::busy_period_moments() const {
  ESCHED_CHECK(stable(), "busy period moments require lambda < mu");
  const double gap = mu - lambda;
  Moments3 m;
  m.m1 = 1.0 / gap;
  m.m2 = 2.0 * mu / (gap * gap * gap);
  m.m3 = 6.0 * mu * (mu + lambda) / (gap * gap * gap * gap * gap);
  return m;
}

}  // namespace esched
