#include "queueing/mg1.hpp"

#include "common/error.hpp"

namespace esched {

MG1::MG1(double lambda_in, double s1_in, double s2_in)
    : lambda(lambda_in), s1(s1_in), s2(s2_in) {
  ESCHED_CHECK(lambda >= 0.0, "arrival rate must be non-negative");
  ESCHED_CHECK(s1 > 0.0, "mean service time must be positive");
  ESCHED_CHECK(s2 >= s1 * s1, "E[S^2] must be at least E[S]^2");
}

MG1::MG1(double lambda_in, const PhaseType& service, double speed)
    : MG1(lambda_in, service.raw_moment(1) / speed,
          service.raw_moment(2) / (speed * speed)) {
  ESCHED_CHECK(speed > 0.0, "speed must be positive");
}

double MG1::mean_wait() const {
  ESCHED_CHECK(stable(), "M/G/1 metrics require rho < 1");
  return lambda * s2 / (2.0 * (1.0 - utilization()));
}

double MG1::mean_response_time() const { return mean_wait() + s1; }

double MG1::mean_jobs() const { return lambda * mean_response_time(); }

}  // namespace esched
