// M/G/1 closed forms (Pollaczek-Khinchine).
//
// Extension beyond the paper's exponential-size model: under EF the
// elastic class is a single-server (speed-k) queue regardless of the size
// distribution, so with phase-type elastic sizes its mean response time is
// exactly M/G/1. This module provides the PK formulas for arbitrary first
// two service moments and a PhaseType convenience overload.
#pragma once

#include "phase/phase_type.hpp"

namespace esched {

/// M/G/1 queue: Poisson(lambda) arrivals, i.i.d. service with raw moments
/// (s1, s2). Utilization rho = lambda * s1 must be < 1 for the metrics.
struct MG1 {
  double lambda = 0.0;
  double s1 = 0.0;  ///< E[S]
  double s2 = 0.0;  ///< E[S^2]

  MG1(double lambda_in, double s1_in, double s2_in);

  /// Service distribution given as a PhaseType, optionally scaled by a
  /// server speed: serving distribution S/speed.
  MG1(double lambda_in, const PhaseType& service, double speed = 1.0);

  double utilization() const { return lambda * s1; }
  bool stable() const { return utilization() < 1.0; }

  /// PK mean waiting time: E[W] = lambda s2 / (2 (1 - rho)).
  double mean_wait() const;

  /// E[T] = E[W] + E[S].
  double mean_response_time() const;

  /// E[N] via Little's law.
  double mean_jobs() const;
};

}  // namespace esched
