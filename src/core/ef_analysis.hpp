// Mean response time under Elastic-First (paper §5).
//
// Pipeline (§5.1-5.3):
//  1. Elastic jobs see an exact M/M/1 with rates (lambda_E, k mu_E)
//     (Observation 1), giving E[N_E] in closed form.
//  2. The inelastic chain is 2D-infinite (Fig 3a); while elastic jobs are
//     present inelastic service is suspended. The suspension intervals are
//     M/M/1 busy periods; replacing them by a Coxian-2 matched to the busy
//     period's first three moments collapses the chain to a 1D-infinite QBD
//     (Figs 3b, 3c) with phases {no-elastic, busy-1, busy-2} and level =
//     number of inelastic jobs.
//  3. Matrix-analytic solution of the QBD yields E[N_I]; Little's law then
//     gives E[T^EF] = (E[N_I] + E[N_E]) / (lambda_I + lambda_E).
// The busy-period transformation is an approximation; the paper (and our
// tests) put its error under about 1%.
#pragma once

#include "core/params.hpp"
#include "core/response_time.hpp"

namespace esched {

/// Analyzes EF at `params`. Requires rho < 1. `fit_order` selects how many
/// busy-period moments the transformation matches (ablation; the paper
/// matches three).
ResponseTimeAnalysis analyze_elastic_first(
    const SystemParams& params,
    BusyFitOrder fit_order = BusyFitOrder::kThreeMoment);

}  // namespace esched
