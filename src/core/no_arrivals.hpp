// Transient (no-arrival) analysis for the Theorem 6 counterexample.
//
// With no arrivals, the job-count chain under any policy is absorbing at
// (0, 0), and the mean response time across the initial jobs equals
//   E[ sum of response times ] / n0 = E[ integral of N(t) dt ] / n0,
// since every job in the system contributes 1 to N(t) until it finishes.
// This module computes that quantity exactly via the absorbing-chain
// solver, reproducing E[T^IF] = (35/12)/mu_I and E[T^EF] = (33/12)/mu_I
// for the paper's k=2, mu_E = 2 mu_I, start (2 inelastic, 1 elastic) case.
#pragma once

#include "core/params.hpp"
#include "core/policy.hpp"

namespace esched {

/// Exact mean response time starting from `start` (i0 inelastic, j0
/// elastic jobs) with NO further arrivals, under `policy`. The arrival
/// rates in `params` are ignored (treated as zero).
double mean_response_time_no_arrivals(const SystemParams& params,
                                      const AllocationPolicy& policy,
                                      const State& start);

}  // namespace esched
