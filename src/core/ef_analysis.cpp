#include "core/ef_analysis.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "qbd/qbd.hpp"
#include "queueing/mm1.hpp"

namespace esched {

ResponseTimeAnalysis analyze_elastic_first(const SystemParams& params,
                                           BusyFitOrder fit_order) {
  params.validate();
  ESCHED_CHECK(params.stable(), "EF analysis requires rho < 1");
  ESCHED_CHECK(params.elastic_cap == 0 || params.elastic_cap == params.k,
               "the busy-period analysis covers the fully elastic model; "
               "use solve_exact_ctmc or the simulator for bounded caps");
  const double kd = static_cast<double>(params.k);

  ResponseTimeAnalysis out;

  // Elastic class: exact M/M/1 with arrival lambda_E and service k mu_E.
  const MM1 elastic_queue(params.lambda_e, kd * params.mu_e);
  out.mean_jobs_e = params.lambda_e > 0.0 ? elastic_queue.mean_jobs() : 0.0;
  out.mean_response_time_e = elastic_queue.mean_response_time();

  // Degenerate case: no elastic traffic means the inelastic class is an
  // M/M/k-like birth-death chain with no suspensions; the QBD below still
  // handles it, but the busy-period fit needs lambda_E > 0 to be
  // meaningful. With lambda_E == 0 the idle phase simply never leaves.
  Coxian2Params fit{1.0, 1.0, 0.0};
  if (params.lambda_e > 0.0) {
    fit = fit_busy_period(elastic_queue.busy_period_moments(), fit_order);
  }
  out.busy_period_fit = fit;

  // QBD: level = #inelastic, phases {0: no elastic jobs, 1: busy-period
  // phase 1, 2: busy-period phase 2}. Inelastic jobs are served (at rate
  // min(level, k) mu_I) only in phase 0; the boundary levels 0..k-1 differ
  // from the repeating part only through that service rate.
  constexpr std::size_t kPhases = 3;
  QbdProcess process;
  process.num_phases = kPhases;
  process.first_repeating = static_cast<std::size_t>(params.k);

  Matrix up(kPhases, kPhases);
  for (std::size_t s = 0; s < kPhases; ++s) up(s, s) = params.lambda_i;

  Matrix local(kPhases, kPhases);
  if (params.lambda_e > 0.0) {
    local(0, 1) = params.lambda_e;          // elastic arrival opens a busy period
    local(1, 0) = fit.nu1 * (1.0 - fit.p);  // Coxian absorbs from phase 1
    local(1, 2) = fit.nu1 * fit.p;          // ... or continues to phase 2
    local(2, 0) = fit.nu2;                  // Coxian absorbs from phase 2
  }

  auto down_at = [&](std::size_t level) {
    Matrix down(kPhases, kPhases);
    const double busy_servers =
        std::min(static_cast<double>(level), kd);
    down(0, 0) = busy_servers * params.mu_i;  // inelastic completion
    return down;
  };

  for (std::size_t l = 0; l < process.first_repeating; ++l) {
    process.up.push_back(up);
    process.local.push_back(local);
    process.down.push_back(down_at(l));
  }
  process.rep_up = up;
  process.rep_local = local;
  process.rep_down = down_at(static_cast<std::size_t>(params.k));

  const QbdSolution sol = solve_qbd(process);
  out.qbd_iterations = sol.r_iterations;
  out.qbd_spectral_radius = sol.spectral_radius;

  out.mean_jobs_i = sol.mean_level();
  out.mean_response_time_i =
      params.lambda_i > 0.0 ? out.mean_jobs_i / params.lambda_i : 0.0;

  const double total_lambda = params.lambda_i + params.lambda_e;
  ESCHED_CHECK(total_lambda > 0.0, "analysis requires some arrivals");
  out.mean_response_time = (out.mean_jobs_i + out.mean_jobs_e) / total_lambda;
  return out;
}

}  // namespace esched
