#include "core/no_arrivals.hpp"

#include "common/error.hpp"
#include "markov/absorbing.hpp"
#include "markov/ctmc.hpp"

namespace esched {

double mean_response_time_no_arrivals(const SystemParams& params,
                                      const AllocationPolicy& policy,
                                      const State& start) {
  params.validate();
  ESCHED_CHECK(start.i >= 0 && start.j >= 0, "start state must be valid");
  const long n0 = start.i + start.j;
  ESCHED_CHECK(n0 > 0, "need at least one initial job");

  // With no arrivals only states (i, j) <= (i0, j0) are reachable.
  SystemParams quiet = params;
  quiet.lambda_i = 0.0;
  quiet.lambda_e = 0.0;

  const long ni = start.i + 1;
  const long nj = start.j + 1;
  const auto index = [nj](long i, long j) {
    return static_cast<std::size_t>(i * nj + j);
  };
  SparseCtmc chain(static_cast<std::size_t>(ni * nj));
  Vector reward(static_cast<std::size_t>(ni * nj), 0.0);
  for (long i = 0; i < ni; ++i) {
    for (long j = 0; j < nj; ++j) {
      const State state{i, j};
      policy.check_feasible(state, quiet);
      const Allocation a = policy.allocate(state, quiet);
      const std::size_t s = index(i, j);
      reward[s] = static_cast<double>(i + j);
      if (i > 0 && a.inelastic > 0.0) {
        chain.add_rate(s, index(i - 1, j), a.inelastic * quiet.mu_i);
      }
      const double usable = quiet.usable_elastic(a.elastic, j);
      if (j > 0 && usable > 0.0) {
        chain.add_rate(s, index(i, j - 1), usable * quiet.mu_e);
      }
      ESCHED_CHECK(i + j == 0 || a.inelastic + usable > 0.0,
                   "policy stalls with jobs present (no absorption)");
    }
  }
  chain.freeze();

  Vector initial(static_cast<std::size_t>(ni * nj), 0.0);
  initial[index(start.i, start.j)] = 1.0;
  const double total_response =
      expected_accumulated_reward(chain, initial, reward);
  return total_response / static_cast<double>(n0);
}

}  // namespace esched
