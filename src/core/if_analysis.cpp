#include "core/if_analysis.hpp"

#include "common/error.hpp"
#include "qbd/qbd.hpp"
#include "queueing/mm1.hpp"
#include "queueing/mmk.hpp"

namespace esched {

ResponseTimeAnalysis analyze_inelastic_first(const SystemParams& params,
                                             BusyFitOrder fit_order) {
  params.validate();
  ESCHED_CHECK(params.stable(), "IF analysis requires rho < 1");
  ESCHED_CHECK(params.elastic_cap == 0 || params.elastic_cap == params.k,
               "the busy-period analysis covers the fully elastic model; "
               "use solve_exact_ctmc or the simulator for bounded caps");
  const double kd = static_cast<double>(params.k);
  const auto k = static_cast<std::size_t>(params.k);

  ResponseTimeAnalysis out;

  // Inelastic class: exact M/M/k.
  const MMk inelastic_queue(params.lambda_i, params.mu_i, params.k);
  out.mean_jobs_i =
      params.lambda_i > 0.0 ? inelastic_queue.mean_jobs() : 0.0;
  out.mean_response_time_i = inelastic_queue.mean_response_time();

  // Busy period of the inelastic count above k-1: M/M/1(lambda_I, k mu_I).
  Coxian2Params fit{1.0, 1.0, 0.0};
  if (params.lambda_i > 0.0) {
    const MM1 excursion(params.lambda_i, kd * params.mu_i);
    fit = fit_busy_period(excursion.busy_period_moments(), fit_order);
  }
  out.busy_period_fit = fit;

  // QBD: level = #elastic; phases 0..k-1 give the inelastic count, phases
  // k and k+1 are the Coxian busy-period stages (inelastic count >= k).
  const std::size_t phases = k + 2;
  const std::size_t b1 = k;
  const std::size_t b2 = k + 1;

  Matrix up(phases, phases);
  for (std::size_t s = 0; s < phases; ++s) up(s, s) = params.lambda_e;

  Matrix local(phases, phases);
  for (std::size_t i = 0; i < k; ++i) {
    // Inelastic arrival: i -> i+1, or into the busy period from i = k-1.
    if (i + 1 < k) {
      local(i, i + 1) = params.lambda_i;
    } else {
      local(i, b1) = params.lambda_i;
    }
    // Inelastic completion: i -> i-1 at rate i mu_I.
    if (i >= 1) local(i, i - 1) = static_cast<double>(i) * params.mu_i;
  }
  if (params.lambda_i > 0.0) {
    local(b1, b2) = fit.nu1 * fit.p;          // busy period continues
    local(b1, k - 1) = fit.nu1 * (1.0 - fit.p);  // busy period ends
    local(b2, k - 1) = fit.nu2;
  }

  // Elastic service: (k - i) mu_E in phase i (only when a level below
  // exists); zero during busy periods.
  Matrix rep_down(phases, phases);
  for (std::size_t i = 0; i < k; ++i) {
    rep_down(i, i) = (kd - static_cast<double>(i)) * params.mu_e;
  }

  QbdProcess process;
  process.num_phases = phases;
  process.first_repeating = 1;
  process.up.push_back(up);
  process.local.push_back(local);
  process.down.emplace_back(phases, phases);  // no level below 0
  process.rep_up = up;
  process.rep_local = local;
  process.rep_down = rep_down;

  const QbdSolution sol = solve_qbd(process);
  out.qbd_iterations = sol.r_iterations;
  out.qbd_spectral_radius = sol.spectral_radius;

  out.mean_jobs_e = sol.mean_level();
  out.mean_response_time_e =
      params.lambda_e > 0.0 ? out.mean_jobs_e / params.lambda_e : 0.0;

  const double total_lambda = params.lambda_i + params.lambda_e;
  ESCHED_CHECK(total_lambda > 0.0, "analysis requires some arrivals");
  out.mean_response_time = (out.mean_jobs_i + out.mean_jobs_e) / total_lambda;
  return out;
}

}  // namespace esched
