// Mean response time under Inelastic-First (paper Appendix D).
//
// Mirror image of the EF analysis:
//  1. Inelastic jobs see an exact M/M/k with rates (lambda_I, mu_I)
//     (they have absolute priority and each uses one server).
//  2. The elastic chain is 2D-infinite (Fig 7a); elastic jobs receive
//     k - i servers when i < k inelastic jobs are present and none when
//     i >= k. The excursions of the inelastic count above k-1 are M/M/1
//     busy periods with rates (lambda_I, k mu_I); replacing them with a
//     three-moment Coxian-2 collapses the chain to a QBD (Figs 7b, 7c)
//     with phases {0..k-1} ∪ {busy-1, busy-2} and level = number of
//     elastic jobs.
//  3. The QBD yields E[N_E]; Little's law gives E[T^IF].
#pragma once

#include "core/params.hpp"
#include "core/response_time.hpp"

namespace esched {

/// Analyzes IF at `params`. Requires rho < 1. `fit_order` selects how many
/// busy-period moments the transformation matches (ablation; the paper
/// matches three).
ResponseTimeAnalysis analyze_inelastic_first(
    const SystemParams& params,
    BusyFitOrder fit_order = BusyFitOrder::kThreeMoment);

}  // namespace esched
