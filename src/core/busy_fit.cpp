#include "common/error.hpp"
#include "core/response_time.hpp"

namespace esched {

Coxian2Params fit_busy_period(const Moments3& moments, BusyFitOrder order) {
  switch (order) {
    case BusyFitOrder::kOneMoment:
      // Exponential with the busy period's mean.
      return {1.0 / moments.m1, 1.0 / moments.m1, 0.0};
    case BusyFitOrder::kTwoMoment: {
      // Match (m1, m2); pick the smallest Coxian-2-feasible third moment.
      Moments3 m = moments;
      m.m3 = 1.5 * m.m2 * m.m2 / m.m1 * (1.0 + 1e-9);
      return fit_coxian2(m);
    }
    case BusyFitOrder::kThreeMoment:
      return fit_coxian2(moments);
  }
  ESCHED_CHECK(false, "unknown BusyFitOrder");
}

}  // namespace esched
