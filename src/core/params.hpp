// System parameters of the paper's model (§2).
#pragma once

namespace esched {

/// Parameters of the two-class elastic/inelastic system: k servers of unit
/// speed, Poisson(lambda_E)/Exp(mu_E) elastic traffic and
/// Poisson(lambda_I)/Exp(mu_I) inelastic traffic.
struct SystemParams {
  int k = 1;             ///< number of servers
  double lambda_i = 0.0; ///< inelastic arrival rate
  double lambda_e = 0.0; ///< elastic arrival rate
  double mu_i = 1.0;     ///< inelastic size rate (mean size 1/mu_i)
  double mu_e = 1.0;     ///< elastic size rate (mean size 1/mu_e)

  /// Bounded elasticity (paper §6 future work): a single elastic job can
  /// use at most this many servers. 0 means "fully elastic" (cap = k, the
  /// paper's base model). The exact-chain solver and the simulators honor
  /// the cap; the §5 QBD analyses require the base model.
  int elastic_cap = 0;

  /// Effective per-elastic-job parallelism bound.
  double elastic_cap_or_k() const;

  /// Total elastic service capacity usable in a state with j elastic jobs
  /// given a class allocation of `servers`: min(servers, cap * j).
  double usable_elastic(double servers, long j) const;

  /// Inelastic share of load: lambda_I / (k mu_I).
  double rho_i() const;
  /// Elastic share of load: lambda_E / (k mu_E).
  double rho_e() const;
  /// Total system load, paper eq. (1); stability requires rho() < 1.
  double rho() const;
  bool stable() const { return rho() < 1.0; }

  /// Throws esched::Error unless rates are positive/non-negative and k >= 1.
  void validate() const;

  /// Builds parameters with the given total load `rho`, splitting arrivals
  /// equally (lambda_I == lambda_E) — the convention used throughout the
  /// paper's Figures 4-6. Given rho and lambda_I = lambda_E = lambda:
  ///   lambda (1/(k mu_I) + 1/(k mu_E)) = rho
  static SystemParams from_load(int k, double mu_i, double mu_e, double rho);
};

}  // namespace esched
