// The allocation-policy abstraction (paper §2).
//
// A stationary deterministic policy maps the state (i, j) = (#inelastic,
// #elastic) to a feasible server allocation (pi_I, pi_E):
//   pi_I <= i,  pi_E <= k * 1{j > 0},  pi_I + pi_E <= k,
// with fractional allocations allowed. Work-conserving policies
// additionally never idle servers while eligible jobs exist.
#pragma once

#include <memory>
#include <string>

#include "core/params.hpp"

namespace esched {

/// A system state: i inelastic and j elastic jobs present.
struct State {
  long i = 0;
  long j = 0;

  friend bool operator==(const State&, const State&) = default;
};

/// Servers assigned to each class (fractional allowed).
struct Allocation {
  double inelastic = 0.0;
  double elastic = 0.0;

  double total() const { return inelastic + elastic; }
};

/// Interface for stationary deterministic allocation policies.
class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;

  /// Feasible allocation in state `state` for a system with `params.k`
  /// servers. Implementations must satisfy the constraints above;
  /// check_feasible() verifies them.
  virtual Allocation allocate(const State& state,
                              const SystemParams& params) const = 0;

  virtual std::string name() const = 0;

  /// True when the policy never idles servers while eligible jobs exist,
  /// evaluated at `state` (the class-P / work-conserving property of §2).
  bool is_work_conserving_at(const State& state,
                             const SystemParams& params) const;

  /// Throws esched::Error if allocate(state) violates the §2 constraints.
  void check_feasible(const State& state, const SystemParams& params) const;
};

/// Verifies work conservation on the full grid {0..imax} x {0..jmax}.
bool is_work_conserving(const AllocationPolicy& policy,
                        const SystemParams& params, long imax = 32,
                        long jmax = 32);

using PolicyPtr = std::shared_ptr<const AllocationPolicy>;

}  // namespace esched
