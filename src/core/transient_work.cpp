#include "core/transient_work.hpp"

#include "common/error.hpp"
#include "markov/ctmc.hpp"
#include "markov/transient.hpp"

namespace esched {

std::vector<ExpectedWork> expected_work_trajectory(
    const SystemParams& params, const AllocationPolicy& policy,
    const State& start, const std::vector<double>& times,
    const TransientWorkOptions& options) {
  params.validate();
  ESCHED_CHECK(start.i >= 0 && start.j >= 0, "start state must be valid");
  ESCHED_CHECK(start.i <= options.imax && start.j <= options.jmax,
               "start state outside the truncation");

  const long ni = options.imax + 1;
  const long nj = options.jmax + 1;
  const auto index = [nj](long i, long j) {
    return static_cast<std::size_t>(i * nj + j);
  };
  SparseCtmc chain(static_cast<std::size_t>(ni * nj));
  Vector reward_i(static_cast<std::size_t>(ni * nj), 0.0);
  Vector reward_e(static_cast<std::size_t>(ni * nj), 0.0);
  for (long i = 0; i < ni; ++i) {
    for (long j = 0; j < nj; ++j) {
      const State state{i, j};
      const Allocation a = policy.allocate(state, params);
      const std::size_t s = index(i, j);
      // Expected remaining work per class (memoryless sizes): counts over
      // the size rates.
      reward_i[s] = static_cast<double>(i) / params.mu_i;
      reward_e[s] = static_cast<double>(j) / params.mu_e;
      if (i + 1 < ni) chain.add_rate(s, index(i + 1, j), params.lambda_i);
      if (j + 1 < nj) chain.add_rate(s, index(i, j + 1), params.lambda_e);
      if (i > 0 && a.inelastic > 0.0) {
        chain.add_rate(s, index(i - 1, j), a.inelastic * params.mu_i);
      }
      const double usable = params.usable_elastic(a.elastic, j);
      if (j > 0 && usable > 0.0) {
        chain.add_rate(s, index(i, j - 1), usable * params.mu_e);
      }
    }
  }
  chain.freeze();

  Vector initial(static_cast<std::size_t>(ni * nj), 0.0);
  initial[index(start.i, start.j)] = 1.0;

  std::vector<ExpectedWork> out;
  out.reserve(times.size());
  double prev = -1.0;
  for (double t : times) {
    ESCHED_CHECK(t >= 0.0 && t >= prev, "times must be non-decreasing");
    prev = t;
    const Vector dist =
        transient_distribution(chain, initial, t, options.tail_epsilon);
    ExpectedWork point;
    point.time = t;
    point.inelastic = dot(dist, reward_i);
    point.total = point.inelastic + dot(dist, reward_e);
    out.push_back(point);
  }
  return out;
}

}  // namespace esched
