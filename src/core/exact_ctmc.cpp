#include "core/exact_ctmc.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "markov/ctmc.hpp"
#include "markov/stationary.hpp"

namespace esched {

long suggested_truncation(double rho, double epsilon) {
  ESCHED_CHECK(rho >= 0.0 && rho < 1.0, "rho must be in [0,1)");
  ESCHED_CHECK(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
  if (rho == 0.0) return 16;
  const double levels = std::log(epsilon) / std::log(rho);
  return std::clamp(static_cast<long>(std::ceil(levels)), 16L, 400L);
}

namespace {

std::size_t state_index(long i, long j, long nj) {
  return static_cast<std::size_t>(i * nj + j);
}

}  // namespace

ExactCtmcBatch::ExactCtmcBatch(const SystemParams& params,
                               const ExactCtmcOptions& options)
    : params_(params),
      options_(options),
      skeleton_(static_cast<std::size_t>((options.imax + 1) *
                                         (options.jmax + 1))) {
  params_.validate();
  ESCHED_CHECK(params_.stable(), "exact solve requires rho < 1");
  ESCHED_CHECK(options_.imax >= 1 && options_.jmax >= 1,
               "truncation levels must be >= 1");
  ESCHED_CHECK(params_.lambda_i + params_.lambda_e > 0.0,
               "exact solve requires some arrivals");

  // The arrival transitions do not depend on the policy: add them once.
  // Arrivals are dropped at the truncation boundary (reflecting wall).
  // Per state the insertion order is (arrival_i, arrival_e) here and
  // (service_i, service_e) in solve(), the same accumulation order as a
  // monolithic build, so exit-rate sums — and therefore the stationary
  // solve — are bitwise identical to the unbatched path.
  const long ni = options_.imax + 1;
  const long nj = options_.jmax + 1;
  for (long i = 0; i < ni; ++i) {
    for (long j = 0; j < nj; ++j) {
      const std::size_t s = state_index(i, j, nj);
      if (i + 1 < ni) {
        skeleton_.add_rate(s, state_index(i + 1, j, nj), params_.lambda_i);
      }
      if (j + 1 < nj) {
        skeleton_.add_rate(s, state_index(i, j + 1, nj), params_.lambda_e);
      }
    }
  }
}

ExactCtmcResult ExactCtmcBatch::solve(const AllocationPolicy& policy) const {
  const long ni = options_.imax + 1;
  const long nj = options_.jmax + 1;
  const auto num_states = static_cast<std::size_t>(ni * nj);

  SparseCtmc chain = skeleton_;
  for (long i = 0; i < ni; ++i) {
    for (long j = 0; j < nj; ++j) {
      const State state{i, j};
      policy.check_feasible(state, params_);
      const Allocation a = policy.allocate(state, params_);
      const std::size_t s = state_index(i, j, nj);
      if (i > 0 && a.inelastic > 0.0) {
        chain.add_rate(s, state_index(i - 1, j, nj),
                       a.inelastic * params_.mu_i);
      }
      // Bounded elasticity: only cap * j servers of the class allocation
      // can actually be used by elastic jobs.
      const double usable = params_.usable_elastic(a.elastic, j);
      if (j > 0 && usable > 0.0) {
        chain.add_rate(s, state_index(i, j - 1, nj), usable * params_.mu_e);
      }
    }
  }
  chain.freeze();

  Vector pi;
  StationarySolveInfo solve_info;
  if (num_states <= options_.gth_state_limit) {
    pi = gth_stationary(chain);
    solve_info.converged = true;
    solve_info.residual = stationary_residual(chain, pi);
  } else {
    pi = sor_stationary(chain, options_.sor_tol, options_.sor_max_iters,
                        options_.sor_omega, &solve_info);
    ESCHED_CHECK(solve_info.converged,
                 "SOR did not converge; increase iterations or loosen tol");
  }

  ExactCtmcResult result;
  result.num_states = num_states;
  result.solve_info = solve_info;
  for (long i = 0; i < ni; ++i) {
    for (long j = 0; j < nj; ++j) {
      const double p = pi[state_index(i, j, nj)];
      result.mean_jobs_i += static_cast<double>(i) * p;
      result.mean_jobs_e += static_cast<double>(j) * p;
      if (i == options_.imax || j == options_.jmax) result.boundary_mass += p;
    }
  }
  const double total_lambda = params_.lambda_i + params_.lambda_e;
  result.mean_response_time =
      (result.mean_jobs_i + result.mean_jobs_e) / total_lambda;
  result.mean_response_time_i =
      params_.lambda_i > 0.0 ? result.mean_jobs_i / params_.lambda_i : 0.0;
  result.mean_response_time_e =
      params_.lambda_e > 0.0 ? result.mean_jobs_e / params_.lambda_e : 0.0;
  return result;
}

ExactCtmcResult solve_exact_ctmc(const SystemParams& params,
                                 const AllocationPolicy& policy,
                                 const ExactCtmcOptions& options) {
  return ExactCtmcBatch(params, options).solve(policy);
}

}  // namespace esched
