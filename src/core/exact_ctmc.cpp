#include "core/exact_ctmc.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "markov/block_solver.hpp"
#include "markov/ctmc.hpp"
#include "markov/stationary.hpp"
#include "obs/metrics.hpp"

namespace esched {

long suggested_truncation(double rho, double epsilon) {
  ESCHED_CHECK(rho >= 0.0 && rho < 1.0, "rho must be in [0,1)");
  ESCHED_CHECK(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
  if (rho == 0.0) return 16;
  const double levels = std::log(epsilon) / std::log(rho);
  return std::clamp(static_cast<long>(std::ceil(levels)), 16L, 400L);
}

namespace {

std::size_t state_index(long i, long j, long nj) {
  return static_cast<std::size_t>(i * nj + j);
}

/// Explicit method = gth densifies the generator; past this it is a
/// request for O(n^2) memory and O(n^3) time that block/SOR do better.
constexpr std::size_t kDenseGthLimit = 5000;

/// Auto only picks the block solver when its estimated elimination work
/// stays below this (~a second or two of arithmetic). Chains whose blocks
/// are effectively dense — e.g. multi-server phase-augmented chains where
/// nearly every state receives a down-transition — exceed it and go to
/// SOR, which scales with nnz * sweeps instead of block^3.
constexpr double kAutoBlockFlopLimit = 2e9;

/// Runs the stationary solve with the selected (or auto-chosen) method,
/// recording per-method solve-time / state-count metrics. `level_of` may
/// be empty when the chain has no usable level structure.
std::pair<Vector, StationarySolveInfo> solve_stationary(
    const CsrMatrix& rates, const Vector& exit_rates,
    const std::vector<std::uint32_t>& level_of,
    const ExactCtmcOptions& options) {
  const std::size_t n = rates.rows();
  const bool auto_selected = options.method == StationaryMethod::kAuto;
  StationaryMethod method = options.method;
  if (auto_selected) {
    if (n <= options.gth_state_limit) {
      method = StationaryMethod::kGth;
    } else if (!level_of.empty() &&
               block_solver_workspace_bytes(level_of) <=
                   options.block_memory_limit &&
               block_solver_flop_estimate(rates, level_of) <=
                   kAutoBlockFlopLimit) {
      method = StationaryMethod::kBlock;
    } else {
      method = StationaryMethod::kSor;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  Vector pi;
  StationarySolveInfo solve_info;
  const auto run_sor = [&] {
    pi = sor_stationary(rates, exit_rates, options.sor_tol,
                        options.sor_max_iters, options.sor_omega, &solve_info);
    ESCHED_CHECK(solve_info.converged,
                 "SOR did not converge; increase iterations or loosen tol");
  };
  switch (method) {
    case StationaryMethod::kGth:
      ESCHED_CHECK(n <= kDenseGthLimit,
                   "method 'gth' densifies the generator; " +
                       std::to_string(n) + " states exceeds the " +
                       std::to_string(kDenseGthLimit) +
                       "-state dense limit (use method 'block' or 'sor')");
      pi = gth_stationary(rates, exit_rates);
      solve_info.converged = true;
      solve_info.residual = stationary_residual(rates, exit_rates, pi);
      break;
    case StationaryMethod::kSor:
      run_sor();
      break;
    case StationaryMethod::kBlock:
      ESCHED_CHECK(!level_of.empty(),
                   "method 'block' needs a level-structured chain");
      ESCHED_CHECK(
          block_solver_workspace_bytes(level_of) <= options.block_memory_limit,
          "method 'block' would need " +
              std::to_string(block_solver_workspace_bytes(level_of)) +
              " workspace bytes, over the " +
              std::to_string(options.block_memory_limit) +
              "-byte limit (raise block_memory_limit or use 'sor')");
      if (auto_selected) {
        // Some policies (e.g. idling variants) leave a level with no
        // down-transitions, which the direct elimination rejects; those
        // chains are still solvable iteratively, so auto falls back.
        try {
          pi = block_tridiagonal_stationary(rates, exit_rates, level_of,
                                            &solve_info);
        } catch (const Error&) {
          global_metrics().counter("exact.method.block.fallbacks").add();
          method = StationaryMethod::kSor;
          run_sor();
        }
      } else {
        pi = block_tridiagonal_stationary(rates, exit_rates, level_of,
                                          &solve_info);
      }
      break;
    case StationaryMethod::kAuto:
      ESCHED_ASSERT(false, "auto method not resolved");
  }
  solve_info.method = stationary_method_name(method);

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  MetricsRegistry& metrics = global_metrics();
  const std::string prefix =
      std::string("exact.method.") + solve_info.method;
  metrics.counter(prefix + ".solves").add();
  metrics.histogram(prefix + ".seconds").record(seconds);
  metrics.histogram(prefix + ".states").record(static_cast<double>(n));
  return {std::move(pi), std::move(solve_info)};
}

}  // namespace

ExactCtmcBatch::ExactCtmcBatch(const SystemParams& params,
                               const ExactCtmcOptions& options)
    : params_(params), options_(options) {
  params_.validate();
  ESCHED_CHECK(params_.stable(), "exact solve requires rho < 1");
  ESCHED_CHECK(options_.imax >= 1 && options_.jmax >= 1,
               "truncation levels must be >= 1");
  ESCHED_CHECK(params_.lambda_i + params_.lambda_e > 0.0,
               "exact solve requires some arrivals");

  // The arrival transitions do not depend on the policy: freeze them into
  // a CSR skeleton once. Arrivals are dropped at the truncation boundary
  // (reflecting wall). Per state the exit-rate accumulation order is
  // (arrival_i, arrival_e) here and (service_i, service_e) in solve(), the
  // same order as a monolithic SparseCtmc build, so exit-rate sums — and
  // therefore the stationary solve — are bitwise identical to it.
  const long ni = options_.imax + 1;
  const long nj = options_.jmax + 1;
  const auto num_states = static_cast<std::size_t>(ni * nj);
  skeleton_.begin_rows(num_states, num_states);
  base_exit_.assign(num_states, 0.0);
  level_of_.resize(num_states);
  // Level along the longer truncation axis: more levels of smaller blocks
  // (the block solve costs levels * block^3).
  const bool level_by_i = ni >= nj;
  for (long i = 0; i < ni; ++i) {
    for (long j = 0; j < nj; ++j) {
      const std::size_t s = state_index(i, j, nj);
      level_of_[s] = static_cast<std::uint32_t>(level_by_i ? i : j);
      double exit = 0.0;
      if (i + 1 < ni && params_.lambda_i > 0.0) exit += params_.lambda_i;
      if (j + 1 < nj && params_.lambda_e > 0.0) exit += params_.lambda_e;
      // CSR rows need ascending destinations: j+1 (s+1) before i+1 (s+nj).
      if (j + 1 < nj && params_.lambda_e > 0.0) {
        skeleton_.push(state_index(i, j + 1, nj), params_.lambda_e);
      }
      if (i + 1 < ni && params_.lambda_i > 0.0) {
        skeleton_.push(state_index(i + 1, j, nj), params_.lambda_i);
      }
      skeleton_.next_row();
      base_exit_[s] = exit;
    }
  }
}

ExactCtmcResult ExactCtmcBatch::solve(const AllocationPolicy& policy) {
  const long ni = options_.imax + 1;
  const long nj = options_.jmax + 1;
  const auto num_states = static_cast<std::size_t>(ni * nj);

  // Overlay the policy's service rates onto the arrival skeleton, reusing
  // the scratch matrix's capacity across solves. Per state the (sorted)
  // destinations are s-nj (service_i), s-1 (service_e), then the skeleton
  // arrivals s+1, s+nj.
  scratch_rates_.begin_rows(num_states, num_states);
  scratch_exit_.assign(num_states, 0.0);
  for (long i = 0; i < ni; ++i) {
    for (long j = 0; j < nj; ++j) {
      const State state{i, j};
      policy.check_feasible(state, params_);
      const Allocation a = policy.allocate(state, params_);
      const std::size_t s = state_index(i, j, nj);
      double svc_i = 0.0;
      if (i > 0 && a.inelastic > 0.0) svc_i = a.inelastic * params_.mu_i;
      // Bounded elasticity: only cap * j servers of the class allocation
      // can actually be used by elastic jobs.
      const double usable = params_.usable_elastic(a.elastic, j);
      double svc_e = 0.0;
      if (j > 0 && usable > 0.0) svc_e = usable * params_.mu_e;
      if (svc_i > 0.0) scratch_rates_.push(state_index(i - 1, j, nj), svc_i);
      if (svc_e > 0.0) scratch_rates_.push(state_index(i, j - 1, nj), svc_e);
      const std::size_t* to = skeleton_.row_cols(s);
      const double* rate = skeleton_.row_values(s);
      const std::size_t nnz = skeleton_.row_nnz(s);
      for (std::size_t k = 0; k < nnz; ++k) scratch_rates_.push(to[k], rate[k]);
      scratch_rates_.next_row();
      double exit = base_exit_[s];
      if (svc_i > 0.0) exit += svc_i;
      if (svc_e > 0.0) exit += svc_e;
      scratch_exit_[s] = exit;
    }
  }

  auto [pi, solve_info] =
      solve_stationary(scratch_rates_, scratch_exit_, level_of_, options_);

  ExactCtmcResult result;
  result.num_states = num_states;
  result.solve_info = solve_info;
  for (long i = 0; i < ni; ++i) {
    for (long j = 0; j < nj; ++j) {
      const double p = pi[state_index(i, j, nj)];
      result.mean_jobs_i += static_cast<double>(i) * p;
      result.mean_jobs_e += static_cast<double>(j) * p;
      if (i == options_.imax || j == options_.jmax) result.boundary_mass += p;
    }
  }
  const double total_lambda = params_.lambda_i + params_.lambda_e;
  result.mean_response_time =
      (result.mean_jobs_i + result.mean_jobs_e) / total_lambda;
  result.mean_response_time_i =
      params_.lambda_i > 0.0 ? result.mean_jobs_i / params_.lambda_i : 0.0;
  result.mean_response_time_e =
      params_.lambda_e > 0.0 ? result.mean_jobs_e / params_.lambda_e : 0.0;
  return result;
}

ExactCtmcResult solve_exact_ctmc(const SystemParams& params,
                                 const AllocationPolicy& policy,
                                 const ExactCtmcOptions& options) {
  return ExactCtmcBatch(params, options).solve(policy);
}

// ---------------------------------------------------------------------------
// Phase-type inelastic sizes: the augmented chain.

namespace {

/// Augmented state: c[s] in-service inelastic jobs in phase s, w waiting
/// inelastic jobs, j elastic jobs. i == sum(c) + w.
struct PhState {
  std::vector<int> c;
  long w = 0;
  long j = 0;
};

/// Hard ceiling on the enumerated reachable state space — past this the
/// stationary solve is hopeless anyway and the user should reach for the
/// simulator or a looser truncation.
constexpr std::size_t kMaxPhStates = 5000000;

/// Most phases the augmented chain accepts; C(k+m, m) seat configurations
/// per (w, j) cell grow combinatorially in m.
constexpr std::size_t kMaxPhPhases = 16;

class PhChainBuilder {
 public:
  PhChainBuilder(const SystemParams& params, const AllocationPolicy& policy,
                 const PhaseType& dist, const ExactCtmcOptions& options)
      : params_(params), policy_(policy), dist_(dist), options_(options),
        m_(dist.num_phases()),
        seat_cap_(std::min<long>(params.k, options.imax)),
        seat_cells_(static_cast<std::size_t>((options.imax + 1) *
                                             (options.jmax + 1))) {
    // Mixed-radix key capacity check: m digits of base (seat_cap + 1) plus
    // the w and j digits must fit a 64-bit key.
    long double capacity = 1.0L;
    for (std::size_t s = 0; s < m_; ++s) capacity *= seat_cap_ + 1;
    capacity *= options_.imax + 1;
    capacity *= options_.jmax + 1;
    ESCHED_CHECK(capacity < 9.2e18L,
                 "phase-type exact solve: state key space overflows; reduce "
                 "truncation or phase count, or use the sim backend");
  }

  std::size_t intern(const PhState& state) {
    const std::uint64_t key = encode(state);
    const auto [it, inserted] = index_.emplace(key, states_.size());
    if (inserted) {
      ESCHED_CHECK(states_.size() < kMaxPhStates,
                   "phase-type exact solve exceeds " +
                       std::to_string(kMaxPhStates) +
                       " states; reduce truncation or phase count, or use "
                       "the sim backend");
      states_.push_back(state);
    }
    return it->second;
  }

  /// The policy's inelastic seat count at (i, j). Throws on fractional
  /// allocations — the phase-count state only models whole servers.
  /// Memoized per (i, j): the augmentation visits each cell once per
  /// phase configuration, so the virtual allocate() would otherwise be
  /// recomputed C(k+m, m) times per cell in the hot enumeration loop.
  long seats_at(long i, long j, double* elastic_out = nullptr) {
    SeatCell& cell =
        seat_cells_[static_cast<std::size_t>(i * (options_.jmax + 1) + j)];
    if (cell.seats < 0) {
      const State state{i, j};
      policy_.check_feasible(state, params_);
      const Allocation a = policy_.allocate(state, params_);
      const long seats = std::lround(a.inelastic);
      ESCHED_CHECK(
          std::abs(a.inelastic - static_cast<double>(seats)) <= 1e-9,
          "policy '" + policy_.name() +
              "' allocates fractional servers to inelastic jobs; phase-type "
              "inelastic sizes need integral allocations (use the sim "
              "backend)");
      cell.seats = seats;
      cell.elastic = a.elastic;
    }
    if (elastic_out != nullptr) *elastic_out = cell.elastic;
    return cell.seats;
  }

  /// Emits the transitions of the event "the system just moved to
  /// (c, w, j)" from state `from` at total rate `rate`: waiting jobs are
  /// admitted into free seats (phases drawn iid from alpha), splitting the
  /// rate across the multinomial phase assignments.
  void emit_with_admissions(std::size_t from, PhState to, double rate) {
    const long started =
        std::accumulate(to.c.begin(), to.c.end(), 0L,
                        [](long acc, int v) { return acc + v; });
    const long i = started + to.w;
    const long seats = seats_at(i, to.j);
    const long admit = std::min(to.w, std::max(0L, seats - started));
    to.w -= admit;
    emit_phase_assignments(from, to, admit, 0, rate);
  }

  /// Builds the reachable chain from the empty system.
  void build() {
    (void)intern(PhState{std::vector<int>(m_, 0), 0, 0});
    const auto& t = dist_.sub_generator();
    const auto& exit = dist_.exit_rates();
    for (std::size_t n = 0; n < states_.size(); ++n) {
      // states_ grows during iteration; copy the current state.
      const PhState st = states_[n];
      const long started =
          std::accumulate(st.c.begin(), st.c.end(), 0L,
                          [](long acc, int v) { return acc + v; });
      const long i = started + st.w;
      double elastic_alloc = 0.0;
      const long seats = seats_at(i, st.j, &elastic_alloc);
      const bool active = seats >= started;
      if (!active) {
        ESCHED_CHECK(
            seats == 0,
            "policy '" + policy_.name() + "' preempts " +
                std::to_string(started - seats) + " of " +
                std::to_string(started) +
                " in-service inelastic jobs while keeping others running; "
                "phase-type inelastic sizes support only all-or-nothing "
                "preemption (use the sim backend)");
      }

      // Inelastic arrival (dropped at the boundary).
      if (i < options_.imax) {
        PhState to = st;
        to.w += 1;
        emit_with_admissions(n, std::move(to), params_.lambda_i);
      }
      // Elastic arrival.
      if (st.j < options_.jmax) {
        PhState to = st;
        to.j += 1;
        emit_with_admissions(n, std::move(to), params_.lambda_e);
      }
      // Phase progression and inelastic completions (served jobs only).
      if (active) {
        for (std::size_t s = 0; s < m_; ++s) {
          if (st.c[s] == 0) continue;
          const double count = static_cast<double>(st.c[s]);
          for (std::size_t s2 = 0; s2 < m_; ++s2) {
            if (s2 == s || t(s, s2) <= 0.0) continue;
            PhState to = st;
            to.c[s] -= 1;
            to.c[s2] += 1;
            add(n, intern(to), count * t(s, s2));
          }
          if (exit[s] > 0.0) {
            PhState to = st;
            to.c[s] -= 1;
            emit_with_admissions(n, std::move(to), count * exit[s]);
          }
        }
      }
      // Elastic completion (elastic sizes stay exponential).
      const double usable = params_.usable_elastic(elastic_alloc, st.j);
      if (st.j > 0 && usable > 0.0) {
        PhState to = st;
        to.j -= 1;
        emit_with_admissions(n, std::move(to), usable * params_.mu_e);
      }
    }
  }

  ExactCtmcResult solve() {
    build();
    SparseCtmc chain(states_.size());
    for (const CtmcTransition& tr : transitions_) {
      chain.add_rate(tr.from, tr.to, tr.rate);
    }
    chain.freeze();

    // The augmented chain is level-structured in i = sum(c) + w: phase
    // progression and admissions preserve i, arrivals/completions move it
    // by one — so the block solver applies to it directly.
    std::vector<std::uint32_t> level_of(states_.size());
    for (std::size_t n = 0; n < states_.size(); ++n) {
      const PhState& st = states_[n];
      const long started =
          std::accumulate(st.c.begin(), st.c.end(), 0L,
                          [](long acc, int v) { return acc + v; });
      level_of[n] = static_cast<std::uint32_t>(started + st.w);
    }

    auto [pi, solve_info] = solve_stationary(
        chain.rate_matrix(), chain.exit_rates(), level_of, options_);

    ExactCtmcResult result;
    result.num_states = states_.size();
    result.solve_info = solve_info;
    for (std::size_t n = 0; n < states_.size(); ++n) {
      const PhState& st = states_[n];
      const long started =
          std::accumulate(st.c.begin(), st.c.end(), 0L,
                          [](long acc, int v) { return acc + v; });
      const long i = started + st.w;
      const double p = pi[n];
      result.mean_jobs_i += static_cast<double>(i) * p;
      result.mean_jobs_e += static_cast<double>(st.j) * p;
      if (i == options_.imax || st.j == options_.jmax) {
        result.boundary_mass += p;
      }
    }
    const double total_lambda = params_.lambda_i + params_.lambda_e;
    result.mean_response_time =
        (result.mean_jobs_i + result.mean_jobs_e) / total_lambda;
    result.mean_response_time_i =
        params_.lambda_i > 0.0 ? result.mean_jobs_i / params_.lambda_i : 0.0;
    result.mean_response_time_e =
        params_.lambda_e > 0.0 ? result.mean_jobs_e / params_.lambda_e : 0.0;
    return result;
  }

 private:
  std::uint64_t encode(const PhState& state) const {
    std::uint64_t key = 0;
    for (std::size_t s = 0; s < m_; ++s) {
      key = key * static_cast<std::uint64_t>(seat_cap_ + 1) +
            static_cast<std::uint64_t>(state.c[s]);
    }
    key = key * static_cast<std::uint64_t>(options_.imax + 1) +
          static_cast<std::uint64_t>(state.w);
    key = key * static_cast<std::uint64_t>(options_.jmax + 1) +
          static_cast<std::uint64_t>(state.j);
    return key;
  }

  void add(std::size_t from, std::size_t to, double rate) {
    transitions_.push_back({from, to, rate});
  }

  /// Distributes `admit` fresh jobs over the initial-phase distribution:
  /// phase s takes d of the remaining jobs with binomial weight
  /// C(n, d) alpha_s^d and the rest recurse into the later phases, which
  /// telescopes to the multinomial law (total emitted probability 1, since
  /// the alphas sum to 1). Zero-probability branches are pruned, so an
  /// Erlang (alpha = e_1) admission stays a single destination.
  void emit_phase_assignments(std::size_t from, const PhState& to, long admit,
                              std::size_t s, double weight) {
    if (admit == 0) {
      add(from, intern(to), weight);
      return;
    }
    ESCHED_ASSERT(s < m_, "phase assignment ran out of phases");
    const double alpha_s = dist_.alpha()[s];
    if (s + 1 == m_) {
      if (alpha_s <= 0.0) return;  // dead branch: jobs cannot start here
      PhState final = to;
      final.c[s] += static_cast<int>(admit);
      double w = weight;
      for (long d = 0; d < admit; ++d) w *= alpha_s;
      add(from, intern(final), w);
      return;
    }
    double choose = 1.0;
    double p_pow = 1.0;
    for (long d = 0; d <= admit; ++d) {
      if (p_pow > 0.0) {
        PhState next = to;
        next.c[s] += static_cast<int>(d);
        emit_phase_assignments(from, next, admit - d, s + 1,
                               weight * choose * p_pow);
      }
      choose = choose * static_cast<double>(admit - d) /
               static_cast<double>(d + 1);
      p_pow *= alpha_s;
    }
  }

  /// Memoized per-(i, j) policy decision (seats < 0 = not yet computed).
  struct SeatCell {
    long seats = -1;
    double elastic = 0.0;
  };

  const SystemParams& params_;
  const AllocationPolicy& policy_;
  const PhaseType& dist_;
  const ExactCtmcOptions& options_;
  const std::size_t m_;
  const long seat_cap_;
  std::vector<SeatCell> seat_cells_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::vector<PhState> states_;
  std::vector<CtmcTransition> transitions_;
};

}  // namespace

ExactCtmcResult solve_exact_ctmc_ph(const SystemParams& params,
                                    const AllocationPolicy& policy,
                                    const PhaseType& size_dist_i,
                                    const ExactCtmcOptions& options) {
  params.validate();
  ESCHED_CHECK(params.stable(), "exact solve requires rho < 1");
  ESCHED_CHECK(options.imax >= 1 && options.jmax >= 1,
               "truncation levels must be >= 1");
  ESCHED_CHECK(params.lambda_i + params.lambda_e > 0.0,
               "exact solve requires some arrivals");
  ESCHED_CHECK(size_dist_i.num_phases() <= kMaxPhPhases,
               "phase-type inelastic size has " +
                   std::to_string(size_dist_i.num_phases()) +
                   " phases; the exact backend supports at most " +
                   std::to_string(kMaxPhPhases) + " (use the sim backend)");
  PhChainBuilder builder(params, policy, size_dist_i, options);
  return builder.solve();
}

}  // namespace esched
