#include "core/exact_ctmc.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "markov/ctmc.hpp"
#include "markov/stationary.hpp"

namespace esched {

long suggested_truncation(double rho, double epsilon) {
  ESCHED_CHECK(rho >= 0.0 && rho < 1.0, "rho must be in [0,1)");
  ESCHED_CHECK(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
  if (rho == 0.0) return 16;
  const double levels = std::log(epsilon) / std::log(rho);
  return std::clamp(static_cast<long>(std::ceil(levels)), 16L, 400L);
}

ExactCtmcResult solve_exact_ctmc(const SystemParams& params,
                                 const AllocationPolicy& policy,
                                 const ExactCtmcOptions& options) {
  params.validate();
  ESCHED_CHECK(params.stable(), "exact solve requires rho < 1");
  ESCHED_CHECK(options.imax >= 1 && options.jmax >= 1,
               "truncation levels must be >= 1");

  const long ni = options.imax + 1;
  const long nj = options.jmax + 1;
  const auto num_states = static_cast<std::size_t>(ni * nj);
  const auto index = [nj](long i, long j) {
    return static_cast<std::size_t>(i * nj + j);
  };

  SparseCtmc chain(num_states);
  for (long i = 0; i < ni; ++i) {
    for (long j = 0; j < nj; ++j) {
      const State state{i, j};
      policy.check_feasible(state, params);
      const Allocation a = policy.allocate(state, params);
      const std::size_t s = index(i, j);
      // Arrivals are dropped at the truncation boundary (reflecting wall).
      if (i + 1 < ni) chain.add_rate(s, index(i + 1, j), params.lambda_i);
      if (j + 1 < nj) chain.add_rate(s, index(i, j + 1), params.lambda_e);
      if (i > 0 && a.inelastic > 0.0) {
        chain.add_rate(s, index(i - 1, j), a.inelastic * params.mu_i);
      }
      // Bounded elasticity: only cap * j servers of the class allocation
      // can actually be used by elastic jobs.
      const double usable = params.usable_elastic(a.elastic, j);
      if (j > 0 && usable > 0.0) {
        chain.add_rate(s, index(i, j - 1), usable * params.mu_e);
      }
    }
  }
  chain.freeze();

  Vector pi;
  StationarySolveInfo solve_info;
  if (num_states <= options.gth_state_limit) {
    pi = gth_stationary(chain);
    solve_info.converged = true;
    solve_info.residual = stationary_residual(chain, pi);
  } else {
    pi = sor_stationary(chain, options.sor_tol, options.sor_max_iters,
                        options.sor_omega, &solve_info);
    ESCHED_CHECK(solve_info.converged,
                 "SOR did not converge; increase iterations or loosen tol");
  }

  ExactCtmcResult result;
  result.num_states = num_states;
  result.solve_info = solve_info;
  for (long i = 0; i < ni; ++i) {
    for (long j = 0; j < nj; ++j) {
      const double p = pi[index(i, j)];
      result.mean_jobs_i += static_cast<double>(i) * p;
      result.mean_jobs_e += static_cast<double>(j) * p;
      if (i == options.imax || j == options.jmax) result.boundary_mass += p;
    }
  }
  const double total_lambda = params.lambda_i + params.lambda_e;
  ESCHED_CHECK(total_lambda > 0.0, "exact solve requires some arrivals");
  result.mean_response_time =
      (result.mean_jobs_i + result.mean_jobs_e) / total_lambda;
  result.mean_response_time_i =
      params.lambda_i > 0.0 ? result.mean_jobs_i / params.lambda_i : 0.0;
  result.mean_response_time_e =
      params.lambda_e > 0.0 ? result.mean_jobs_e / params.lambda_e : 0.0;
  return result;
}

}  // namespace esched
