// Shared result type for the EF/IF response-time analyses (paper §5).
#pragma once

#include "phase/fit.hpp"

namespace esched {

/// How many busy-period moments the transformation matches (ablation knob;
/// the paper's method is kThreeMoment). One moment degenerates the Coxian
/// to an exponential; two moments match (m1, m2) and take the smallest
/// feasible third moment.
enum class BusyFitOrder {
  kOneMoment = 1,
  kTwoMoment = 2,
  kThreeMoment = 3,
};

/// Fits the Coxian-2 for a busy period under the requested ablation order.
Coxian2Params fit_busy_period(const Moments3& moments, BusyFitOrder order);

/// Output of the busy-period-transformation + matrix-analytic analysis of
/// one policy (EF or IF).
struct ResponseTimeAnalysis {
  double mean_response_time = 0.0;    ///< overall E[T]
  double mean_response_time_i = 0.0;  ///< E[T] of inelastic jobs
  double mean_response_time_e = 0.0;  ///< E[T] of elastic jobs
  double mean_jobs_i = 0.0;           ///< E[N_I]
  double mean_jobs_e = 0.0;           ///< E[N_E]

  /// The Coxian-2 fitted to the relevant M/M/1 busy period (§5.2 step 3).
  Coxian2Params busy_period_fit;

  // Solver diagnostics.
  int qbd_iterations = 0;
  double qbd_spectral_radius = 0.0;
};

}  // namespace esched
