// Expected-work trajectories E[W(t)], E[W_I(t)] under a policy.
//
// The expectation companion to the sample-path Theorem 3: starting from a
// fixed state, IF's expected total and inelastic work are at most any
// class-P policy's at every time t. Computed exactly (up to truncation)
// via uniformization on the policy's 2-D chain, using the memoryless
// identity E[W(t)] = E[N_I(t)]/mu_I + E[N_E(t)]/mu_E (Lemma 4 applied
// pointwise in time).
#pragma once

#include <vector>

#include "core/params.hpp"
#include "core/policy.hpp"

namespace esched {

/// One point of an expected-work trajectory.
struct ExpectedWork {
  double time = 0.0;
  double total = 0.0;      ///< E[W(t)]
  double inelastic = 0.0;  ///< E[W_I(t)]
};

/// Options for the transient solve.
struct TransientWorkOptions {
  long imax = 80;   ///< truncation of the inelastic dimension
  long jmax = 80;   ///< truncation of the elastic dimension
  double tail_epsilon = 1e-10;
};

/// Computes E[W(t)] and E[W_I(t)] at each requested time (non-decreasing),
/// starting from `start` with the full arrival processes running.
std::vector<ExpectedWork> expected_work_trajectory(
    const SystemParams& params, const AllocationPolicy& policy,
    const State& start, const std::vector<double>& times,
    const TransientWorkOptions& options = {});

}  // namespace esched
