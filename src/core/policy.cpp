#include "core/policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace esched {

namespace {
constexpr double kFeasibilitySlack = 1e-9;
}

bool AllocationPolicy::is_work_conserving_at(const State& state,
                                             const SystemParams& params) const {
  const Allocation a = allocate(state, params);
  const double kd = static_cast<double>(params.k);
  // Work conservation (§2, generalized for bounded elasticity): the total
  // allocation must cover the usable demand min(k, i + cap*j) — one server
  // per inelastic job plus up to cap servers per elastic job. In the base
  // model (cap = k) this reduces to the paper's definition: all k servers
  // busy whenever an elastic job is present, and min(i, k) otherwise.
  const double demand =
      std::min(kd, static_cast<double>(state.i) +
                       params.elastic_cap_or_k() *
                           static_cast<double>(state.j));
  return a.total() >= demand - kFeasibilitySlack;
}

void AllocationPolicy::check_feasible(const State& state,
                                      const SystemParams& params) const {
  const Allocation a = allocate(state, params);
  const double kd = static_cast<double>(params.k);
  ESCHED_CHECK(state.i >= 0 && state.j >= 0, "state counts must be >= 0");
  ESCHED_CHECK(a.inelastic >= -kFeasibilitySlack && a.elastic >= -kFeasibilitySlack,
               "allocations must be non-negative (policy " + name() + ")");
  ESCHED_CHECK(a.inelastic <= static_cast<double>(state.i) + kFeasibilitySlack,
               "inelastic allocation exceeds job count (policy " + name() + ")");
  if (state.j == 0) {
    ESCHED_CHECK(a.elastic <= kFeasibilitySlack,
                 "elastic allocation without elastic jobs (policy " + name() +
                     ")");
  }
  ESCHED_CHECK(a.total() <= kd + kFeasibilitySlack,
               "total allocation exceeds k (policy " + name() + ")");
}

bool is_work_conserving(const AllocationPolicy& policy,
                        const SystemParams& params, long imax, long jmax) {
  for (long i = 0; i <= imax; ++i) {
    for (long j = 0; j <= jmax; ++j) {
      if (!policy.is_work_conserving_at({i, j}, params)) return false;
    }
  }
  return true;
}

}  // namespace esched
