#include "core/params.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esched {

double SystemParams::elastic_cap_or_k() const {
  return elastic_cap == 0 ? static_cast<double>(k)
                          : static_cast<double>(elastic_cap);
}

double SystemParams::usable_elastic(double servers, long j) const {
  return std::min(servers, elastic_cap_or_k() * static_cast<double>(j));
}

double SystemParams::rho_i() const {
  return lambda_i / (static_cast<double>(k) * mu_i);
}

double SystemParams::rho_e() const {
  return lambda_e / (static_cast<double>(k) * mu_e);
}

double SystemParams::rho() const { return rho_i() + rho_e(); }

void SystemParams::validate() const {
  ESCHED_CHECK(k >= 1, "need at least one server");
  ESCHED_CHECK(lambda_i >= 0.0 && lambda_e >= 0.0,
               "arrival rates must be non-negative");
  ESCHED_CHECK(mu_i > 0.0 && mu_e > 0.0, "size rates must be positive");
  ESCHED_CHECK(elastic_cap >= 0 && elastic_cap <= k,
               "elastic_cap must be in [0, k] (0 = fully elastic)");
}

SystemParams SystemParams::from_load(int k, double mu_i, double mu_e,
                                     double rho) {
  ESCHED_CHECK(k >= 1, "need at least one server");
  ESCHED_CHECK(mu_i > 0.0 && mu_e > 0.0, "size rates must be positive");
  ESCHED_CHECK(rho >= 0.0, "load must be non-negative");
  SystemParams p;
  p.k = k;
  p.mu_i = mu_i;
  p.mu_e = mu_e;
  const double lambda =
      rho * static_cast<double>(k) * mu_i * mu_e / (mu_i + mu_e);
  p.lambda_i = lambda;
  p.lambda_e = lambda;
  p.validate();
  return p;
}

}  // namespace esched
