// Concrete allocation policies.
//
// InelasticFirst and ElasticFirst are the two policies the paper analyzes.
// The remaining policies populate the class P of work-conserving,
// inelastic-FCFS policies (§4.2) so the optimality experiments can compare
// IF against genuinely different members of P, plus a deliberately idling
// wrapper for the Appendix B result.
#pragma once

#include <memory>

#include "core/policy.hpp"

namespace esched {

/// IF (paper §2): every inelastic job gets one server (up to k, FCFS);
/// leftover servers go to elastic jobs.
class InelasticFirst final : public AllocationPolicy {
 public:
  Allocation allocate(const State& state,
                      const SystemParams& params) const override;
  std::string name() const override { return "IF"; }
};

/// EF (paper §2): elastic jobs get all k servers whenever present; with no
/// elastic jobs, inelastic jobs get one server each (up to k, FCFS).
class ElasticFirst final : public AllocationPolicy {
 public:
  Allocation allocate(const State& state,
                      const SystemParams& params) const override;
  std::string name() const override { return "EF"; }
};

/// Work-conserving proportional split: inelastic jobs claim a share of the
/// servers proportional to their head count, i.e. pi_I = min(i, k*i/(i+j)),
/// with elastic jobs absorbing the remainder. A "fair" member of P.
class FairShare final : public AllocationPolicy {
 public:
  Allocation allocate(const State& state,
                      const SystemParams& params) const override;
  std::string name() const override { return "FairShare"; }
};

/// Serves at most `cap` inelastic jobs while elastic jobs are present
/// (elastic jobs take the rest); with no elastic jobs, behaves like IF.
/// cap == k reduces to IF; cap == 0 reduces to EF. Sweeping cap explores a
/// one-parameter slice of P between the two extremes.
class InelasticCap final : public AllocationPolicy {
 public:
  explicit InelasticCap(int cap);
  Allocation allocate(const State& state,
                      const SystemParams& params) const override;
  std::string name() const override;

 private:
  int cap_;
};

/// Wraps another policy and idles `idle_servers` servers whenever the inner
/// policy would have used them (subject to feasibility). Deliberately NOT
/// work conserving — exists to exercise the Appendix B theorem that idling
/// cannot help.
class IdlingPolicy final : public AllocationPolicy {
 public:
  IdlingPolicy(PolicyPtr inner, double idle_servers);
  Allocation allocate(const State& state,
                      const SystemParams& params) const override;
  std::string name() const override;

 private:
  PolicyPtr inner_;
  double idle_servers_;
};

/// Convenience factories.
PolicyPtr make_inelastic_first();
PolicyPtr make_elastic_first();
PolicyPtr make_fair_share();
PolicyPtr make_inelastic_cap(int cap);
PolicyPtr make_idling(PolicyPtr inner, double idle_servers);

}  // namespace esched
