#include "core/policies.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace esched {

namespace {

double as_double(long v) { return static_cast<double>(v); }

/// Hands any capacity the base rule left on the table to jobs that can
/// still use it — inelastic first (up to one server per job), then elastic
/// (up to the per-job elasticity cap). In the paper's fully elastic model
/// this is a no-op for all shipped policies; it matters once
/// SystemParams::elastic_cap binds (the §6 extension), where blindly
/// granting servers to a capped elastic class would silently idle them.
Allocation redistribute_leftovers(Allocation a, const State& state,
                                  const SystemParams& params) {
  const double kd = static_cast<double>(params.k);
  double leftover = kd - a.total();
  if (leftover <= 0.0) return a;
  const double take_i =
      std::min(leftover, as_double(state.i) - a.inelastic);
  if (take_i > 0.0) {
    a.inelastic += take_i;
    leftover -= take_i;
  }
  const double usable_e =
      params.elastic_cap_or_k() * as_double(state.j) - a.elastic;
  const double take_e = std::min(leftover, usable_e);
  if (take_e > 0.0) a.elastic += take_e;
  return a;
}

}  // namespace

Allocation InelasticFirst::allocate(const State& state,
                                    const SystemParams& params) const {
  const double kd = static_cast<double>(params.k);
  Allocation a;
  a.inelastic = std::min(as_double(state.i), kd);
  a.elastic =
      state.j > 0
          ? std::min(kd - a.inelastic,
                     params.elastic_cap_or_k() * as_double(state.j))
          : 0.0;
  return a;
}

Allocation ElasticFirst::allocate(const State& state,
                                  const SystemParams& params) const {
  const double kd = static_cast<double>(params.k);
  Allocation a;
  if (state.j > 0) {
    // Fully elastic jobs absorb the whole cluster; capped ones take what
    // they can use, and inelastic jobs get the rest.
    a.elastic = std::min(kd, params.elastic_cap_or_k() * as_double(state.j));
    a.inelastic = std::min(as_double(state.i), kd - a.elastic);
  } else {
    a.inelastic = std::min(as_double(state.i), kd);
  }
  return a;
}

Allocation FairShare::allocate(const State& state,
                               const SystemParams& params) const {
  const double kd = static_cast<double>(params.k);
  Allocation a;
  if (state.i == 0 && state.j == 0) return a;
  if (state.j == 0) {
    a.inelastic = std::min(as_double(state.i), kd);
    return a;
  }
  const double share =
      kd * as_double(state.i) / as_double(state.i + state.j);
  a.inelastic = std::min(as_double(state.i), share);
  a.elastic = std::min(kd - a.inelastic,
                       params.elastic_cap_or_k() * as_double(state.j));
  return redistribute_leftovers(a, state, params);
}

InelasticCap::InelasticCap(int cap) : cap_(cap) {
  ESCHED_CHECK(cap >= 0, "cap must be non-negative");
}

Allocation InelasticCap::allocate(const State& state,
                                  const SystemParams& params) const {
  const double kd = static_cast<double>(params.k);
  Allocation a;
  if (state.j > 0) {
    a.inelastic =
        std::min({as_double(state.i), static_cast<double>(cap_), kd});
    a.elastic = std::min(kd - a.inelastic,
                         params.elastic_cap_or_k() * as_double(state.j));
    // With a binding elasticity cap, work conservation overrides the
    // policy's contention cap: leftover servers go back to inelastic jobs.
    a = redistribute_leftovers(a, state, params);
  } else {
    a.inelastic = std::min(as_double(state.i), kd);
  }
  return a;
}

std::string InelasticCap::name() const {
  return "InelasticCap(" + std::to_string(cap_) + ")";
}

IdlingPolicy::IdlingPolicy(PolicyPtr inner, double idle_servers)
    : inner_(std::move(inner)), idle_servers_(idle_servers) {
  ESCHED_CHECK(inner_ != nullptr, "inner policy must be non-null");
  ESCHED_CHECK(idle_servers_ >= 0.0, "idle_servers must be non-negative");
}

Allocation IdlingPolicy::allocate(const State& state,
                                  const SystemParams& params) const {
  Allocation a = inner_->allocate(state, params);
  // Withhold capacity, elastic first (it is the flexible class), then
  // inelastic, never going negative.
  double to_idle = idle_servers_;
  const double from_elastic = std::min(a.elastic, to_idle);
  a.elastic -= from_elastic;
  to_idle -= from_elastic;
  a.inelastic -= std::min(a.inelastic, to_idle);
  return a;
}

std::string IdlingPolicy::name() const {
  return "Idling(" + inner_->name() + ")";
}

PolicyPtr make_inelastic_first() {
  return std::make_shared<InelasticFirst>();
}

PolicyPtr make_elastic_first() { return std::make_shared<ElasticFirst>(); }

PolicyPtr make_fair_share() { return std::make_shared<FairShare>(); }

PolicyPtr make_inelastic_cap(int cap) {
  return std::make_shared<InelasticCap>(cap);
}

PolicyPtr make_idling(PolicyPtr inner, double idle_servers) {
  return std::make_shared<IdlingPolicy>(std::move(inner), idle_servers);
}

}  // namespace esched
