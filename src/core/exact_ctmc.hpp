// Exact (truncated) 2-D CTMC solver for arbitrary allocation policies.
//
// This is the brute-force baseline the paper contrasts with in §5 (the
// MDP-style truncation of [7]): build the full generator of the chain
// (N_I(t), N_E(t)) on {0..imax} x {0..jmax} for ANY stationary policy,
// solve the stationary distribution, and read off E[N] / E[T]. It serves
// two purposes: validating the busy-period-transformation analysis, and
// running optimality sweeps over whole policy families (§4).
#pragma once

#include <cstddef>

#include "core/params.hpp"
#include "core/policy.hpp"
#include "markov/stationary.hpp"

namespace esched {

/// Options for the truncated solve.
struct ExactCtmcOptions {
  long imax = 120;  ///< inelastic truncation level
  long jmax = 120;  ///< elastic truncation level
  /// Use dense GTH elimination when the state count is at most this;
  /// otherwise sparse SOR. GTH is exact; SOR iterates to `sor_tol`.
  std::size_t gth_state_limit = 500;
  double sor_tol = 1e-12;
  int sor_max_iters = 200000;
  double sor_omega = 1.0;
};

/// Results of the truncated stationary solve.
struct ExactCtmcResult {
  double mean_jobs_i = 0.0;
  double mean_jobs_e = 0.0;
  double mean_response_time = 0.0;
  double mean_response_time_i = 0.0;
  double mean_response_time_e = 0.0;
  /// Stationary mass on the truncation boundary rows i == imax or
  /// j == jmax; a large value means the truncation is too tight.
  double boundary_mass = 0.0;
  std::size_t num_states = 0;
  /// Cost/quality of the stationary solve. GTH is direct, so its entry has
  /// iterations == 0, converged == true, and the measured residual; the SOR
  /// path reports the iterative solver's own exit state.
  StationarySolveInfo solve_info;
};

/// Solves the truncated chain for `policy` at `params`. Requires rho < 1
/// (otherwise the truncated result is meaningless and this throws).
ExactCtmcResult solve_exact_ctmc(const SystemParams& params,
                                 const AllocationPolicy& policy,
                                 const ExactCtmcOptions& options = {});

/// Truncation level at which a geometric tail of ratio rho holds at most
/// `epsilon` mass — a reasonable default for both dimensions. Clamped to
/// [16, 400].
long suggested_truncation(double rho, double epsilon = 1e-10);

}  // namespace esched
