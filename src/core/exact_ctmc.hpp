// Exact (truncated) 2-D CTMC solver for arbitrary allocation policies.
//
// This is the brute-force baseline the paper contrasts with in §5 (the
// MDP-style truncation of [7]): build the full generator of the chain
// (N_I(t), N_E(t)) on {0..imax} x {0..jmax} for ANY stationary policy,
// solve the stationary distribution, and read off E[N] / E[T]. It serves
// two purposes: validating the busy-period-transformation analysis, and
// running optimality sweeps over whole policy families (§4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "core/policy.hpp"
#include "linalg/csr.hpp"
#include "markov/stationary.hpp"
#include "phase/phase_type.hpp"

namespace esched {

/// Options for the truncated solve.
struct ExactCtmcOptions {
  long imax = 120;  ///< inelastic truncation level
  long jmax = 120;  ///< elastic truncation level
  /// Stationary-solver selection. kAuto keeps the historical behavior for
  /// small chains (dense GTH up to gth_state_limit states) and otherwise
  /// prefers the block-tridiagonal direct solver — falling back to SOR
  /// when the block factors would exceed block_memory_limit bytes.
  StationaryMethod method = StationaryMethod::kAuto;
  /// Use dense GTH elimination when the state count is at most this (and
  /// method is kAuto). GTH is direct; SOR iterates to `sor_tol`.
  std::size_t gth_state_limit = 500;
  double sor_tol = 1e-12;
  int sor_max_iters = 200000;
  double sor_omega = 1.0;
  /// Workspace cap for the block solver (see
  /// block_solver_workspace_bytes). kAuto falls back to SOR above it; an
  /// explicit kBlock request throws instead.
  std::size_t block_memory_limit = std::size_t{4} << 30;
};

/// Results of the truncated stationary solve.
struct ExactCtmcResult {
  double mean_jobs_i = 0.0;
  double mean_jobs_e = 0.0;
  double mean_response_time = 0.0;
  double mean_response_time_i = 0.0;
  double mean_response_time_e = 0.0;
  /// Stationary mass on the truncation boundary rows i == imax or
  /// j == jmax; a large value means the truncation is too tight.
  double boundary_mass = 0.0;
  std::size_t num_states = 0;
  /// Cost/quality of the stationary solve. The direct solvers (GTH,
  /// block) report iterations == 0, converged == true, and the measured
  /// residual; the SOR path reports the iterative solver's own exit
  /// state. solve_info.method names the solver that actually ran.
  StationarySolveInfo solve_info;
};

/// Solves the truncated chain for `policy` at `params`. Requires rho < 1
/// (otherwise the truncated result is meaningless and this throws).
/// Equivalent to ExactCtmcBatch(params, options).solve(policy).
ExactCtmcResult solve_exact_ctmc(const SystemParams& params,
                                 const AllocationPolicy& policy,
                                 const ExactCtmcOptions& options = {});

/// Shares chain-topology construction across policies at identical
/// (params, options): the truncated state space and its policy-independent
/// arrival transitions are frozen into a CSR skeleton once, and each
/// solve() overlays the policy's service rates into a reusable scratch
/// matrix before solving — no per-policy rebuild, no per-solve adjacency
/// copies. Every policy-family sweep (the §4 optimality table, the
/// engine's exact-CTMC point groups) hits the same params with many
/// policies, so the per-policy rebuild is pure waste. solve() is bitwise
/// identical to solve_exact_ctmc on the same inputs — rates are
/// accumulated per state in the same order — which is what lets the sweep
/// engine batch transparently under its memo cache.
///
/// solve() mutates the scratch buffers, so a batch instance is NOT safe
/// for concurrent solves; the sweep runner gives each topology group its
/// own instance on one thread.
class ExactCtmcBatch {
 public:
  ExactCtmcBatch(const SystemParams& params, const ExactCtmcOptions& options);

  ExactCtmcResult solve(const AllocationPolicy& policy);

  const SystemParams& params() const { return params_; }
  const ExactCtmcOptions& options() const { return options_; }

 private:
  SystemParams params_;
  ExactCtmcOptions options_;
  /// Arrival-only rate skeleton (frozen CSR) and the arrival part of each
  /// state's exit rate.
  CsrMatrix skeleton_;
  Vector base_exit_;
  /// Level assignment along the longer truncation axis (more, smaller
  /// blocks) for the block solver.
  std::vector<std::uint32_t> level_of_;
  /// Reusable per-solve scratch: the full generator (skeleton + policy
  /// service rates) and its exit rates, rebuilt in place each solve.
  CsrMatrix scratch_rates_;
  Vector scratch_exit_;
};

/// Exact truncated solve with phase-type *inelastic* job sizes (elastic
/// sizes stay Exp(mu_E)), by state augmentation: the chain tracks
/// (c_1..c_m, w, j) where c_s counts in-service inelastic jobs in phase s
/// of `size_dist_i` (which must already be scaled to mean 1/mu_I, see
/// SizeDistSpec::compile), w counts waiting inelastic jobs, and j counts
/// elastic jobs. Only the reachable component is enumerated (BFS from the
/// empty system), arrivals are dropped at the i/j truncation boundary, and
/// boundary_mass reports the stationary mass sitting on it — the same
/// truncation-mass accounting as the exponential chain. The chain is
/// level-structured in i = sum(c) + w, so the block solver applies.
///
/// Exactness requires that the phase counts be a sufficient statistic,
/// which holds when (a) the policy's inelastic allocation is integral in
/// every state (one whole server per served job, the FCFS semantics of the
/// simulator) and (b) preemption is all-or-nothing: the allocation never
/// drops strictly between 0 and the number of jobs already in service
/// (jobs pause holding their phase and all resume together — EF's shape;
/// IF never preempts). Violations throw esched::Error naming the policy;
/// use the simulation backend for such policies.
ExactCtmcResult solve_exact_ctmc_ph(const SystemParams& params,
                                    const AllocationPolicy& policy,
                                    const PhaseType& size_dist_i,
                                    const ExactCtmcOptions& options = {});

/// Truncation level at which a geometric tail of ratio rho holds at most
/// `epsilon` mass — a reasonable default for both dimensions. Clamped to
/// [16, 400].
long suggested_truncation(double rho, double epsilon = 1e-10);

}  // namespace esched
