#include "sim/trace.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace esched {

double Trace::total_work() const {
  double total = 0.0;
  for (const auto& a : arrivals) total += a.size;
  return total;
}

Trace generate_trace(const SystemParams& params, double horizon,
                     std::uint64_t seed) {
  params.validate();
  ESCHED_CHECK(horizon > 0.0, "horizon must be positive");
  Trace trace;
  trace.horizon = horizon;
  Xoshiro256 rng(seed);
  // Independent streams per class keep the trace of one class unchanged
  // when the other class's rates change.
  Xoshiro256 rng_i = rng.stream(1);
  Xoshiro256 rng_e = rng.stream(2);

  if (params.lambda_i > 0.0) {
    double t = exponential(rng_i, params.lambda_i);
    while (t <= horizon) {
      trace.arrivals.push_back({t, false, exponential(rng_i, params.mu_i)});
      t += exponential(rng_i, params.lambda_i);
    }
  }
  if (params.lambda_e > 0.0) {
    double t = exponential(rng_e, params.lambda_e);
    while (t <= horizon) {
      trace.arrivals.push_back({t, true, exponential(rng_e, params.mu_e)});
      t += exponential(rng_e, params.lambda_e);
    }
  }
  std::sort(trace.arrivals.begin(), trace.arrivals.end(),
            [](const TraceArrival& a, const TraceArrival& b) {
              return a.time < b.time;
            });
  return trace;
}

Trace initial_batch_trace(const std::vector<TraceArrival>& jobs) {
  Trace trace;
  trace.arrivals = jobs;
  for (auto& a : trace.arrivals) {
    ESCHED_CHECK(a.time == 0.0, "initial batch jobs must arrive at time 0");
    ESCHED_CHECK(a.size > 0.0, "job sizes must be positive");
  }
  trace.horizon = 0.0;
  return trace;
}

}  // namespace esched
