#include "sim/cluster_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <vector>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "obs/metrics.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/time_average.hpp"

namespace esched {

namespace {

struct Job {
  double arrival_time;
  double remaining;
};

/// Assigns per-job service rates for one class in FCFS order and returns
/// the index (within the queue) and time-to-finish of the earliest
/// completion, if any job is being served.
struct ClassService {
  std::vector<double> rates;  // parallel to the queue prefix being served
  std::optional<std::size_t> soonest_index;
  double soonest_dt = kInf;
  double total_rate = 0.0;
};

ClassService serve_inelastic(const std::deque<Job>& queue, double servers) {
  ClassService s;
  // One server per job down the FCFS queue; a fractional remainder goes to
  // the next job in line.
  double left = servers;
  for (std::size_t idx = 0; idx < queue.size() && left > 1e-12; ++idx) {
    const double rate = std::min(1.0, left);
    left -= rate;
    s.rates.push_back(rate);
    s.total_rate += rate;
    const double dt = queue[idx].remaining / rate;
    if (dt < s.soonest_dt) {
      s.soonest_dt = dt;
      s.soonest_index = idx;
    }
  }
  return s;
}

ClassService serve_elastic(const std::deque<Job>& queue, double servers,
                           double per_job_cap) {
  ClassService s;
  // The head-of-line elastic job absorbs the class allocation up to its
  // parallelism cap; the remainder flows down the FCFS queue (with the
  // paper's fully elastic jobs, cap = k, the head takes everything).
  double left = servers;
  for (std::size_t idx = 0; idx < queue.size() && left > 1e-12; ++idx) {
    const double rate = std::min(per_job_cap, left);
    left -= rate;
    s.rates.push_back(rate);
    s.total_rate += rate;
    const double dt = queue[idx].remaining / rate;
    if (dt < s.soonest_dt) {
      s.soonest_dt = dt;
      s.soonest_index = idx;
    }
  }
  return s;
}

}  // namespace

SimResult simulate(const SystemParams& params, const AllocationPolicy& policy,
                   const SimOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();
  params.validate();
  ESCHED_CHECK(params.lambda_i + params.lambda_e > 0.0,
               "simulation requires some arrivals");
  ESCHED_CHECK(options.num_jobs > 0, "num_jobs must be positive");

  Xoshiro256 master(options.seed);
  Xoshiro256 rng_arrival_i = master.stream(1);
  Xoshiro256 rng_arrival_e = master.stream(2);
  Xoshiro256 rng_size_i = master.stream(3);
  Xoshiro256 rng_size_e = master.stream(4);

  const auto sample_size_i = [&]() {
    return options.size_dist_i != nullptr
               ? options.size_dist_i->sample(rng_size_i)
               : exponential(rng_size_i, params.mu_i);
  };
  const auto sample_size_e = [&]() {
    return options.size_dist_e != nullptr
               ? options.size_dist_e->sample(rng_size_e)
               : exponential(rng_size_e, params.mu_e);
  };

  std::deque<Job> queue_i;
  std::deque<Job> queue_e;
  double now = 0.0;
  double next_arrival_i =
      params.lambda_i > 0.0 ? exponential(rng_arrival_i, params.lambda_i)
                            : kInf;
  double next_arrival_e =
      params.lambda_e > 0.0 ? exponential(rng_arrival_e, params.lambda_e)
                            : kInf;

  TimeAverage avg_ni, avg_nj, avg_util;
  avg_ni.start(0.0, 0.0);
  avg_nj.start(0.0, 0.0);
  avg_util.start(0.0, 0.0);
  double work = 0.0;          // current total remaining work
  double work_area = 0.0;     // integral of W(t) dt after warmup
  double work_area_t0 = 0.0;  // start of the measured interval

  std::vector<double> rt_all, rt_i, rt_e;
  rt_all.reserve(options.num_jobs);
  std::uint64_t completed = 0;  // total completions (incl. warmup)
  bool warm = options.warmup_jobs == 0;

  const std::uint64_t target =
      options.warmup_jobs + options.num_jobs;
  const std::uint64_t max_events = target * 64 + 1024;
  std::uint64_t events = 0;

  while (completed < target) {
    ESCHED_CHECK(++events <= max_events,
                 "event budget exceeded; system is likely unstable");
    const State state{static_cast<long>(queue_i.size()),
                      static_cast<long>(queue_e.size())};
    if (options.check_invariants) policy.check_feasible(state, params);
    const Allocation alloc = policy.allocate(state, params);

    const ClassService svc_i = serve_inelastic(queue_i, alloc.inelastic);
    const ClassService svc_e =
        serve_elastic(queue_e, alloc.elastic, params.elastic_cap_or_k());
    const double total_rate = svc_i.total_rate + svc_e.total_rate;

    const double next_arrival = std::min(next_arrival_i, next_arrival_e);
    const double dt_completion = std::min(svc_i.soonest_dt, svc_e.soonest_dt);
    const double dt_arrival = next_arrival - now;
    ESCHED_ASSERT(dt_arrival >= 0.0 || dt_completion < kInf,
                  "simulator has nothing to do");
    const bool completion_next = dt_completion <= dt_arrival;
    const double dt = completion_next ? dt_completion : dt_arrival;

    // Advance the clock, depleting served jobs linearly.
    const double t_next = now + dt;
    avg_ni.advance(t_next);
    avg_nj.advance(t_next);
    avg_util.update(now, total_rate / static_cast<double>(params.k));
    avg_util.advance(t_next);
    if (warm) work_area += dt * (work - 0.5 * total_rate * dt);
    work = std::max(0.0, work - total_rate * dt);
    for (std::size_t idx = 0; idx < svc_i.rates.size(); ++idx) {
      queue_i[idx].remaining =
          std::max(0.0, queue_i[idx].remaining - svc_i.rates[idx] * dt);
    }
    for (std::size_t idx = 0; idx < svc_e.rates.size(); ++idx) {
      queue_e[idx].remaining =
          std::max(0.0, queue_e[idx].remaining - svc_e.rates[idx] * dt);
    }
    now = t_next;

    if (completion_next) {
      const bool inelastic_completes = svc_i.soonest_dt <= svc_e.soonest_dt;
      std::deque<Job>& queue = inelastic_completes ? queue_i : queue_e;
      const std::size_t idx = inelastic_completes ? *svc_i.soonest_index
                                                  : *svc_e.soonest_index;
      const double response = now - queue[idx].arrival_time;
      queue.erase(queue.begin() + static_cast<long>(idx));
      ++completed;
      if (warm) {
        rt_all.push_back(response);
        (inelastic_completes ? rt_i : rt_e).push_back(response);
        Histogram* hist = inelastic_completes ? options.response_hist_i
                                              : options.response_hist_e;
        if (hist != nullptr) hist->add(response);
      } else if (completed >= options.warmup_jobs) {
        // End of warmup: restart the time averages here.
        warm = true;
        avg_ni.reset_at(now);
        avg_nj.reset_at(now);
        avg_util.reset_at(now);
        work_area = 0.0;
        work_area_t0 = now;
      }
    } else {
      const bool inelastic_arrives = next_arrival_i <= next_arrival_e;
      const double size = inelastic_arrives ? sample_size_i() : sample_size_e();
      (inelastic_arrives ? queue_i : queue_e).push_back({now, size});
      work += size;
      if (inelastic_arrives) {
        next_arrival_i = now + exponential(rng_arrival_i, params.lambda_i);
      } else {
        next_arrival_e = now + exponential(rng_arrival_e, params.lambda_e);
      }
    }
    avg_ni.update(now, static_cast<double>(queue_i.size()));
    avg_nj.update(now, static_cast<double>(queue_e.size()));
  }

  SimResult result;
  result.sim_time = now;
  result.mean_jobs_i = avg_ni.average();
  result.mean_jobs_e = avg_nj.average();
  result.utilization = avg_util.average();
  result.mean_work = work_area / (now - work_area_t0);
  result.mean_response_time =
      batch_means_ci(rt_all, options.batches, options.confidence);
  result.inelastic.completed = rt_i.size();
  result.elastic.completed = rt_e.size();
  if (rt_i.size() >= static_cast<std::size_t>(2 * options.batches)) {
    result.inelastic.response_time =
        batch_means_ci(rt_i, options.batches, options.confidence);
  }
  if (rt_e.size() >= static_cast<std::size_t>(2 * options.batches)) {
    result.elastic.response_time =
        batch_means_ci(rt_e, options.batches, options.confidence);
  }

  // Observability, recorded once per call so the event loop itself stays
  // untouched (and so does the RNG stream). Throughput histograms make
  // "did the simulator get slower?" answerable from --metrics-out alone.
  {
    MetricsRegistry& m = global_metrics();
    static Counter& events_counter = m.counter("sim.events");
    static Counter& jobs_counter = m.counter("sim.jobs.completed");
    static LogHistogram& jobs_per_second =
        m.histogram("sim.jobs_per_second");
    static LogHistogram& events_per_second =
        m.histogram("sim.events_per_second");
    events_counter.add(events);
    jobs_counter.add(completed);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (wall > 0.0) {
      jobs_per_second.record(static_cast<double>(completed) / wall);
      events_per_second.record(static_cast<double>(events) / wall);
    }
  }
  return result;
}

}  // namespace esched
