// State-level CTMC simulator.
//
// Because sizes are exponential and arrivals Poisson, the pair (N_I, N_E)
// is itself a CTMC (paper §2, Fig 1). Simulating that chain directly —
// exponential races between four events — is much faster than the
// job-level simulator and is all that is needed for E[N]/E[T] estimates
// (Little's law). The job-level simulator remains the ground truth for
// per-job response times and non-exponential extensions.
#pragma once

#include <cstdint>

#include "core/params.hpp"
#include "core/policy.hpp"

namespace esched {

struct CtmcSimOptions {
  double horizon = 200000.0;  ///< simulated time units
  double warmup = 20000.0;    ///< discarded prefix
  std::uint64_t seed = 1;
};

struct CtmcSimResult {
  double mean_jobs_i = 0.0;
  double mean_jobs_e = 0.0;
  double mean_response_time = 0.0;  ///< via Little's law
  std::uint64_t transitions = 0;
};

/// Simulates the (N_I, N_E) chain under `policy`.
CtmcSimResult simulate_ctmc(const SystemParams& params,
                            const AllocationPolicy& policy,
                            const CtmcSimOptions& options = {});

}  // namespace esched
