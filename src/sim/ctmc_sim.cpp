#include "sim/ctmc_sim.hpp"

#include <array>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/time_average.hpp"

namespace esched {

CtmcSimResult simulate_ctmc(const SystemParams& params,
                            const AllocationPolicy& policy,
                            const CtmcSimOptions& options) {
  params.validate();
  ESCHED_CHECK(options.horizon > options.warmup,
               "horizon must exceed warmup");
  ESCHED_CHECK(params.lambda_i + params.lambda_e > 0.0,
               "simulation requires some arrivals");

  Xoshiro256 rng(options.seed);
  long i = 0;
  long j = 0;
  double now = 0.0;
  TimeAverage avg_i, avg_j;
  avg_i.start(0.0, 0.0);
  avg_j.start(0.0, 0.0);
  bool warm = options.warmup == 0.0;
  CtmcSimResult result;

  while (now < options.horizon) {
    const Allocation alloc = policy.allocate({i, j}, params);
    // Four competing exponentials; the CTMC jump is a discrete race. The
    // elastic class can only use cap * j servers of its allocation.
    const std::array<double, 4> rates = {
        params.lambda_i, params.lambda_e, alloc.inelastic * params.mu_i,
        params.usable_elastic(alloc.elastic, j) * params.mu_e};
    const double total = rates[0] + rates[1] + rates[2] + rates[3];
    ESCHED_ASSERT(total > 0.0, "CTMC simulator stuck in an absorbing state");
    const double dt = exponential(rng, total);
    now += dt;
    if (!warm && now >= options.warmup) {
      warm = true;
      avg_i.reset_at(options.warmup);
      avg_j.reset_at(options.warmup);
    }
    if (now >= options.horizon) {
      // The jump lands past the horizon: the pre-event state persists up to
      // the horizon and the event itself is outside the window.
      avg_i.advance(options.horizon);
      avg_j.advance(options.horizon);
      break;
    }
    // Integrate the pre-event state up to `now` ...
    avg_i.advance(now);
    avg_j.advance(now);

    double pick = uniform_open01(rng) * total;
    if ((pick -= rates[0]) <= 0.0) {
      ++i;
    } else if ((pick -= rates[1]) <= 0.0) {
      ++j;
    } else if ((pick -= rates[2]) <= 0.0) {
      --i;
      ESCHED_ASSERT(i >= 0, "negative inelastic count");
    } else {
      --j;
      ESCHED_ASSERT(j >= 0, "negative elastic count");
    }
    // ... then register the post-event state (zero-length update).
    avg_i.update(now, static_cast<double>(i));
    avg_j.update(now, static_cast<double>(j));
    ++result.transitions;
  }

  result.mean_jobs_i = avg_i.average();
  result.mean_jobs_e = avg_j.average();
  result.mean_response_time = (result.mean_jobs_i + result.mean_jobs_e) /
                              (params.lambda_i + params.lambda_e);
  return result;
}

}  // namespace esched
