// Arrival traces: fixed sequences of (time, class, size).
//
// Theorem 3's coupling argument fixes an arrival sequence and compares
// policies on it. Traces make that executable: generate one stochastic
// trace, then replay it deterministically under each policy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"

namespace esched {

/// One job arrival.
struct TraceArrival {
  double time = 0.0;
  bool elastic = false;
  double size = 0.0;
};

/// A finite arrival sequence on [0, horizon].
struct Trace {
  std::vector<TraceArrival> arrivals;  // sorted by time
  double horizon = 0.0;

  std::size_t num_jobs() const { return arrivals.size(); }
  double total_work() const;
};

/// Samples a trace from the model: Poisson arrivals of both classes on
/// [0, horizon] with exponential sizes, merged in time order.
Trace generate_trace(const SystemParams& params, double horizon,
                     std::uint64_t seed);

/// A trace consisting only of jobs present at time 0 (used by the
/// Theorem 6 counterexample and other transient experiments).
Trace initial_batch_trace(const std::vector<TraceArrival>& jobs);

}  // namespace esched
