// Job-level discrete-event simulator of the k-server model (paper §2).
//
// Jobs carry actual remaining sizes; between events every allocation is
// constant, so remaining work depletes linearly and the next event is the
// earlier of the next arrival and the earliest completion. The policy is
// re-consulted at every event. Within a class, servers are assigned in
// FCFS order (inelastic: one server per job down the queue; elastic: the
// head-of-line job takes the entire class allocation), matching the
// paper's definition of EF/IF and of the class P.
#pragma once

#include <cstdint>
#include <optional>

#include "core/params.hpp"
#include "core/policy.hpp"
#include "phase/phase_type.hpp"
#include "stats/confidence.hpp"
#include "stats/histogram.hpp"

namespace esched {

/// Simulation controls.
struct SimOptions {
  std::uint64_t num_jobs = 200000;    ///< completions measured after warmup
  std::uint64_t warmup_jobs = 20000;  ///< completions discarded as warmup
  std::uint64_t seed = 1;
  int batches = 20;                   ///< batch count for batch-means CIs
  double confidence = 0.95;
  /// Re-checks allocation feasibility at every event (slower; meant for
  /// tests).
  bool check_invariants = false;
  /// Optional non-exponential size distributions (extension beyond the
  /// paper's model). Non-owning; must outlive the call. nullptr keeps the
  /// exponential defaults Exp(mu_I) / Exp(mu_E).
  const PhaseType* size_dist_i = nullptr;
  const PhaseType* size_dist_e = nullptr;
  /// Optional response-time histograms, filled with post-warmup per-job
  /// response times (caller-owned; use Histogram::quantile for P95/P99
  /// tail latencies, which the paper's mean-only analysis does not cover).
  Histogram* response_hist_i = nullptr;
  Histogram* response_hist_e = nullptr;
};

/// Per-class output statistics.
struct SimClassStats {
  ConfidenceInterval response_time;
  std::uint64_t completed = 0;
};

/// Simulation output.
struct SimResult {
  ConfidenceInterval mean_response_time;  ///< across both classes
  SimClassStats inelastic;
  SimClassStats elastic;
  double mean_jobs_i = 0.0;   ///< time-average N_I after warmup
  double mean_jobs_e = 0.0;   ///< time-average N_E after warmup
  double mean_work = 0.0;     ///< time-average total remaining work
  double utilization = 0.0;   ///< time-average busy servers / k
  double sim_time = 0.0;      ///< simulated time span (including warmup)
};

/// Runs the simulator for `policy` at `params`.
SimResult simulate(const SystemParams& params, const AllocationPolicy& policy,
                   const SimOptions& options = {});

}  // namespace esched
