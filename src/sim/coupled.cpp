#include "sim/coupled.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace esched {

WorkPath::WorkPath(std::vector<WorkSample> samples)
    : samples_(std::move(samples)) {
  ESCHED_CHECK(!samples_.empty(), "work path must have at least one sample");
  for (std::size_t n = 1; n < samples_.size(); ++n) {
    ESCHED_CHECK(samples_[n].time >= samples_[n - 1].time,
                 "work path samples must be time-ordered");
  }
}

std::size_t WorkPath::segment_for(double t) const {
  // Last sample with time <= t.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](double value, const WorkSample& s) { return value < s.time; });
  if (it == samples_.begin()) return 0;
  return static_cast<std::size_t>(it - samples_.begin()) - 1;
}

double WorkPath::total_work_at(double t) const {
  const WorkSample& s = samples_[segment_for(t)];
  const double dt = std::max(0.0, t - s.time);
  return std::max(0.0, s.total_work - s.work_rate * dt);
}

double WorkPath::inelastic_work_at(double t) const {
  const WorkSample& s = samples_[segment_for(t)];
  const double dt = std::max(0.0, t - s.time);
  return std::max(0.0, s.inelastic_work - s.inelastic_rate * dt);
}

double WorkPath::end_time() const { return samples_.back().time; }

namespace {

struct Job {
  double remaining;
};

}  // namespace

WorkPath run_on_trace(const Trace& trace, const SystemParams& params,
                      const AllocationPolicy& policy) {
  params.validate();
  std::deque<Job> queue_i;
  std::deque<Job> queue_e;
  double now = 0.0;
  double work_i = 0.0;
  double work_e = 0.0;
  std::size_t next_arrival = 0;

  // Admit any time-0 arrivals before the first sample.
  while (next_arrival < trace.arrivals.size() &&
         trace.arrivals[next_arrival].time <= 0.0) {
    const TraceArrival& a = trace.arrivals[next_arrival++];
    (a.elastic ? queue_e : queue_i).push_back({a.size});
    (a.elastic ? work_e : work_i) += a.size;
  }

  std::vector<WorkSample> samples;
  const auto record = [&](double rate_i, double rate_e) {
    samples.push_back({now, work_i + work_e, work_i, rate_i + rate_e,
                       rate_i});
  };

  for (;;) {
    const State state{static_cast<long>(queue_i.size()),
                      static_cast<long>(queue_e.size())};
    policy.check_feasible(state, params);
    const Allocation alloc = policy.allocate(state, params);

    // Per-job rates, FCFS within class (class P's service order).
    double left = alloc.inelastic;
    std::vector<double> rates_i;
    double soonest_dt = kInf;
    enum class Next { kNone, kInelastic, kElastic } completing = Next::kNone;
    std::size_t completing_idx = 0;
    double rate_i_total = 0.0;
    for (std::size_t idx = 0; idx < queue_i.size() && left > 1e-12; ++idx) {
      const double rate = std::min(1.0, left);
      left -= rate;
      rates_i.push_back(rate);
      rate_i_total += rate;
      const double dt = queue_i[idx].remaining / rate;
      if (dt < soonest_dt) {
        soonest_dt = dt;
        completing = Next::kInelastic;
        completing_idx = idx;
      }
    }
    double rate_e_total = 0.0;
    std::vector<double> rates_e;
    {
      // FCFS down the elastic queue, each job up to its parallelism cap.
      const double cap = params.elastic_cap_or_k();
      double left_e = alloc.elastic;
      for (std::size_t idx = 0; idx < queue_e.size() && left_e > 1e-12;
           ++idx) {
        const double rate = std::min(cap, left_e);
        left_e -= rate;
        rates_e.push_back(rate);
        rate_e_total += rate;
        const double dt = queue_e[idx].remaining / rate;
        if (dt < soonest_dt) {
          soonest_dt = dt;
          completing = Next::kElastic;
          completing_idx = idx;
        }
      }
    }
    record(rate_i_total, rate_e_total);

    const double arrival_time = next_arrival < trace.arrivals.size()
                                    ? trace.arrivals[next_arrival].time
                                    : kInf;
    const double dt_arrival = arrival_time - now;
    if (soonest_dt == kInf && arrival_time == kInf) break;  // system empty

    const bool completion_next = soonest_dt <= dt_arrival;
    const double dt = completion_next ? soonest_dt : dt_arrival;

    for (std::size_t idx = 0; idx < rates_i.size(); ++idx) {
      queue_i[idx].remaining =
          std::max(0.0, queue_i[idx].remaining - rates_i[idx] * dt);
    }
    for (std::size_t idx = 0; idx < rates_e.size(); ++idx) {
      queue_e[idx].remaining =
          std::max(0.0, queue_e[idx].remaining - rates_e[idx] * dt);
    }
    work_i = std::max(0.0, work_i - rate_i_total * dt);
    work_e = std::max(0.0, work_e - rate_e_total * dt);
    now += dt;

    if (completion_next) {
      if (completing == Next::kInelastic) {
        queue_i.erase(queue_i.begin() + static_cast<long>(completing_idx));
      } else {
        queue_e.erase(queue_e.begin() + static_cast<long>(completing_idx));
      }
    } else {
      const TraceArrival& a = trace.arrivals[next_arrival++];
      (a.elastic ? queue_e : queue_i).push_back({a.size});
      (a.elastic ? work_e : work_i) += a.size;
    }
  }
  record(0.0, 0.0);
  return WorkPath(std::move(samples));
}

DominanceReport check_dominance(const WorkPath& dominant,
                                const WorkPath& other) {
  // Checkpoints: all breakpoints of both paths plus segment midpoints.
  std::vector<double> times;
  const auto harvest = [&](const WorkPath& path) {
    const auto& ss = path.samples();
    for (std::size_t n = 0; n < ss.size(); ++n) {
      times.push_back(ss[n].time);
      if (n + 1 < ss.size()) {
        times.push_back(0.5 * (ss[n].time + ss[n + 1].time));
      }
    }
  };
  harvest(dominant);
  harvest(other);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  DominanceReport report;
  report.num_checkpoints = times.size();
  for (double t : times) {
    report.max_total_violation =
        std::max(report.max_total_violation,
                 dominant.total_work_at(t) - other.total_work_at(t));
    report.max_inelastic_violation =
        std::max(report.max_inelastic_violation,
                 dominant.inelastic_work_at(t) - other.inelastic_work_at(t));
  }
  report.max_total_violation = std::max(0.0, report.max_total_violation);
  report.max_inelastic_violation =
      std::max(0.0, report.max_inelastic_violation);
  return report;
}

}  // namespace esched
