// Coupled sample-path runs (the Theorem 3 experiment).
//
// Theorem 3 proves that on any fixed arrival sequence, IF has at most as
// much total work W(t) and inelastic work W_I(t) as any policy in P, at
// every instant t. This module replays one trace deterministically under a
// policy and records the exact piecewise-linear work paths so that two
// policies can be compared pointwise in time.
#pragma once

#include <vector>

#include "core/params.hpp"
#include "core/policy.hpp"
#include "sim/trace.hpp"

namespace esched {

/// One breakpoint of the piecewise-linear work path: at `time`, total and
/// inelastic work are as recorded, and until the next breakpoint they
/// deplete at `work_rate` / `inelastic_rate` servers respectively.
struct WorkSample {
  double time = 0.0;
  double total_work = 0.0;
  double inelastic_work = 0.0;
  double work_rate = 0.0;
  double inelastic_rate = 0.0;
};

/// Exact piecewise-linear record of W(t) and W_I(t) over one trace replay.
class WorkPath {
 public:
  explicit WorkPath(std::vector<WorkSample> samples);

  /// W(t); t must be within the recorded span (clamped at the ends).
  double total_work_at(double t) const;
  /// W_I(t).
  double inelastic_work_at(double t) const;

  double end_time() const;
  const std::vector<WorkSample>& samples() const { return samples_; }

 private:
  std::size_t segment_for(double t) const;
  std::vector<WorkSample> samples_;
};

/// Replays `trace` under `policy` (deterministically — sizes come from the
/// trace) and records the work path until the system empties after the
/// last arrival.
WorkPath run_on_trace(const Trace& trace, const SystemParams& params,
                      const AllocationPolicy& policy);

/// Result of a pointwise dominance check between two work paths.
struct DominanceReport {
  /// max over checked t of max(0, W_dominant(t) - W_other(t)).
  double max_total_violation = 0.0;
  /// Same for inelastic work.
  double max_inelastic_violation = 0.0;
  std::size_t num_checkpoints = 0;
};

/// Evaluates both paths at the union of their breakpoints (plus segment
/// midpoints) and reports how much `dominant` ever exceeds `other`.
/// Theorem 3 predicts zero violations when `dominant` ran IF and `other`
/// ran any policy in P.
DominanceReport check_dominance(const WorkPath& dominant,
                                const WorkPath& other);

}  // namespace esched
