// Ablation: how many busy-period moments does the §5.2 transformation
// need? The paper (following [45]) matches THREE moments with a Coxian.
// This harness recomputes E[T^EF] and E[T^IF] with 1-, 2-, and 3-moment
// fits and reports each variant's error against the exact truncated
// chain. Expected: errors shrink by orders of magnitude with each added
// moment, justifying the design choice.
//
// Thin wrapper over the sweep engine: the fit-order axis is the engine's
// built-in "ablation-coxian" scenario (the exact chain ignores the fit
// order, so its canonical cache key collapses the axis to one solve per
// case x policy), rendered by the shared "fit-order" report view.
#include <cstdio>
#include <iostream>

#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

int main() {
  using namespace esched;
  std::printf("=== Ablation: busy-period fit order (exponential / 2-moment "
              "/ 3-moment Coxian) vs exact chain ===\n");
  const Scenario scenario = builtin_scenario("ablation-coxian");
  const auto points = scenario.expand();
  SweepRunner runner;
  SweepStats stats;
  const auto results = runner.run(points, &stats);
  print_view("fit-order", std::cout, scenario, points, results, stats);
  return 0;
}
