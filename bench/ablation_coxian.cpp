// Ablation: how many busy-period moments does the §5.2 transformation
// need? The paper (following [45]) matches THREE moments with a Coxian.
// This harness recomputes E[T^EF] and E[T^IF] with 1-, 2-, and 3-moment
// fits and reports each variant's error against the exact truncated
// chain. Expected: errors shrink by orders of magnitude with each added
// moment, justifying the design choice.
#include <cstdio>
#include <iostream>

#include "common/numeric.hpp"
#include "common/table.hpp"
#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "stats/accumulator.hpp"

int main() {
  using namespace esched;
  std::printf("=== Ablation: busy-period fit order (exponential / 2-moment "
              "/ 3-moment Coxian) vs exact chain ===\n");
  Table table({"k", "mu_I", "mu_E", "rho", "policy", "err 1-moment",
               "err 2-moment", "err 3-moment"});

  const struct {
    int k;
    double mu_i, mu_e, rho;
  } settings[] = {{4, 1.0, 1.0, 0.5},  {4, 1.0, 1.0, 0.9},
                  {4, 0.25, 1.0, 0.7}, {4, 3.25, 1.0, 0.7},
                  {8, 1.0, 1.0, 0.8},  {2, 2.0, 1.0, 0.9}};
  Accumulator err1_acc, err2_acc, err3_acc;
  for (const auto& s : settings) {
    const SystemParams p =
        SystemParams::from_load(s.k, s.mu_i, s.mu_e, s.rho);
    ExactCtmcOptions opt;
    opt.imax = opt.jmax = suggested_truncation(p.rho(), 1e-9);
    const struct {
      const char* name;
      double exact;
      double v1, v2, v3;
    } rows[] = {
        {"EF",
         solve_exact_ctmc(p, ElasticFirst{}, opt).mean_response_time,
         analyze_elastic_first(p, BusyFitOrder::kOneMoment)
             .mean_response_time,
         analyze_elastic_first(p, BusyFitOrder::kTwoMoment)
             .mean_response_time,
         analyze_elastic_first(p, BusyFitOrder::kThreeMoment)
             .mean_response_time},
        {"IF",
         solve_exact_ctmc(p, InelasticFirst{}, opt).mean_response_time,
         analyze_inelastic_first(p, BusyFitOrder::kOneMoment)
             .mean_response_time,
         analyze_inelastic_first(p, BusyFitOrder::kTwoMoment)
             .mean_response_time,
         analyze_inelastic_first(p, BusyFitOrder::kThreeMoment)
             .mean_response_time},
    };
    for (const auto& row : rows) {
      const double e1 = relative_error(row.v1, row.exact);
      const double e2 = relative_error(row.v2, row.exact);
      const double e3 = relative_error(row.v3, row.exact);
      err1_acc.add(e1);
      err2_acc.add(e2);
      err3_acc.add(e3);
      table.add_row({std::to_string(s.k), format_double(s.mu_i),
                     format_double(s.mu_e), format_double(s.rho), row.name,
                     format_double(100.0 * e1, 3) + "%",
                     format_double(100.0 * e2, 3) + "%",
                     format_double(100.0 * e3, 3) + "%"});
    }
  }
  table.print(std::cout);
  std::printf("\nmean error: 1-moment %.3f%%, 2-moment %.3f%%, 3-moment "
              "%.4f%% — each extra busy-period moment buys roughly an "
              "order of magnitude, which is why §5.2 matches three.\n",
              100.0 * err1_acc.mean(), 100.0 * err2_acc.mean(),
              100.0 * err3_acc.mean());
  return 0;
}
