// §5 accuracy claim: "We compared our analysis with simulation, and all
// numbers agree within 1%." This harness quantifies the busy-period
// transformation's error directly: for a spot grid across the Figure 4-6
// parameter space it compares the QBD analysis against (a) the exact
// truncated 2-D chain and (b) stochastic simulation, reporting relative
// errors for both EF and IF.
#include <cstdio>
#include <iostream>

#include "common/numeric.hpp"
#include "common/table.hpp"
#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "sim/cluster_sim.hpp"

int main() {
  using namespace esched;
  std::printf("=== Analysis accuracy: busy-period QBD vs exact chain vs "
              "simulation (paper claims <1%% vs simulation) ===\n");
  Table table({"k", "mu_I", "mu_E", "rho", "policy", "QBD E[T]",
               "exact E[T]", "sim E[T]", "err vs exact", "err vs sim"});

  const struct {
    int k;
    double mu_i, mu_e, rho;
  } settings[] = {{4, 1.0, 1.0, 0.5},  {4, 1.0, 1.0, 0.9},
                  {4, 0.25, 1.0, 0.7}, {4, 3.25, 1.0, 0.7},
                  {2, 2.0, 1.0, 0.8},  {8, 0.5, 1.0, 0.6},
                  {16, 1.0, 1.0, 0.9}};
  double worst_exact_err = 0.0;
  for (const auto& s : settings) {
    const SystemParams p =
        SystemParams::from_load(s.k, s.mu_i, s.mu_e, s.rho);
    ExactCtmcOptions opt;
    opt.imax = opt.jmax = suggested_truncation(p.rho(), 1e-9);
    SimOptions sopt;
    sopt.num_jobs = 150000;
    sopt.warmup_jobs = 15000;
    sopt.seed = 99;

    const struct {
      const char* name;
      double qbd;
      double exact;
      double sim;
    } rows[] = {
        {"IF", analyze_inelastic_first(p).mean_response_time,
         solve_exact_ctmc(p, InelasticFirst{}, opt).mean_response_time,
         simulate(p, InelasticFirst{}, sopt).mean_response_time.mean},
        {"EF", analyze_elastic_first(p).mean_response_time,
         solve_exact_ctmc(p, ElasticFirst{}, opt).mean_response_time,
         simulate(p, ElasticFirst{}, sopt).mean_response_time.mean},
    };
    for (const auto& row : rows) {
      const double err_exact = relative_error(row.qbd, row.exact);
      const double err_sim = relative_error(row.qbd, row.sim);
      worst_exact_err = std::max(worst_exact_err, err_exact);
      table.add_row({std::to_string(s.k), format_double(s.mu_i),
                     format_double(s.mu_e), format_double(s.rho), row.name,
                     format_double(row.qbd), format_double(row.exact),
                     format_double(row.sim),
                     format_double(100.0 * err_exact, 3) + "%",
                     format_double(100.0 * err_sim, 3) + "%"});
    }
  }
  table.print(std::cout);
  std::printf("\nworst QBD-vs-exact error: %.3f%% (paper: <1%%; errors vs "
              "simulation include Monte Carlo noise)\n",
              100.0 * worst_exact_err);
  return 0;
}
