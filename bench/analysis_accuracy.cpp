// §5 accuracy claim: "We compared our analysis with simulation, and all
// numbers agree within 1%." This harness quantifies the busy-period
// transformation's error directly: for a spot grid across the Figure 4-6
// parameter space it compares the QBD analysis against (a) the exact
// truncated 2-D chain and (b) stochastic simulation, reporting relative
// errors for both EF and IF.
//
// Thin wrapper over the sweep engine: the spot grid is the engine's
// built-in "analysis-accuracy" scenario (one point per case x policy x
// {qbd, exact, sim}), rendered by the shared "accuracy" report view.
#include <cstdio>
#include <iostream>

#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

int main() {
  using namespace esched;
  std::printf("=== Analysis accuracy: busy-period QBD vs exact chain vs "
              "simulation (paper claims <1%% vs simulation) ===\n");
  const Scenario scenario = builtin_scenario("analysis-accuracy");
  const auto points = scenario.expand();
  SweepRunner runner;
  SweepStats stats;
  const auto results = runner.run(points, &stats);
  print_view("accuracy", std::cout, scenario, points, results, stats);
  return 0;
}
