// Ablation: truncation level of the exact 2-D solver (the [7]-style
// baseline). Sweeps the truncation, reporting E[T] error against a very
// deep reference solve, leaked boundary mass, and state count. Shows (a)
// why suggested_truncation() scales like log(eps)/log(rho) and (b) the
// cost the QBD analysis avoids entirely — its error is flat and its cost
// does not grow with rho.
//
// Thin wrapper over the sweep engine: the truncation axis (last level =
// the deep reference) is the engine's built-in "ablation-truncation"
// scenario, rendered by the shared "truncation" report view.
#include <cstdio>
#include <iostream>

#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

int main() {
  using namespace esched;
  const Scenario scenario = builtin_scenario("ablation-truncation");
  std::printf("=== Ablation: exact-solver truncation level (k = %d, mu_I = "
              "mu_E = 1) ===\n",
              scenario.cases.front().k);
  const auto points = scenario.expand();
  SweepRunner runner;
  SweepStats stats;
  const auto results = runner.run(points, &stats);
  print_view("truncation", std::cout, scenario, points, results, stats);
  std::printf("\nAt rho = 0.9 a tight truncation (10-20 levels) biases "
              "E[T] by percent-level amounts while costing more than the "
              "QBD analysis — the paper's argument against truncated-MDP "
              "approaches, quantified.\n");
  return 0;
}
