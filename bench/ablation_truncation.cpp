// Ablation: truncation level of the exact 2-D solver (the [7]-style
// baseline). Sweeps the truncation, reporting E[T] error against a very
// deep reference solve, leaked boundary mass, and state count. Shows (a)
// why suggested_truncation() scales like log(eps)/log(rho) and (b) the
// cost the QBD analysis avoids entirely — its error is flat and its cost
// does not grow with rho.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "common/numeric.hpp"
#include "common/table.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"

int main() {
  using namespace esched;
  std::printf("=== Ablation: exact-solver truncation level (k = 4, mu_I = "
              "mu_E = 1) ===\n");
  for (double rho : {0.7, 0.9}) {
    const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, rho);
    ExactCtmcOptions deep;
    deep.imax = deep.jmax = 400;
    const double reference =
        solve_exact_ctmc(p, InelasticFirst{}, deep).mean_response_time;
    const double qbd = analyze_inelastic_first(p).mean_response_time;

    Table table({"truncation", "states", "E[T]", "rel err", "boundary mass",
                 "solve ms"});
    for (long trunc : {10L, 20L, 40L, 80L, 160L}) {
      ExactCtmcOptions opt;
      opt.imax = opt.jmax = trunc;
      const auto start = std::chrono::steady_clock::now();
      const ExactCtmcResult r = solve_exact_ctmc(p, InelasticFirst{}, opt);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      table.add_row({std::to_string(trunc), std::to_string(r.num_states),
                     format_double(r.mean_response_time),
                     format_double(
                         relative_error(r.mean_response_time, reference), 3),
                     format_double(r.boundary_mass, 3),
                     format_double(ms, 4)});
    }
    std::printf("\n--- rho = %.1f (reference E[T] = %.6f at truncation 400; "
                "suggested_truncation = %ld; QBD analysis = %.6f, err "
                "%.4f%%, ~0.1 ms) ---\n",
                rho, reference, suggested_truncation(rho, 1e-10),
                qbd, 100.0 * relative_error(qbd, reference));
    table.print(std::cout);
  }
  std::printf("\nAt rho = 0.9 a tight truncation (10-20 levels) biases "
              "E[T] by percent-level amounts while costing more than the "
              "QBD analysis — the paper's argument against truncated-MDP "
              "approaches, quantified.\n");
  return 0;
}
