// Beyond the paper's means: response-time DISTRIBUTIONS under IF and EF.
// The optimality results concern E[T], but operators care about tails.
// This harness simulates the Figure 5 extremes and reports P50/P95/P99
// per class, showing (a) why IF is operationally attractive when
// inelastic jobs are small — it caps their tail near the service time —
// and (b) what EF's tail advantage looks like in its winning region.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/policies.hpp"
#include "sim/cluster_sim.hpp"

namespace {

using namespace esched;

void run_setting(double mu_i, double mu_e, double rho, Table& table) {
  const SystemParams p = SystemParams::from_load(4, mu_i, mu_e, rho);
  for (const auto& policy : {make_inelastic_first(), make_elastic_first()}) {
    // Generous range; quantiles interpolate within bins.
    Histogram hist_i(0.0, 400.0 / mu_i, 20000);
    Histogram hist_e(0.0, 400.0 / mu_e, 20000);
    SimOptions opt;
    opt.num_jobs = 250000;
    opt.warmup_jobs = 25000;
    opt.seed = 1234;
    opt.response_hist_i = &hist_i;
    opt.response_hist_e = &hist_e;
    const SimResult r = simulate(p, *policy, opt);
    table.add_row({format_double(mu_i), format_double(rho), policy->name(),
                   format_double(r.mean_response_time.mean, 4),
                   format_double(hist_i.quantile(0.5), 4),
                   format_double(hist_i.quantile(0.99), 4),
                   format_double(hist_e.quantile(0.5), 4),
                   format_double(hist_e.quantile(0.99), 4)});
  }
}

}  // namespace

int main() {
  using namespace esched;
  std::printf("=== Tail latency under IF vs EF (k = 4, mu_E = 1, "
              "simulation with 250k jobs) ===\n");
  Table table({"mu_I", "rho", "policy", "mean E[T]", "inel P50", "inel P99",
               "el P50", "el P99"});
  run_setting(3.25, 1.0, 0.7, table);  // IF's winning region
  run_setting(3.25, 1.0, 0.9, table);
  run_setting(0.25, 1.0, 0.9, table);  // EF's winning region
  table.print(std::cout);
  std::printf("\nIn IF's region the inelastic P99 stays near the service "
              "time under IF but explodes under EF (every elastic burst "
              "starves the small jobs); in EF's region the mean flips but "
              "IF still has the better inelastic tail — the mean-vs-tail "
              "trade the paper's objective hides.\n");
  return 0;
}
