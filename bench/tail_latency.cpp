// Beyond the paper's means: response-time DISTRIBUTIONS under IF and EF.
// The optimality results concern E[T], but operators care about tails.
// This harness simulates the Figure 5 extremes and reports P50/P99 per
// class, showing (a) why IF is operationally attractive when inelastic
// jobs are small — it caps their tail near the service time — and (b)
// what EF's tail advantage looks like in its winning region.
//
// Thin wrapper over the sweep engine: the settings are the engine's
// built-in "tail-latency" scenario (sim points with options.sim_tails
// collecting the per-class histograms), rendered by the shared "tail"
// report view.
#include <cstdio>
#include <iostream>

#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

int main() {
  using namespace esched;
  const Scenario scenario = builtin_scenario("tail-latency");
  std::printf("=== Tail latency under IF vs EF (k = %d, mu_E = 1, "
              "simulation with 250k jobs) ===\n",
              scenario.cases.front().k);
  const auto points = scenario.expand();
  SweepRunner runner;
  SweepStats stats;
  const auto results = runner.run(points, &stats);
  print_view("tail", std::cout, scenario, points, results, stats);
  std::printf("\nIn IF's region the inelastic P99 stays near the service "
              "time under IF but explodes under EF (every elastic burst "
              "starves the small jobs); in EF's region the mean flips but "
              "IF still has the better inelastic tail — the mean-vs-tail "
              "trade the paper's objective hides.\n");
  return 0;
}
