// Theorem 6 (paper §4.3): the counterexample showing IF is not optimal
// when mu_I < mu_E. k = 2 servers, mu_E = 2 mu_I, no arrivals, starting
// with 2 inelastic jobs and 1 elastic job. The paper computes the total
// response time as E[T^IF] = (35/12)/mu_I and E[T^EF] = (33/12)/mu_I.
// This harness regenerates both values three ways: the paper's closed
// forms, the absorbing-CTMC solver, and a Monte Carlo trace estimate.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/no_arrivals.hpp"
#include "core/policies.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sim/coupled.hpp"
#include "sim/trace.hpp"
#include "stats/accumulator.hpp"

namespace {

using namespace esched;

/// Monte Carlo estimate of the per-job mean response time by replaying
/// random size draws through the deterministic trace engine.
double simulate_counterexample(const SystemParams& params,
                               const AllocationPolicy& policy,
                               int replications, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Accumulator acc;
  for (int r = 0; r < replications; ++r) {
    const Trace batch = initial_batch_trace(
        {{0.0, false, exponential(rng, params.mu_i)},
         {0.0, false, exponential(rng, params.mu_i)},
         {0.0, true, exponential(rng, params.mu_e)}});
    const WorkPath path = run_on_trace(batch, params, policy);
    // Sum of response times = integral of N(t); recover it from the
    // piecewise-linear work path breakpoints (N changes only at events).
    double integral = 0.0;
    const auto& ss = path.samples();
    for (std::size_t n = 0; n + 1 < ss.size(); ++n) {
      // Count jobs present: both classes tracked through remaining work;
      // simpler and exact here: N equals #remaining completions, which
      // drops by one at each completion breakpoint. The batch has 3 jobs
      // and no arrivals, so N on segment n is 3 - (#completions so far).
      const double dt = ss[n + 1].time - ss[n].time;
      // Completions strictly before segment n: count samples with lower
      // total job count. Completions coincide with breakpoints after the
      // initial one; breakpoint 0 is the initial state.
      integral += dt * static_cast<double>(3 - static_cast<int>(n));
    }
    acc.add(integral / 3.0);
  }
  return acc.mean();
}

}  // namespace

int main() {
  using namespace esched;
  std::printf("=== Theorem 6 counterexample: k = 2, mu_E = 2 mu_I, start "
              "(2 inelastic, 1 elastic), no arrivals ===\n");
  std::printf("paper's totals: E[sum T^IF] = 35/12 / mu_I, "
              "E[sum T^EF] = 33/12 / mu_I (per-job mean = totals / 3)\n\n");

  Table table({"mu_I", "policy", "paper (mean)", "absorbing CTMC",
               "Monte Carlo (20k reps)"});
  for (double mu_i : {0.5, 1.0, 2.0}) {
    SystemParams p;
    p.k = 2;
    p.mu_i = mu_i;
    p.mu_e = 2.0 * mu_i;
    const double paper_if = (35.0 / 12.0) / 3.0 / mu_i;
    const double paper_ef = (33.0 / 12.0) / 3.0 / mu_i;
    const double exact_if =
        mean_response_time_no_arrivals(p, InelasticFirst{}, {2, 1});
    const double exact_ef =
        mean_response_time_no_arrivals(p, ElasticFirst{}, {2, 1});
    const double mc_if =
        simulate_counterexample(p, InelasticFirst{}, 20000, 1);
    const double mc_ef = simulate_counterexample(p, ElasticFirst{}, 20000, 2);
    table.add_row({format_double(mu_i), "IF", format_double(paper_if),
                   format_double(exact_if), format_double(mc_if)});
    table.add_row({format_double(mu_i), "EF", format_double(paper_ef),
                   format_double(exact_ef), format_double(mc_ef)});
  }
  table.print(std::cout);
  std::printf("\nEF < IF in every row: IF is NOT optimal when mu_I < mu_E "
              "(paper Theorem 6 reproduced).\n");
  return 0;
}
