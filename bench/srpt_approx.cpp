// Appendix A / Theorem 9: the generalized SRPT-k algorithm is a
// 4-approximation for total response time when all jobs arrive at time 0.
// This harness sweeps random instance families (sizes spanning orders of
// magnitude, mixed parallelizability caps) and reports the empirical
// ratio ALG / LP-lower-bound, which must stay below 4 (and in practice
// sits far below it — the reason the paper argues worst-case analysis is
// too pessimistic and moves to the stochastic model).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "srpt/lp_bound.hpp"
#include "srpt/srpt.hpp"
#include "stats/accumulator.hpp"

namespace {

using namespace esched;

std::vector<BatchJob> random_instance(int n, int k, double elastic_fraction,
                                      Xoshiro256& rng) {
  std::vector<BatchJob> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    BatchJob job;
    job.size = std::exp(uniform(rng, -2.0, 3.0));  // ~e^5 size spread
    job.cap = bernoulli(rng, elastic_fraction)
                  ? 1.0 + std::floor(uniform(rng, 0.0, 2.0 * k))
                  : 1.0;
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace

int main() {
  using namespace esched;
  std::printf("=== Appendix A reproduction: SRPT-k vs LP lower bound "
              "(Theorem 9: ratio <= 4) ===\n");
  CsvWriter csv("srpt_approx.csv",
                {"n", "k", "elastic_fraction", "mean_ratio", "max_ratio"});
  Table table({"n", "k", "elastic frac", "mean ALG/LP", "max ALG/LP",
               "<= 4?"});
  Xoshiro256 rng(515151);
  double global_max = 0.0;
  for (int n : {10, 100, 1000, 10000}) {
    for (int k : {4, 16}) {
      for (double frac : {0.0, 0.5, 1.0}) {
        Accumulator ratios;
        const int reps = n <= 1000 ? 20 : 5;
        for (int r = 0; r < reps; ++r) {
          const std::vector<BatchJob> jobs =
              random_instance(n, k, frac, rng);
          const double alg = srpt_k_schedule(jobs, k).total_response_time;
          const double lp = lp_lower_bound(jobs, k);
          ratios.add(alg / lp);
        }
        global_max = std::max(global_max, ratios.max());
        table.add_row({std::to_string(n), std::to_string(k),
                       format_double(frac, 2), format_double(ratios.mean(), 4),
                       format_double(ratios.max(), 4),
                       ratios.max() <= 4.0 ? "yes" : "NO"});
        csv.add_row({std::to_string(n), std::to_string(k),
                     format_double(frac, 2), format_double(ratios.mean()),
                     format_double(ratios.max())});
      }
    }
  }
  table.print(std::cout);
  std::printf("\nworst observed ratio: %.4f (Theorem 9 bound: 4; typical "
              "values near 1 show the worst case is loose)\n",
              global_max);
  std::printf("wrote srpt_approx.csv (%zu rows)\n", csv.num_rows());
  return 0;
}
