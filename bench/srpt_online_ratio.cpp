// Online SRPT-k with release times (the §1.4 / prior-work setting).
// Unlike the batch Appendix-A case, with releases no online algorithm
// beats Θ(log min(p, n/k)) in the worst case — yet the paper argues such
// adversarial instances are rare, motivating the stochastic model. This
// harness measures SRPT-k against the speed-k single-machine relaxation
// on Poisson traffic at several loads and size spreads: the observed
// ratios stay small and flat, exactly the "worst case is too pessimistic"
// story.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "srpt/srpt_online.hpp"
#include "stats/accumulator.hpp"

int main() {
  using namespace esched;
  std::printf("=== Online SRPT-k vs speed-k relaxation on stochastic "
              "traffic (k = 4) ===\n");
  Table table({"load", "size spread p", "elastic frac", "mean ratio",
               "max ratio"});
  Xoshiro256 rng(161803);
  constexpr int kServers = 4;
  for (double load : {0.5, 0.8, 0.95}) {
    for (double log_spread : {0.0, 1.5, 3.0}) {
      for (double frac : {0.0, 0.5}) {
        Accumulator ratios;
        for (int trial = 0; trial < 8; ++trial) {
          std::vector<OnlineJob> jobs;
          double t = 0.0;
          // Mean size normalization keeps the load comparable across
          // spreads: E[e^U] over U(-s, s) is sinh(s)/s.
          const double mean_size =
              log_spread == 0.0 ? 1.0 : std::sinh(log_spread) / log_spread;
          const double lambda = load * kServers / mean_size;
          for (int j = 0; j < 600; ++j) {
            t += exponential(rng, lambda);
            jobs.push_back(
                {t, std::exp(uniform(rng, -log_spread, log_spread)),
                 bernoulli(rng, frac)
                     ? 1.0 + std::floor(uniform(rng, 0.0, 2.0 * kServers))
                     : 1.0});
          }
          const double alg = srpt_k_online(jobs, kServers)
                                 .total_response_time;
          ratios.add(alg / online_lower_bound(jobs, kServers));
        }
        table.add_row({format_double(load, 3),
                       format_double(std::exp(2.0 * log_spread), 4),
                       format_double(frac, 2),
                       format_double(ratios.mean(), 4),
                       format_double(ratios.max(), 4)});
      }
    }
  }
  table.print(std::cout);
  std::printf("\nRatios stay O(1) on stochastic traffic at every load and "
              "spread — the worst-case Theta(log p) gap needs adversarial "
              "correlated releases, which Poisson arrivals do not produce. "
              "This is the paper's motivation for §2's stochastic model.\n");
  return 0;
}
