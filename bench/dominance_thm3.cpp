// Theorem 3 (paper §4.2): on any fixed arrival sequence, IF's total work
// W(t) and inelastic work W_I(t) are pointwise dominated by every policy
// in P (work-conserving, inelastic-FCFS). This harness replays random
// traces across a parameter sweep, measures the worst pointwise violation
// (which should be numerically zero), and reports the average work gap —
// i.e., HOW MUCH slack IF buys, not just that it wins.
//
// Thin wrapper over the sweep engine: each point of the built-in
// "dominance-thm3" scenario replays the case's fixed trace (derived from
// options.trace_seed) under its policy and under IF via the 'trace'
// solver; the shared "dominance" report view prints the comparison.
#include <cstdio>
#include <iostream>

#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

int main() {
  using namespace esched;
  std::printf("=== Theorem 3 reproduction: pointwise work dominance of IF "
              "over class P ===\n");
  const Scenario scenario = builtin_scenario("dominance-thm3");
  const auto points = scenario.expand();
  SweepRunner runner;
  SweepStats stats;
  const auto results = runner.run(points, &stats);
  print_view("dominance", std::cout, scenario, points, results, stats);
  return 0;
}
