// Theorem 3 (paper §4.2): on any fixed arrival sequence, IF's total work
// W(t) and inelastic work W_I(t) are pointwise dominated by every policy
// in P (work-conserving, inelastic-FCFS). This harness replays random
// traces across a parameter sweep, measures the worst pointwise violation
// (which should be numerically zero), and reports the average work gap —
// i.e., HOW MUCH slack IF buys, not just that it wins.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "core/policies.hpp"
#include "sim/coupled.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace esched;
  constexpr int kServers = 4;
  constexpr double kHorizon = 1500.0;

  std::printf("=== Theorem 3 reproduction: pointwise work dominance of IF "
              "over class P ===\n");
  Table table({"mu_I", "mu_E", "rho", "policy", "max W viol", "max W_I viol",
               "avg W gap", "checkpoints"});

  const struct {
    double mu_i, mu_e, rho;
  } settings[] = {{1.0, 1.0, 0.6}, {2.0, 1.0, 0.8}, {0.25, 1.0, 0.9},
                  {3.25, 1.0, 0.7}, {1.0, 1.0, 0.95}};
  double worst_violation = 0.0;
  for (const auto& s : settings) {
    const SystemParams p =
        SystemParams::from_load(kServers, s.mu_i, s.mu_e, s.rho);
    const Trace trace = generate_trace(p, kHorizon, 2026);
    const WorkPath if_path = run_on_trace(trace, p, InelasticFirst{});
    const std::vector<PolicyPtr> family = {
        make_elastic_first(), make_fair_share(), make_inelastic_cap(1),
        make_inelastic_cap(2), make_inelastic_cap(3)};
    for (const auto& policy : family) {
      const WorkPath other = run_on_trace(trace, p, *policy);
      const DominanceReport report = check_dominance(if_path, other);
      // Average gap W_pi(t) - W_IF(t) sampled uniformly over the horizon.
      double gap = 0.0;
      const int samples = 4000;
      for (int n = 0; n < samples; ++n) {
        const double t = kHorizon * (n + 0.5) / samples;
        gap += other.total_work_at(t) - if_path.total_work_at(t);
      }
      gap /= samples;
      worst_violation = std::max(
          {worst_violation, report.max_total_violation,
           report.max_inelastic_violation});
      table.add_row({format_double(s.mu_i), format_double(s.mu_e),
                     format_double(s.rho), policy->name(),
                     format_double(report.max_total_violation, 3),
                     format_double(report.max_inelastic_violation, 3),
                     format_double(gap), std::to_string(report.num_checkpoints)});
    }
  }
  table.print(std::cout);
  std::printf("\nworst pointwise violation over all runs: %.3g "
              "(theory: exactly 0; float error only)\n",
              worst_violation);
  std::printf("avg W gap >= 0 everywhere: IF keeps the least work in "
              "system, as Theorem 3 proves.\n");
  return 0;
}
