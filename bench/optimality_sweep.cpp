// Section 4 optimality sweep: exact truncated-CTMC mean response times for
// the whole enumerable policy family, across the (mu_I, mu_E) diagonal
// cases the theorems cover. Reproduces:
//  - Theorems 1 & 5: IF is the family minimum whenever mu_I >= mu_E;
//  - §4.3: below the diagonal, EF (or an intermediate cap policy) can win;
//  - Appendix B: idling strictly hurts.
// This is the "MDP-style" brute-force baseline of [7] that §5's analysis
// replaces; it doubles here as ground truth.
//
// Thin wrapper over the sweep engine: the spot settings are the engine's
// built-in "optimality-family" scenario (exact-CTMC points at one params
// share a single chain skeleton via ExactCtmcBatch), rendered by the
// shared "family" report view.
#include <cstdio>
#include <iostream>

#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

int main() {
  using namespace esched;
  const Scenario scenario = builtin_scenario("optimality-family");

  std::printf("=== Section 4 optimality sweep (exact truncated chain, "
              "k = %d, lambda_I = lambda_E) ===\n",
              scenario.cases.front().k);
  const auto points = scenario.expand();
  SweepRunner runner;
  SweepStats stats;
  const auto results = runner.run(points, &stats);

  ViewOptions view;
  view.policy_labels = {"IF", "EF", "FairShare", "Cap2", "IF+idle"};
  view.column_labels = {"IF", "EF", "Fair", "Cap2", "IF+idle"};
  print_view("family", std::cout, scenario, points, results, stats, view);
  std::printf("Below the diagonal EF takes over at high load (paper §4.3); "
              "the idling variant never wins (Appendix B).\n");
  return 0;
}
