// Section 4 optimality sweep: exact truncated-CTMC mean response times for
// the whole enumerable policy family, across the (mu_I, mu_E) diagonal
// cases the theorems cover. Reproduces:
//  - Theorems 1 & 5: IF is the family minimum whenever mu_I >= mu_E;
//  - §4.3: below the diagonal, EF (or an intermediate cap policy) can win;
//  - Appendix B: idling strictly hurts.
// This is the "MDP-style" brute-force baseline of [7] that §5's analysis
// replaces; it doubles here as ground truth.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "core/exact_ctmc.hpp"
#include "core/policies.hpp"

int main() {
  using namespace esched;
  constexpr int kServers = 4;

  std::printf("=== Section 4 optimality sweep (exact truncated chain, "
              "k = %d, lambda_I = lambda_E) ===\n",
              kServers);
  Table table({"mu_I", "mu_E", "rho", "E[T] IF", "E[T] EF", "E[T] Fair",
               "E[T] Cap2", "E[T] IF+idle", "best", "IF optimal?"});

  std::vector<std::pair<PolicyPtr, const char*>> family = {
      {make_inelastic_first(), "IF"},
      {make_elastic_first(), "EF"},
      {make_fair_share(), "FairShare"},
      {make_inelastic_cap(2), "Cap2"},
      {make_idling(make_inelastic_first(), 1.0), "IF+idle"}};

  const struct {
    double mu_i, mu_e, rho;
  } settings[] = {{1.0, 1.0, 0.5},  {1.0, 1.0, 0.8},  {2.0, 1.0, 0.5},
                  {2.0, 1.0, 0.9},  {3.25, 1.0, 0.7}, {0.25, 1.0, 0.5},
                  {0.25, 1.0, 0.9}, {0.5, 1.0, 0.9},  {0.9, 1.0, 0.7}};
  int theorem5_checks = 0;
  int theorem5_holds = 0;
  for (const auto& s : settings) {
    const SystemParams p =
        SystemParams::from_load(kServers, s.mu_i, s.mu_e, s.rho);
    ExactCtmcOptions opt;
    opt.imax = opt.jmax = suggested_truncation(p.rho(), 1e-9);

    std::vector<double> et;
    et.reserve(family.size());
    for (const auto& [policy, name] : family) {
      et.push_back(solve_exact_ctmc(p, *policy, opt).mean_response_time);
    }
    std::size_t best = 0;
    for (std::size_t n = 1; n < et.size(); ++n) {
      if (et[n] < et[best]) best = n;
    }
    const bool diagonal_or_above = s.mu_i >= s.mu_e;
    const bool if_optimal = et[0] <= et[best] * (1.0 + 1e-9);
    if (diagonal_or_above) {
      ++theorem5_checks;
      if (if_optimal) ++theorem5_holds;
    }
    table.add_row({format_double(s.mu_i), format_double(s.mu_e),
                   format_double(s.rho), format_double(et[0]),
                   format_double(et[1]), format_double(et[2]),
                   format_double(et[3]), format_double(et[4]),
                   family[best].second, if_optimal ? "yes" : "no"});
  }
  table.print(std::cout);
  std::printf("\nTheorem 5 (mu_I >= mu_E => IF optimal in family): %d/%d "
              "settings hold.\n",
              theorem5_holds, theorem5_checks);
  std::printf("Below the diagonal EF takes over at high load (paper §4.3); "
              "the idling variant never wins (Appendix B).\n");
  return 0;
}
