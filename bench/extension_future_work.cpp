// The paper's §6 open problems, explored experimentally:
//  (1) bounded elasticity — elastic jobs parallelize only up to a cap c:
//      sweep c and show the capacity-vs-scheduling trade under cap-aware
//      IF and EF (exact truncated chain);
//  (2) more than two classes — three classes with distinct caps and
//      sizes: compare the natural priority-order generalizations by
//      simulation, probing whether "least parallelizable first" keeps
//      winning when caps and sizes are aligned, and what happens when
//      they are opposed.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/exact_ctmc.hpp"
#include "core/policies.hpp"
#include "multiclass/multiclass.hpp"

namespace {

using namespace esched;

void bounded_elasticity_sweep() {
  std::printf("--- (1) Bounded elasticity: k = 4, mu_I = mu_E = 1, "
              "rho = 0.7 ---\n");
  const SystemParams base = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  ExactCtmcOptions opt;
  opt.imax = opt.jmax = suggested_truncation(base.rho(), 1e-9);
  Table table({"elastic cap c", "E[T] IF", "E[T] EF", "winner"});
  for (int cap : {4, 3, 2, 1}) {
    SystemParams p = base;
    p.elastic_cap = cap;
    const double et_if =
        solve_exact_ctmc(p, InelasticFirst{}, opt).mean_response_time;
    const double et_ef =
        solve_exact_ctmc(p, ElasticFirst{}, opt).mean_response_time;
    table.add_row({std::to_string(cap), format_double(et_if),
                   format_double(et_ef),
                   et_if <= et_ef ? "IF" : "EF"});
  }
  table.print(std::cout);
  std::printf("IF stays optimal at every cap (consistent with the §2 "
              "renormalization remark); capping HELPS EF (it forces "
              "IF-like sharing) until c = 1 removes all parallelism.\n\n");
}

void multiclass_orders() {
  std::printf("--- (2) Three classes: priority-order shoot-out "
              "(simulation, 200k jobs) ---\n");
  // Aligned: smaller jobs are also less parallelizable (the common case
  // of §1.3). Opposed: the big jobs are the rigid ones.
  const struct {
    const char* label;
    MultiClassParams params;
  } scenarios[] = {
      {"aligned (small=rigid, big=elastic)",
       {8,
        {{"small-rigid", 4.0, 8.0, 1.0},
         {"mid", 1.0, 1.0, 4.0},
         {"big-elastic", 0.2, 0.125, 8.0}}}},
      {"opposed (big=rigid, small=elastic)",
       {8,
        {{"big-rigid", 0.4, 0.25, 1.0},
         {"mid", 1.0, 1.0, 4.0},
         {"small-elastic", 4.0, 4.0, 8.0}}}},
  };
  for (const auto& scenario : scenarios) {
    const MultiClassParams& p = scenario.params;
    std::printf("\n%s (rho = %.2f):\n", scenario.label, p.rho());
    Table table({"priority order", "E[T]", "95% CI", "class means"});
    const struct {
      const char* name;
      std::vector<int> order;
    } orders[] = {
        {"least-parallelizable-first", least_parallelizable_first(p)},
        {"most-parallelizable-first", most_parallelizable_first(p)},
        {"smallest-size-first", smallest_size_first(p)},
    };
    MultiClassSimOptions opt;
    opt.num_jobs = 200000;
    opt.warmup_jobs = 20000;
    opt.seed = 4242;
    for (const auto& o : orders) {
      const MultiClassSimResult r = simulate_multiclass(p, o.order, opt);
      std::string class_means;
      for (std::size_t n = 0; n < p.classes.size(); ++n) {
        if (n) class_means += " / ";
        class_means += format_double(r.class_response_time[n], 3);
      }
      table.add_row({o.name, format_double(r.mean_response_time.mean),
                     "+-" + format_double(r.mean_response_time.half_width, 2),
                     class_means});
    }
    table.print(std::cout);
  }
  std::printf("\nAligned caps/sizes: the IF generalization (least "
              "parallelizable first) wins, extending Theorem 5's intuition."
              "\nOpposed: size priority and parallelizability priority "
              "conflict — the optimal multi-class policy is genuinely "
              "open, as §6 states.\n");
}

}  // namespace

int main() {
  std::printf("=== §6 future-work extensions ===\n\n");
  bounded_elasticity_sweep();
  multiclass_orders();
  return 0;
}
