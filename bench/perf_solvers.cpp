// Performance/ablation suite (google-benchmark):
//  - QBD analysis cost vs k — the paper's pitch against [7]'s truncated
//    MDP approach is that the matrix-analytic solution is cheap and does
//    not truncate; quantify it.
//  - Exact truncated-chain solve cost vs truncation level (the [7]-style
//    baseline this library also ships).
//  - Job-level and state-level simulator throughput.
//  - Coxian busy-period fit cost.
#include <benchmark/benchmark.h>

#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "phase/fit.hpp"
#include "phase/size_dist.hpp"
#include "queueing/mm1.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/ctmc_sim.hpp"

namespace {

using namespace esched;

void BM_IfAnalysis(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const SystemParams p = SystemParams::from_load(k, 2.0, 1.0, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_inelastic_first(p).mean_response_time);
  }
}
BENCHMARK(BM_IfAnalysis)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EfAnalysis(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const SystemParams p = SystemParams::from_load(k, 2.0, 1.0, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_elastic_first(p).mean_response_time);
  }
}
BENCHMARK(BM_EfAnalysis)->Arg(2)->Arg(4)->Arg(16)->Arg(64);

void BM_ExactCtmcSolve(benchmark::State& state) {
  const long trunc = state.range(0);
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  ExactCtmcOptions opt;
  opt.imax = opt.jmax = trunc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_exact_ctmc(p, InelasticFirst{}, opt).mean_response_time);
  }
  state.SetComplexityN(trunc);
}
BENCHMARK(BM_ExactCtmcSolve)->Arg(20)->Arg(40)->Arg(80)->Arg(160)
    ->Unit(benchmark::kMillisecond)->Complexity();

// The same truncated solve with Erlang-3 inelastic sizes: the state
// augmentation multiplies the space by the seat-phase configurations
// (C(k+m, m) per (w, j) cell), which is the cost of dropping the Exp(mu_I)
// assumption exactly rather than by simulation.
void BM_ExactCtmcPhSolve(benchmark::State& state) {
  const long trunc = state.range(0);
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  const PhaseType erl3 = SizeDistSpec::parse("erlang:3").compile(p.mu_i);
  ExactCtmcOptions opt;
  opt.imax = opt.jmax = trunc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_exact_ctmc_ph(p, InelasticFirst{}, erl3, opt)
            .mean_response_time);
  }
  state.SetComplexityN(trunc);
}
BENCHMARK(BM_ExactCtmcPhSolve)->Arg(20)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_JobLevelSimulator(benchmark::State& state) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  SimOptions opt;
  opt.num_jobs = 20000;
  opt.warmup_jobs = 1000;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    benchmark::DoNotOptimize(
        simulate(p, InelasticFirst{}, opt).mean_response_time.mean);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(opt.num_jobs));
}
BENCHMARK(BM_JobLevelSimulator)->Unit(benchmark::kMillisecond);

void BM_CtmcSimulator(benchmark::State& state) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  CtmcSimOptions opt;
  opt.horizon = 10000.0;
  opt.warmup = 500.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    benchmark::DoNotOptimize(
        simulate_ctmc(p, InelasticFirst{}, opt).mean_response_time);
  }
}
BENCHMARK(BM_CtmcSimulator)->Unit(benchmark::kMillisecond);

void BM_Coxian2Fit(benchmark::State& state) {
  const Moments3 m = MM1(0.9, 1.0).busy_period_moments();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_coxian2(m).nu1);
  }
}
BENCHMARK(BM_Coxian2Fit);

}  // namespace

BENCHMARK_MAIN();
