// Performance suite emitting schema-versioned BENCH_perf.json snapshots,
// so the perf trajectory is tracked per PR instead of anecdotal:
//  - QBD analysis cost vs k — the paper's pitch against [7]'s truncated
//    MDP approach is that the matrix-analytic solution is cheap and does
//    not truncate; quantify it.
//  - Exact truncated-chain solve cost vs truncation level (the [7]-style
//    baseline this library also ships), plus the phase-type-augmented
//    chain, with peak state counts recorded per case.
//  - Job-level and state-level simulator throughput (jobs/second).
//  - Coxian busy-period fit cost.
//  - Distributed-queue claim/commit overhead per chunk (src/dist) — the
//    coordination cost a worker pays on top of the solver cost.
//
// Dependency-free by design (no google-benchmark): each case runs
// repeatedly until --min-time accumulates, and the JSON carries per-case
// mean/min/max/p50/p90/p99 wall seconds, optional items/second, case
// counters (states, iterations), and host info. Modes:
//
//   bench_perf_solvers --out BENCH_perf.json          # full run
//   bench_perf_solvers --smoke --out BENCH_perf.json  # CI: 1 iter, small args
//   bench_perf_solvers --filter exact                 # substring filter
//   bench_perf_solvers --validate BENCH_perf.json     # schema check, exit 0/1
//
// Compare snapshots across PRs with `diff` or jq; see README
// "Observability". The schema_version field gates automated comparisons.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if __has_include(<unistd.h>)
#include <unistd.h>
#endif

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "dist/work_queue.hpp"
#include "engine/shm_cache.hpp"
#include "engine/spec.hpp"
#include "engine/sweep_runner.hpp"
#include "obs/bench_diff.hpp"
#include "phase/fit.hpp"
#include "phase/size_dist.hpp"
#include "queueing/mm1.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/ctmc_sim.hpp"

namespace {

using namespace esched;

// The snapshot format tag and version live in obs/bench_diff (shared with
// `esched bench diff`, so the emitter, validator, and comparator can
// never disagree about the schema): kBenchFormat, kBenchSchemaVersion.

/// Optimization sink: assigning through a volatile keeps the measured
/// computation alive without a compiler-specific DoNotOptimize.
volatile double g_sink = 0.0;

/// One registered case. `body` runs one timed iteration and may fill
/// `counters` (last write wins — counters describe the workload, not the
/// timing). full_only cases are skipped in --smoke mode, which keeps one
/// small representative per family.
struct BenchCase {
  std::string name;
  bool full_only = false;
  double items_per_iteration = 0.0;  ///< > 0 enables items_per_second
  std::function<void(std::map<std::string, double>& counters)> body;
};

struct BenchResult {
  std::string name;
  std::vector<double> samples;  ///< per-iteration wall seconds
  double items_per_iteration = 0.0;
  std::map<std::string, double> counters;
};

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// Times `bench.body` until `min_time` seconds accumulate (at least one
/// iteration, at most 10000). Smoke mode passes min_time 0 → exactly one.
BenchResult run_case(const BenchCase& bench, double min_time) {
  BenchResult result;
  result.name = bench.name;
  result.items_per_iteration = bench.items_per_iteration;
  double total = 0.0;
  while (result.samples.empty() ||
         (total < min_time && result.samples.size() < 10000)) {
    const auto start = std::chrono::steady_clock::now();
    bench.body(result.counters);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.samples.push_back(seconds);
    total += seconds;
  }
  return result;
}

JsonValue host_info() {
  JsonValue host = JsonValue::make_object();
  std::string hostname = "unknown";
#if __has_include(<unistd.h>)
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    hostname = buf;
  }
#endif
  host.set("hostname", JsonValue::make_string(hostname));
  host.set("hardware_threads",
           JsonValue::make_number(
               static_cast<double>(std::thread::hardware_concurrency())));
#if defined(__VERSION__)
  host.set("compiler", JsonValue::make_string(__VERSION__));
#else
  host.set("compiler", JsonValue::make_string("unknown"));
#endif
  host.set("pointer_bits",
           JsonValue::make_number(static_cast<double>(sizeof(void*) * 8)));
#if defined(NDEBUG)
  host.set("assertions", JsonValue::make_bool(false));
#else
  host.set("assertions", JsonValue::make_bool(true));
#endif
  return host;
}

JsonValue result_to_json(const BenchResult& r) {
  std::vector<double> sorted = r.samples;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (const double s : sorted) sum += s;
  const double mean = sum / static_cast<double>(sorted.size());
  JsonValue entry = JsonValue::make_object();
  entry.set("name", JsonValue::make_string(r.name));
  entry.set("iterations",
            JsonValue::make_number(static_cast<double>(sorted.size())));
  entry.set("mean_seconds", JsonValue::make_number(mean));
  entry.set("min_seconds", JsonValue::make_number(sorted.front()));
  entry.set("max_seconds", JsonValue::make_number(sorted.back()));
  entry.set("p50_seconds", JsonValue::make_number(percentile(sorted, 0.50)));
  entry.set("p90_seconds", JsonValue::make_number(percentile(sorted, 0.90)));
  entry.set("p99_seconds", JsonValue::make_number(percentile(sorted, 0.99)));
  if (r.items_per_iteration > 0.0 && mean > 0.0) {
    entry.set("items_per_second",
              JsonValue::make_number(r.items_per_iteration / mean));
  }
  if (!r.counters.empty()) {
    JsonValue counters = JsonValue::make_object();
    for (const auto& [name, value] : r.counters) {
      counters.set(name, JsonValue::make_number(value));
    }
    entry.set("counters", std::move(counters));
  }
  return entry;
}

// ---------------------------------------------------------------------------
// Case registration. Mirrors the historical google-benchmark suite: same
// workloads, same arguments, so old anecdotal numbers stay comparable.

std::vector<BenchCase> build_cases() {
  std::vector<BenchCase> cases;

  for (const int k : {2, 4, 8, 16, 32, 64}) {
    cases.push_back(
        {"if_analysis/k=" + std::to_string(k), k != 4, 0.0,
         [k](std::map<std::string, double>& counters) {
           const SystemParams p = SystemParams::from_load(k, 2.0, 1.0, 0.8);
           const ResponseTimeAnalysis a = analyze_inelastic_first(p);
           g_sink = a.mean_response_time;
           counters["qbd_iterations"] = a.qbd_iterations;
         }});
  }
  for (const int k : {2, 4, 16, 64}) {
    cases.push_back(
        {"ef_analysis/k=" + std::to_string(k), k != 4, 0.0,
         [k](std::map<std::string, double>& counters) {
           const SystemParams p = SystemParams::from_load(k, 2.0, 1.0, 0.8);
           const ResponseTimeAnalysis a = analyze_elastic_first(p);
           g_sink = a.mean_response_time;
           counters["qbd_iterations"] = a.qbd_iterations;
         }});
  }
  for (const long trunc : {20L, 40L, 80L, 160L}) {
    cases.push_back(
        {"exact_ctmc/trunc=" + std::to_string(trunc), trunc != 20, 0.0,
         [trunc](std::map<std::string, double>& counters) {
           const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
           ExactCtmcOptions opt;
           opt.imax = opt.jmax = trunc;
           const ExactCtmcResult r =
               solve_exact_ctmc(p, InelasticFirst{}, opt);
           g_sink = r.mean_response_time;
           counters["states"] = static_cast<double>(r.num_states);
           counters["solver_iterations"] =
               static_cast<double>(r.solve_info.iterations);
         }});
  }
  // The same truncated solve with Erlang-3 inelastic sizes: the state
  // augmentation multiplies the space by the seat-phase configurations,
  // which is the cost of dropping the Exp(mu_I) assumption exactly.
  for (const long trunc : {20L, 40L, 80L}) {
    cases.push_back(
        {"exact_ctmc_ph_erlang3/trunc=" + std::to_string(trunc), trunc != 20,
         0.0, [trunc](std::map<std::string, double>& counters) {
           const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
           const PhaseType erl3 =
               SizeDistSpec::parse("erlang:3").compile(p.mu_i);
           ExactCtmcOptions opt;
           opt.imax = opt.jmax = trunc;
           const ExactCtmcResult r =
               solve_exact_ctmc_ph(p, InelasticFirst{}, erl3, opt);
           g_sink = r.mean_response_time;
           counters["states"] = static_cast<double>(r.num_states);
         }});
  }
  // CSR-sweep SOR cost on the plain chain (explicit method=sor): the
  // iterative baseline the direct solvers below are judged against.
  for (const long trunc : {40L, 80L}) {
    cases.push_back(
        {"sor_csr/trunc=" + std::to_string(trunc), trunc != 40, 0.0,
         [trunc](std::map<std::string, double>& counters) {
           const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
           ExactCtmcOptions opt;
           opt.imax = opt.jmax = trunc;
           opt.method = StationaryMethod::kSor;
           const ExactCtmcResult r =
               solve_exact_ctmc(p, InelasticFirst{}, opt);
           g_sink = r.mean_response_time;
           counters["states"] = static_cast<double>(r.num_states);
           counters["solver_iterations"] =
               static_cast<double>(r.solve_info.iterations);
         }});
  }
  // Direct solvers head to head on the same chain: dense GTH is O(n^3) in
  // the full state count, block elimination O(levels * block^3) — same
  // stationary vector to ~1e-10.
  for (const long trunc : {20L, 40L}) {
    for (const StationaryMethod method :
         {StationaryMethod::kGth, StationaryMethod::kBlock}) {
      cases.push_back(
          {"exact_block_vs_gth/method=" +
               std::string(stationary_method_name(method)) +
               "/trunc=" + std::to_string(trunc),
           trunc != 20, 0.0,
           [trunc, method](std::map<std::string, double>& counters) {
             const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
             ExactCtmcOptions opt;
             opt.imax = opt.jmax = trunc;
             opt.method = method;
             const ExactCtmcResult r =
                 solve_exact_ctmc(p, InelasticFirst{}, opt);
             g_sink = r.mean_response_time;
             counters["states"] = static_cast<double>(r.num_states);
           }});
    }
  }
  // The PR 7 headline A/B: the phase-augmented chain at imax=jmax=120
  // (58201 states), where SOR needs ~29k sweeps at this load and the block
  // solver replaces them with one backward/forward elimination pass.
  for (const StationaryMethod method :
       {StationaryMethod::kBlock, StationaryMethod::kSor}) {
    cases.push_back(
        {"exact_ph_erlang4_rho995_trunc120/method=" +
             std::string(stationary_method_name(method)),
         true, 0.0, [method](std::map<std::string, double>& counters) {
           const SystemParams p = SystemParams::from_load(1, 1.0, 1.0, 0.995);
           const PhaseType erl4 =
               SizeDistSpec::parse("erlang:4").compile(p.mu_i);
           ExactCtmcOptions opt;
           opt.imax = opt.jmax = 120;
           opt.method = method;
           const ExactCtmcResult r =
               solve_exact_ctmc_ph(p, InelasticFirst{}, erl4, opt);
           g_sink = r.mean_response_time;
           counters["states"] = static_cast<double>(r.num_states);
           counters["solver_iterations"] =
               static_cast<double>(r.solve_info.iterations);
         }});
  }
  {
    constexpr std::uint64_t kJobs = 20000;
    // Per-iteration seed bump keeps iterations honest (no chance of the
    // branch predictor learning one fixed trace) without touching any
    // engine RNG stream.
    auto seed = std::make_shared<std::uint64_t>(1);
    cases.push_back(
        {"sim_job_level", false, static_cast<double>(kJobs),
         [seed](std::map<std::string, double>& counters) {
           const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
           SimOptions opt;
           opt.num_jobs = kJobs;
           opt.warmup_jobs = 1000;
           opt.seed = (*seed)++;
           g_sink = simulate(p, InelasticFirst{}, opt).mean_response_time.mean;
           counters["jobs"] = static_cast<double>(kJobs);
         }});
  }
  {
    auto seed = std::make_shared<std::uint64_t>(1);
    cases.push_back(
        {"sim_ctmc", false, 0.0,
         [seed](std::map<std::string, double>&) {
           const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
           CtmcSimOptions opt;
           opt.horizon = 10000.0;
           opt.warmup = 500.0;
           opt.seed = (*seed)++;
           g_sink = simulate_ctmc(p, InelasticFirst{}, opt).mean_response_time;
         }});
  }
  cases.push_back({"coxian2_fit", false, 0.0,
                   [](std::map<std::string, double>&) {
                     const Moments3 m = MM1(0.9, 1.0).busy_period_moments();
                     g_sink = fit_coxian2(m).nu1;
                   }});

  // Hot-path result-cache lookups: the mmap'd open-addressing table
  // (engine/shm_cache) against the file-per-entry tier it sits in front
  // of. One iteration hits every prewarmed key once, so items_per_second
  // is warm hits/second and shm_probe_hit vs file_load_hit is the
  // per-hit speedup of replacing a file open + text parse with a
  // lock-free probe of shared memory.
  {
    constexpr std::size_t kCacheKeys = 256;
    const auto bench_key = [](std::size_t i) {
      return "bench;cache;solver=qbd;point=" + std::to_string(i);
    };
    const auto bench_result = [](std::size_t i) {
      RunResult r;
      r.mean_response_time = 1.0 + 0.001 * static_cast<double>(i);
      r.mean_jobs_i = 0.5 * static_cast<double>(i);
      r.num_states = static_cast<long>(i);
      r.solver_iterations = static_cast<int>(i % 97);
      r.solve_residual = 1e-12;
      return r;
    };
    cases.push_back(
        {"cache_hot_path/shm_probe_hit", false,
         static_cast<double>(kCacheKeys),
         [bench_key, bench_result](std::map<std::string, double>& counters) {
           namespace fs = std::filesystem;
           static const auto table = [&] {
             const std::string dir =
                 (fs::temp_directory_path() / "esched_bench_cache_shm")
                     .string();
             fs::remove_all(dir);
             fs::create_directories(dir);
             auto t = ShmResultCache::open_or_create(dir, 1024);
             ESCHED_CHECK(t != nullptr, "bench: cannot map cache table");
             for (std::size_t i = 0; i < kCacheKeys; ++i) {
               t->store(bench_key(i), bench_result(i));
             }
             return t;
           }();
           double sum = 0.0;
           for (std::size_t i = 0; i < kCacheKeys; ++i) {
             const auto hit = table->load(bench_key(i));
             sum += hit ? hit->mean_response_time : 0.0;
           }
           g_sink = sum;
           counters["keys"] = static_cast<double>(kCacheKeys);
           counters["slot_count"] = static_cast<double>(table->slot_count());
         }});
    cases.push_back(
        {"cache_hot_path/file_load_hit", true,
         static_cast<double>(kCacheKeys),
         [bench_key, bench_result](std::map<std::string, double>& counters) {
           namespace fs = std::filesystem;
           static const auto files = [&] {
             const std::string dir =
                 (fs::temp_directory_path() / "esched_bench_cache_files")
                     .string();
             fs::remove_all(dir);
             auto cache = std::make_unique<DiskResultCache>(dir);
             for (std::size_t i = 0; i < kCacheKeys; ++i) {
               cache->store(bench_key(i), bench_result(i));
             }
             return cache;
           }();
           double sum = 0.0;
           for (std::size_t i = 0; i < kCacheKeys; ++i) {
             const auto hit = files->load(bench_key(i));
             sum += hit ? hit->mean_response_time : 0.0;
           }
           g_sink = sum;
           counters["keys"] = static_cast<double>(kCacheKeys);
         }});
    // Fresh-table stores (creation + ftruncate + kCacheKeys CAS-claimed
    // publishes per iteration) — the cold half of the table's life.
    cases.push_back(
        {"cache_hot_path/shm_store", true, static_cast<double>(kCacheKeys),
         [bench_key, bench_result](std::map<std::string, double>& counters) {
           namespace fs = std::filesystem;
           static std::uint64_t run_id = 0;
           const std::string dir =
               (fs::temp_directory_path() /
                ("esched_bench_cache_store." + std::to_string(++run_id)))
                   .string();
           fs::remove_all(dir);
           fs::create_directories(dir);
           auto table = ShmResultCache::open_or_create(dir, 1024);
           ESCHED_CHECK(table != nullptr, "bench: cannot map cache table");
           for (std::size_t i = 0; i < kCacheKeys; ++i) {
             table->store(bench_key(i), bench_result(i));
           }
           counters["keys"] = static_cast<double>(kCacheKeys);
           table.reset();
           fs::remove_all(dir);
         }});
  }
  // Warm full-rerun wall clock: a complete SweepRunner pass where every
  // point is a --cache-dir hit, table tier vs file tier. This is the
  // user-visible number behind the hot-path cases above — the cost of
  // re-running a finished sweep (the CSV bytes are identical either way).
  for (const bool use_table : {true, false}) {
    cases.push_back(
        {std::string("cache_warm_rerun/") + (use_table ? "table" : "files"),
         true, 336.0,
         [use_table](std::map<std::string, double>& counters) {
           namespace fs = std::filesystem;
           static const std::vector<RunPoint> points = [] {
             Scenario scenario;
             scenario.name = "bench-cache";
             scenario.k_values = {2, 4, 8, 16};
             scenario.rho_values = {0.5, 0.7, 0.9};
             for (int n = 0; n < 14; ++n) {
               scenario.mu_i_values.push_back(0.5 + 0.1 * n);
             }
             scenario.policies = {"IF", "EF"};
             scenario.solvers = {SolverKind::kMmkBaseline};
             return scenario.expand();
           }();
           const std::string dir =
               (fs::temp_directory_path() /
                (std::string("esched_bench_cache_rerun_") +
                 (use_table ? "table" : "files")))
                   .string();
           static std::map<std::string, bool> prewarmed;
           if (!prewarmed[dir]) {
             fs::remove_all(dir);
             SweepRunner warmer(1);
             warmer.set_cache_dir(dir, use_table);
             warmer.run(points, nullptr);
             prewarmed[dir] = true;
           }
           SweepRunner runner(1);
           runner.set_cache_dir(dir, use_table);
           SweepStats stats;
           const auto results = runner.run(points, &stats);
           g_sink = results.front().mean_response_time;
           counters["points"] = static_cast<double>(points.size());
           counters["disk_hits"] = static_cast<double>(stats.disk_hits);
         }});
  }

  // Pure coordination overhead of the distributed queue: one claim (task
  // scan + atomic rename + owner stamp) plus one commit (chunk CSV + JSON
  // written atomically, done record, lease drop) per iteration, with the
  // solver replaced by precomputed results. The per-POINT overhead divides
  // by the chunk size, which is why even a few-ms chunk cost vanishes next
  // to real solves once chunks hold dozens of points.
  for (const std::size_t chunk_size : {std::size_t{1}, std::size_t{16},
                                       std::size_t{64}}) {
    // One iteration inits a fresh queue and drains all 64 points through
    // claim+commit, so items_per_second is protocol points/second at this
    // chunk size.
    cases.push_back(
        {"queue_claim_commit/chunk=" + std::to_string(chunk_size),
         chunk_size != 16, 64.0,
         [chunk_size](std::map<std::string, double>& counters) {
           namespace fs = std::filesystem;
           static std::uint64_t run_id = 0;
           const std::string dir =
               (fs::temp_directory_path() /
                ("esched_bench_queue." + std::to_string(++run_id)))
                   .string();
           // A 64-point sweep on the closed-form mmk backend; solved up
           // front so the timed body measures the queue protocol.
           static const auto fixture = [] {
             Scenario scenario;
             scenario.name = "bench-queue";
             scenario.k_values = {4};
             scenario.rho_values = {0.9};
             for (int n = 1; n < 64; ++n) {
               scenario.mu_i_values.push_back(0.5 + 0.01 * n);
             }
             scenario.policies = {"IF"};
             scenario.solvers = {SolverKind::kMmkBaseline};
             LoadedSweep sweep;
             sweep.scenarios = {scenario};
             sweep.grids = {scenario.expand()};
             sweep.scenario_size_dist = {false};
             sweep.total_points = sweep.grids.front().size();
             std::vector<RunResult> results;
             for (const RunPoint& point : sweep.concatenated()) {
               results.push_back(dispatch_run(point));
             }
             return std::make_pair(sweep, results);
           }();
           const LoadedSweep& sweep = fixture.first;
           const std::vector<RunPoint> points = sweep.concatenated();
           const std::vector<RunResult>& results = fixture.second;
           fs::remove_all(dir);
           WorkQueue queue = WorkQueue::init(dir, sweep, chunk_size);
           SweepStats stats;
           stats.total_points = chunk_size;
           std::size_t chunks = 0;
           for (const ChunkTask& task : queue.pending_tasks()) {
             if (!queue.claim(task, "bench")) continue;
             const std::vector<RunPoint> slice(
                 points.begin() + static_cast<std::ptrdiff_t>(task.begin),
                 points.begin() + static_cast<std::ptrdiff_t>(task.end));
             const std::vector<RunResult> slice_results(
                 results.begin() + static_cast<std::ptrdiff_t>(task.begin),
                 results.begin() + static_cast<std::ptrdiff_t>(task.end));
             queue.commit(task, "bench", slice, slice_results, stats);
             ++chunks;
           }
           counters["chunks"] = static_cast<double>(chunks);
           counters["points"] = static_cast<double>(points.size());
           fs::remove_all(dir);
         }});
  }
  return cases;
}

// ---------------------------------------------------------------------------
// Validation: the schema contract CI enforces on every emitted snapshot.
// Delegates to the shared loader in obs/bench_diff — the same parse
// `esched bench diff` applies to both of its inputs — so --validate
// passing guarantees the snapshot feeds the perf gate.

void validate_snapshot(const std::string& path) {
  const BenchSnapshot snapshot = load_bench_snapshot(path);
  ESCHED_CHECK(!snapshot.cases.empty(),
               path + ": snapshot holds no benchmark cases");
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out PATH] [--smoke] [--filter SUBSTR] "
               "[--min-time SECONDS] [--list]\n"
               "       %s --validate PATH\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_perf.json";
  std::string filter;
  std::string validate_path;
  bool smoke = false;
  bool list = false;
  double min_time = 0.2;
  for (int n = 1; n < argc; ++n) {
    const std::string arg = argv[n];
    const auto next = [&]() -> const char* {
      if (n + 1 >= argc) return nullptr;
      return argv[++n];
    };
    if (arg == "--out") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      out_path = value;
    } else if (arg == "--filter") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      filter = value;
    } else if (arg == "--validate") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      validate_path = value;
    } else if (arg == "--min-time") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      min_time = std::atof(value);
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--list") {
      list = true;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    if (!validate_path.empty()) {
      validate_snapshot(validate_path);
      std::printf("%s: valid %s snapshot (schema_version %d)\n",
                  validate_path.c_str(), kBenchFormat, kBenchSchemaVersion);
      return 0;
    }

    const std::vector<BenchCase> cases = build_cases();
    if (list) {
      for (const BenchCase& bench : cases) {
        std::printf("%s%s\n", bench.name.c_str(),
                    bench.full_only ? " (full only)" : "");
      }
      return 0;
    }

    JsonValue root = JsonValue::make_object();
    root.set("format", JsonValue::make_string(kBenchFormat));
    root.set("schema_version",
             JsonValue::make_number(static_cast<double>(kBenchSchemaVersion)));
    root.set("mode", JsonValue::make_string(smoke ? "smoke" : "full"));
    root.set("min_time_seconds",
             JsonValue::make_number(smoke ? 0.0 : min_time));
    root.set("host", host_info());
    JsonValue benchmarks = JsonValue::make_array();
    for (const BenchCase& bench : cases) {
      if (smoke && bench.full_only) continue;
      if (!filter.empty() && bench.name.find(filter) == std::string::npos) {
        continue;
      }
      const BenchResult result = run_case(bench, smoke ? 0.0 : min_time);
      double sum = 0.0;
      for (const double s : result.samples) sum += s;
      std::fprintf(stderr, "%-32s %6zu iters  mean %.6f s\n",
                   result.name.c_str(), result.samples.size(),
                   sum / static_cast<double>(result.samples.size()));
      benchmarks.push_back(result_to_json(result));
    }
    ESCHED_CHECK(!benchmarks.as_array("benchmarks").empty(),
                 filter.empty() ? "no benchmark cases registered"
                                : "--filter '" + filter +
                                      "' matched no benchmark case");
    root.set("benchmarks", std::move(benchmarks));
    atomic_write_file(out_path, root.dump() + "\n");
    std::printf("wrote %s (%s mode)\n", out_path.c_str(),
                smoke ? "smoke" : "full");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_perf_solvers: %s\n", e.what());
    return 1;
  }
}
