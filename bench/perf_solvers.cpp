// Performance/ablation suite (google-benchmark):
//  - QBD analysis cost vs k — the paper's pitch against [7]'s truncated
//    MDP approach is that the matrix-analytic solution is cheap and does
//    not truncate; quantify it.
//  - Exact truncated-chain solve cost vs truncation level (the [7]-style
//    baseline this library also ships).
//  - Job-level and state-level simulator throughput.
//  - Coxian busy-period fit cost.
//  - Distributed-queue claim/commit overhead per chunk (src/dist) — the
//    coordination cost a worker pays on top of the solver cost.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "dist/work_queue.hpp"
#include "engine/spec.hpp"
#include "phase/fit.hpp"
#include "phase/size_dist.hpp"
#include "queueing/mm1.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/ctmc_sim.hpp"

namespace {

using namespace esched;

void BM_IfAnalysis(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const SystemParams p = SystemParams::from_load(k, 2.0, 1.0, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_inelastic_first(p).mean_response_time);
  }
}
BENCHMARK(BM_IfAnalysis)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EfAnalysis(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const SystemParams p = SystemParams::from_load(k, 2.0, 1.0, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_elastic_first(p).mean_response_time);
  }
}
BENCHMARK(BM_EfAnalysis)->Arg(2)->Arg(4)->Arg(16)->Arg(64);

void BM_ExactCtmcSolve(benchmark::State& state) {
  const long trunc = state.range(0);
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  ExactCtmcOptions opt;
  opt.imax = opt.jmax = trunc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_exact_ctmc(p, InelasticFirst{}, opt).mean_response_time);
  }
  state.SetComplexityN(trunc);
}
BENCHMARK(BM_ExactCtmcSolve)->Arg(20)->Arg(40)->Arg(80)->Arg(160)
    ->Unit(benchmark::kMillisecond)->Complexity();

// The same truncated solve with Erlang-3 inelastic sizes: the state
// augmentation multiplies the space by the seat-phase configurations
// (C(k+m, m) per (w, j) cell), which is the cost of dropping the Exp(mu_I)
// assumption exactly rather than by simulation.
void BM_ExactCtmcPhSolve(benchmark::State& state) {
  const long trunc = state.range(0);
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  const PhaseType erl3 = SizeDistSpec::parse("erlang:3").compile(p.mu_i);
  ExactCtmcOptions opt;
  opt.imax = opt.jmax = trunc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_exact_ctmc_ph(p, InelasticFirst{}, erl3, opt)
            .mean_response_time);
  }
  state.SetComplexityN(trunc);
}
BENCHMARK(BM_ExactCtmcPhSolve)->Arg(20)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_JobLevelSimulator(benchmark::State& state) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  SimOptions opt;
  opt.num_jobs = 20000;
  opt.warmup_jobs = 1000;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    benchmark::DoNotOptimize(
        simulate(p, InelasticFirst{}, opt).mean_response_time.mean);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(opt.num_jobs));
}
BENCHMARK(BM_JobLevelSimulator)->Unit(benchmark::kMillisecond);

void BM_CtmcSimulator(benchmark::State& state) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  CtmcSimOptions opt;
  opt.horizon = 10000.0;
  opt.warmup = 500.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    benchmark::DoNotOptimize(
        simulate_ctmc(p, InelasticFirst{}, opt).mean_response_time);
  }
}
BENCHMARK(BM_CtmcSimulator)->Unit(benchmark::kMillisecond);

void BM_Coxian2Fit(benchmark::State& state) {
  const Moments3 m = MM1(0.9, 1.0).busy_period_moments();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_coxian2(m).nu1);
  }
}
BENCHMARK(BM_Coxian2Fit);

// Pure coordination overhead of the distributed queue: one claim (task
// scan + atomic rename + owner stamp) plus one commit (chunk CSV + JSON
// written atomically, done record, lease drop) per iteration, with the
// solver replaced by precomputed results. Arg(n) is the chunk size — the
// per-POINT overhead divides by it, which is why even a few-ms chunk cost
// vanishes next to real solves once chunks hold dozens of points.
void BM_QueueClaimCommit(benchmark::State& state) {
  namespace fs = std::filesystem;
  const std::size_t chunk_size = static_cast<std::size_t>(state.range(0));
  const std::string dir =
      (fs::temp_directory_path() / "esched_bench_queue").string();

  // A 256-point sweep on the closed-form mmk backend; solve it once up
  // front so iterations measure the queue, not the solver.
  Scenario scenario;
  scenario.name = "bench-queue";
  scenario.k_values = {4};
  scenario.rho_values = {0.9};
  for (int n = 0; n < 256; ++n) {
    scenario.mu_i_values.push_back(0.5 + 0.01 * n);
  }
  scenario.mu_i_values.erase(scenario.mu_i_values.begin());  // drop default
  scenario.policies = {"IF"};
  scenario.solvers = {SolverKind::kMmkBaseline};
  LoadedSweep sweep;
  sweep.scenarios = {scenario};
  sweep.grids = {scenario.expand()};
  sweep.scenario_size_dist = {false};
  sweep.total_points = sweep.grids.front().size();
  const std::vector<RunPoint> points = sweep.concatenated();
  std::vector<RunResult> results;
  results.reserve(points.size());
  for (const RunPoint& point : points) results.push_back(dispatch_run(point));
  SweepStats stats;
  stats.total_points = chunk_size;

  fs::remove_all(dir);
  auto queue = WorkQueue::init(dir, sweep, chunk_size);
  auto pending = queue.pending_tasks();
  for (auto _ : state) {
    if (pending.empty()) {
      state.PauseTiming();
      fs::remove_all(dir);
      queue = WorkQueue::init(dir, sweep, chunk_size);
      pending = queue.pending_tasks();
      state.ResumeTiming();
    }
    const ChunkTask task = pending.back();
    pending.pop_back();
    benchmark::DoNotOptimize(queue.claim(task, "bench"));
    const std::vector<RunPoint> slice(points.begin() + task.begin,
                                      points.begin() + task.end);
    const std::vector<RunResult> slice_results(results.begin() + task.begin,
                                               results.begin() + task.end);
    queue.commit(task, "bench", slice, slice_results, stats);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(chunk_size));
  fs::remove_all(dir);
}
BENCHMARK(BM_QueueClaimCommit)->Arg(1)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
