// Figure 6 (paper §5): mean response time under IF and EF as the number of
// servers k grows, at high load rho = 0.9, for the two extreme ends of
// Figure 5c: (mu_I = 0.25, mu_E = 1) where EF dominates, and
// (mu_I = 3.25, mu_E = 1) where IF dominates. Expected shape: the gap
// between the policies persists even at k = 16.
//
// Thin wrapper over the sweep engine: the k-axis is the engine's built-in
// "fig6" scenario (the single source of truth for the figure's axes),
// solved in parallel by the SweepRunner and rendered by the shared "vs-k"
// report view; only the banner and the figure CSV stay here.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

int main() {
  using namespace esched;
  CsvWriter csv("fig6_vs_k.csv", {"mu_i", "mu_e", "k", "et_if", "et_ef"});

  const Scenario scenario = builtin_scenario("fig6");
  const auto points = scenario.expand();
  SweepRunner runner;
  SweepStats stats;
  const auto results = runner.run(points, &stats);

  std::printf("=== Figure 6 reproduction: E[T] vs k at rho = %.1f ===\n",
              scenario.rho_values.front());
  ViewOptions view;
  view.panel_labels = {"(a) mu_I = 0.25, mu_E = 1 (EF region)",
                       "(b) mu_I = 3.25, mu_E = 1 (IF region)"};
  print_view("vs-k", std::cout, scenario, points, results, stats, view);

  // Expansion is row-major over (k, mu_i, policy={IF,EF}): 4 results per
  // k; the figure CSV emits one block per mu_I panel.
  const double mu_e = scenario.mu_e_values.front();
  for (std::size_t panel = 0; panel < scenario.mu_i_values.size(); ++panel) {
    for (std::size_t n = 0; n < scenario.k_values.size(); ++n) {
      const std::size_t cell = (n * scenario.mu_i_values.size() + panel) * 2;
      csv.add_row({format_double(scenario.mu_i_values[panel]),
                   format_double(mu_e), std::to_string(scenario.k_values[n]),
                   format_double(results[cell].mean_response_time),
                   format_double(results[cell + 1].mean_response_time)});
    }
  }
  std::printf("\nwrote fig6_vs_k.csv (%zu rows)\n", csv.num_rows());
  return 0;
}
