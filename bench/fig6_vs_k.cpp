// Figure 6 (paper §5): mean response time under IF and EF as the number of
// servers k grows, at high load rho = 0.9, for the two extreme ends of
// Figure 5c: (mu_I = 0.25, mu_E = 1) where EF dominates, and
// (mu_I = 3.25, mu_E = 1) where IF dominates. Expected shape: the gap
// between the policies persists even at k = 16.
//
// Thin wrapper over the sweep engine: the k-axis is the engine's built-in
// "fig6" scenario (the single source of truth for the figure's axes),
// solved in parallel by the SweepRunner; only the printing stays here.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

int main() {
  using namespace esched;
  CsvWriter csv("fig6_vs_k.csv", {"mu_i", "mu_e", "k", "et_if", "et_ef"});

  const Scenario scenario = builtin_scenario("fig6");
  ESCHED_CHECK(scenario.policies == std::vector<std::string>({"IF", "EF"}) &&
                   scenario.solvers.size() == 1 &&
                   scenario.rho_values.size() == 1 &&
                   scenario.mu_i_values.size() == 2 &&
                   scenario.mu_e_values.size() == 1,
               "fig6 index mapping assumes the built-in scenario's shape");
  const auto points = scenario.expand();
  SweepRunner runner;
  const auto results = runner.run(points);

  const double rho = scenario.rho_values.front();
  const double mu_e = scenario.mu_e_values.front();
  std::printf("=== Figure 6 reproduction: E[T] vs k at rho = %.1f ===\n",
              rho);
  const char* labels[] = {"(a) mu_I = 0.25, mu_E = 1 (EF region)",
                          "(b) mu_I = 3.25, mu_E = 1 (IF region)"};

  // Expansion is row-major over (k, mu_i, policy={IF,EF}): 4 results per
  // k; the figure prints one panel per mu_I.
  for (std::size_t panel = 0; panel < scenario.mu_i_values.size(); ++panel) {
    const double mu_i = scenario.mu_i_values[panel];
    Table table({"k", "E[T] IF", "E[T] EF", "gap EF-IF"});
    for (std::size_t n = 0; n < scenario.k_values.size(); ++n) {
      const int k = scenario.k_values[n];
      const double et_if = results[n * 4 + panel * 2].mean_response_time;
      const double et_ef = results[n * 4 + panel * 2 + 1].mean_response_time;
      table.add_row({std::to_string(k), format_double(et_if),
                     format_double(et_ef), format_double(et_ef - et_if)});
      csv.add_row({format_double(mu_i), format_double(mu_e),
                   std::to_string(k), format_double(et_if),
                   format_double(et_ef)});
    }
    std::printf("\n--- %s ---\n", labels[panel]);
    table.print(std::cout);
  }
  std::printf("\nwrote fig6_vs_k.csv (%zu rows)\n", csv.num_rows());
  return 0;
}
