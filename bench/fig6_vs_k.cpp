// Figure 6 (paper §5): mean response time under IF and EF as the number of
// servers k grows, at high load rho = 0.9, for the two extreme ends of
// Figure 5c: (mu_I = 0.25, mu_E = 1) where EF dominates, and
// (mu_I = 3.25, mu_E = 1) where IF dominates. Expected shape: the gap
// between the policies persists even at k = 16.
#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/ef_analysis.hpp"
#include "core/if_analysis.hpp"

int main() {
  using namespace esched;
  constexpr double kRho = 0.9;
  CsvWriter csv("fig6_vs_k.csv", {"mu_i", "mu_e", "k", "et_if", "et_ef"});
  std::printf("=== Figure 6 reproduction: E[T] vs k at rho = %.1f ===\n",
              kRho);
  const struct {
    double mu_i, mu_e;
    const char* label;
  } panels[] = {{0.25, 1.0, "(a) mu_I = 0.25, mu_E = 1 (EF region)"},
                {3.25, 1.0, "(b) mu_I = 3.25, mu_E = 1 (IF region)"}};
  for (const auto& panel : panels) {
    Table table({"k", "E[T] IF", "E[T] EF", "gap EF-IF"});
    for (int k = 2; k <= 16; ++k) {
      const SystemParams p =
          SystemParams::from_load(k, panel.mu_i, panel.mu_e, kRho);
      const double et_if = analyze_inelastic_first(p).mean_response_time;
      const double et_ef = analyze_elastic_first(p).mean_response_time;
      table.add_row({std::to_string(k), format_double(et_if),
                     format_double(et_ef), format_double(et_ef - et_if)});
      csv.add_row({format_double(panel.mu_i), format_double(panel.mu_e),
                   std::to_string(k), format_double(et_if),
                   format_double(et_ef)});
    }
    std::printf("\n--- %s ---\n", panel.label);
    table.print(std::cout);
  }
  std::printf("\nwrote fig6_vs_k.csv (%zu rows)\n", csv.num_rows());
  return 0;
}
