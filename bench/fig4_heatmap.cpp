// Figure 4 (paper §5): heat maps of the relative performance of IF and EF
// over a (mu_I, mu_E) grid at loads rho = 0.5, 0.7, 0.9 with k = 4 and
// lambda_I = lambda_E. For each grid point both policies are analyzed with
// the busy-period-transformation + QBD pipeline and the winner is plotted
// ('I' = IF superior, 'E' = EF superior), reproducing the paper's red
// circle / blue plus maps. Expected shape: IF wins everywhere mu_I >= mu_E,
// and the EF region (mu_I < mu_E corner) grows with rho.
//
// Thin wrapper over the sweep engine: the grid is the engine's built-in
// "fig4" scenario (the single source of truth for the figure's axes),
// solved in parallel by the SweepRunner and rendered by the shared
// "heatmap" report view; only the banner and the figure CSV stay here.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

int main() {
  using namespace esched;
  CsvWriter csv("fig4_heatmap.csv",
                {"rho", "mu_i", "mu_e", "et_if", "et_ef", "winner"});
  std::printf("=== Figure 4 reproduction: IF vs EF winner maps ===\n");

  const Scenario scenario = builtin_scenario("fig4");
  const auto points = scenario.expand();
  SweepRunner runner;
  SweepStats stats;
  const auto results = runner.run(points, &stats);

  ViewOptions view;
  view.title_prefix = "Figure 4: ";
  print_view("heatmap", std::cout, scenario, points, results, stats, view);

  // The figure CSV iterates like the map: per rho, mu_E descending,
  // mu_I ascending. Expansion is row-major over (rho, mu_i, mu_e, policy).
  const auto& mu_grid = scenario.mu_i_values;  // same grid on both axes
  const std::size_t grid = mu_grid.size();
  for (std::size_t r = 0; r < scenario.rho_values.size(); ++r) {
    for (std::size_t b = grid; b-- > 0;) {
      for (std::size_t a = 0; a < grid; ++a) {
        const std::size_t cell = ((r * grid + a) * grid + b) * 2;
        const double et_if = results[cell].mean_response_time;
        const double et_ef = results[cell + 1].mean_response_time;
        csv.add_row({format_double(scenario.rho_values[r]),
                     format_double(mu_grid[a]), format_double(mu_grid[b]),
                     format_double(et_if), format_double(et_ef),
                     et_if <= et_ef ? "IF" : "EF"});
      }
    }
  }
  std::printf("\nwrote fig4_heatmap.csv (%zu rows)\n", csv.num_rows());
  return 0;
}
