// Figure 4 (paper §5): heat maps of the relative performance of IF and EF
// over a (mu_I, mu_E) grid at loads rho = 0.5, 0.7, 0.9 with k = 4 and
// lambda_I = lambda_E. For each grid point both policies are analyzed with
// the busy-period-transformation + QBD pipeline and the winner is plotted
// ('I' = IF superior, 'E' = EF superior), reproducing the paper's red
// circle / blue plus maps. Expected shape: IF wins everywhere mu_I >= mu_E,
// and the EF region (mu_I < mu_E corner) grows with rho.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/ef_analysis.hpp"
#include "core/if_analysis.hpp"

namespace {

constexpr int kServers = 4;
constexpr double kGridStep = 0.25;
constexpr double kGridMax = 3.5;

void run_heatmap(double rho, esched::CsvWriter& csv) {
  using namespace esched;
  std::printf("\nFigure 4: rho = %.1f, k = %d (rows mu_E top-down, cols mu_I "
              "left-right; I = IF wins, E = EF wins)\n",
              rho, kServers);
  std::printf("%7s", "mu_E\\I");
  for (double mu_i = kGridStep; mu_i <= kGridMax + 1e-9; mu_i += kGridStep) {
    std::printf("%5.2f", mu_i);
  }
  std::printf("\n");

  int if_wins = 0;
  int ef_wins = 0;
  int if_wins_upper = 0;   // mu_I >= mu_E (Theorem 5 region)
  int points_upper = 0;
  for (double mu_e = kGridMax; mu_e >= kGridStep - 1e-9; mu_e -= kGridStep) {
    std::printf("%6.2f ", mu_e);
    for (double mu_i = kGridStep; mu_i <= kGridMax + 1e-9;
         mu_i += kGridStep) {
      const SystemParams p =
          SystemParams::from_load(kServers, mu_i, mu_e, rho);
      const double et_if = analyze_inelastic_first(p).mean_response_time;
      const double et_ef = analyze_elastic_first(p).mean_response_time;
      const bool if_better = et_if <= et_ef;
      (if_better ? if_wins : ef_wins)++;
      if (mu_i >= mu_e - 1e-9) {
        ++points_upper;
        if (if_better) ++if_wins_upper;
      }
      std::printf("%5c", if_better ? 'I' : 'E');
      csv.add_row({format_double(rho), format_double(mu_i),
                   format_double(mu_e), format_double(et_if),
                   format_double(et_ef), if_better ? "IF" : "EF"});
    }
    std::printf("\n");
  }
  std::printf("summary: IF wins %d points, EF wins %d points; "
              "IF wins %d/%d points with mu_I >= mu_E (paper: all)\n",
              if_wins, ef_wins, if_wins_upper, points_upper);
}

}  // namespace

int main() {
  esched::CsvWriter csv("fig4_heatmap.csv",
                        {"rho", "mu_i", "mu_e", "et_if", "et_ef", "winner"});
  std::printf("=== Figure 4 reproduction: IF vs EF winner maps ===\n");
  for (double rho : {0.5, 0.7, 0.9}) run_heatmap(rho, csv);
  std::printf("\nwrote fig4_heatmap.csv (%zu rows)\n", csv.num_rows());
  return 0;
}
