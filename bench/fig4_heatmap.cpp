// Figure 4 (paper §5): heat maps of the relative performance of IF and EF
// over a (mu_I, mu_E) grid at loads rho = 0.5, 0.7, 0.9 with k = 4 and
// lambda_I = lambda_E. For each grid point both policies are analyzed with
// the busy-period-transformation + QBD pipeline and the winner is plotted
// ('I' = IF superior, 'E' = EF superior), reproducing the paper's red
// circle / blue plus maps. Expected shape: IF wins everywhere mu_I >= mu_E,
// and the EF region (mu_I < mu_E corner) grows with rho.
//
// Thin wrapper over the sweep engine: the grid is the engine's built-in
// "fig4" scenario (the single source of truth for the figure's axes),
// solved in parallel by the SweepRunner; only the printing stays here.
#include <cstdio>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

int main() {
  using namespace esched;
  CsvWriter csv("fig4_heatmap.csv",
                {"rho", "mu_i", "mu_e", "et_if", "et_ef", "winner"});
  std::printf("=== Figure 4 reproduction: IF vs EF winner maps ===\n");

  const Scenario scenario = builtin_scenario("fig4");
  ESCHED_CHECK(scenario.policies == std::vector<std::string>({"IF", "EF"}) &&
                   scenario.solvers.size() == 1 &&
                   scenario.mu_i_values == scenario.mu_e_values,
               "fig4 index mapping assumes the built-in scenario's shape");
  const auto points = scenario.expand();
  SweepRunner runner;
  const auto results = runner.run(points);

  // Expansion is row-major over (rho, mu_i, mu_e, policy={IF,EF}); the
  // figure prints mu_E descending, mu_I ascending.
  const auto& mu_grid = scenario.mu_i_values;  // same grid on both axes
  const std::size_t grid = mu_grid.size();
  const auto result_at = [&](std::size_t r, std::size_t a, std::size_t b,
                             std::size_t policy) -> const RunResult& {
    return results[((r * grid + a) * grid + b) * 2 + policy];
  };
  const int k = scenario.k_values.front();

  for (std::size_t r = 0; r < scenario.rho_values.size(); ++r) {
    const double rho = scenario.rho_values[r];
    std::printf("\nFigure 4: rho = %.1f, k = %d (rows mu_E top-down, cols "
                "mu_I left-right; I = IF wins, E = EF wins)\n",
                rho, k);
    std::printf("%7s", "mu_E\\I");
    for (const double mu_i : mu_grid) std::printf("%5.2f", mu_i);
    std::printf("\n");

    int if_wins = 0;
    int ef_wins = 0;
    int if_wins_upper = 0;   // mu_I >= mu_E (Theorem 5 region)
    int points_upper = 0;
    for (std::size_t b = grid; b-- > 0;) {
      const double mu_e = mu_grid[b];
      std::printf("%6.2f ", mu_e);
      for (std::size_t a = 0; a < grid; ++a) {
        const double mu_i = mu_grid[a];
        const double et_if = result_at(r, a, b, 0).mean_response_time;
        const double et_ef = result_at(r, a, b, 1).mean_response_time;
        const bool if_better = et_if <= et_ef;
        (if_better ? if_wins : ef_wins)++;
        if (mu_i >= mu_e - 1e-9) {
          ++points_upper;
          if (if_better) ++if_wins_upper;
        }
        std::printf("%5c", if_better ? 'I' : 'E');
        csv.add_row({format_double(rho), format_double(mu_i),
                     format_double(mu_e), format_double(et_if),
                     format_double(et_ef), if_better ? "IF" : "EF"});
      }
      std::printf("\n");
    }
    std::printf("summary: IF wins %d points, EF wins %d points; "
                "IF wins %d/%d points with mu_I >= mu_E (paper: all)\n",
                if_wins, ef_wins, if_wins_upper, points_upper);
  }
  std::printf("\nwrote fig4_heatmap.csv (%zu rows)\n", csv.num_rows());
  return 0;
}
