// Figure 5 (paper §5): absolute mean response times under IF and EF as a
// function of mu_I, with k = 4, mu_E = 1, lambda_I = lambda_E, at loads
// rho = 0.5, 0.7, 0.9. The dotted line of the paper sits at mu_I = 1
// (mu_I = mu_E): IF is provably optimal to the right of it. Expected
// shape: the curves cross left of mu_I = 1, EF is flat in mu_I only
// through its inelastic share, and the gap is largest at high load and
// extreme mu_I.
#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/ef_analysis.hpp"
#include "core/if_analysis.hpp"

int main() {
  using namespace esched;
  constexpr int kServers = 4;
  constexpr double kMuE = 1.0;
  CsvWriter csv("fig5_response_time.csv",
                {"rho", "mu_i", "et_if", "et_ef"});
  std::printf("=== Figure 5 reproduction: E[T] under IF and EF vs mu_I "
              "(k = %d, mu_E = %.0f, lambda_I = lambda_E) ===\n",
              kServers, kMuE);
  for (double rho : {0.5, 0.7, 0.9}) {
    Table table({"mu_I", "E[T] IF", "E[T] EF", "winner"});
    for (double mu_i = 0.25; mu_i <= 3.5 + 1e-9; mu_i += 0.25) {
      const SystemParams p =
          SystemParams::from_load(kServers, mu_i, kMuE, rho);
      const double et_if = analyze_inelastic_first(p).mean_response_time;
      const double et_ef = analyze_elastic_first(p).mean_response_time;
      table.add_row({format_double(mu_i), format_double(et_if),
                     format_double(et_ef), et_if <= et_ef ? "IF" : "EF"});
      csv.add_row({format_double(rho), format_double(mu_i),
                   format_double(et_if), format_double(et_ef)});
    }
    std::printf("\n--- rho = %.1f (mu_I = 1 marks mu_I = mu_E; IF optimal "
                "to the right) ---\n",
                rho);
    table.print(std::cout);
  }
  std::printf("\nwrote fig5_response_time.csv (%zu rows)\n", csv.num_rows());
  return 0;
}
