// Figure 5 (paper §5): absolute mean response times under IF and EF as a
// function of mu_I, with k = 4, mu_E = 1, lambda_I = lambda_E, at loads
// rho = 0.5, 0.7, 0.9. The dotted line of the paper sits at mu_I = 1
// (mu_I = mu_E): IF is provably optimal to the right of it. Expected
// shape: the curves cross left of mu_I = 1, EF is flat in mu_I only
// through its inelastic share, and the gap is largest at high load and
// extreme mu_I.
//
// Thin wrapper over the sweep engine: the axes are the engine's built-in
// "fig5" scenario, solved in parallel by the SweepRunner and rendered by
// the shared "vs-mu" report view; only the banner and the figure CSV stay
// here.
#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

int main() {
  using namespace esched;
  CsvWriter csv("fig5_response_time.csv",
                {"rho", "mu_i", "et_if", "et_ef"});

  const Scenario scenario = builtin_scenario("fig5");
  std::printf("=== Figure 5 reproduction: E[T] under IF and EF vs mu_I "
              "(k = %d, mu_E = %.0f, lambda_I = lambda_E) ===\n",
              scenario.k_values.front(), scenario.mu_e_values.front());

  const auto points = scenario.expand();
  SweepRunner runner;
  SweepStats stats;
  const auto results = runner.run(points, &stats);

  ViewOptions view;
  view.rho_note = " (mu_I = 1 marks mu_I = mu_E; IF optimal to the right)";
  print_view("vs-mu", std::cout, scenario, points, results, stats, view);

  // Expansion is row-major over (rho, mu_i, policy={IF,EF}).
  const std::size_t nmu = scenario.mu_i_values.size();
  for (std::size_t r = 0; r < scenario.rho_values.size(); ++r) {
    for (std::size_t m = 0; m < nmu; ++m) {
      const std::size_t cell = (r * nmu + m) * 2;
      csv.add_row({format_double(scenario.rho_values[r]),
                   format_double(scenario.mu_i_values[m]),
                   format_double(results[cell].mean_response_time),
                   format_double(results[cell + 1].mean_response_time)});
    }
  }
  std::printf("\nwrote fig5_response_time.csv (%zu rows)\n", csv.num_rows());
  return 0;
}
