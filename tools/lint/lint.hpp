// esched-lint: a dependency-free, project-specific static checker.
//
// Enforces the hand-rolled rules this codebase's correctness rests on and
// that no off-the-shelf tool knows about:
//
//   raw-file-io         In the atomic-publication zones (src/dist/,
//                       src/obs/, src/engine/disk_cache.*,
//                       src/engine/shm_cache.*) files must be
//                       published through common/atomic_file
//                       (atomic_write_file / atomic_publish_file), never
//                       via raw std::ofstream / fopen / rename — a torn
//                       file under a final name breaks the queue protocol
//                       and the crash-safety story.
//   nondeterminism      No rand()/std::random_device/wall-clock calls in
//                       library code: solves and reports are bitwise
//                       deterministic (N-thread == 1-thread, resumable
//                       streams, byte-identical merges), which one stray
//                       std::random_device seed silently destroys.
//                       steady_clock and file_time_type::clock (mtime
//                       heartbeats) are exempt.
//   stream-output       No std::cout/printf in library code; reports
//                       write to caller-supplied streams and the CLI owns
//                       the terminal. (snprintf formatting is fine.)
//   metric-vocabulary   Metric names passed as string literals to
//                       counter()/gauge()/histogram() must appear in the
//                       README's machine-readable metrics-vocabulary
//                       block, so --metrics-out consumers can rely on the
//                       documented names.
//   include-hygiene     Quoted includes are src/-root-relative (no "../",
//                       no "./"), must resolve to a real file, and
//                       <bits/stdc++.h> is banned.
//   header-guard        Every .hpp starts with #pragma once (after
//                       leading comments).
//
// Any rule is suppressible at a single line with an inline annotation on
// that line or in the contiguous comment/blank block directly above it
// (so a multi-line rationale comment covers the line it annotates):
//
//   // esched-lint: allow(raw-file-io): streams into a unique temp,
//   // published below via atomic_publish_file
//
// Annotations naming an unknown rule are themselves diagnosed
// (unknown-suppression), so typos cannot silently disable checking.
//
// The rule engine is a library so tests/test_lint.cpp can drive it against
// fixture files; tools/lint/esched_lint_main.cpp wraps it as the
// `esched-lint` CLI (exit 0 clean, 1 findings, 2 usage/IO error).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace esched::lint {

/// One diagnostic: `file:line: [rule] message`.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Everything lint_file() needs beyond the file itself.
struct LintContext {
  /// Metric-name patterns from the README vocabulary block. Empty means
  /// the metric-vocabulary rule reports every literal metric name (a
  /// missing block should be loud, not a silent pass).
  std::vector<std::string> vocabulary;
  /// Absolute path of the src/ root for include resolution; empty skips
  /// the include-existence check (fixture mode).
  std::string src_root;
};

/// The rule identifiers accepted by allow(...) annotations.
const std::vector<std::string>& rule_names();

/// Extracts the metric vocabulary patterns from README text: the lines of
/// the fenced code block opened by ```metrics-vocabulary. Patterns may
/// contain `<placeholder>` segments; blank lines and `#` comments inside
/// the block are ignored.
std::vector<std::string> metric_vocabulary_from_readme(
    const std::string& readme_text);

/// True when `name` matches `pattern`, where each `<placeholder>` in the
/// pattern matches one dot-free [A-Za-z0-9_-]+ segment.
bool metric_name_matches(const std::string& name, const std::string& pattern);

/// Lints one file. `path` is the repo-relative, forward-slash path (it
/// decides which zone rules apply); `content` is the file text.
std::vector<Finding> lint_file(const std::string& path,
                               const std::string& content,
                               const LintContext& ctx);

/// Scan configuration for run_lint().
struct Options {
  /// Repository root; src/ and README.md are resolved against it.
  std::string root = ".";
  /// Files or directories to scan, repo-root-relative (default: {"src"}).
  std::vector<std::string> paths;
  /// Override for the README supplying the metric vocabulary.
  std::string readme_path;
};

/// Walks the requested paths (`.hpp`/`.cpp` files) and lints each.
/// Throws std::runtime_error when the root or README is unreadable.
std::vector<Finding> run_lint(const Options& options);

/// Runs a scan and prints `file:line: [rule] message` diagnostics plus a
/// summary to `out`. Returns the process exit code: 0 clean, 1 findings,
/// 2 on scan errors (unreadable root/README).
int lint_main(const Options& options, std::ostream& out);

}  // namespace esched::lint
