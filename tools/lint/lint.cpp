#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace esched::lint {

namespace fs = std::filesystem;

namespace {

const char* kRuleRawFileIo = "raw-file-io";
const char* kRuleNondeterminism = "nondeterminism";
const char* kRuleStreamOutput = "stream-output";
const char* kRuleMetricVocabulary = "metric-vocabulary";
const char* kRuleIncludeHygiene = "include-hygiene";
const char* kRuleHeaderGuard = "header-guard";
const char* kRuleUnknownSuppression = "unknown-suppression";

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// One scanned line: the raw text plus a position-aligned mask telling,
/// for every character, whether it is code ('c'), string-literal text
/// ('s', including the quotes), or comment ('/').
struct MaskedLine {
  std::string raw;
  std::string mask;

  /// The code characters only, with everything else blanked to spaces —
  /// same length as `raw`, so match positions line up.
  std::string code() const {
    std::string out(raw.size(), ' ');
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (mask[i] == 'c') out[i] = raw[i];
    }
    return out;
  }
};

/// Splits `content` into masked lines, tracking block comments and raw
/// strings across line boundaries. Unterminated plain string/char
/// literals are tolerated (reset at end of line) so a torn fixture cannot
/// wedge the scanner.
std::vector<MaskedLine> scan_lines(const std::string& content) {
  enum class State { kNormal, kString, kChar, kBlockComment, kRawString };
  std::vector<MaskedLine> lines;
  State state = State::kNormal;
  std::string raw_delim;  // for raw strings: the )delim" terminator

  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t eol = content.find('\n', pos);
    const std::string line = content.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    MaskedLine ml;
    ml.raw = line;
    ml.mask.assign(line.size(), 'c');

    bool line_comment = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line_comment) {
        ml.mask[i] = '/';
        continue;
      }
      switch (state) {
        case State::kNormal: {
          const char c = line[i];
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            ml.mask[i] = '/';
            line_comment = true;
          } else if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            ml.mask[i] = '/';
            ml.mask[i + 1] = '/';
            ++i;
            state = State::kBlockComment;
          } else if (c == '"') {
            // R"delim( opens a raw string; a preceding identifier char
            // means the R is part of a longer name (e.g. _R).
            if (i >= 1 && line[i - 1] == 'R' &&
                (i < 2 || !is_ident_char(line[i - 2]))) {
              const std::size_t open = line.find('(', i + 1);
              raw_delim = ")" +
                          line.substr(i + 1, open == std::string::npos
                                                 ? std::string::npos
                                                 : open - i - 1) +
                          "\"";
              ml.mask[i] = 's';
              state = State::kRawString;
            } else {
              ml.mask[i] = 's';
              state = State::kString;
            }
          } else if (c == '\'') {
            ml.mask[i] = 's';
            state = State::kChar;
          }
          break;
        }
        case State::kString:
        case State::kChar: {
          ml.mask[i] = 's';
          if (line[i] == '\\') {
            if (i + 1 < line.size()) ml.mask[++i] = 's';
          } else if ((state == State::kString && line[i] == '"') ||
                     (state == State::kChar && line[i] == '\'')) {
            state = State::kNormal;
          }
          break;
        }
        case State::kBlockComment: {
          ml.mask[i] = '/';
          if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
            ml.mask[i + 1] = '/';
            ++i;
            state = State::kNormal;
          }
          break;
        }
        case State::kRawString: {
          ml.mask[i] = 's';
          if (line.compare(i, raw_delim.size(), raw_delim) == 0) {
            for (std::size_t k = 0; k < raw_delim.size() && i + k < line.size();
                 ++k) {
              ml.mask[i + k] = 's';
            }
            i += raw_delim.size() - 1;
            state = State::kNormal;
          }
          break;
        }
      }
    }
    // Plain literals cannot span lines; raw strings and block comments can.
    if (state == State::kString || state == State::kChar) {
      state = State::kNormal;
    }
    lines.push_back(std::move(ml));
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return lines;
}

/// Positions where `id` occurs in `text` as a whole identifier.
std::vector<std::size_t> identifier_positions(const std::string& text,
                                              const std::string& id) {
  std::vector<std::size_t> out;
  std::size_t from = 0;
  while (true) {
    const std::size_t p = text.find(id, from);
    if (p == std::string::npos) break;
    const bool left_ok = p == 0 || !is_ident_char(text[p - 1]);
    const bool right_ok =
        p + id.size() >= text.size() || !is_ident_char(text[p + id.size()]);
    if (left_ok && right_ok) out.push_back(p);
    from = p + 1;
  }
  return out;
}

bool contains_identifier(const std::string& text, const std::string& id) {
  return !identifier_positions(text, id).empty();
}

/// The allow(...) rule names on one raw line, in order. Annotations look
/// like `// esched-lint: allow(rule-a, rule-b): rationale...`.
std::vector<std::string> parse_allows(const std::string& raw) {
  std::vector<std::string> names;
  std::size_t tag = raw.find("esched-lint:");
  while (tag != std::string::npos) {
    std::size_t p = raw.find("allow(", tag);
    while (p != std::string::npos) {
      const std::size_t close = raw.find(')', p);
      if (close == std::string::npos) break;
      std::string inside = raw.substr(p + 6, close - p - 6);
      std::string name;
      for (const char c : inside + ",") {
        if (c == ',' || c == ' ' || c == '\t') {
          if (!name.empty()) names.push_back(name);
          name.clear();
        } else {
          name += c;
        }
      }
      p = raw.find("allow(", close);
    }
    tag = raw.find("esched-lint:", tag + 1);
  }
  return names;
}

bool in_atomic_publication_zone(const std::string& path) {
  return path.rfind("src/dist/", 0) == 0 || path.rfind("src/obs/", 0) == 0 ||
         path.rfind("src/engine/disk_cache", 0) == 0 ||
         path.rfind("src/engine/shm_cache", 0) == 0;
}

std::string trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Extracts the string literal opening at raw[p] == '"'. Returns false
/// when the literal does not close on this line. On success `*end` (if
/// given) is the index of the closing quote.
bool read_string_literal(const std::string& raw, std::size_t p,
                         std::string* out, std::size_t* end = nullptr) {
  if (p >= raw.size() || raw[p] != '"') return false;
  std::string text;
  for (std::size_t i = p + 1; i < raw.size(); ++i) {
    if (raw[i] == '\\' && i + 1 < raw.size()) {
      text += raw[++i];
    } else if (raw[i] == '"') {
      *out = std::move(text);
      if (end != nullptr) *end = i;
      return true;
    } else {
      text += raw[i];
    }
  }
  return false;
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      kRuleRawFileIo,       kRuleNondeterminism, kRuleStreamOutput,
      kRuleMetricVocabulary, kRuleIncludeHygiene, kRuleHeaderGuard,
  };
  return names;
}

std::vector<std::string> metric_vocabulary_from_readme(
    const std::string& readme_text) {
  std::vector<std::string> patterns;
  std::istringstream in(readme_text);
  std::string line;
  bool inside = false;
  while (std::getline(in, line)) {
    const std::string t = trimmed(line);
    if (!inside) {
      if (t.rfind("```metrics-vocabulary", 0) == 0) inside = true;
      continue;
    }
    if (t.rfind("```", 0) == 0) break;
    if (t.empty() || t[0] == '#') continue;
    patterns.push_back(t);
  }
  return patterns;
}

bool metric_name_matches(const std::string& name, const std::string& pattern) {
  std::size_t n = 0;
  std::size_t p = 0;
  while (p < pattern.size()) {
    if (pattern[p] == '<') {
      const std::size_t close = pattern.find('>', p);
      if (close == std::string::npos) return false;  // malformed pattern
      // A placeholder matches one nonempty dot-free segment.
      std::size_t consumed = 0;
      while (n < name.size() && name[n] != '.' &&
             (is_ident_char(name[n]) || name[n] == '-')) {
        ++n;
        ++consumed;
      }
      if (consumed == 0) return false;
      p = close + 1;
    } else {
      if (n >= name.size() || name[n] != pattern[p]) return false;
      ++n;
      ++p;
    }
  }
  return n == name.size();
}

std::vector<Finding> lint_file(const std::string& path,
                               const std::string& content,
                               const LintContext& ctx) {
  const std::vector<MaskedLine> lines = scan_lines(content);
  const bool is_header = path.size() > 4 &&
                         path.compare(path.size() - 4, 4, ".hpp") == 0;
  const bool atomic_zone = in_atomic_publication_zone(path);

  // Suppressions first: allows[i] covers findings on line i and i + 1.
  std::vector<std::vector<std::string>> allows(lines.size());
  std::vector<Finding> findings;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    allows[i] = parse_allows(lines[i].raw);
    for (const std::string& name : allows[i]) {
      const auto& known = rule_names();
      if (std::find(known.begin(), known.end(), name) == known.end()) {
        findings.push_back({path, i + 1, kRuleUnknownSuppression,
                            "suppression names unknown rule '" + name +
                                "' (known: raw-file-io, nondeterminism, "
                                "stream-output, metric-vocabulary, "
                                "include-hygiene, header-guard)"});
      }
    }
  }
  // A finding on line L is suppressed by an allow() on L itself or in the
  // contiguous run of comment-only/blank lines directly above it — so a
  // multi-line rationale comment covers the code line it annotates.
  const auto suppressed = [&](std::size_t line_index, const char* rule) {
    const auto has = [&](const std::vector<std::string>& v) {
      return std::find(v.begin(), v.end(), rule) != v.end();
    };
    if (has(allows[line_index])) return true;
    for (std::size_t i = line_index; i-- > 0;) {
      if (has(allows[i])) return true;
      if (!trimmed(lines[i].code()).empty()) break;  // a real code line
    }
    return false;
  };
  const auto report = [&](std::size_t line_index, const char* rule,
                          const std::string& message) {
    if (!suppressed(line_index, rule)) {
      findings.push_back({path, line_index + 1, rule, message});
    }
  };

  // header-guard: the first code line of a header must be #pragma once.
  if (is_header) {
    bool guarded = false;
    bool has_code = false;
    for (const MaskedLine& ml : lines) {
      const std::string t = trimmed(ml.code());
      if (t.empty()) continue;
      has_code = true;
      guarded = t.rfind("#pragma once", 0) == 0;
      break;
    }
    if (has_code && !guarded) {
      findings.push_back({path, 1, kRuleHeaderGuard,
                          "header must open with #pragma once (before any "
                          "other code)"});
    }
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string code = lines[i].code();
    const std::string code_trimmed = trimmed(code);
    const bool preprocessor = !code_trimmed.empty() && code_trimmed[0] == '#';

    // include-hygiene ------------------------------------------------------
    if (preprocessor && code_trimmed.rfind("#include", 0) == 0) {
      const std::string& raw = lines[i].raw;
      if (raw.find("<bits/stdc++.h>") != std::string::npos) {
        report(i, kRuleIncludeHygiene,
               "<bits/stdc++.h> is non-portable and bans nothing; include "
               "the specific standard headers");
      }
      const std::size_t q = raw.find('"');
      std::string inc;
      if (q != std::string::npos && read_string_literal(raw, q, &inc)) {
        if (inc.rfind("./", 0) == 0 || inc.find("../") != std::string::npos) {
          report(i, kRuleIncludeHygiene,
                 "quoted include '" + inc +
                     "' must be src/-root-relative (no ../ or ./ paths)");
        } else if (!ctx.src_root.empty() &&
                   !fs::exists(fs::path(ctx.src_root) / inc)) {
          report(i, kRuleIncludeHygiene,
                 "quoted include '" + inc +
                     "' does not resolve from the src/ root");
        }
      }
    }

    // raw-file-io ----------------------------------------------------------
    if (atomic_zone && !preprocessor &&
        path.rfind("src/common/atomic_file", 0) != 0) {
      for (const char* id : {"ofstream", "fopen", "freopen", "rename"}) {
        if (contains_identifier(code, id)) {
          report(i, kRuleRawFileIo,
                 std::string("raw '") + id +
                     "' in an atomic-publication zone; publish through "
                     "common/atomic_file (atomic_write_file / "
                     "atomic_publish_file)");
        }
      }
    }

    // nondeterminism -------------------------------------------------------
    for (const char* id :
         {"rand", "srand", "drand48", "random_device", "system_clock",
          "gettimeofday", "localtime", "gmtime"}) {
      if (contains_identifier(code, id)) {
        report(i, kRuleNondeterminism,
               std::string("'") + id +
                   "' breaks bitwise determinism (seeded per-point xoshiro "
                   "and steady_clock are the project idiom)");
      }
    }
    for (const std::size_t p : identifier_positions(code, "clock")) {
      // The filesystem's mtime clock is the lease-heartbeat protocol and
      // is allowed; std::clock / bare clock() are not.
      static const std::string kMtime = "file_time_type::";
      if (p >= kMtime.size() &&
          code.compare(p - kMtime.size(), kMtime.size(), kMtime) == 0) {
        continue;
      }
      report(i, kRuleNondeterminism,
             "'clock' reads wall/CPU time in a deterministic path (use "
             "steady_clock for durations)");
    }
    if (code.find("std::time(") != std::string::npos) {
      report(i, kRuleNondeterminism,
             "'std::time' reads the wall clock in a deterministic path");
    }

    // stream-output --------------------------------------------------------
    for (const char* id : {"printf", "puts", "putchar"}) {
      if (contains_identifier(code, id)) {
        report(i, kRuleStreamOutput,
               std::string("'") + id +
                   "' writes to the terminal from library code; write to a "
                   "caller-supplied stream (snprintf into a buffer is fine)");
      }
    }
    for (const char* pat : {"std::cout", "std::clog"}) {
      if (code.find(pat) != std::string::npos) {
        report(i, kRuleStreamOutput,
               std::string("'") + pat +
                   "' in library code; the CLI owns the terminal — write to "
                   "a caller-supplied stream");
      }
    }

    // metric-vocabulary ----------------------------------------------------
    for (const char* fn : {"counter", "gauge", "histogram"}) {
      for (std::size_t p : identifier_positions(code, fn)) {
        std::size_t q = p + std::string(fn).size();
        while (q < code.size() && code[q] == ' ') ++q;
        if (q >= code.size() || code[q] != '(') continue;
        ++q;
        // From here scan the raw line: the string literal is blanked to
        // spaces in the code mask, so the quote only exists in raw.
        const std::string& raw = lines[i].raw;
        while (q < raw.size() && (raw[q] == ' ' || raw[q] == '\t')) ++q;
        std::string name;
        std::size_t lit_end = 0;
        if (!read_string_literal(raw, q, &name, &lit_end)) continue;
        // A `+` after the literal means the name is built by concatenation
        // — not a complete metric name, so the vocabulary cannot judge it.
        std::size_t after = lit_end + 1;
        while (after < code.size() && code[after] == ' ') ++after;
        if (after < code.size() && code[after] == '+') continue;
        bool known = false;
        for (const std::string& pattern : ctx.vocabulary) {
          if (metric_name_matches(name, pattern)) {
            known = true;
            break;
          }
        }
        if (!known) {
          report(i, kRuleMetricVocabulary,
                 "metric '" + name +
                     "' is not in the README metrics-vocabulary block; "
                     "document it there (or fix the name)");
        }
      }
    }
  }

  return findings;
}

std::vector<Finding> run_lint(const Options& options) {
  const fs::path root(options.root);
  if (!fs::exists(root)) {
    throw std::runtime_error("esched-lint: root '" + options.root +
                             "' does not exist");
  }
  const std::string readme_path =
      options.readme_path.empty() ? (root / "README.md").string()
                                  : options.readme_path;
  std::ifstream readme(readme_path);
  if (!readme.good()) {
    throw std::runtime_error("esched-lint: cannot read README at '" +
                             readme_path + "'");
  }
  std::ostringstream readme_text;
  readme_text << readme.rdbuf();

  LintContext ctx;
  ctx.vocabulary = metric_vocabulary_from_readme(readme_text.str());
  ctx.src_root = (root / "src").string();

  std::vector<std::string> paths = options.paths;
  if (paths.empty()) paths = {"src"};

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path full = root / p;
    if (fs::is_directory(full)) {
      for (fs::recursive_directory_iterator it(full), end; it != end; ++it) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext != ".hpp" && ext != ".cpp") continue;
        files.push_back(fs::relative(it->path(), root).generic_string());
      }
    } else if (fs::is_regular_file(full)) {
      files.push_back(fs::path(p).generic_string());
    } else {
      throw std::runtime_error("esched-lint: path '" + p +
                               "' not found under root '" + options.root +
                               "'");
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::ifstream in(root / file);
    if (!in.good()) {
      throw std::runtime_error("esched-lint: cannot read '" + file + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<Finding> file_findings = lint_file(file, text.str(), ctx);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

int lint_main(const Options& options, std::ostream& out) {
  std::vector<Finding> findings;
  try {
    findings = run_lint(options);
  } catch (const std::exception& e) {
    out << e.what() << "\n";
    return 2;
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.file != b.file ? a.file < b.file
                                             : a.line < b.line;
                   });
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  if (findings.empty()) {
    out << "esched-lint: clean\n";
    return 0;
  }
  out << "esched-lint: " << findings.size() << " finding(s)\n";
  return 1;
}

}  // namespace esched::lint
