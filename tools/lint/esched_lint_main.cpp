// The `esched-lint` CLI: scans src/ (or the given paths) for violations
// of the project's hand-rolled correctness rules. Exit codes: 0 clean,
// 1 findings, 2 usage or I/O error — CI treats nonzero as failure.
//
//   esched-lint [--root DIR] [--readme FILE] [--list-rules] [paths...]
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: esched-lint [--root DIR] [--readme FILE] [--list-rules] "
         "[paths...]\n"
         "  --root DIR     repository root (default .); src/ and README.md\n"
         "                 are resolved against it\n"
         "  --readme FILE  override the README carrying the\n"
         "                 metrics-vocabulary block\n"
         "  --list-rules   print the rule identifiers and exit\n"
         "  paths          files or directories to scan, root-relative\n"
         "                 (default: src)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  esched::lint::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--list-rules") {
      for (const std::string& rule : esched::lint::rule_names()) {
        std::cout << rule << "\n";
      }
      return 0;
    } else if (arg == "--root") {
      if (++i >= argc) return usage(std::cerr, 2);
      options.root = argv[i];
    } else if (arg == "--readme") {
      if (++i >= argc) return usage(std::cerr, 2);
      options.readme_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "esched-lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      options.paths.push_back(arg);
    }
  }
  return esched::lint::lint_main(options, std::cout);
}
