// `esched` — the scenario-sweep CLI.
//
// Runs named built-in scenarios (the paper's figures and sweeps) through
// the parallel engine and writes uniform CSV/JSON reports:
//
//   esched list
//   esched fig6 --threads 4
//   esched fig4 fig5 --threads 8 --json out.json
//
// Scenarios named in one invocation share the memoization cache, so
// overlapping grids (e.g. fig5 is a slice of fig4) solve once.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: esched <scenario>... [options]\n"
      "       esched list\n"
      "\n"
      "options:\n"
      "  --threads N    worker threads (default: all hardware threads)\n"
      "  --seed S       base RNG seed for simulation points (default: 1)\n"
      "  --sim-jobs N   measured completions per simulation point\n"
      "  --out PATH     CSV output path (default: <scenario>.csv)\n"
      "  --json PATH    also write a JSON report\n"
      "  --rows N       summary rows printed per scenario (default: 20)\n");
}

void print_scenarios() {
  std::printf("built-in scenarios:\n");
  for (const auto& name : esched::builtin_scenario_names()) {
    const esched::Scenario s = esched::builtin_scenario(name);
    std::printf("  %-18s %4zu points  %s\n", name.c_str(), s.num_points(),
                s.description.c_str());
  }
}

long parse_long(const char* flag, const std::string& value) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 0) {
    throw esched::Error(std::string(flag) + " expects a non-negative integer");
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> scenarios;
  int threads = 0;
  std::uint64_t seed = 1;
  std::uint64_t sim_jobs = 0;
  std::string out_path;
  std::string json_path;
  std::size_t summary_rows = 20;

  try {
    for (int n = 1; n < argc; ++n) {
      const std::string arg = argv[n];
      const auto next_value = [&](const char* flag) -> std::string {
        if (n + 1 >= argc) {
          throw esched::Error(std::string(flag) + " expects a value");
        }
        return argv[++n];
      };
      if (arg == "--help" || arg == "-h") {
        print_usage();
        return 0;
      } else if (arg == "list") {
        print_scenarios();
        return 0;
      } else if (arg == "--threads") {
        threads =
            static_cast<int>(parse_long("--threads", next_value("--threads")));
      } else if (arg == "--seed") {
        seed = static_cast<std::uint64_t>(
            parse_long("--seed", next_value("--seed")));
      } else if (arg == "--sim-jobs") {
        sim_jobs = static_cast<std::uint64_t>(
            parse_long("--sim-jobs", next_value("--sim-jobs")));
      } else if (arg == "--out") {
        out_path = next_value("--out");
      } else if (arg == "--json") {
        json_path = next_value("--json");
      } else if (arg == "--rows") {
        summary_rows = static_cast<std::size_t>(
            parse_long("--rows", next_value("--rows")));
      } else if (!arg.empty() && arg[0] == '-') {
        throw esched::Error("unknown option '" + arg + "'");
      } else {
        scenarios.push_back(arg);
      }
    }
    if (scenarios.empty()) {
      print_usage();
      std::printf("\n");
      print_scenarios();
      return 1;
    }

    esched::SweepRunner runner(threads);
    // --out/--json collect every scenario into ONE combined report (the
    // schema is uniform across solvers); without --out each scenario
    // writes its own <name>.csv.
    std::vector<esched::RunPoint> all_points;
    std::vector<esched::RunResult> all_results;
    esched::SweepStats combined;
    combined.threads_used = runner.num_threads();
    for (const auto& name : scenarios) {
      esched::Scenario scenario = esched::builtin_scenario(name);
      scenario.options.base_seed = seed;
      if (sim_jobs > 0) scenario.options.sim_jobs = sim_jobs;

      std::printf("=== scenario %s: %s ===\n", scenario.name.c_str(),
                  scenario.description.c_str());
      const auto points = scenario.expand();
      esched::SweepStats stats;
      const auto results = runner.run(points, &stats);
      esched::print_sweep_summary(std::cout, points, results, stats,
                                  summary_rows);

      if (out_path.empty()) {
        const std::string csv_path = scenario.name + ".csv";
        esched::write_csv_report(csv_path, points, results);
        std::printf("wrote %s (%zu rows)\n", csv_path.c_str(), points.size());
      }
      if (!out_path.empty() || !json_path.empty()) {
        all_points.insert(all_points.end(), points.begin(), points.end());
        all_results.insert(all_results.end(), results.begin(), results.end());
        combined.total_points += stats.total_points;
        combined.solved_points += stats.solved_points;
        combined.cache_hits += stats.cache_hits;
        combined.wall_seconds += stats.wall_seconds;
      }
      std::printf("\n");
    }
    if (!out_path.empty()) {
      esched::write_csv_report(out_path, all_points, all_results);
      std::printf("wrote %s (%zu rows, %zu scenario%s)\n", out_path.c_str(),
                  all_points.size(), scenarios.size(),
                  scenarios.size() == 1 ? "" : "s");
    }
    if (!json_path.empty()) {
      esched::write_json_report(json_path, all_points, all_results,
                                &combined);
      std::printf("wrote %s (%zu rows, %zu scenario%s)\n", json_path.c_str(),
                  all_points.size(), scenarios.size(),
                  scenarios.size() == 1 ? "" : "s");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esched: %s\n", e.what());
    return 1;
  }
  return 0;
}
