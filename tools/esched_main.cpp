// `esched` — the scenario-sweep CLI.
//
// Runs scenarios — built-in names or user-authored JSON spec files —
// through the parallel engine, renders a named report view, and writes
// uniform CSV/JSON reports:
//
//   esched list                          # scenarios + report views
//   esched show fig5                     # print a built-in as spec JSON
//   esched run fig6 --threads 4
//   esched run my_sweep.json --view table
//   esched run fig4 fig5 --json out.json # shared memo cache across both
//   esched run fig5 --shard 0/2 --out s0.csv   # order-independent shards
//   esched run fig5 --cache-dir .esched-cache  # skip already-solved points
//   esched run fig5 --stream --out f5.csv      # tailable; resumes after a kill
//   esched merge s0.csv s1.csv --out merged.csv
//   esched merge a.json b.json --out m.json    # JSON reports merge too
//   esched cache ls --cache-dir .esched-cache
//   esched cache gc --cache-dir .esched-cache --max-age 86400
//
// Distributed sweeps (the filesystem work queue, src/dist):
//
//   esched queue init fig4 --queue-dir q --chunk 32   # expand into tasks
//   esched work --queue-dir q         # claim/solve/commit chunks (run many)
//   esched status --queue-dir q      # pending/leased/done counts + ETA
//   esched collect --queue-dir q --out merged.csv --json merged.json
//
// (`esched <scenario>` without the `run` keyword still works.)
//
// Scenarios named in one invocation share the memoization cache, so
// overlapping grids (e.g. fig5 is a slice of fig4) solve once; --cache-dir
// extends that across invocations and processes.
#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#if __has_include(<unistd.h>)
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "common/json.hpp"
#include "dist/work_queue.hpp"
#include "dist/worker.hpp"
#include "engine/disk_cache.hpp"
#include "engine/report.hpp"
#include "engine/shm_cache.hpp"
#include "engine/scenario.hpp"
#include "engine/spec.hpp"
#include "engine/sweep_runner.hpp"
#include "obs/bench_diff.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "obs/trace_report.hpp"
#include "phase/size_dist.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: esched [run] <scenario-or-spec.json>... [options]\n"
      "       esched list\n"
      "       esched show <scenario>\n"
      "       esched dists\n"
      "       esched merge <shard.csv>... --out merged.csv\n"
      "       esched merge <shard.json>... --out merged.json\n"
      "       esched cache ls --cache-dir D [--format text|json]\n"
      "       esched cache gc --cache-dir D [--max-age S] [--max-bytes B]\n"
      "       esched cache init --cache-dir D [--slots N]\n"
      "       esched cache info --cache-dir D\n"
      "       esched queue init <scenario-or-spec.json>... --queue-dir Q\n"
      "                        [--chunk N] [--seed S] [--sim-jobs N]\n"
      "                        [--exact-method M]\n"
      "       esched work --queue-dir Q [--threads N] [--cache-dir D]\n"
      "                   [--lease-ttl S] [--poll-ms M] [--max-chunks N]\n"
      "                   [--owner NAME] [--progress] [--no-wait]\n"
      "                   [--metrics-out P] [--trace P] [--telemetry-dir D]\n"
      "                   [--telemetry-interval S]\n"
      "       esched status --queue-dir Q [--lease-ttl S] [--watch]\n"
      "                     [--interval S] [--telemetry-dir D]\n"
      "       esched collect --queue-dir Q --out merged.csv [--json m.json]\n"
      "       esched trace report <trace.jsonl>... [--format text|folded]\n"
      "                     [--rows N] [--out P]\n"
      "       esched bench diff <old.json> <new.json> [--threshold X]\n"
      "\n"
      "A scenario argument is a built-in name (see `esched list`) or a\n"
      "path to a JSON spec file (anything containing '/' or ending in\n"
      "'.json'); see README for the spec schema.\n"
      "\n"
      "run options:\n"
      "  --threads N     worker threads (default: all hardware threads)\n"
      "  --seed S        base RNG seed for simulation points (default: 1)\n"
      "  --sim-jobs N    measured completions per simulation point\n"
      "  --exact-method M  stationary solver for exact-CTMC points:\n"
      "                  auto (default), gth, block, or sor\n"
      "  --view NAME     report view (default: the scenario's own view)\n"
      "  --shard I/N     run only shard I of N (contiguous row-order\n"
      "                  split; `esched merge` of the shard CSVs in shard\n"
      "                  order reproduces the unsharded report)\n"
      "  --cache-dir D   persistent result cache: skip points already\n"
      "                  solved by earlier invocations, store new ones\n"
      "  --out PATH      CSV output path (default: <scenario>.csv)\n"
      "  --stream        append CSV rows to --out as points finish (flushed\n"
      "                  per row, so the file can be tailed); if --out\n"
      "                  already holds a partial run, its complete rows are\n"
      "                  kept and the sweep resumes after them (pair with\n"
      "                  --cache-dir so kept rows are disk hits, not\n"
      "                  re-solves — resume skips the writes either way)\n"
      "  --json PATH     also write a JSON report\n"
      "  --rows N        summary rows printed per scenario (default: 20)\n"
      "  --progress      one stderr line per completed row (index, backend,\n"
      "                  E[T], solve time) — the same progress path\n"
      "                  `esched work --progress` uses\n"
      "  --metrics-out P write a metrics snapshot JSON when the run ends:\n"
      "                  per-backend solve-time/state-count histograms,\n"
      "                  cache hit/miss counters, thread utilization (see\n"
      "                  README 'Observability'; observation only — CSV\n"
      "                  and JSON report bytes are unchanged by it)\n"
      "  --trace P       append structured JSONL lifecycle events (one\n"
      "                  object per line: point_done, cache_hit, span_begin,\n"
      "                  ...) to P as the sweep runs; also observation-only\n"
      "  --telemetry-dir D  publish live metrics snapshots to\n"
      "                  D/<owner>.metrics.json every --telemetry-interval\n"
      "                  seconds (default 2) plus a final one at exit;\n"
      "                  `esched status --telemetry-dir D` merges them into\n"
      "                  a fleet view while the sweep runs\n"
      "\n"
      "observability tooling:\n"
      "  trace report    merge worker JSONL traces (deterministic\n"
      "                  (t, pid, seq) order), rebuild the span trees\n"
      "                  (worker > chunk > sweep > point > solve), and\n"
      "                  print a per-phase breakdown plus the slowest\n"
      "                  points; --format folded emits flamegraph-ready\n"
      "                  folded stacks (self time in microseconds)\n"
      "  bench diff      compare two bench_perf_solvers snapshots case by\n"
      "                  case; exits 1 when any case's mean AND p50 both\n"
      "                  grew more than --threshold (default 0.25 = +25%%)\n"
      "\n"
      "cache options:\n"
      "  --max-age S     gc: evict entries older than S seconds\n"
      "  --max-bytes B   gc: then evict oldest until the directory holds\n"
      "                  at most B bytes\n"
      "\n"
      "distributed queue (many `esched work` processes on one queue\n"
      "directory — local disk or a shared filesystem — cooperatively solve\n"
      "one sweep; see README 'Distributed sweeps'):\n"
      "  queue init      expand the sweep into chunked task files under Q\n"
      "                  (--chunk points per work unit, default 32)\n"
      "  work            claim tasks by atomic rename, solve them through\n"
      "                  the sweep engine, commit per-chunk CSV/JSON\n"
      "                  results atomically; expired leases (--lease-ttl,\n"
      "                  default 60 s since last heartbeat) are requeued,\n"
      "                  so killed workers lose nothing\n"
      "  status          pending/leased/done chunk counts, points done,\n"
      "                  active workers, and an ETA from committed solve\n"
      "                  times; --watch redraws every --interval seconds\n"
      "                  (default 2) with per-worker throughput and a\n"
      "                  rolling ETA from recent commits, exiting when the\n"
      "                  queue finishes\n"
      "  collect         validate completeness and merge the chunk results\n"
      "                  in chunk order: --out CSV is byte-identical to the\n"
      "                  unsharded `esched run` CSV; --json merges the\n"
      "                  chunk JSON reports with recomputed stats\n");
}

/// `esched dists`: the supported size-distribution families.
void print_size_dists() {
  std::printf(
      "size distribution families (options.size_dist_i/size_dist_e and the\n"
      "axes.size_dist sweep axis; each scales to the class mean 1/mu_c, so\n"
      "sweeping a distribution changes variability at fixed load):\n\n");
  for (const auto& info : esched::size_dist_families()) {
    std::printf("  %-20s %s\n", info.syntax, info.summary);
  }
  std::printf(
      "\nbackends: sim accepts any family for either class; exact accepts\n"
      "phase-type *inelastic* sizes (<= 16 phases, state augmentation) and\n"
      "exponential elastic sizes; qbd/mmk/trace require exponential sizes\n"
      "and reject other specs with an error naming the option.\n");
}

void print_scenarios() {
  std::printf("built-in scenarios:\n");
  for (const auto& name : esched::builtin_scenario_names()) {
    const esched::Scenario s = esched::builtin_scenario(name);
    std::printf("  %-20s %4zu points  %s\n", name.c_str(), s.num_points(),
                s.description.c_str());
  }
  std::printf("\nreport views (--view):");
  for (const auto& view : esched::report_view_names()) {
    std::printf(" %s", view.c_str());
  }
  std::printf("\n");
}

long parse_long(const char* flag, const std::string& value) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 0) {
    throw esched::Error(std::string(flag) + " expects a non-negative integer");
  }
  return parsed;
}

double parse_double(const char* flag, const std::string& value) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == value.c_str() ||
      !(parsed >= 0.0)) {
    throw esched::Error(std::string(flag) + " expects a non-negative number");
  }
  return parsed;
}

/// "I/N" with 0 <= I < N.
std::pair<std::size_t, std::size_t> parse_shard(const std::string& value) {
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos) {
    throw esched::Error("--shard expects I/N (e.g. --shard 0/4)");
  }
  const long index = parse_long("--shard", value.substr(0, slash));
  const long count = parse_long("--shard", value.substr(slash + 1));
  if (count < 1 || index >= count) {
    throw esched::Error("--shard I/N needs N >= 1 and I < N");
  }
  return {static_cast<std::size_t>(index), static_cast<std::size_t>(count)};
}

/// `esched merge <a.csv> <b.csv> ... --out merged.csv` — or the same with
/// .json report documents (the --out extension picks the format).
int run_merge(const std::vector<std::string>& args) {
  std::vector<std::string> inputs;
  std::string out_path;
  for (std::size_t n = 0; n < args.size(); ++n) {
    if (args[n] == "--out") {
      if (n + 1 >= args.size()) throw esched::Error("--out expects a value");
      out_path = args[++n];
    } else if (!args[n].empty() && args[n][0] == '-') {
      throw esched::Error("unknown merge option '" + args[n] + "'");
    } else {
      inputs.push_back(args[n]);
    }
  }
  if (inputs.empty()) {
    throw esched::Error("merge expects at least one input report");
  }
  if (out_path.empty()) {
    throw esched::Error("merge requires --out <merged.csv|merged.json>");
  }
  const bool json = out_path.ends_with(".json");
  for (const std::string& input : inputs) {
    if (input.ends_with(".json") != json) {
      throw esched::Error(
          "refusing to mix CSV and JSON reports in one merge ('" + input +
          "' vs --out " + out_path + ")");
    }
  }
  const esched::MergeStats stats =
      json ? esched::merge_json_reports(inputs, out_path)
           : esched::merge_csv_reports(inputs, out_path);
  std::printf("merged %zu file%s into %s (%zu rows)\n", stats.files,
              stats.files == 1 ? "" : "s", out_path.c_str(), stats.rows);
  return 0;
}

/// `esched cache ls|gc|init|info --cache-dir D [--max-age S]
/// [--max-bytes B] [--format text|json] [--slots N]`
int run_cache(const std::vector<std::string>& args) {
  if (args.empty() || (args[0] != "ls" && args[0] != "gc" &&
                       args[0] != "init" && args[0] != "info")) {
    throw esched::Error("cache expects a subcommand: ls, gc, init or info");
  }
  const std::string action = args[0];
  std::string cache_dir;
  std::string format = "text";
  std::optional<double> max_age;
  std::optional<std::uintmax_t> max_bytes;
  std::uint64_t slots = esched::ShmResultCache::kDefaultSlotCount;
  for (std::size_t n = 1; n < args.size(); ++n) {
    const auto next_value = [&](const char* flag) -> std::string {
      if (n + 1 >= args.size()) {
        throw esched::Error(std::string(flag) + " expects a value");
      }
      return args[++n];
    };
    if (args[n] == "--cache-dir") {
      cache_dir = next_value("--cache-dir");
    } else if (args[n] == "--max-age" && action == "gc") {
      max_age = static_cast<double>(
          parse_long("--max-age", next_value("--max-age")));
    } else if (args[n] == "--max-bytes" && action == "gc") {
      max_bytes = static_cast<std::uintmax_t>(
          parse_long("--max-bytes", next_value("--max-bytes")));
    } else if (args[n] == "--format" && action == "ls") {
      format = next_value("--format");
      if (format != "text" && format != "json") {
        throw esched::Error("--format expects text or json");
      }
    } else if (args[n] == "--slots" && action == "init") {
      slots = static_cast<std::uint64_t>(
          parse_long("--slots", next_value("--slots")));
    } else {
      throw esched::Error("unknown cache " + action + " option '" + args[n] +
                          "'");
    }
  }
  if (cache_dir.empty()) {
    throw esched::Error("cache " + action + " requires --cache-dir D");
  }

  if (action == "init") {
    const esched::DiskResultCache dir(cache_dir);  // creates the directory
    const auto table = esched::ShmResultCache::open_or_create(cache_dir, slots);
    if (table == nullptr) {
      throw esched::Error("cannot create a cache table in '" + cache_dir +
                          "' (unwritable directory, or no mmap support)");
    }
    const esched::ShmTableInfo info = table->info();
    std::printf(
        "cache table %s: %ju slots x %ju B (payload %ju B, keys up to %ju B), "
        "%ju entries\n",
        info.path.c_str(), static_cast<std::uintmax_t>(info.slot_count),
        static_cast<std::uintmax_t>(info.slot_bytes),
        static_cast<std::uintmax_t>(info.payload_bytes),
        static_cast<std::uintmax_t>(info.key_capacity),
        static_cast<std::uintmax_t>(info.valid_slots));
    return 0;
  }

  // ls/gc/info never create the table: inspecting (or shrinking) a cache
  // directory must not seed a 16 MiB table file in it. Sweeps and `cache
  // init` create tables.
  esched::TieredResultCache::Options options;
  options.create_table = false;
  const esched::TieredResultCache cache(cache_dir, options);

  if (action == "info") {
    if (const esched::ShmResultCache* table = cache.table()) {
      const esched::ShmTableInfo info = table->info();
      std::printf("table %s (format v%ju)\n", info.path.c_str(),
                  static_cast<std::uintmax_t>(info.format_version));
      std::printf(
          "  %ju slots x %ju B, payload %ju B, keys up to %ju B, file %ju B\n",
          static_cast<std::uintmax_t>(info.slot_count),
          static_cast<std::uintmax_t>(info.slot_bytes),
          static_cast<std::uintmax_t>(info.payload_bytes),
          static_cast<std::uintmax_t>(info.key_capacity),
          static_cast<std::uintmax_t>(info.file_bytes));
      std::printf("  %ju entries, %ju wedged slot%s\n",
                  static_cast<std::uintmax_t>(info.valid_slots),
                  static_cast<std::uintmax_t>(info.wedged_slots),
                  info.wedged_slots == 1 ? "" : "s");
    } else {
      std::printf(
          "no cache table in %s (file tier only; 'esched cache init' or any "
          "sweep with --cache-dir creates one)\n",
          cache_dir.c_str());
    }
    const auto files = cache.files().list_entries(false);
    std::uintmax_t file_bytes = 0;
    for (const auto& entry : files) file_bytes += entry.bytes;
    std::printf("file tier: %zu entr%s, %ju bytes\n", files.size(),
                files.size() == 1 ? "y" : "ies", file_bytes);
    return 0;
  }

  if (action == "ls") {
    const auto entries = cache.list_entries();
    std::uintmax_t total_bytes = 0;
    for (const auto& entry : entries) total_bytes += entry.bytes;
    if (format == "json") {
      // Machine-readable manifest: same fields as the text table.
      esched::JsonValue doc = esched::JsonValue::make_object();
      doc.set("cache_dir", esched::JsonValue::make_string(cache_dir));
      esched::JsonValue rows = esched::JsonValue::make_array();
      for (const auto& entry : entries) {
        esched::JsonValue row = esched::JsonValue::make_object();
        row.set("key", esched::JsonValue::make_string(entry.key));
        row.set("path", esched::JsonValue::make_string(entry.path));
        row.set("bytes", esched::JsonValue::make_number(
                             static_cast<double>(entry.bytes)));
        row.set("age_seconds",
                esched::JsonValue::make_number(entry.age_seconds));
        row.set("tier", esched::JsonValue::make_string(entry.tier));
        rows.push_back(std::move(row));
      }
      doc.set("entries", std::move(rows));
      doc.set("count", esched::JsonValue::make_number(
                           static_cast<double>(entries.size())));
      doc.set("total_bytes", esched::JsonValue::make_number(
                                 static_cast<double>(total_bytes)));
      std::printf("%s\n", doc.dump().c_str());
      return 0;
    }
    for (const auto& entry : entries) {
      std::printf("%8ju B  age %8.0f s  %-5s  %s\n",
                  static_cast<std::uintmax_t>(entry.bytes), entry.age_seconds,
                  entry.tier.c_str(),
                  entry.key.empty() ? entry.path.c_str() : entry.key.c_str());
    }
    std::printf("total: %zu entr%s, %ju bytes in %s\n", entries.size(),
                entries.size() == 1 ? "y" : "ies", total_bytes,
                cache_dir.c_str());
    return 0;
  }
  if (!max_age.has_value() && !max_bytes.has_value()) {
    throw esched::Error("cache gc needs --max-age and/or --max-bytes");
  }
  const esched::CacheGcResult result = cache.gc(max_age, max_bytes);
  std::printf(
      "cache gc: removed %zu of %zu entries (%ju bytes freed, %ju kept)\n",
      result.removed, result.scanned, result.bytes_removed,
      result.bytes_kept);
  return 0;
}

/// Shared "--flag VALUE" accessor for the queue subcommand parsers.
std::string next_value(const std::vector<std::string>& args, std::size_t* n,
                       const char* flag) {
  if (*n + 1 >= args.size()) {
    throw esched::Error(std::string(flag) + " expects a value");
  }
  return args[++*n];
}

/// Installs the process-wide trace sink for its lifetime when a --trace
/// path was given (engine layers pick it up via global_trace()), and
/// detaches the sink before the writer is destroyed. Observation only:
/// tracing never alters report bytes, RNG streams, or cache keys.
class TraceScope {
 public:
  explicit TraceScope(const std::string& path) {
    if (!path.empty()) {
      writer_ = std::make_unique<esched::TraceWriter>(path);
      esched::set_global_trace(writer_.get());
    }
  }
  ~TraceScope() {
    if (writer_ != nullptr) esched::set_global_trace(nullptr);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::unique_ptr<esched::TraceWriter> writer_;
};

/// Writes the --metrics-out snapshot (atomic rename, stable schema).
void write_metrics_snapshot(const std::string& path) {
  if (path.empty()) return;
  esched::write_metrics_json(esched::global_metrics(), path);
  std::printf("wrote %s (metrics schema v%d)\n", path.c_str(),
              esched::kMetricsSchemaVersion);
}

/// `esched queue init <scenario>... --queue-dir Q [--chunk N] ...`
int run_queue(const std::vector<std::string>& args) {
  if (args.empty() || args[0] != "init") {
    throw esched::Error("queue expects a subcommand: init");
  }
  std::vector<std::string> scenario_args;
  std::string queue_dir;
  std::size_t chunk = 32;
  esched::SweepOverrides overrides;
  for (std::size_t n = 1; n < args.size(); ++n) {
    if (args[n] == "--queue-dir") {
      queue_dir = next_value(args, &n, "--queue-dir");
    } else if (args[n] == "--chunk") {
      chunk = static_cast<std::size_t>(
          parse_long("--chunk", next_value(args, &n, "--chunk")));
    } else if (args[n] == "--seed") {
      overrides.base_seed = static_cast<std::uint64_t>(
          parse_long("--seed", next_value(args, &n, "--seed")));
    } else if (args[n] == "--sim-jobs") {
      overrides.sim_jobs = static_cast<std::uint64_t>(
          parse_long("--sim-jobs", next_value(args, &n, "--sim-jobs")));
    } else if (args[n] == "--exact-method") {
      overrides.exact_method = next_value(args, &n, "--exact-method");
    } else if (!args[n].empty() && args[n][0] == '-') {
      throw esched::Error("unknown queue init option '" + args[n] + "'");
    } else {
      scenario_args.push_back(args[n]);
    }
  }
  if (scenario_args.empty()) {
    throw esched::Error("queue init expects at least one scenario or spec");
  }
  if (queue_dir.empty()) {
    throw esched::Error("queue init requires --queue-dir Q");
  }
  if (chunk == 0) {
    throw esched::Error("--chunk must be >= 1");
  }
  const esched::LoadedSweep sweep = esched::load_sweep(scenario_args,
                                                       overrides);
  const esched::WorkQueue queue =
      esched::WorkQueue::init(queue_dir, sweep, chunk);
  std::printf(
      "queue %s: %zu chunks x <=%zu points (%zu points, %zu scenario%s)\n"
      "run `esched work --queue-dir %s` — as many workers as you like\n",
      queue_dir.c_str(), queue.manifest().num_chunks, chunk,
      sweep.total_points, sweep.scenarios.size(),
      sweep.scenarios.size() == 1 ? "" : "s", queue_dir.c_str());
  return 0;
}

/// `esched trace report <trace.jsonl>... [--format text|folded] [--rows N]
/// [--out P]` — merge multi-worker traces and rebuild the span trees.
int run_trace(const std::vector<std::string>& args) {
  if (args.empty() || args[0] != "report") {
    throw esched::Error("trace expects a subcommand: report");
  }
  std::vector<std::string> files;
  std::string format = "text";
  std::string out_path;
  std::size_t rows = 10;
  for (std::size_t n = 1; n < args.size(); ++n) {
    if (args[n] == "--format") {
      format = next_value(args, &n, "--format");
      if (format != "text" && format != "folded") {
        throw esched::Error("--format expects text or folded");
      }
    } else if (args[n] == "--rows") {
      rows = static_cast<std::size_t>(
          parse_long("--rows", next_value(args, &n, "--rows")));
    } else if (args[n] == "--out") {
      out_path = next_value(args, &n, "--out");
    } else if (!args[n].empty() && args[n][0] == '-') {
      throw esched::Error("unknown trace report option '" + args[n] + "'");
    } else {
      files.push_back(args[n]);
    }
  }
  if (files.empty()) {
    throw esched::Error("trace report expects at least one trace file");
  }
  const esched::TraceForest forest = esched::build_trace_forest(files);
  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::binary);
    if (!out_file.good()) {
      throw esched::Error("cannot write '" + out_path + "'");
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;
  if (format == "folded") {
    esched::print_trace_folded(forest, out);
  } else {
    esched::print_trace_report(forest, out, rows);
  }
  return 0;
}

/// `esched bench diff <old.json> <new.json> [--threshold X]` — the perf
/// gate: exit 1 when any case regressed past the threshold.
int run_bench(const std::vector<std::string>& args) {
  if (args.empty() || args[0] != "diff") {
    throw esched::Error("bench expects a subcommand: diff");
  }
  std::vector<std::string> paths;
  double threshold = 0.25;
  for (std::size_t n = 1; n < args.size(); ++n) {
    if (args[n] == "--threshold") {
      threshold = parse_double("--threshold",
                               next_value(args, &n, "--threshold"));
    } else if (!args[n].empty() && args[n][0] == '-') {
      throw esched::Error("unknown bench diff option '" + args[n] + "'");
    } else {
      paths.push_back(args[n]);
    }
  }
  if (paths.size() != 2) {
    throw esched::Error("bench diff expects exactly two snapshots: old new");
  }
  const esched::BenchSnapshot old_snapshot =
      esched::load_bench_snapshot(paths[0]);
  const esched::BenchSnapshot new_snapshot =
      esched::load_bench_snapshot(paths[1]);
  const esched::BenchDiffResult diff =
      esched::diff_bench_snapshots(old_snapshot, new_snapshot, threshold);
  esched::print_bench_diff(diff, std::cout);
  return diff.regressions > 0 ? 1 : 0;
}

/// `esched work --queue-dir Q [...]`
int run_work(const std::vector<std::string>& args) {
  std::string queue_dir;
  std::string metrics_path;
  std::string trace_path;
  esched::WorkerOptions options;
  options.log = &std::cerr;
  for (std::size_t n = 0; n < args.size(); ++n) {
    if (args[n] == "--queue-dir") {
      queue_dir = next_value(args, &n, "--queue-dir");
    } else if (args[n] == "--metrics-out") {
      metrics_path = next_value(args, &n, "--metrics-out");
    } else if (args[n] == "--trace") {
      trace_path = next_value(args, &n, "--trace");
    } else if (args[n] == "--threads") {
      options.threads = static_cast<int>(
          parse_long("--threads", next_value(args, &n, "--threads")));
    } else if (args[n] == "--cache-dir") {
      options.cache_dir = next_value(args, &n, "--cache-dir");
    } else if (args[n] == "--owner") {
      options.owner = next_value(args, &n, "--owner");
    } else if (args[n] == "--lease-ttl") {
      options.lease_ttl_seconds = static_cast<double>(
          parse_long("--lease-ttl", next_value(args, &n, "--lease-ttl")));
    } else if (args[n] == "--poll-ms") {
      options.poll_ms = static_cast<int>(
          parse_long("--poll-ms", next_value(args, &n, "--poll-ms")));
    } else if (args[n] == "--max-chunks") {
      options.max_chunks = static_cast<std::size_t>(
          parse_long("--max-chunks", next_value(args, &n, "--max-chunks")));
    } else if (args[n] == "--telemetry-dir") {
      options.telemetry_dir = next_value(args, &n, "--telemetry-dir");
    } else if (args[n] == "--telemetry-interval") {
      options.telemetry_interval_seconds = parse_double(
          "--telemetry-interval", next_value(args, &n, "--telemetry-interval"));
    } else if (args[n] == "--progress") {
      options.progress = true;
    } else if (args[n] == "--no-wait") {
      options.wait_for_stragglers = false;
    } else if (args[n] == "--abandon") {
      // Crash-test hook: claim a chunk and exit holding the lease, so CI
      // can exercise lease expiry + requeue deterministically.
      options.abandon = true;
    } else {
      throw esched::Error("unknown work option '" + args[n] + "'");
    }
  }
  if (queue_dir.empty()) {
    throw esched::Error("work requires --queue-dir Q");
  }
  const TraceScope trace(trace_path);
  const esched::WorkerSummary summary = esched::run_worker(queue_dir, options);
  write_metrics_snapshot(metrics_path);
  std::printf("work %s: %zu chunks (%zu points) solved, %zu requeued%s\n",
              queue_dir.c_str(), summary.chunks_solved, summary.points_solved,
              summary.chunks_requeued,
              summary.queue_drained ? "; queue drained" : "");
  if (summary.queue_failed > 0) {
    std::fprintf(stderr,
                 "esched: %zu chunk(s) failed permanently (deterministic "
                 "solver errors; see %s/failed/ and `esched status`)\n",
                 summary.queue_failed, queue_dir.c_str());
    return 1;
  }
  return 0;
}

/// printf-style append. Status frames are assembled fully before any
/// write so `--watch` repaints with one fputs — no torn frames when the
/// terminal is shared with worker stderr.
void appendf(std::string* out, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[1024];
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

/// One `esched status` frame. The one-shot sections are byte-identical
/// to the historical output; `watch` adds per-worker throughput and a
/// rolling ETA computed from done records committed inside the last
/// `kRollingWindowSeconds` (their mtime age), which tracks the CURRENT
/// fleet speed — the cumulative avg below it never forgets a slow start.
/// Sets *finished when every chunk is done or terminally failed.
constexpr double kRollingWindowSeconds = 120.0;

/// Appends the live-telemetry fleet section: per-worker throughput and
/// heartbeat lag from the published snapshots, then fleet-wide cache
/// effectiveness and per-backend solve-time quantiles — counters summed
/// and histograms BUCKET-merged across workers, so the p50/p99 shown are
/// quantiles of the combined distribution, not averages of per-process
/// quantiles.
void append_fleet_status(std::string* out, const std::string& telemetry_dir) {
  const esched::FleetSnapshot fleet =
      esched::read_fleet_telemetry(telemetry_dir);
  if (fleet.workers.empty() && fleet.skipped_files == 0) return;
  appendf(out, "  fleet telemetry (%s): %zu worker%s", telemetry_dir.c_str(),
          fleet.workers.size(), fleet.workers.size() == 1 ? "" : "s");
  if (fleet.skipped_files > 0) {
    appendf(out, ", %zu unreadable file%s skipped", fleet.skipped_files,
            fleet.skipped_files == 1 ? "" : "s");
  }
  *out += "\n";
  for (const esched::WorkerTelemetry& worker : fleet.workers) {
    const std::uint64_t points =
        worker.metrics.counter_value("sweep.points.solved");
    const double rate = worker.uptime_seconds > 0.0
                            ? static_cast<double>(points) /
                                  worker.uptime_seconds
                            : 0.0;
    appendf(out,
            "    %-24s %6ju points  %7.2f pts/s  lag %5.1f s%s\n",
            worker.owner.empty() ? "(unnamed)" : worker.owner.c_str(),
            static_cast<std::uintmax_t>(points), rate, worker.age_seconds,
            worker.final_snapshot ? "  [final]" : "");
  }
  const std::uint64_t hits = fleet.merged.counter_value("cache.shm.hits");
  const std::uint64_t misses = fleet.merged.counter_value("cache.shm.misses");
  const std::uint64_t spills = fleet.merged.counter_value("cache.shm.spills");
  if (hits + misses + spills > 0) {
    appendf(out,
            "    cache.shm: %ju hits / %ju misses (%.1f%% hit rate), "
            "%ju spills\n",
            static_cast<std::uintmax_t>(hits),
            static_cast<std::uintmax_t>(misses),
            hits + misses == 0
                ? 0.0
                : 100.0 * static_cast<double>(hits) /
                      static_cast<double>(hits + misses),
            static_cast<std::uintmax_t>(spills));
  }
  for (const auto& [name, hist] : fleet.merged.histograms) {
    // Per-backend solve-time distributions: solver.<backend>.seconds.
    if (hist.count == 0 || name.rfind("solver.", 0) != 0 ||
        !name.ends_with(".seconds")) {
      continue;
    }
    appendf(out, "    %-24s p50 %10.6f s  p99 %10.6f s  (%ju solves)\n",
            name.c_str(), hist.quantile(0.50), hist.quantile(0.99),
            static_cast<std::uintmax_t>(hist.count));
  }
}

std::string render_status(const esched::WorkQueue& queue, double lease_ttl,
                          bool watch, bool* finished) {
  const esched::QueueManifest& manifest = queue.manifest();
  const esched::QueueCounts counts = queue.counts(lease_ttl);
  *finished = counts.done + counts.failed >= manifest.num_chunks;
  std::string out;
  appendf(&out, "queue %s: %zu chunks x <=%zu points (%zu points total)\n",
          queue.directory().c_str(), manifest.num_chunks, manifest.chunk_size,
          manifest.total_points);
  appendf(&out, "  pending: %zu   leased: %zu (%zu expired)   done: %zu/%zu\n",
          counts.pending, counts.leased, counts.expired, counts.done,
          manifest.num_chunks);
  if (counts.failed > 0) {
    appendf(&out, "  FAILED: %zu chunk(s) — deterministic solver errors:\n",
            counts.failed);
    for (const esched::FailureRecord& failure : queue.failures()) {
      appendf(&out, "    chunk %zu (%s): %s\n", failure.chunk,
              failure.owner.c_str(), failure.error.c_str());
    }
  }
  appendf(&out, "  points done: %zu/%zu (%.1f%%)\n", counts.done_points,
          manifest.total_points,
          manifest.total_points == 0
              ? 100.0
              : 100.0 * static_cast<double>(counts.done_points) /
                    static_cast<double>(manifest.total_points));
  if (watch && counts.done > 0) {
    // Per-owner tallies over every committed chunk, plus the recent
    // window for the rolling rate.
    struct Tally {
      std::size_t chunks = 0;
      std::size_t points = 0;
      double seconds = 0.0;
      std::size_t recent_points = 0;
    };
    std::map<std::string, Tally> by_owner;  // sorted -> stable frames
    std::size_t recent_points = 0;
    double recent_span = 0.0;
    for (const esched::ChunkRecord& record : queue.completed()) {
      Tally& tally =
          by_owner[record.owner.empty() ? "(unknown)" : record.owner];
      ++tally.chunks;
      tally.points += record.rows;
      tally.seconds += record.solve_seconds;
      if (record.age_seconds <= kRollingWindowSeconds) {
        recent_points += record.rows;
        tally.recent_points += record.rows;
        recent_span = std::max(recent_span, record.age_seconds);
      }
    }
    appendf(&out, "  workers (committed chunks):\n");
    for (const auto& [owner, tally] : by_owner) {
      appendf(&out, "    %-24s %4zu chunks  %6zu points  %.4f s/point",
              owner.c_str(), tally.chunks, tally.points,
              tally.points == 0
                  ? 0.0
                  : tally.seconds / static_cast<double>(tally.points));
      if (tally.recent_points > 0) {
        appendf(&out, "  [%zu recent]", tally.recent_points);
      }
      out += "\n";
    }
    if (recent_points > 0 && !*finished) {
      const double span = std::max(recent_span, 1.0);
      const double rate = static_cast<double>(recent_points) / span;
      const double eta =
          static_cast<double>(manifest.total_points - counts.done_points) /
          rate;
      appendf(&out,
              "  rolling: %.2f points/s over the last %.0f s -> ~%.1f s "
              "left\n",
              rate, span, eta);
    }
  }
  if (counts.done_points > 0 && counts.done < manifest.num_chunks) {
    const double per_point =
        counts.done_seconds / static_cast<double>(counts.done_points);
    const double remaining =
        per_point *
        static_cast<double>(manifest.total_points - counts.done_points);
    const std::size_t workers =
        counts.active_workers > 0 ? counts.active_workers : 1;
    appendf(&out,
            "  avg solve: %.4f s/point; ~%.1f s of work left (~%.1f s at %zu "
            "active worker%s)\n",
            per_point, remaining, remaining / static_cast<double>(workers),
            workers, workers == 1 ? "" : "s");
  }
  if (counts.done == manifest.num_chunks) {
    appendf(&out, "  complete — `esched collect --queue-dir %s --out ...`\n",
            queue.directory().c_str());
  }
  return out;
}

/// `esched status --queue-dir Q [--lease-ttl S] [--watch] [--interval S]`
int run_status(const std::vector<std::string>& args) {
  std::string queue_dir;
  std::string telemetry_dir;
  double lease_ttl = 60.0;
  bool watch = false;
  double interval = 2.0;
  for (std::size_t n = 0; n < args.size(); ++n) {
    if (args[n] == "--queue-dir") {
      queue_dir = next_value(args, &n, "--queue-dir");
    } else if (args[n] == "--telemetry-dir") {
      telemetry_dir = next_value(args, &n, "--telemetry-dir");
    } else if (args[n] == "--lease-ttl") {
      lease_ttl = static_cast<double>(
          parse_long("--lease-ttl", next_value(args, &n, "--lease-ttl")));
    } else if (args[n] == "--watch") {
      watch = true;
    } else if (args[n] == "--interval") {
      interval = static_cast<double>(
          parse_long("--interval", next_value(args, &n, "--interval")));
    } else {
      throw esched::Error("unknown status option '" + args[n] + "'");
    }
  }
  if (queue_dir.empty()) {
    throw esched::Error("status requires --queue-dir Q");
  }
  // The conventional in-queue location workers get by pointing
  // --telemetry-dir at <queue-dir>/telemetry; picked up automatically so
  // `esched status --queue-dir Q` shows the fleet without extra flags.
  if (telemetry_dir.empty()) {
    const std::string conventional =
        (std::filesystem::path(queue_dir) / "telemetry").string();
    std::error_code ec;
    if (std::filesystem::is_directory(conventional, ec)) {
      telemetry_dir = conventional;
    }
  }
  const esched::WorkQueue queue(queue_dir);
  bool finished = false;
  if (!watch) {
    std::string frame =
        render_status(queue, lease_ttl, /*watch=*/false, &finished);
    if (!telemetry_dir.empty()) append_fleet_status(&frame, telemetry_dir);
    std::fputs(frame.c_str(), stdout);
    return 0;
  }
#if __has_include(<unistd.h>)
  const bool tty = ::isatty(::fileno(stdout)) != 0;
#else
  const bool tty = false;
#endif
  for (;;) {
    std::string frame =
        render_status(queue, lease_ttl, /*watch=*/true, &finished);
    if (!telemetry_dir.empty()) append_fleet_status(&frame, telemetry_dir);
    // Home + clear on a tty so the frame repaints in place; plain
    // append when piped (each frame stays a parseable block).
    if (tty) std::fputs("\033[H\033[2J", stdout);
    std::fputs(frame.c_str(), stdout);
    std::fflush(stdout);
    if (finished) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
  return 0;
}

/// `esched collect --queue-dir Q --out merged.csv [--json merged.json]`
int run_collect(const std::vector<std::string>& args) {
  std::string queue_dir;
  std::string out_path;
  std::string json_path;
  for (std::size_t n = 0; n < args.size(); ++n) {
    if (args[n] == "--queue-dir") {
      queue_dir = next_value(args, &n, "--queue-dir");
    } else if (args[n] == "--out") {
      out_path = next_value(args, &n, "--out");
    } else if (args[n] == "--json") {
      json_path = next_value(args, &n, "--json");
    } else {
      throw esched::Error("unknown collect option '" + args[n] + "'");
    }
  }
  if (queue_dir.empty()) {
    throw esched::Error("collect requires --queue-dir Q");
  }
  if (out_path.empty() && json_path.empty()) {
    throw esched::Error("collect requires --out PATH (and/or --json PATH)");
  }
  const esched::WorkQueue queue(queue_dir);
  queue.sweep_stale_tmp();
  if (!out_path.empty()) {
    const esched::MergeStats stats = esched::merge_csv_reports(
        queue.collectable_paths(/*json=*/false), out_path);
    std::printf("collected %s: %zu rows from %zu chunks\n", out_path.c_str(),
                stats.rows, stats.files);
  }
  if (!json_path.empty()) {
    const esched::MergeStats stats = esched::merge_json_reports(
        queue.collectable_paths(/*json=*/true), json_path);
    std::printf("collected %s: %zu rows from %zu chunks\n", json_path.c_str(),
                stats.rows, stats.files);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> scenario_args;
  int threads = 0;
  std::uint64_t seed = 1;
  bool seed_set = false;
  std::uint64_t sim_jobs = 0;
  std::string exact_method;
  std::string view_override;
  std::string cache_dir;
  std::string out_path;
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;
  std::string telemetry_dir;
  double telemetry_interval = 2.0;
  std::size_t summary_rows = 20;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  bool show_spec = false;
  bool stream = false;
  bool show_progress = false;

  try {
    if (argc > 1) {
      const std::string subcommand = argv[1];
      const std::vector<std::string> rest(argv + 2, argv + argc);
      if (subcommand == "merge") return run_merge(rest);
      if (subcommand == "cache") return run_cache(rest);
      if (subcommand == "queue") return run_queue(rest);
      if (subcommand == "work") return run_work(rest);
      if (subcommand == "status") return run_status(rest);
      if (subcommand == "collect") return run_collect(rest);
      if (subcommand == "trace") return run_trace(rest);
      if (subcommand == "bench") return run_bench(rest);
    }
    for (int n = 1; n < argc; ++n) {
      const std::string arg = argv[n];
      const auto next_value = [&](const char* flag) -> std::string {
        if (n + 1 >= argc) {
          throw esched::Error(std::string(flag) + " expects a value");
        }
        return argv[++n];
      };
      if (arg == "--help" || arg == "-h") {
        print_usage();
        return 0;
      } else if (arg == "list" && scenario_args.empty() && !show_spec) {
        print_scenarios();
        return 0;
      } else if (arg == "dists" && scenario_args.empty() && !show_spec) {
        print_size_dists();
        return 0;
      } else if (arg == "run" && scenario_args.empty() && !show_spec) {
        // explicit subcommand; scenario args follow
      } else if (arg == "show" && scenario_args.empty()) {
        show_spec = true;
      } else if (arg == "--threads") {
        threads =
            static_cast<int>(parse_long("--threads", next_value("--threads")));
      } else if (arg == "--seed") {
        seed = static_cast<std::uint64_t>(
            parse_long("--seed", next_value("--seed")));
        seed_set = true;
      } else if (arg == "--sim-jobs") {
        sim_jobs = static_cast<std::uint64_t>(
            parse_long("--sim-jobs", next_value("--sim-jobs")));
      } else if (arg == "--exact-method") {
        exact_method = next_value("--exact-method");
      } else if (arg == "--view") {
        view_override = next_value("--view");
      } else if (arg == "--shard") {
        std::tie(shard_index, shard_count) =
            parse_shard(next_value("--shard"));
      } else if (arg == "--cache-dir") {
        cache_dir = next_value("--cache-dir");
      } else if (arg == "--out") {
        out_path = next_value("--out");
      } else if (arg == "--stream") {
        stream = true;
      } else if (arg == "--progress") {
        show_progress = true;
      } else if (arg == "--json") {
        json_path = next_value("--json");
      } else if (arg == "--metrics-out") {
        metrics_path = next_value("--metrics-out");
      } else if (arg == "--trace") {
        trace_path = next_value("--trace");
      } else if (arg == "--telemetry-dir") {
        telemetry_dir = next_value("--telemetry-dir");
      } else if (arg == "--telemetry-interval") {
        telemetry_interval = parse_double("--telemetry-interval",
                                          next_value("--telemetry-interval"));
      } else if (arg == "--rows") {
        summary_rows = static_cast<std::size_t>(
            parse_long("--rows", next_value("--rows")));
      } else if (!arg.empty() && arg[0] == '-') {
        throw esched::Error("unknown option '" + arg + "'");
      } else {
        scenario_args.push_back(arg);
      }
    }
    if (show_spec) {
      if (scenario_args.empty()) {
        throw esched::Error("show expects a scenario name");
      }
      for (const auto& name : scenario_args) {
        const esched::Scenario scenario =
            esched::looks_like_spec_path(name)
                ? esched::load_scenario_file(name)
                : esched::builtin_scenario(name);
        std::printf("%s\n", esched::scenario_to_json(scenario).dump().c_str());
      }
      return 0;
    }
    if (scenario_args.empty()) {
      print_usage();
      std::printf("\n");
      print_scenarios();
      return 1;
    }
    if (stream && out_path.empty()) {
      throw esched::Error("--stream requires --out PATH");
    }
    const TraceScope trace(trace_path);
    // Live telemetry for standalone runs mirrors the worker path: periodic
    // snapshots under the run's owner identity, final snapshot at exit.
    std::unique_ptr<esched::TelemetryPublisher> telemetry;
    if (!telemetry_dir.empty()) {
      esched::TelemetryOptions telemetry_options;
      telemetry_options.dir = telemetry_dir;
      telemetry_options.owner = esched::default_worker_owner();
      telemetry_options.interval_seconds = telemetry_interval;
      telemetry = std::make_unique<esched::TelemetryPublisher>(
          std::move(telemetry_options));
    }

    esched::SweepRunner runner(threads);
    if (!cache_dir.empty()) runner.set_cache_dir(cache_dir);
    // Load (and expand) every scenario before any output (engine
    // load_sweep, shared with `esched queue init` and the dist workers):
    // a typo'd second spec must not leave a half-written report, and the
    // report schema — whether size_dist columns appear — derives from the
    // FULL expanded sweeps, never from a shard slice, so every shard of
    // one command line shares one header and `esched merge` accepts them.
    esched::SweepOverrides overrides;
    if (seed_set) overrides.base_seed = seed;
    overrides.sim_jobs = sim_jobs;
    overrides.exact_method = exact_method;
    esched::LoadedSweep sweep = esched::load_sweep(scenario_args, overrides);
    const bool with_size_dist = sweep.with_size_dist;
    // Rows this invocation will actually run (the shard slices), for the
    // --progress denominator.
    std::size_t invocation_rows = 0;
    for (const auto& grid : sweep.grids) {
      if (shard_count > 1) {
        const auto [begin, end] =
            esched::shard_range(grid.size(), shard_index, shard_count);
        invocation_rows += end - begin;
      } else {
        invocation_rows += grid.size();
      }
    }
    // --out/--json collect every scenario into ONE combined report (the
    // schema is uniform across solvers); without --out each scenario
    // writes its own <name>.csv. With --stream, rows go to --out the
    // moment they complete (resuming a partial file when one exists)
    // instead of in one write at the end.
    std::unique_ptr<esched::StreamingCsvReport> stream_report;
    if (stream) {
      stream_report = std::make_unique<esched::StreamingCsvReport>(
          out_path, /*resume=*/true, with_size_dist);
      if (stream_report->rows_resumed() > 0) {
        std::printf("resuming %s: %zu complete rows kept\n", out_path.c_str(),
                    stream_report->rows_resumed());
      }
    }
    std::size_t streamed_offset = 0;
    std::vector<esched::RunPoint> all_points;
    std::vector<esched::RunResult> all_results;
    esched::SweepStats combined;
    combined.threads_used = runner.num_threads();
    for (std::size_t sc = 0; sc < sweep.scenarios.size(); ++sc) {
      const esched::Scenario& scenario = sweep.scenarios[sc];
      std::printf("=== scenario %s: %s ===\n", scenario.name.c_str(),
                  scenario.description.c_str());
      auto points = std::move(sweep.grids[sc]);
      if (shard_count > 1) {
        // Contiguous row-order split: `esched merge` of the shard CSVs in
        // shard order reproduces the unsharded report row for row.
        const std::size_t total = points.size();
        const auto [begin, end] =
            esched::shard_range(total, shard_index, shard_count);
        points.assign(points.begin() + static_cast<std::ptrdiff_t>(begin),
                      points.begin() + static_cast<std::ptrdiff_t>(end));
        std::printf("shard %zu/%zu: points %zu..%zu of %zu%s\n", shard_index,
                    shard_count, begin, end, total,
                    begin == end ? " (empty)" : "");
      }
      esched::SweepStats stats;
      esched::RowCallback on_row;
      if (stream_report != nullptr || show_progress) {
        const std::size_t base = streamed_offset;
        // The progress callback offsets by `base` itself, so both
        // consumers number rows in the combined invocation order.
        esched::RowCallback progress;
        if (show_progress) {
          progress =
              esched::progress_callback(invocation_rows, std::cerr, base);
        }
        on_row = [&stream_report, progress, base](
                     std::size_t index, const esched::RunPoint& point,
                     const esched::RunResult& result) {
          if (progress) progress(index, point, result);
          if (stream_report != nullptr) {
            stream_report->add_row(base + index, point, result);
          }
        };
      }
      const auto results = runner.run(points, &stats, on_row);
      streamed_offset += points.size();

      // Figure views need the full grid; sharded runs fall back to the
      // generic table.
      std::string view = view_override.empty() ? scenario.view : view_override;
      if (shard_count > 1) view = "table";
      esched::ViewOptions view_options;
      view_options.max_rows = summary_rows;
      esched::print_view(view, std::cout, scenario, points, results, stats,
                         view_options);
      if (view != "table") {
        // The table view already ends with this trailer.
        std::printf("\n");
        esched::print_stats_line(std::cout, stats);
      }

      if (out_path.empty()) {
        // Schema from this scenario's FULL grid, so every shard of one
        // scenario emits the same header however its slice falls.
        const std::string csv_path = scenario.name + ".csv";
        esched::write_csv_report(csv_path, points, results,
                                 static_cast<bool>(
                                     sweep.scenario_size_dist[sc]));
        std::printf("wrote %s (%zu rows)\n", csv_path.c_str(), points.size());
      }
      if (!out_path.empty() || !json_path.empty()) {
        all_points.insert(all_points.end(), points.begin(), points.end());
        all_results.insert(all_results.end(), results.begin(), results.end());
        combined.total_points += stats.total_points;
        combined.solved_points += stats.solved_points;
        combined.cache_hits += stats.cache_hits;
        combined.disk_hits += stats.disk_hits;
        combined.wall_seconds += stats.wall_seconds;
        combined.solve_seconds_total += stats.solve_seconds_total;
      }
      std::printf("\n");
    }
    if (stream_report != nullptr) {
      stream_report->finish(streamed_offset);
      std::printf("streamed %s (%zu rows, %zu resumed, %zu scenario%s)\n",
                  out_path.c_str(), stream_report->rows_emitted(),
                  stream_report->rows_resumed(), scenario_args.size(),
                  scenario_args.size() == 1 ? "" : "s");
    } else if (!out_path.empty()) {
      esched::write_csv_report(out_path, all_points, all_results,
                               with_size_dist);
      std::printf("wrote %s (%zu rows, %zu scenario%s)\n", out_path.c_str(),
                  all_points.size(), scenario_args.size(),
                  scenario_args.size() == 1 ? "" : "s");
    }
    if (!json_path.empty()) {
      esched::write_json_report(json_path, all_points, all_results,
                                &combined, with_size_dist);
      std::printf("wrote %s (%zu rows, %zu scenario%s)\n", json_path.c_str(),
                  all_points.size(), scenario_args.size(),
                  scenario_args.size() == 1 ? "" : "s");
    }
    write_metrics_snapshot(metrics_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esched: %s\n", e.what());
    return 1;
  }
  return 0;
}
