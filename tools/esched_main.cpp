// `esched` — the scenario-sweep CLI.
//
// Runs scenarios — built-in names or user-authored JSON spec files —
// through the parallel engine, renders a named report view, and writes
// uniform CSV/JSON reports:
//
//   esched list                          # scenarios + report views
//   esched show fig5                     # print a built-in as spec JSON
//   esched run fig6 --threads 4
//   esched run my_sweep.json --view table
//   esched run fig4 fig5 --json out.json # shared memo cache across both
//   esched run fig5 --shard 0/2 --out s0.csv   # order-independent shards
//   esched run fig5 --cache-dir .esched-cache  # skip already-solved points
//
// (`esched <scenario>` without the `run` keyword still works.)
//
// Scenarios named in one invocation share the memoization cache, so
// overlapping grids (e.g. fig5 is a slice of fig4) solve once; --cache-dir
// extends that across invocations and processes.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/spec.hpp"
#include "engine/sweep_runner.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: esched [run] <scenario-or-spec.json>... [options]\n"
      "       esched list\n"
      "       esched show <scenario>\n"
      "\n"
      "A scenario argument is a built-in name (see `esched list`) or a\n"
      "path to a JSON spec file (anything containing '/' or ending in\n"
      "'.json'); see README for the spec schema.\n"
      "\n"
      "options:\n"
      "  --threads N     worker threads (default: all hardware threads)\n"
      "  --seed S        base RNG seed for simulation points (default: 1)\n"
      "  --sim-jobs N    measured completions per simulation point\n"
      "  --view NAME     report view (default: the scenario's own view)\n"
      "  --shard I/N     run only shard I of N (contiguous row-order\n"
      "                  split; concatenating the shard CSVs minus their\n"
      "                  headers reproduces the unsharded CSV)\n"
      "  --cache-dir D   persistent result cache: skip points already\n"
      "                  solved by earlier invocations, store new ones\n"
      "  --out PATH      CSV output path (default: <scenario>.csv)\n"
      "  --json PATH     also write a JSON report\n"
      "  --rows N        summary rows printed per scenario (default: 20)\n");
}

void print_scenarios() {
  std::printf("built-in scenarios:\n");
  for (const auto& name : esched::builtin_scenario_names()) {
    const esched::Scenario s = esched::builtin_scenario(name);
    std::printf("  %-20s %4zu points  %s\n", name.c_str(), s.num_points(),
                s.description.c_str());
  }
  std::printf("\nreport views (--view):");
  for (const auto& view : esched::report_view_names()) {
    std::printf(" %s", view.c_str());
  }
  std::printf("\n");
}

long parse_long(const char* flag, const std::string& value) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 0) {
    throw esched::Error(std::string(flag) + " expects a non-negative integer");
  }
  return parsed;
}

/// "I/N" with 0 <= I < N.
std::pair<std::size_t, std::size_t> parse_shard(const std::string& value) {
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos) {
    throw esched::Error("--shard expects I/N (e.g. --shard 0/4)");
  }
  const long index = parse_long("--shard", value.substr(0, slash));
  const long count = parse_long("--shard", value.substr(slash + 1));
  if (count < 1 || index >= count) {
    throw esched::Error("--shard I/N needs N >= 1 and I < N");
  }
  return {static_cast<std::size_t>(index), static_cast<std::size_t>(count)};
}

bool looks_like_spec_path(const std::string& arg) {
  if (arg.find('/') != std::string::npos) return true;
  return arg.size() > 5 && arg.compare(arg.size() - 5, 5, ".json") == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> scenario_args;
  int threads = 0;
  std::uint64_t seed = 1;
  bool seed_set = false;
  std::uint64_t sim_jobs = 0;
  std::string view_override;
  std::string cache_dir;
  std::string out_path;
  std::string json_path;
  std::size_t summary_rows = 20;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  bool show_spec = false;

  try {
    for (int n = 1; n < argc; ++n) {
      const std::string arg = argv[n];
      const auto next_value = [&](const char* flag) -> std::string {
        if (n + 1 >= argc) {
          throw esched::Error(std::string(flag) + " expects a value");
        }
        return argv[++n];
      };
      if (arg == "--help" || arg == "-h") {
        print_usage();
        return 0;
      } else if (arg == "list" && scenario_args.empty() && !show_spec) {
        print_scenarios();
        return 0;
      } else if (arg == "run" && scenario_args.empty() && !show_spec) {
        // explicit subcommand; scenario args follow
      } else if (arg == "show" && scenario_args.empty()) {
        show_spec = true;
      } else if (arg == "--threads") {
        threads =
            static_cast<int>(parse_long("--threads", next_value("--threads")));
      } else if (arg == "--seed") {
        seed = static_cast<std::uint64_t>(
            parse_long("--seed", next_value("--seed")));
        seed_set = true;
      } else if (arg == "--sim-jobs") {
        sim_jobs = static_cast<std::uint64_t>(
            parse_long("--sim-jobs", next_value("--sim-jobs")));
      } else if (arg == "--view") {
        view_override = next_value("--view");
      } else if (arg == "--shard") {
        std::tie(shard_index, shard_count) =
            parse_shard(next_value("--shard"));
      } else if (arg == "--cache-dir") {
        cache_dir = next_value("--cache-dir");
      } else if (arg == "--out") {
        out_path = next_value("--out");
      } else if (arg == "--json") {
        json_path = next_value("--json");
      } else if (arg == "--rows") {
        summary_rows = static_cast<std::size_t>(
            parse_long("--rows", next_value("--rows")));
      } else if (!arg.empty() && arg[0] == '-') {
        throw esched::Error("unknown option '" + arg + "'");
      } else {
        scenario_args.push_back(arg);
      }
    }
    if (show_spec) {
      if (scenario_args.empty()) {
        throw esched::Error("show expects a scenario name");
      }
      for (const auto& name : scenario_args) {
        const esched::Scenario scenario =
            looks_like_spec_path(name) ? esched::load_scenario_file(name)
                                       : esched::builtin_scenario(name);
        std::printf("%s\n", esched::scenario_to_json(scenario).dump().c_str());
      }
      return 0;
    }
    if (scenario_args.empty()) {
      print_usage();
      std::printf("\n");
      print_scenarios();
      return 1;
    }

    esched::SweepRunner runner(threads);
    if (!cache_dir.empty()) runner.set_cache_dir(cache_dir);
    // --out/--json collect every scenario into ONE combined report (the
    // schema is uniform across solvers); without --out each scenario
    // writes its own <name>.csv.
    std::vector<esched::RunPoint> all_points;
    std::vector<esched::RunResult> all_results;
    esched::SweepStats combined;
    combined.threads_used = runner.num_threads();
    for (const auto& arg : scenario_args) {
      esched::Scenario scenario = looks_like_spec_path(arg)
                                      ? esched::load_scenario_file(arg)
                                      : esched::builtin_scenario(arg);
      if (seed_set) scenario.options.base_seed = seed;
      if (sim_jobs > 0) scenario.options.sim_jobs = sim_jobs;

      std::printf("=== scenario %s: %s ===\n", scenario.name.c_str(),
                  scenario.description.c_str());
      auto points = scenario.expand();
      if (shard_count > 1) {
        // Contiguous row-order split: concatenating shard CSVs in shard
        // order reproduces the unsharded report row for row.
        const std::size_t total = points.size();
        const std::size_t begin = shard_index * total / shard_count;
        const std::size_t end = (shard_index + 1) * total / shard_count;
        points.assign(points.begin() + static_cast<std::ptrdiff_t>(begin),
                      points.begin() + static_cast<std::ptrdiff_t>(end));
        std::printf("shard %zu/%zu: points %zu..%zu of %zu\n", shard_index,
                    shard_count, begin, end, total);
      }
      esched::SweepStats stats;
      const auto results = runner.run(points, &stats);

      // Figure views need the full grid; sharded runs fall back to the
      // generic table.
      std::string view = view_override.empty() ? scenario.view : view_override;
      if (shard_count > 1) view = "table";
      esched::ViewOptions view_options;
      view_options.max_rows = summary_rows;
      esched::print_view(view, std::cout, scenario, points, results, stats,
                         view_options);
      if (view != "table") {
        // The table view already ends with this trailer.
        std::printf("\n");
        esched::print_stats_line(std::cout, stats);
      }

      if (out_path.empty()) {
        const std::string csv_path = scenario.name + ".csv";
        esched::write_csv_report(csv_path, points, results);
        std::printf("wrote %s (%zu rows)\n", csv_path.c_str(), points.size());
      }
      if (!out_path.empty() || !json_path.empty()) {
        all_points.insert(all_points.end(), points.begin(), points.end());
        all_results.insert(all_results.end(), results.begin(), results.end());
        combined.total_points += stats.total_points;
        combined.solved_points += stats.solved_points;
        combined.cache_hits += stats.cache_hits;
        combined.disk_hits += stats.disk_hits;
        combined.wall_seconds += stats.wall_seconds;
      }
      std::printf("\n");
    }
    if (!out_path.empty()) {
      esched::write_csv_report(out_path, all_points, all_results);
      std::printf("wrote %s (%zu rows, %zu scenario%s)\n", out_path.c_str(),
                  all_points.size(), scenario_args.size(),
                  scenario_args.size() == 1 ? "" : "s");
    }
    if (!json_path.empty()) {
      esched::write_json_report(json_path, all_points, all_results,
                                &combined);
      std::printf("wrote %s (%zu rows, %zu scenario%s)\n", json_path.c_str(),
                  all_points.size(), scenario_args.size(),
                  scenario_args.size() == 1 ? "" : "s");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esched: %s\n", e.what());
    return 1;
  }
  return 0;
}
