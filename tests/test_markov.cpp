// Unit tests for the CTMC toolkit: stationary solvers cross-checked
// against closed forms and each other, absorbing-chain rewards, and the
// birth-death first-passage recursion validated against the M/M/1
// busy-period closed forms it is meant to certify.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "common/error.hpp"
#include "markov/absorbing.hpp"
#include "markov/birth_death.hpp"
#include "markov/block_solver.hpp"
#include "markov/ctmc.hpp"
#include "markov/stationary.hpp"

namespace esched {
namespace {

/// Truncated M/M/1 chain: states 0..n-1, birth lambda, death mu.
SparseCtmc mm1_chain(std::size_t n, double lambda, double mu) {
  SparseCtmc chain(n);
  for (std::size_t s = 0; s + 1 < n; ++s) {
    chain.add_rate(s, s + 1, lambda);
    chain.add_rate(s + 1, s, mu);
  }
  chain.freeze();
  return chain;
}

TEST(SparseCtmc, BasicAccounting) {
  SparseCtmc chain(3);
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(0, 1, 1.0);  // duplicates accumulate
  chain.add_rate(1, 2, 4.0);
  chain.add_rate(2, 0, 5.0);
  chain.freeze();
  EXPECT_DOUBLE_EQ(chain.exit_rate(0), 3.0);
  EXPECT_DOUBLE_EQ(chain.max_exit_rate(), 5.0);
  ASSERT_EQ(chain.transitions_from(0).size(), 1u);  // merged
  EXPECT_DOUBLE_EQ(chain.transitions_from(0)[0].rate, 3.0);
  const Matrix q = chain.dense_generator();
  EXPECT_DOUBLE_EQ(q(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(q(0, 1), 3.0);
}

TEST(SparseCtmc, RejectsInvalidTransitions) {
  SparseCtmc chain(2);
  EXPECT_THROW(chain.add_rate(0, 0, 1.0), Error);   // self loop
  EXPECT_THROW(chain.add_rate(0, 5, 1.0), Error);   // out of range
  EXPECT_THROW(chain.add_rate(0, 1, -1.0), Error);  // negative
}

TEST(Stationary, GthMatchesMM1GeometricDistribution) {
  const double lambda = 0.6;
  const double mu = 1.0;
  const std::size_t n = 60;
  const Vector pi = gth_stationary(mm1_chain(n, lambda, mu));
  const double rho = lambda / mu;
  // Truncated geometric; truncation error is rho^60 ~ 5e-14.
  for (std::size_t s = 0; s < 10; ++s) {
    EXPECT_NEAR(pi[s], (1.0 - rho) * std::pow(rho, static_cast<double>(s)),
                1e-10);
  }
}

TEST(Stationary, SorAgreesWithGth) {
  const SparseCtmc chain = mm1_chain(40, 0.7, 1.0);
  const Vector exact = gth_stationary(chain);
  StationarySolveInfo info;
  const Vector iterative = sor_stationary(chain, 1e-13, 100000, 1.0, &info);
  EXPECT_TRUE(info.converged);
  for (std::size_t s = 0; s < exact.size(); ++s) {
    EXPECT_NEAR(iterative[s], exact[s], 1e-9);
  }
}

TEST(Stationary, SorReportsTrueIterationCountOnNonConvergence) {
  // An unreachably tight tolerance forces the iteration budget to run out;
  // the reported count must equal the sweeps actually performed, not
  // max_iters + 1 (the loop-exit off-by-one this guards against).
  const SparseCtmc chain = mm1_chain(40, 0.7, 1.0);
  const int max_iters = 25;
  StationarySolveInfo info;
  sor_stationary(chain, 1e-30, max_iters, 1.0, &info);
  EXPECT_FALSE(info.converged);
  EXPECT_EQ(info.iterations, max_iters);
}

TEST(Stationary, PowerIterationReportsTrueIterationCountOnNonConvergence) {
  const SparseCtmc chain = mm1_chain(40, 0.7, 1.0);
  const int max_iters = 10;
  StationarySolveInfo info;
  power_stationary(chain, 1e-30, max_iters, &info);
  EXPECT_FALSE(info.converged);
  EXPECT_EQ(info.iterations, max_iters);
}

TEST(Stationary, PowerIterationAgreesWithGth) {
  const SparseCtmc chain = mm1_chain(30, 0.5, 1.0);
  const Vector exact = gth_stationary(chain);
  StationarySolveInfo info;
  const Vector power = power_stationary(chain, 1e-13, 2000000, &info);
  EXPECT_TRUE(info.converged);
  for (std::size_t s = 0; s < exact.size(); ++s) {
    EXPECT_NEAR(power[s], exact[s], 1e-8);
  }
}

TEST(Stationary, ResidualOfExactSolutionIsTiny) {
  const SparseCtmc chain = mm1_chain(25, 0.4, 1.0);
  const Vector pi = gth_stationary(chain);
  EXPECT_LT(stationary_residual(chain, pi), 1e-12);
}

TEST(Stationary, ThreeStateCycleKnownAnswer) {
  // Cycle 0 -> 1 -> 2 -> 0 with rates 1, 2, 4: pi proportional to 1/rate.
  SparseCtmc chain(3);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 2.0);
  chain.add_rate(2, 0, 4.0);
  chain.freeze();
  const Vector pi = gth_stationary(chain);
  EXPECT_NEAR(pi[0], 4.0 / 7.0, 1e-12);
  EXPECT_NEAR(pi[1], 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(pi[2], 1.0 / 7.0, 1e-12);
}

TEST(Absorbing, PureDeathChainOccupancy) {
  // 3 -> 2 -> 1 -> 0 at rate mu: expected time in each transient state is
  // 1/mu; absorption time is 3/mu.
  const double mu = 2.0;
  SparseCtmc chain(4);
  for (std::size_t s = 1; s < 4; ++s) chain.add_rate(s, s - 1, mu);
  chain.freeze();
  Vector initial(4, 0.0);
  initial[3] = 1.0;
  const Vector occ = expected_occupancy(chain, initial);
  EXPECT_NEAR(occ[3], 0.5, 1e-12);
  EXPECT_NEAR(occ[2], 0.5, 1e-12);
  EXPECT_NEAR(occ[1], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(occ[0], 0.0);  // absorbing
  EXPECT_NEAR(expected_time_to_absorption(chain, initial), 1.5, 1e-12);
}

TEST(Absorbing, AccumulatedRewardWeightsOccupancy) {
  // Same chain; reward = state index (like N(t) in the Theorem 6 use).
  const double mu = 1.0;
  SparseCtmc chain(3);
  chain.add_rate(2, 1, mu);
  chain.add_rate(1, 0, mu);
  chain.freeze();
  Vector initial(3, 0.0);
  initial[2] = 1.0;
  const double reward =
      expected_accumulated_reward(chain, initial, {0.0, 1.0, 2.0});
  // 1/mu in state 2 (reward 2) + 1/mu in state 1 (reward 1) = 3.
  EXPECT_NEAR(reward, 3.0, 1e-12);
}

TEST(Absorbing, RejectsMassOnAbsorbingStates) {
  SparseCtmc chain(2);
  chain.add_rate(1, 0, 1.0);
  chain.freeze();
  Vector bad(2, 0.0);
  bad[0] = 1.0;
  EXPECT_THROW(expected_occupancy(chain, bad), Error);
}

TEST(BirthDeath, ExponentialWhenNoBirths) {
  // Single state with death rate mu and no birth: T ~ Exp(mu).
  const Moments3 m = birth_death_descent_moments({0.0}, {3.0});
  EXPECT_NEAR(m.m1, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.m2, 2.0 / 9.0, 1e-12);
  EXPECT_NEAR(m.m3, 6.0 / 27.0, 1e-12);
  EXPECT_NEAR(m.scv(), 1.0, 1e-12);
}

TEST(BirthDeath, MatchesMM1BusyPeriodClosedForms) {
  // M/M/1 busy period = descent 1 -> 0 with constant rates. Closed forms:
  // m1 = 1/(mu-lam), m2 = 2 mu/(mu-lam)^3, m3 = 6 mu (mu+lam)/(mu-lam)^5.
  for (double rho : {0.2, 0.5, 0.8}) {
    const double mu = 1.3;
    const double lam = rho * mu;
    // Truncation deep enough that the error is far below the tolerance.
    const std::size_t depth = 400;
    const Moments3 got = birth_death_descent_moments(
        std::vector<double>(depth, lam), std::vector<double>(depth, mu));
    const double gap = mu - lam;
    EXPECT_NEAR(got.m1, 1.0 / gap, 1e-9) << "rho=" << rho;
    EXPECT_NEAR(got.m2 / (2.0 * mu / std::pow(gap, 3)), 1.0, 1e-7)
        << "rho=" << rho;
    EXPECT_NEAR(got.m3 / (6.0 * mu * (mu + lam) / std::pow(gap, 5)), 1.0,
                1e-6)
        << "rho=" << rho;
  }
}

TEST(BirthDeath, RejectsBadInput) {
  EXPECT_THROW(birth_death_descent_moments({}, {}), Error);
  EXPECT_THROW(birth_death_descent_moments({1.0}, {0.0}), Error);
  EXPECT_THROW(birth_death_descent_moments({-1.0}, {1.0}), Error);
}

// ---------------------------------------------------------------------------
// Bitwise reference tests: the CSR-backed solvers must reproduce the
// pre-CSR nested-vector algorithms EXACTLY (same floating-point
// accumulation order), so cached sweep results stay byte-identical. The
// references below are the old implementations, verbatim apart from the
// adjacency container.

Vector reference_sor(const SparseCtmc& chain, double tol, int max_iters,
                     double omega, StationarySolveInfo* info) {
  const std::size_t n = chain.num_states();
  std::vector<std::vector<CtmcTransition>> in(n);
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& t : chain.transitions_from(s)) in[t.to].push_back(t);
  }
  const auto residual = [&](const Vector& pi) {
    Vector flow(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      flow[s] -= pi[s] * chain.exit_rate(s);
      for (const auto& t : chain.transitions_from(s)) {
        flow[t.to] += pi[s] * t.rate;
      }
    }
    return max_abs(flow);
  };
  Vector pi(n, 1.0 / static_cast<double>(n));
  StationarySolveInfo local;
  for (local.iterations = 1; local.iterations <= max_iters;
       ++local.iterations) {
    for (std::size_t s = 0; s < n; ++s) {
      const double exit = chain.exit_rate(s);
      if (exit == 0.0) continue;
      double inflow = 0.0;
      for (const auto& t : in[s]) inflow += pi[t.from] * t.rate;
      const double gs = inflow / exit;
      pi[s] = (1.0 - omega) * pi[s] + omega * gs;
    }
    normalize_probability(pi);
    if (local.iterations % 10 == 0 || local.iterations == max_iters) {
      local.residual = residual(pi);
      if (local.residual < tol) {
        local.converged = true;
        break;
      }
    }
  }
  local.iterations = std::min(local.iterations, max_iters);
  if (info != nullptr) *info = local;
  return pi;
}

Vector reference_power(const SparseCtmc& chain, double tol, int max_iters) {
  const std::size_t n = chain.num_states();
  const double uniformization = chain.max_exit_rate() * 1.05 + 1e-9;
  Vector pi(n, 1.0 / static_cast<double>(n));
  Vector next(n, 0.0);
  for (int iter = 1; iter <= max_iters; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      const double stay = 1.0 - chain.exit_rate(s) / uniformization;
      next[s] += pi[s] * stay;
      for (const auto& t : chain.transitions_from(s)) {
        next[t.to] += pi[s] * t.rate / uniformization;
      }
    }
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      delta = std::max(delta, std::abs(next[s] - pi[s]));
    }
    pi.swap(next);
    if (delta * uniformization < tol) break;
  }
  normalize_probability(pi);
  return pi;
}

/// A 5x3 two-dimensional chain, level-structured along i: up/down rates
/// between adjacent levels plus within-level hops, all state-dependent so
/// no accidental symmetry hides accumulation-order differences.
SparseCtmc grid_chain() {
  const std::size_t ni = 5, nj = 3;
  SparseCtmc chain(ni * nj);
  const auto id = [&](std::size_t i, std::size_t j) { return i * nj + j; };
  for (std::size_t i = 0; i < ni; ++i) {
    for (std::size_t j = 0; j < nj; ++j) {
      if (i + 1 < ni) chain.add_rate(id(i, j), id(i + 1, j), 1.0 + 0.3 * j);
      if (i > 0) chain.add_rate(id(i, j), id(i - 1, j), 2.0 + 0.1 * i);
      if (j + 1 < nj) chain.add_rate(id(i, j), id(i, j + 1), 0.5);
      if (j > 0) chain.add_rate(id(i, j), id(i, j - 1), 0.7);
    }
  }
  chain.freeze();
  return chain;
}

std::vector<std::uint32_t> grid_levels() {
  std::vector<std::uint32_t> level_of(15);
  for (std::size_t s = 0; s < 15; ++s) {
    level_of[s] = static_cast<std::uint32_t>(s / 3);
  }
  return level_of;
}

TEST(Stationary, SorCsrBitwiseMatchesNestedVectorReference) {
  for (const SparseCtmc& chain : {mm1_chain(40, 0.7, 1.0), grid_chain()}) {
    StationarySolveInfo ref_info, csr_info;
    const Vector ref = reference_sor(chain, 1e-12, 5000, 1.2, &ref_info);
    const Vector csr = sor_stationary(chain, 1e-12, 5000, 1.2, &csr_info);
    ASSERT_EQ(ref.size(), csr.size());
    for (std::size_t s = 0; s < ref.size(); ++s) {
      EXPECT_EQ(ref[s], csr[s]) << "state " << s;  // bitwise, not NEAR
    }
    EXPECT_EQ(ref_info.iterations, csr_info.iterations);
    EXPECT_EQ(ref_info.residual, csr_info.residual);
    EXPECT_EQ(ref_info.converged, csr_info.converged);
  }
}

TEST(Stationary, PowerCsrBitwiseMatchesReference) {
  for (const SparseCtmc& chain : {mm1_chain(30, 0.5, 1.0), grid_chain()}) {
    const Vector ref = reference_power(chain, 1e-10, 100000);
    const Vector csr = power_stationary(chain, 1e-10, 100000, nullptr);
    ASSERT_EQ(ref.size(), csr.size());
    for (std::size_t s = 0; s < ref.size(); ++s) {
      EXPECT_EQ(ref[s], csr[s]) << "state " << s;
    }
  }
}

// ---------------------------------------------------------------------------
// Block-tridiagonal direct solver.

TEST(BlockSolver, MatchesGthOnBirthDeath) {
  const SparseCtmc chain = mm1_chain(50, 0.8, 1.0);
  std::vector<std::uint32_t> level_of(50);
  for (std::size_t s = 0; s < 50; ++s) {
    level_of[s] = static_cast<std::uint32_t>(s);
  }
  const Vector exact = gth_stationary(chain);
  StationarySolveInfo info;
  const Vector block = block_tridiagonal_stationary(chain, level_of, &info);
  EXPECT_TRUE(info.converged);
  EXPECT_EQ(info.iterations, 0);
  EXPECT_LT(info.residual, 1e-12);
  for (std::size_t s = 0; s < 50; ++s) {
    EXPECT_NEAR(block[s], exact[s], 1e-12) << "state " << s;
  }
}

TEST(BlockSolver, MatchesGthOnTwoDimensionalChain) {
  const SparseCtmc chain = grid_chain();
  const Vector exact = gth_stationary(chain);
  const Vector block =
      block_tridiagonal_stationary(chain, grid_levels(), nullptr);
  for (std::size_t s = 0; s < exact.size(); ++s) {
    EXPECT_NEAR(block[s], exact[s], 1e-13) << "state " << s;
  }
}

TEST(BlockSolver, RandomizedChainsAgreeWithGth) {
  // Random level-structured irreducible chains: a guaranteed up/down
  // ladder through each level's first state, every state tied to its
  // level's first state both ways, plus random extra edges.
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> rate(0.1, 2.0);
  std::uniform_int_distribution<int> coin(0, 1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t num_levels = 2 + trial % 5;
    std::vector<std::uint32_t> level_of;
    std::vector<std::size_t> first;
    for (std::size_t l = 0; l < num_levels; ++l) {
      const std::size_t size = 1 + rng() % 3;
      first.push_back(level_of.size());
      for (std::size_t b = 0; b < size; ++b) {
        level_of.push_back(static_cast<std::uint32_t>(l));
      }
    }
    const std::size_t n = level_of.size();
    SparseCtmc chain(n);
    for (std::size_t l = 0; l + 1 < num_levels; ++l) {
      chain.add_rate(first[l], first[l + 1], rate(rng));
      chain.add_rate(first[l + 1], first[l], rate(rng));
    }
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t anchor = first[level_of[s]];
      if (s != anchor) {
        chain.add_rate(s, anchor, rate(rng));
        chain.add_rate(anchor, s, rate(rng));
      }
      for (std::size_t t = 0; t < n; ++t) {
        const long diff = static_cast<long>(level_of[s]) -
                          static_cast<long>(level_of[t]);
        if (s == t || diff < -1 || diff > 1) continue;
        if (coin(rng) == 1) chain.add_rate(s, t, rate(rng));
      }
    }
    chain.freeze();
    const Vector exact = gth_stationary(chain);
    const Vector block =
        block_tridiagonal_stationary(chain, level_of, nullptr);
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_NEAR(block[s], exact[s], 1e-11)
          << "trial " << trial << " state " << s;
    }
  }
}

TEST(BlockSolver, RejectsNonAdjacentLevelJumps) {
  SparseCtmc chain(3);
  chain.add_rate(0, 2, 1.0);  // jumps level 0 -> 2
  chain.add_rate(2, 1, 1.0);
  chain.add_rate(1, 0, 1.0);
  chain.freeze();
  EXPECT_THROW(block_tridiagonal_stationary(chain, {0, 1, 2}, nullptr),
               Error);
}

TEST(BlockSolver, RejectsLevelWithNoDownTransitions) {
  // 0 -> 1 only: level 1 cannot descend, so level 0 is transient and the
  // censored blocks are singular; the solver must refuse loudly (auto
  // method selection falls back to SOR on this error).
  SparseCtmc chain(2);
  chain.add_rate(0, 1, 1.0);
  chain.freeze();
  EXPECT_THROW(block_tridiagonal_stationary(chain, {0, 1}, nullptr), Error);
}

TEST(BlockSolver, RejectsEmptyLevel) {
  SparseCtmc chain(2);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 1.0);
  chain.freeze();
  // Levels {0, 2} skip level 1.
  EXPECT_THROW(block_tridiagonal_stationary(chain, {0, 2}, nullptr), Error);
}

TEST(BlockSolver, WorkspaceEstimateScalesWithBlockSizes) {
  // 2 levels of 3 states: R is 3x3 plus 3 dense 3x3 scratch blocks.
  const std::vector<std::uint32_t> level_of = {0, 0, 0, 1, 1, 1};
  EXPECT_EQ(block_solver_workspace_bytes(level_of),
            (9 + 3 * 9) * sizeof(double));
  EXPECT_EQ(block_solver_workspace_bytes({}), 0u);
}

TEST(BlockSolver, FlopEstimateCountsFoldDensifiedColumns) {
  // Grid chain: levels 0..3 each have all 3 states hit by down-transitions
  // (m = 3); level 4 has nothing above it (m = 0). Estimate =
  // b0^3 + sum_{l=1..3} (b_l m_l^2 + m_l^3) = 27 + 3 * (27 + 27) = 189.
  const SparseCtmc grid = grid_chain();
  EXPECT_DOUBLE_EQ(
      block_solver_flop_estimate(grid.rate_matrix(), grid_levels()), 189.0);
  // A birth-death line has one down-target per level: the estimate grows
  // linearly in levels, so auto keeps picking the direct solver there.
  const SparseCtmc line = mm1_chain(41, 0.7, 1.0);
  std::vector<std::uint32_t> levels(41);
  for (std::size_t s = 0; s < levels.size(); ++s) {
    levels[s] = static_cast<std::uint32_t>(s);
  }
  EXPECT_DOUBLE_EQ(block_solver_flop_estimate(line.rate_matrix(), levels),
                   1.0 + 39.0 * 2.0);
}

}  // namespace
}  // namespace esched
