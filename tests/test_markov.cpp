// Unit tests for the CTMC toolkit: stationary solvers cross-checked
// against closed forms and each other, absorbing-chain rewards, and the
// birth-death first-passage recursion validated against the M/M/1
// busy-period closed forms it is meant to certify.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "markov/absorbing.hpp"
#include "markov/birth_death.hpp"
#include "markov/ctmc.hpp"
#include "markov/stationary.hpp"

namespace esched {
namespace {

/// Truncated M/M/1 chain: states 0..n-1, birth lambda, death mu.
SparseCtmc mm1_chain(std::size_t n, double lambda, double mu) {
  SparseCtmc chain(n);
  for (std::size_t s = 0; s + 1 < n; ++s) {
    chain.add_rate(s, s + 1, lambda);
    chain.add_rate(s + 1, s, mu);
  }
  chain.freeze();
  return chain;
}

TEST(SparseCtmc, BasicAccounting) {
  SparseCtmc chain(3);
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(0, 1, 1.0);  // duplicates accumulate
  chain.add_rate(1, 2, 4.0);
  chain.add_rate(2, 0, 5.0);
  chain.freeze();
  EXPECT_DOUBLE_EQ(chain.exit_rate(0), 3.0);
  EXPECT_DOUBLE_EQ(chain.max_exit_rate(), 5.0);
  ASSERT_EQ(chain.transitions_from(0).size(), 1u);  // merged
  EXPECT_DOUBLE_EQ(chain.transitions_from(0)[0].rate, 3.0);
  const Matrix q = chain.dense_generator();
  EXPECT_DOUBLE_EQ(q(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(q(0, 1), 3.0);
}

TEST(SparseCtmc, RejectsInvalidTransitions) {
  SparseCtmc chain(2);
  EXPECT_THROW(chain.add_rate(0, 0, 1.0), Error);   // self loop
  EXPECT_THROW(chain.add_rate(0, 5, 1.0), Error);   // out of range
  EXPECT_THROW(chain.add_rate(0, 1, -1.0), Error);  // negative
}

TEST(Stationary, GthMatchesMM1GeometricDistribution) {
  const double lambda = 0.6;
  const double mu = 1.0;
  const std::size_t n = 60;
  const Vector pi = gth_stationary(mm1_chain(n, lambda, mu));
  const double rho = lambda / mu;
  // Truncated geometric; truncation error is rho^60 ~ 5e-14.
  for (std::size_t s = 0; s < 10; ++s) {
    EXPECT_NEAR(pi[s], (1.0 - rho) * std::pow(rho, static_cast<double>(s)),
                1e-10);
  }
}

TEST(Stationary, SorAgreesWithGth) {
  const SparseCtmc chain = mm1_chain(40, 0.7, 1.0);
  const Vector exact = gth_stationary(chain);
  StationarySolveInfo info;
  const Vector iterative = sor_stationary(chain, 1e-13, 100000, 1.0, &info);
  EXPECT_TRUE(info.converged);
  for (std::size_t s = 0; s < exact.size(); ++s) {
    EXPECT_NEAR(iterative[s], exact[s], 1e-9);
  }
}

TEST(Stationary, SorReportsTrueIterationCountOnNonConvergence) {
  // An unreachably tight tolerance forces the iteration budget to run out;
  // the reported count must equal the sweeps actually performed, not
  // max_iters + 1 (the loop-exit off-by-one this guards against).
  const SparseCtmc chain = mm1_chain(40, 0.7, 1.0);
  const int max_iters = 25;
  StationarySolveInfo info;
  sor_stationary(chain, 1e-30, max_iters, 1.0, &info);
  EXPECT_FALSE(info.converged);
  EXPECT_EQ(info.iterations, max_iters);
}

TEST(Stationary, PowerIterationReportsTrueIterationCountOnNonConvergence) {
  const SparseCtmc chain = mm1_chain(40, 0.7, 1.0);
  const int max_iters = 10;
  StationarySolveInfo info;
  power_stationary(chain, 1e-30, max_iters, &info);
  EXPECT_FALSE(info.converged);
  EXPECT_EQ(info.iterations, max_iters);
}

TEST(Stationary, PowerIterationAgreesWithGth) {
  const SparseCtmc chain = mm1_chain(30, 0.5, 1.0);
  const Vector exact = gth_stationary(chain);
  StationarySolveInfo info;
  const Vector power = power_stationary(chain, 1e-13, 2000000, &info);
  EXPECT_TRUE(info.converged);
  for (std::size_t s = 0; s < exact.size(); ++s) {
    EXPECT_NEAR(power[s], exact[s], 1e-8);
  }
}

TEST(Stationary, ResidualOfExactSolutionIsTiny) {
  const SparseCtmc chain = mm1_chain(25, 0.4, 1.0);
  const Vector pi = gth_stationary(chain);
  EXPECT_LT(stationary_residual(chain, pi), 1e-12);
}

TEST(Stationary, ThreeStateCycleKnownAnswer) {
  // Cycle 0 -> 1 -> 2 -> 0 with rates 1, 2, 4: pi proportional to 1/rate.
  SparseCtmc chain(3);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 2.0);
  chain.add_rate(2, 0, 4.0);
  chain.freeze();
  const Vector pi = gth_stationary(chain);
  EXPECT_NEAR(pi[0], 4.0 / 7.0, 1e-12);
  EXPECT_NEAR(pi[1], 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(pi[2], 1.0 / 7.0, 1e-12);
}

TEST(Absorbing, PureDeathChainOccupancy) {
  // 3 -> 2 -> 1 -> 0 at rate mu: expected time in each transient state is
  // 1/mu; absorption time is 3/mu.
  const double mu = 2.0;
  SparseCtmc chain(4);
  for (std::size_t s = 1; s < 4; ++s) chain.add_rate(s, s - 1, mu);
  chain.freeze();
  Vector initial(4, 0.0);
  initial[3] = 1.0;
  const Vector occ = expected_occupancy(chain, initial);
  EXPECT_NEAR(occ[3], 0.5, 1e-12);
  EXPECT_NEAR(occ[2], 0.5, 1e-12);
  EXPECT_NEAR(occ[1], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(occ[0], 0.0);  // absorbing
  EXPECT_NEAR(expected_time_to_absorption(chain, initial), 1.5, 1e-12);
}

TEST(Absorbing, AccumulatedRewardWeightsOccupancy) {
  // Same chain; reward = state index (like N(t) in the Theorem 6 use).
  const double mu = 1.0;
  SparseCtmc chain(3);
  chain.add_rate(2, 1, mu);
  chain.add_rate(1, 0, mu);
  chain.freeze();
  Vector initial(3, 0.0);
  initial[2] = 1.0;
  const double reward =
      expected_accumulated_reward(chain, initial, {0.0, 1.0, 2.0});
  // 1/mu in state 2 (reward 2) + 1/mu in state 1 (reward 1) = 3.
  EXPECT_NEAR(reward, 3.0, 1e-12);
}

TEST(Absorbing, RejectsMassOnAbsorbingStates) {
  SparseCtmc chain(2);
  chain.add_rate(1, 0, 1.0);
  chain.freeze();
  Vector bad(2, 0.0);
  bad[0] = 1.0;
  EXPECT_THROW(expected_occupancy(chain, bad), Error);
}

TEST(BirthDeath, ExponentialWhenNoBirths) {
  // Single state with death rate mu and no birth: T ~ Exp(mu).
  const Moments3 m = birth_death_descent_moments({0.0}, {3.0});
  EXPECT_NEAR(m.m1, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.m2, 2.0 / 9.0, 1e-12);
  EXPECT_NEAR(m.m3, 6.0 / 27.0, 1e-12);
  EXPECT_NEAR(m.scv(), 1.0, 1e-12);
}

TEST(BirthDeath, MatchesMM1BusyPeriodClosedForms) {
  // M/M/1 busy period = descent 1 -> 0 with constant rates. Closed forms:
  // m1 = 1/(mu-lam), m2 = 2 mu/(mu-lam)^3, m3 = 6 mu (mu+lam)/(mu-lam)^5.
  for (double rho : {0.2, 0.5, 0.8}) {
    const double mu = 1.3;
    const double lam = rho * mu;
    // Truncation deep enough that the error is far below the tolerance.
    const std::size_t depth = 400;
    const Moments3 got = birth_death_descent_moments(
        std::vector<double>(depth, lam), std::vector<double>(depth, mu));
    const double gap = mu - lam;
    EXPECT_NEAR(got.m1, 1.0 / gap, 1e-9) << "rho=" << rho;
    EXPECT_NEAR(got.m2 / (2.0 * mu / std::pow(gap, 3)), 1.0, 1e-7)
        << "rho=" << rho;
    EXPECT_NEAR(got.m3 / (6.0 * mu * (mu + lam) / std::pow(gap, 5)), 1.0,
                1e-6)
        << "rho=" << rho;
  }
}

TEST(BirthDeath, RejectsBadInput) {
  EXPECT_THROW(birth_death_descent_moments({}, {}), Error);
  EXPECT_THROW(birth_death_descent_moments({1.0}, {0.0}), Error);
  EXPECT_THROW(birth_death_descent_moments({-1.0}, {1.0}), Error);
}

}  // namespace
}  // namespace esched
