// Tests for the §5 / Appendix D response-time analyses: the busy-period
// transformation + QBD pipeline must agree with the exact truncated 2-D
// chain to within the paper's stated ~1% accuracy, and must reduce to
// closed forms in the degenerate cases.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "phase/phase_type.hpp"
#include "queueing/mm1.hpp"
#include "queueing/mmk.hpp"

namespace esched {
namespace {

ExactCtmcOptions tight_truncation(const SystemParams& p) {
  ExactCtmcOptions opt;
  const long level = suggested_truncation(p.rho(), 1e-9);
  opt.imax = level;
  opt.jmax = level;
  return opt;
}

TEST(EfAnalysis, ElasticClassIsExactMM1) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  const ResponseTimeAnalysis a = analyze_elastic_first(p);
  const MM1 ref(p.lambda_e, 4.0 * p.mu_e);
  EXPECT_NEAR(a.mean_response_time_e, ref.mean_response_time(), 1e-12);
  EXPECT_NEAR(a.mean_jobs_e, ref.mean_jobs(), 1e-12);
}

TEST(IfAnalysis, InelasticClassIsExactMMk) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  const ResponseTimeAnalysis a = analyze_inelastic_first(p);
  const MMk ref(p.lambda_i, p.mu_i, p.k);
  EXPECT_NEAR(a.mean_response_time_i, ref.mean_response_time(), 1e-12);
  EXPECT_NEAR(a.mean_jobs_i, ref.mean_jobs(), 1e-12);
}

TEST(EfAnalysis, MatchesExactChainAcrossLoads) {
  for (double rho : {0.3, 0.5, 0.7, 0.9}) {
    const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, rho);
    const ResponseTimeAnalysis approx = analyze_elastic_first(p);
    const ExactCtmcResult exact =
        solve_exact_ctmc(p, ElasticFirst{}, tight_truncation(p));
    EXPECT_LT(relative_error(approx.mean_response_time,
                             exact.mean_response_time),
              0.015)
        << "rho=" << rho;
  }
}

TEST(IfAnalysis, MatchesExactChainAcrossLoads) {
  for (double rho : {0.3, 0.5, 0.7, 0.9}) {
    const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, rho);
    const ResponseTimeAnalysis approx = analyze_inelastic_first(p);
    const ExactCtmcResult exact =
        solve_exact_ctmc(p, InelasticFirst{}, tight_truncation(p));
    EXPECT_LT(relative_error(approx.mean_response_time,
                             exact.mean_response_time),
              0.015)
        << "rho=" << rho;
  }
}

// Parameterized accuracy sweep over the paper's Figure 4/5 parameter space.
struct AccuracyCase {
  int k;
  double mu_i;
  double mu_e;
  double rho;
};

class AnalysisAccuracy : public testing::TestWithParam<AccuracyCase> {};

TEST_P(AnalysisAccuracy, EfWithinOnePercentOfExact) {
  const AccuracyCase& c = GetParam();
  const SystemParams p = SystemParams::from_load(c.k, c.mu_i, c.mu_e, c.rho);
  const ResponseTimeAnalysis approx = analyze_elastic_first(p);
  const ExactCtmcResult exact =
      solve_exact_ctmc(p, ElasticFirst{}, tight_truncation(p));
  EXPECT_LT(
      relative_error(approx.mean_response_time, exact.mean_response_time),
      0.012)
      << "k=" << c.k << " mu_i=" << c.mu_i << " mu_e=" << c.mu_e
      << " rho=" << c.rho;
}

TEST_P(AnalysisAccuracy, IfWithinOnePercentOfExact) {
  const AccuracyCase& c = GetParam();
  const SystemParams p = SystemParams::from_load(c.k, c.mu_i, c.mu_e, c.rho);
  const ResponseTimeAnalysis approx = analyze_inelastic_first(p);
  const ExactCtmcResult exact =
      solve_exact_ctmc(p, InelasticFirst{}, tight_truncation(p));
  EXPECT_LT(
      relative_error(approx.mean_response_time, exact.mean_response_time),
      0.012)
      << "k=" << c.k << " mu_i=" << c.mu_i << " mu_e=" << c.mu_e
      << " rho=" << c.rho;
}

INSTANTIATE_TEST_SUITE_P(
    Fig45Grid, AnalysisAccuracy,
    testing::Values(AccuracyCase{4, 0.25, 1.0, 0.5},
                    AccuracyCase{4, 0.25, 1.0, 0.9},
                    AccuracyCase{4, 3.25, 1.0, 0.5},
                    AccuracyCase{4, 3.25, 1.0, 0.9},
                    AccuracyCase{4, 1.0, 2.0, 0.7},
                    AccuracyCase{4, 2.0, 0.5, 0.7},
                    AccuracyCase{2, 0.5, 1.0, 0.7},
                    AccuracyCase{8, 1.5, 1.0, 0.7},
                    AccuracyCase{16, 1.0, 1.0, 0.9}));

TEST(Analysis, SingleServerDegenerateCase) {
  // k = 1: both classes are just priority classes on one server; the
  // analyses must still run and match the exact chain.
  const SystemParams p = SystemParams::from_load(1, 1.5, 1.0, 0.6);
  const ResponseTimeAnalysis ef = analyze_elastic_first(p);
  const ResponseTimeAnalysis ifa = analyze_inelastic_first(p);
  const ExactCtmcResult exact_ef =
      solve_exact_ctmc(p, ElasticFirst{}, tight_truncation(p));
  const ExactCtmcResult exact_if =
      solve_exact_ctmc(p, InelasticFirst{}, tight_truncation(p));
  EXPECT_LT(
      relative_error(ef.mean_response_time, exact_ef.mean_response_time),
      0.012);
  EXPECT_LT(
      relative_error(ifa.mean_response_time, exact_if.mean_response_time),
      0.012);
}

TEST(Analysis, UnstableSystemThrows) {
  SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.99);
  p.lambda_i *= 1.2;  // push rho past 1
  ASSERT_GE(p.rho(), 1.0);
  EXPECT_THROW(analyze_elastic_first(p), Error);
  EXPECT_THROW(analyze_inelastic_first(p), Error);
}

TEST(Analysis, ResponseTimeGrowsWithLoad) {
  double prev_ef = 0.0;
  double prev_if = 0.0;
  for (double rho : {0.2, 0.4, 0.6, 0.8, 0.9, 0.95}) {
    const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, rho);
    const double ef = analyze_elastic_first(p).mean_response_time;
    const double ifa = analyze_inelastic_first(p).mean_response_time;
    EXPECT_GT(ef, prev_ef);
    EXPECT_GT(ifa, prev_if);
    prev_ef = ef;
    prev_if = ifa;
  }
}

TEST(Analysis, LittlesLawInternalConsistency) {
  const SystemParams p = SystemParams::from_load(4, 2.0, 1.0, 0.8);
  const ResponseTimeAnalysis ef = analyze_elastic_first(p);
  EXPECT_NEAR(ef.mean_response_time,
              (ef.mean_jobs_i + ef.mean_jobs_e) / (p.lambda_i + p.lambda_e),
              1e-12);
  const ResponseTimeAnalysis ifa = analyze_inelastic_first(p);
  EXPECT_NEAR(ifa.mean_response_time,
              (ifa.mean_jobs_i + ifa.mean_jobs_e) / (p.lambda_i + p.lambda_e),
              1e-12);
}

TEST(ExactCtmc, TruncationMassIsSmall) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  const ExactCtmcResult r =
      solve_exact_ctmc(p, InelasticFirst{}, tight_truncation(p));
  EXPECT_LT(r.boundary_mass, 1e-6);
}

TEST(ExactCtmc, SuggestedTruncationScalesWithLoad) {
  EXPECT_LT(suggested_truncation(0.3), suggested_truncation(0.9));
  EXPECT_GE(suggested_truncation(0.0), 16);
  EXPECT_LE(suggested_truncation(0.999999), 400);
  EXPECT_THROW(suggested_truncation(1.5), Error);
}

TEST(ExactCtmc, AllStationaryMethodsAgree) {
  const SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  ExactCtmcOptions base;
  base.imax = 20;
  base.jmax = 20;  // 441 states
  ExactCtmcResult by_method[3];
  const StationaryMethod methods[] = {StationaryMethod::kGth,
                                      StationaryMethod::kSor,
                                      StationaryMethod::kBlock};
  for (int m = 0; m < 3; ++m) {
    ExactCtmcOptions options = base;
    options.method = methods[m];
    by_method[m] = solve_exact_ctmc(p, InelasticFirst{}, options);
    EXPECT_EQ(by_method[m].solve_info.method,
              stationary_method_name(methods[m]));
  }
  // The two direct solvers agree to near machine precision; SOR to its
  // convergence tolerance.
  EXPECT_NEAR(by_method[0].mean_response_time,
              by_method[2].mean_response_time, 1e-10);
  EXPECT_NEAR(by_method[0].mean_jobs_i, by_method[2].mean_jobs_i, 1e-10);
  EXPECT_NEAR(by_method[0].mean_response_time,
              by_method[1].mean_response_time, 1e-7);
}

TEST(ExactCtmc, AutoSelectsGthSmallAndBlockLarge) {
  const SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  ExactCtmcOptions small;
  small.imax = 10;
  small.jmax = 10;  // 121 states <= gth_state_limit
  EXPECT_EQ(solve_exact_ctmc(p, InelasticFirst{}, small).solve_info.method,
            "gth");
  ExactCtmcOptions large;
  large.imax = 30;
  large.jmax = 30;  // 961 states > gth_state_limit -> block
  EXPECT_EQ(solve_exact_ctmc(p, InelasticFirst{}, large).solve_info.method,
            "block");
}

TEST(ExactCtmc, ExplicitGthRejectsChainOverDenseLimit) {
  const SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  ExactCtmcOptions options;
  options.imax = 100;
  options.jmax = 100;  // 10201 states > the 5000-state dense limit
  options.method = StationaryMethod::kGth;
  EXPECT_THROW(solve_exact_ctmc(p, InelasticFirst{}, options), Error);
}

TEST(ExactCtmc, PhaseTypeBlockAgreesWithSor) {
  const SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.6);
  const PhaseType erl2 = PhaseType::erlang(2, 2.0 * p.mu_i);
  ExactCtmcOptions block;
  block.imax = 12;
  block.jmax = 12;
  block.method = StationaryMethod::kBlock;
  ExactCtmcOptions sor = block;
  sor.method = StationaryMethod::kSor;
  const ExactCtmcResult a = solve_exact_ctmc_ph(p, ElasticFirst{}, erl2, block);
  const ExactCtmcResult b = solve_exact_ctmc_ph(p, ElasticFirst{}, erl2, sor);
  EXPECT_EQ(a.solve_info.method, "block");
  EXPECT_EQ(b.solve_info.method, "sor");
  EXPECT_EQ(a.num_states, b.num_states);
  EXPECT_NEAR(a.mean_response_time, b.mean_response_time, 1e-7);
  EXPECT_NEAR(a.mean_jobs_i, b.mean_jobs_i, 1e-7);
}

}  // namespace
}  // namespace esched
