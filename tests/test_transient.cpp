// Tests for transient CTMC analysis (uniformization) and the
// expected-work trajectories — the expectation form of Theorem 3.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/policies.hpp"
#include "core/transient_work.hpp"
#include "markov/ctmc.hpp"
#include "markov/stationary.hpp"
#include "markov/transient.hpp"

namespace esched {
namespace {

TEST(Transient, TwoStateClosedForm) {
  // 0 <-> 1 with rates a, b: P(X(t)=1 | X(0)=0) =
  // a/(a+b) (1 - e^{-(a+b)t}).
  const double a = 2.0;
  const double b = 3.0;
  SparseCtmc chain(2);
  chain.add_rate(0, 1, a);
  chain.add_rate(1, 0, b);
  chain.freeze();
  for (double t : {0.05, 0.2, 1.0, 5.0}) {
    const Vector dist = transient_distribution(chain, {1.0, 0.0}, t);
    const double expected =
        a / (a + b) * (1.0 - std::exp(-(a + b) * t));
    EXPECT_NEAR(dist[1], expected, 1e-10) << "t=" << t;
  }
}

TEST(Transient, PureDeathPoissonCount) {
  // States 3 -> 2 -> 1 -> 0 at rate mu: X(t) = 3 - min(3, Poisson(mu t)).
  const double mu = 1.5;
  SparseCtmc chain(4);
  for (std::size_t s = 1; s < 4; ++s) chain.add_rate(s, s - 1, mu);
  chain.freeze();
  Vector init(4, 0.0);
  init[3] = 1.0;
  const double t = 0.8;
  const Vector dist = transient_distribution(chain, init, t);
  const double lt = mu * t;
  const double p0 = std::exp(-lt);
  const double p1 = p0 * lt;
  const double p2 = p1 * lt / 2.0;
  EXPECT_NEAR(dist[3], p0, 1e-10);
  EXPECT_NEAR(dist[2], p1, 1e-10);
  EXPECT_NEAR(dist[1], p2, 1e-10);
  EXPECT_NEAR(dist[0], 1.0 - p0 - p1 - p2, 1e-10);
}

TEST(Transient, ConvergesToStationary) {
  SparseCtmc chain(3);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 2.0);
  chain.add_rate(2, 0, 4.0);
  chain.freeze();
  const Vector pi = gth_stationary(chain);
  const Vector late = transient_distribution(chain, {1.0, 0.0, 0.0}, 200.0);
  for (std::size_t s = 0; s < 3; ++s) EXPECT_NEAR(late[s], pi[s], 1e-8);
}

TEST(Transient, TimeZeroIsInitial) {
  SparseCtmc chain(2);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 1.0);
  chain.freeze();
  const Vector dist = transient_distribution(chain, {0.25, 0.75}, 0.0);
  EXPECT_DOUBLE_EQ(dist[0], 0.25);
  EXPECT_DOUBLE_EQ(dist[1], 0.75);
}

TEST(Transient, ExpectedRewardSeries) {
  // Pure death 1 -> 0 at rate mu, reward = state: E[X(t)] = e^{-mu t}.
  SparseCtmc chain(2);
  chain.add_rate(1, 0, 1.0);
  chain.freeze();
  const Vector times = {0.0, 0.5, 1.0, 2.0};
  const Vector series =
      transient_expected_reward(chain, {0.0, 1.0}, {0.0, 1.0}, times);
  for (std::size_t n = 0; n < times.size(); ++n) {
    EXPECT_NEAR(series[n], std::exp(-times[n]), 1e-10);
  }
  EXPECT_THROW(
      transient_expected_reward(chain, {0.0, 1.0}, {0.0, 1.0}, {1.0, 0.5}),
      Error);
}

// The expectation form of Theorem 3: starting from a common state with
// arrivals running, E[W^IF(t)] <= E[W^pi(t)] and E[W_I^IF(t)] <=
// E[W_I^pi(t)] for every pi in P, at every time.
TEST(ExpectedWork, Theorem3InExpectation) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  const State start{3, 2};
  const std::vector<double> times = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  TransientWorkOptions opt;
  opt.imax = 60;
  opt.jmax = 60;
  const auto if_work =
      expected_work_trajectory(p, InelasticFirst{}, start, times, opt);
  for (const auto& policy :
       {make_elastic_first(), make_fair_share(), make_inelastic_cap(2)}) {
    const auto other =
        expected_work_trajectory(p, *policy, start, times, opt);
    for (std::size_t n = 0; n < times.size(); ++n) {
      EXPECT_LE(if_work[n].total, other[n].total + 1e-8)
          << policy->name() << " t=" << times[n];
      EXPECT_LE(if_work[n].inelastic, other[n].inelastic + 1e-8)
          << policy->name() << " t=" << times[n];
    }
  }
}

TEST(ExpectedWork, StartsAtDeterministicWork) {
  const SystemParams p = SystemParams::from_load(4, 2.0, 1.0, 0.5);
  const State start{2, 3};
  const auto series =
      expected_work_trajectory(p, InelasticFirst{}, start, {0.0});
  // E[W(0)] = i/mu_I + j/mu_E deterministically at t = 0.
  EXPECT_NEAR(series[0].total, 2.0 / 2.0 + 3.0 / 1.0, 1e-9);
  EXPECT_NEAR(series[0].inelastic, 1.0, 1e-9);
}

TEST(ExpectedWork, ApproachesSteadyStateWork) {
  // As t grows, E[W(t)] must approach the stationary E[W] = E[N_I]/mu_I +
  // E[N_E]/mu_E regardless of the start state.
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.6);
  TransientWorkOptions opt;
  opt.imax = 60;
  opt.jmax = 60;
  const auto late = expected_work_trajectory(p, InelasticFirst{}, {8, 0},
                                             {300.0}, opt);
  const auto late2 = expected_work_trajectory(p, InelasticFirst{}, {0, 8},
                                              {300.0}, opt);
  EXPECT_NEAR(late[0].total, late2[0].total, 1e-6);
}

TEST(ExpectedWork, RejectsStartOutsideTruncation) {
  const SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  TransientWorkOptions opt;
  opt.imax = 4;
  opt.jmax = 4;
  EXPECT_THROW(
      expected_work_trajectory(p, InelasticFirst{}, {5, 0}, {1.0}, opt),
      Error);
}

}  // namespace
}  // namespace esched
