// Unit tests for the statistics substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "stats/accumulator.hpp"
#include "stats/confidence.hpp"
#include "stats/histogram.hpp"
#include "stats/time_average.hpp"

namespace esched {
namespace {

TEST(Accumulator, MeanVarianceMinMax) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyThrows) {
  Accumulator acc;
  EXPECT_THROW(acc.mean(), Error);
  acc.add(1.0);
  EXPECT_THROW(acc.variance(), Error);  // needs two observations
}

TEST(Accumulator, MergeMatchesSinglePass) {
  Accumulator whole, a, b;
  for (int n = 0; n < 100; ++n) {
    const double x = std::sin(static_cast<double>(n));
    whole.add(x);
    (n < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(MomentAccumulator, RawMoments) {
  MomentAccumulator acc;
  for (double x : {1.0, 2.0, 3.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.raw_moment(1), 2.0);
  EXPECT_DOUBLE_EQ(acc.raw_moment(2), 14.0 / 3.0);
  EXPECT_DOUBLE_EQ(acc.raw_moment(3), 36.0 / 3.0);
  EXPECT_THROW(acc.raw_moment(4), Error);
}

TEST(TimeAverage, PiecewiseConstantIntegral) {
  TimeAverage avg;
  avg.start(0.0, 2.0);
  avg.update(1.0, 4.0);  // value 2 on [0,1)
  avg.update(3.0, 0.0);  // value 4 on [1,3)
  avg.advance(4.0);      // value 0 on [3,4)
  // Integral = 2*1 + 4*2 + 0*1 = 10 over span 4.
  EXPECT_DOUBLE_EQ(avg.average(), 2.5);
}

TEST(TimeAverage, ResetDropsWarmup) {
  TimeAverage avg;
  avg.start(0.0, 100.0);
  avg.update(10.0, 1.0);
  avg.reset_at(10.0);
  avg.advance(20.0);  // value 1 on [10,20)
  EXPECT_DOUBLE_EQ(avg.average(), 1.0);
}

TEST(TimeAverage, RejectsTimeTravel) {
  TimeAverage avg;
  avg.start(0.0, 0.0);
  avg.update(1.0, 2.0);
  EXPECT_THROW(avg.update(0.5, 3.0), Error);
}

TEST(Confidence, TCriticalKnownValues) {
  EXPECT_NEAR(t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(t_critical(10, 0.95), 2.228, 1e-3);
  EXPECT_NEAR(t_critical(1000, 0.95), 1.960, 1e-3);
  EXPECT_NEAR(t_critical(5, 0.99), 4.032, 1e-3);
  EXPECT_NEAR(t_critical(5, 0.90), 2.015, 1e-3);
  EXPECT_THROW(t_critical(0, 0.95), Error);
  EXPECT_THROW(t_critical(5, 0.42), Error);
}

TEST(Confidence, ReplicationCiCoversKnownMean) {
  // Five replications with mean 10.
  const std::vector<double> reps = {9.5, 10.5, 10.0, 9.8, 10.2};
  const ConfidenceInterval ci = replication_ci(reps);
  EXPECT_NEAR(ci.mean, 10.0, 1e-12);
  EXPECT_TRUE(ci.contains(10.0));
  EXPECT_GT(ci.half_width, 0.0);
}

TEST(Confidence, BatchMeansRequiresEnoughData) {
  std::vector<double> tiny(10, 1.0);
  EXPECT_THROW(batch_means_ci(tiny, 20), Error);
}

TEST(Confidence, BatchMeansOnIidData) {
  // For i.i.d. data the batch-means CI should cover the true mean.
  std::vector<double> xs;
  unsigned state = 12345;
  for (int n = 0; n < 20000; ++n) {
    state = state * 1664525u + 1013904223u;
    xs.push_back(static_cast<double>(state) / 4294967296.0);  // U(0,1)
  }
  const ConfidenceInterval ci = batch_means_ci(xs, 20);
  EXPECT_NEAR(ci.mean, 0.5, 0.02);
  EXPECT_TRUE(ci.contains(0.5));
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int n = 0; n < 100; ++n) h.add(static_cast<double>(n) / 10.0);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.bin_count(0), 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, OverflowUnderflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-1.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

}  // namespace
}  // namespace esched
