// Tests for the scenario-sweep engine: grid expansion, solver dispatch
// consistency against the underlying backends, memoization behavior, and
// thread-count determinism (a multi-thread sweep must be bit-identical to
// a single-thread sweep).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/policies.hpp"
#include "engine/disk_cache.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/solver_dispatch.hpp"
#include "engine/sweep_runner.hpp"
#include "queueing/mmk.hpp"

namespace esched {
namespace {

/// A small mixed-solver scenario that exercises every backend cheaply.
Scenario small_scenario() {
  Scenario s;
  s.name = "test";
  s.k_values = {2, 4};
  s.rho_values = {0.5, 0.7};
  s.mu_i_values = {0.5, 1.0, 2.0};
  s.mu_e_values = {1.0};
  s.policies = {"IF", "EF"};
  s.solvers = {SolverKind::kQbdAnalysis, SolverKind::kMmkBaseline};
  return s;
}

TEST(Scenario, GridExpansionCount) {
  const Scenario s = small_scenario();
  EXPECT_EQ(s.num_points(), 2u * 2u * 3u * 1u * 1u * 2u * 2u);
  const auto points = s.expand();
  ASSERT_EQ(points.size(), s.num_points());
  // Row-major order: solver varies fastest, then policy, then the axes.
  EXPECT_EQ(points[0].params.k, 2);
  EXPECT_EQ(points[0].policy, "IF");
  EXPECT_EQ(points[0].solver, SolverKind::kQbdAnalysis);
  EXPECT_EQ(points[1].policy, "IF");
  EXPECT_EQ(points[1].solver, SolverKind::kMmkBaseline);
  EXPECT_EQ(points[2].policy, "EF");
  EXPECT_EQ(points.back().params.k, 4);
  EXPECT_NEAR(points.back().params.rho(), 0.7, 1e-12);
  // lambda_I == lambda_E by the paper's convention.
  for (const auto& point : points) {
    EXPECT_DOUBLE_EQ(point.params.lambda_i, point.params.lambda_e);
  }
}

TEST(Scenario, ValidateRejectsBadAxes) {
  Scenario s = small_scenario();
  s.policies.clear();
  EXPECT_THROW(s.expand(), Error);
  s = small_scenario();
  s.rho_values = {1.2};
  EXPECT_THROW(s.expand(), Error);
  s = small_scenario();
  s.policies = {"NotAPolicy"};
  EXPECT_THROW(s.expand(), Error);
}

TEST(Scenario, BuiltinsExpandToExpectedSizes) {
  for (const auto& name : builtin_scenario_names()) {
    EXPECT_NO_THROW(builtin_scenario(name).expand()) << name;
  }
  EXPECT_EQ(builtin_scenario("fig4").num_points(), 3u * 14u * 14u * 2u);
  EXPECT_EQ(builtin_scenario("fig5").num_points(), 3u * 14u * 2u);
  EXPECT_EQ(builtin_scenario("fig6").num_points(), 15u * 2u * 2u);
  EXPECT_EQ(builtin_scenario("optimality-family").num_points(), 9u * 5u);
  EXPECT_EQ(builtin_scenario("analysis-accuracy").num_points(), 7u * 2u * 3u);
  EXPECT_EQ(builtin_scenario("tail-latency").num_points(), 3u * 2u);
  EXPECT_EQ(builtin_scenario("ablation-truncation").num_points(),
            2u * 6u * 2u);
  EXPECT_EQ(builtin_scenario("ablation-coxian").num_points(),
            6u * 3u * 2u * 2u);
  EXPECT_EQ(builtin_scenario("dominance-thm3").num_points(), 5u * 5u);
  EXPECT_THROW(builtin_scenario("no-such-scenario"), Error);
}

TEST(Scenario, CaseAndAxisExpansionOrder) {
  Scenario s;
  s.name = "cases-order";
  s.cases = {{2, 1.0, 1.0, 0.5, 0}, {4, 2.0, 1.0, 0.7, 0}};
  s.trunc_values = {10, 20};
  s.fit_orders = {1, 3};
  s.policies = {"IF", "EF"};
  s.solvers = {SolverKind::kQbdAnalysis, SolverKind::kExactCtmc};
  EXPECT_EQ(s.num_points(), 2u * 2u * 2u * 2u * 2u);
  const auto points = s.expand();
  ASSERT_EQ(points.size(), s.num_points());
  // Row-major: solver fastest, then policy, fit, truncation, case.
  EXPECT_EQ(points[0].solver, SolverKind::kQbdAnalysis);
  EXPECT_EQ(points[1].solver, SolverKind::kExactCtmc);
  EXPECT_EQ(points[2].policy, "EF");
  EXPECT_EQ(points[0].options.fit_order, BusyFitOrder::kOneMoment);
  EXPECT_EQ(points[4].options.fit_order, BusyFitOrder::kThreeMoment);
  EXPECT_EQ(points[0].options.imax, 10);
  EXPECT_EQ(points[8].options.imax, 20);
  EXPECT_EQ(points[0].params.k, 2);
  EXPECT_EQ(points[16].params.k, 4);
  EXPECT_NEAR(points[16].params.rho(), 0.7, 1e-12);
}

TEST(Scenario, CacheKeyDistinguishesAndMatches) {
  const auto points = small_scenario().expand();
  RunPoint a = points[0];  // qbd point
  RunPoint b = points[0];
  EXPECT_EQ(a.cache_key(), b.cache_key());
  EXPECT_EQ(a.seed(), b.seed());
  b.policy = "EF";
  EXPECT_NE(a.cache_key(), b.cache_key());
  b = a;
  b.solver = SolverKind::kSimulation;
  b.options.base_seed = 2;
  EXPECT_NE(a.cache_key(), b.cache_key());
  EXPECT_NE(a.seed(), b.seed());
}

TEST(Scenario, CacheKeyIsBackendCanonical) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.5);
  // A solver ignores axes it never reads: the QBD key is invariant in the
  // truncation and seed, the exact key in the fit order and seed, the sim
  // key in the fit order — so ablation axes collapse to one solve each.
  RunPoint qbd{p, "IF", SolverKind::kQbdAnalysis, {}};
  RunPoint qbd2 = qbd;
  qbd2.options.imax = qbd2.options.jmax = 40;
  qbd2.options.base_seed = 7;
  EXPECT_EQ(qbd.cache_key(), qbd2.cache_key());
  qbd2.options.fit_order = BusyFitOrder::kOneMoment;
  EXPECT_NE(qbd.cache_key(), qbd2.cache_key());

  RunPoint exact{p, "IF", SolverKind::kExactCtmc, {}};
  RunPoint exact2 = exact;
  exact2.options.fit_order = BusyFitOrder::kOneMoment;
  exact2.options.base_seed = 7;
  exact2.options.sim_jobs = 99;
  EXPECT_EQ(exact.cache_key(), exact2.cache_key());
  exact2.options.imax = 40;
  EXPECT_NE(exact.cache_key(), exact2.cache_key());

  RunPoint sim{p, "IF", SolverKind::kSimulation, {}};
  RunPoint sim2 = sim;
  sim2.options.fit_order = BusyFitOrder::kOneMoment;
  EXPECT_EQ(sim.cache_key(), sim2.cache_key());
  sim2.options.sim_tails = true;
  EXPECT_NE(sim.cache_key(), sim2.cache_key());
  sim2 = sim;
  sim2.options.sim_raw_seed = true;
  EXPECT_NE(sim.cache_key(), sim2.cache_key());
}

TEST(Scenario, MakePolicyParsesSpecs) {
  EXPECT_EQ(make_policy("IF")->name(), make_inelastic_first()->name());
  EXPECT_EQ(make_policy("EF")->name(), make_elastic_first()->name());
  EXPECT_EQ(make_policy("Cap2")->name(), make_inelastic_cap(2)->name());
  EXPECT_EQ(make_policy("IF+idle1")->name(),
            make_idling(make_inelastic_first(), 1.0)->name());
  EXPECT_THROW(make_policy("CapX"), Error);
  EXPECT_THROW(make_policy("bogus"), Error);
}

TEST(Scenario, SolverNamesRoundTrip) {
  for (const SolverKind kind :
       {SolverKind::kQbdAnalysis, SolverKind::kExactCtmc,
        SolverKind::kSimulation, SolverKind::kMmkBaseline,
        SolverKind::kTraceDominance}) {
    EXPECT_EQ(parse_solver(solver_name(kind)), kind);
  }
  EXPECT_THROW(parse_solver("fancy"), Error);
}

TEST(Dispatch, QbdMatchesDirectAnalysis) {
  const SystemParams p = SystemParams::from_load(4, 2.0, 1.0, 0.7);
  const RunPoint point{p, "EF", SolverKind::kQbdAnalysis, {}};
  const RunResult result = dispatch_run(point);
  const ResponseTimeAnalysis direct = analyze_elastic_first(p);
  EXPECT_DOUBLE_EQ(result.mean_response_time, direct.mean_response_time);
  EXPECT_DOUBLE_EQ(result.mean_jobs_i, direct.mean_jobs_i);
  EXPECT_EQ(result.solver_iterations, direct.qbd_iterations);
}

TEST(Dispatch, ExactMatchesDirectSolveAndReportsSolveInfo) {
  const SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  RunPoint point{p, "FairShare", SolverKind::kExactCtmc, {}};
  point.options.imax = point.options.jmax = 40;
  const RunResult result = dispatch_run(point);
  ExactCtmcOptions options;
  options.imax = options.jmax = 40;
  const ExactCtmcResult direct =
      solve_exact_ctmc(p, *make_fair_share(), options);
  EXPECT_DOUBLE_EQ(result.mean_response_time, direct.mean_response_time);
  EXPECT_DOUBLE_EQ(result.boundary_mass, direct.boundary_mass);
  // 41x41 states > gth_state_limit, so auto picks the direct block solver:
  // no sweeps, and the residual still surfaces through the result.
  EXPECT_EQ(direct.solve_info.method, "block");
  EXPECT_EQ(result.solver_iterations, 0);
  EXPECT_LT(result.solve_residual, 1e-11);
  EXPECT_TRUE(direct.solve_info.converged);
}

TEST(Dispatch, GthPathReportsConvergedSolveInfo) {
  const SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  ExactCtmcOptions options;
  options.imax = options.jmax = 15;  // 256 states <= gth_state_limit
  const ExactCtmcResult direct =
      solve_exact_ctmc(p, *make_inelastic_first(), options);
  EXPECT_TRUE(direct.solve_info.converged);
  EXPECT_EQ(direct.solve_info.iterations, 0);
  EXPECT_LT(direct.solve_info.residual, 1e-10);
}

TEST(Dispatch, MmkBaselineMatchesClosedForms) {
  const SystemParams p = SystemParams::from_load(4, 2.0, 1.0, 0.6);
  const RunPoint point{p, "IF", SolverKind::kMmkBaseline, {}};
  const RunResult result = dispatch_run(point);
  const MMk inelastic(p.lambda_i, p.mu_i, p.k);
  EXPECT_DOUBLE_EQ(result.mean_response_time_i,
                   inelastic.mean_response_time());
  const MMk elastic(p.lambda_e, p.k * p.mu_e, 1);
  EXPECT_DOUBLE_EQ(result.mean_response_time_e, elastic.mean_response_time());
}

TEST(Dispatch, RejectsInvalidCombinations) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.5);
  // The QBD analyses cover only IF and EF on the base model.
  EXPECT_THROW(
      dispatch_run(RunPoint{p, "FairShare", SolverKind::kQbdAnalysis, {}}),
      Error);
  SystemParams capped = p;
  capped.elastic_cap = 1;
  EXPECT_THROW(
      dispatch_run(RunPoint{capped, "EF", SolverKind::kQbdAnalysis, {}}),
      Error);
}

TEST(SweepRunner, CacheHitsWithinAndAcrossRuns) {
  Scenario s = small_scenario();
  s.solvers = {SolverKind::kQbdAnalysis};
  const auto base = s.expand();
  const std::size_t unique = base.size();
  // Duplicate every point: the duplicates must be served from cache.
  auto points = base;
  points.insert(points.end(), base.begin(), base.end());

  SweepRunner runner(2);
  SweepStats stats;
  const auto first = runner.run(points, &stats);
  EXPECT_EQ(stats.total_points, 2 * unique);
  EXPECT_EQ(stats.solved_points, unique);
  EXPECT_EQ(stats.cache_hits, unique);
  EXPECT_EQ(runner.cache().size(), unique);
  for (std::size_t n = 0; n < unique; ++n) {
    EXPECT_FALSE(first[n].from_cache);
    EXPECT_TRUE(first[n + unique].from_cache);
    EXPECT_TRUE(numerically_equal(first[n], first[n + unique]));
  }

  // A second run over the same points is all cache hits.
  SweepStats again;
  const auto second = runner.run(points, &again);
  EXPECT_EQ(again.solved_points, 0u);
  EXPECT_EQ(again.cache_hits, 2 * unique);
  for (std::size_t n = 0; n < points.size(); ++n) {
    EXPECT_TRUE(second[n].from_cache);
    EXPECT_TRUE(numerically_equal(first[n], second[n]));
  }
}

TEST(SweepRunner, MultiThreadSweepIsBitIdenticalToSingleThread) {
  // Mix all four backends, including seeded simulation, and require the
  // 4-thread pool to reproduce the 1-thread results bit for bit.
  Scenario s = small_scenario();
  s.k_values = {2};
  s.mu_i_values = {0.5, 1.0, 2.0};
  s.solvers = {SolverKind::kQbdAnalysis, SolverKind::kExactCtmc,
               SolverKind::kSimulation, SolverKind::kMmkBaseline};
  s.options.imax = s.options.jmax = 30;
  s.options.sim_jobs = 4000;
  s.options.sim_warmup = 400;
  const auto points = s.expand();

  SweepRunner serial(1);
  SweepRunner parallel(4);
  const auto serial_results = serial.run(points);
  const auto parallel_results = parallel.run(points);
  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t n = 0; n < points.size(); ++n) {
    EXPECT_TRUE(numerically_equal(serial_results[n], parallel_results[n]))
        << "point " << points[n].cache_key();
  }
}

TEST(SweepRunner, PropagatesSolverErrors) {
  SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  std::vector<RunPoint> points = {
      {p, "IF", SolverKind::kQbdAnalysis, {}},
      {p, "FairShare", SolverKind::kQbdAnalysis, {}},  // invalid combo
  };
  SweepRunner runner(2);
  EXPECT_THROW(runner.run(points), Error);
  // The valid point still landed in the cache.
  EXPECT_EQ(runner.cache().size(), 1u);
}

TEST(Dispatch, TraceDominanceReportsNoViolationsForFamily) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.6);
  RunPoint point{p, "FairShare", SolverKind::kTraceDominance, {}};
  point.options.trace_horizon = 200.0;  // short trace keeps the test fast
  const RunResult result = dispatch_run(point);
  // Theorem 3: IF never exceeds a class-P policy's work path (float noise
  // only), IF keeps less work on average, and checkpoints were compared.
  EXPECT_LT(result.dom_max_violation, 1e-6);
  EXPECT_LT(result.dom_max_violation_i, 1e-6);
  EXPECT_GE(result.dom_avg_gap, 0.0);
  EXPECT_GT(result.dom_checkpoints, 0);
  // Same trace, IF vs IF: identically zero.
  RunPoint self = point;
  self.policy = "IF";
  const RunResult same = dispatch_run(self);
  EXPECT_EQ(same.dom_max_violation, 0.0);
  EXPECT_EQ(same.dom_avg_gap, 0.0);
}

TEST(Dispatch, SimTailsFillPercentiles) {
  const SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  RunPoint point{p, "IF", SolverKind::kSimulation, {}};
  point.options.sim_jobs = 4000;
  point.options.sim_warmup = 400;
  point.options.sim_tails = true;
  // Pin the seed: the derived per-point seed hashes the cache key, which
  // includes the tails flag, so the tails-on/off comparison below needs a
  // shared raw seed to run the same sample path.
  point.options.sim_raw_seed = true;
  point.options.base_seed = 7;
  const RunResult result = dispatch_run(point);
  EXPECT_GT(result.p50_i, 0.0);
  EXPECT_LE(result.p50_i, result.p95_i);
  EXPECT_LE(result.p95_i, result.p99_i);
  EXPECT_LE(result.p50_e, result.p99_e);
  // Tails off: percentiles stay zero but the means are unchanged (the
  // histograms are passive observers of the same sample path).
  RunPoint plain = point;
  plain.options.sim_tails = false;
  const RunResult bare = dispatch_run(plain);
  EXPECT_EQ(bare.p99_i, 0.0);
  EXPECT_EQ(bare.mean_response_time, result.mean_response_time);
}

TEST(Dispatch, RawSeedUsesBaseSeedDirectly) {
  const SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  RunPoint a{p, "IF", SolverKind::kSimulation, {}};
  a.options.sim_jobs = 2000;
  a.options.sim_warmup = 200;
  a.options.sim_raw_seed = true;
  a.options.base_seed = 42;
  // Same raw seed, different policies: streams coincide by construction,
  // so results differ only through the policy. Flipping the seed flips
  // the sample path.
  RunPoint b = a;
  b.options.base_seed = 43;
  EXPECT_NE(dispatch_run(a).mean_response_time,
            dispatch_run(b).mean_response_time);
}

TEST(ExactBatch, MatchesUnbatchedSolveBitwise) {
  const SystemParams p = SystemParams::from_load(4, 2.0, 1.0, 0.8);
  ExactCtmcOptions options;
  options.imax = options.jmax = 30;
  ExactCtmcBatch batch(p, options);
  for (const auto& policy :
       {make_inelastic_first(), make_elastic_first(), make_fair_share(),
        make_inelastic_cap(2)}) {
    const ExactCtmcResult batched = batch.solve(*policy);
    const ExactCtmcResult direct = solve_exact_ctmc(p, *policy, options);
    EXPECT_EQ(batched.mean_response_time, direct.mean_response_time);
    EXPECT_EQ(batched.mean_jobs_i, direct.mean_jobs_i);
    EXPECT_EQ(batched.boundary_mass, direct.boundary_mass);
    EXPECT_EQ(batched.solve_info.iterations, direct.solve_info.iterations);
    EXPECT_EQ(batched.solve_info.residual, direct.solve_info.residual);
  }
}

TEST(SweepRunner, ExactGroupBatchingMatchesPerPointDispatch) {
  // Five policies at one params: the runner solves them as one topology
  // group; results must equal per-point dispatch bitwise.
  Scenario s;
  s.name = "batch";
  s.cases = {{4, 2.0, 1.0, 0.8, 0}, {4, 0.5, 1.0, 0.6, 0}};
  s.policies = {"IF", "EF", "FairShare", "Cap2", "IF+idle1"};
  s.solvers = {SolverKind::kExactCtmc};
  s.options.imax = s.options.jmax = 25;
  const auto points = s.expand();
  SweepRunner runner(2);
  SweepStats stats;
  const auto results = runner.run(points, &stats);
  EXPECT_EQ(stats.solved_points, points.size());
  for (std::size_t n = 0; n < points.size(); ++n) {
    RunResult direct = dispatch_run(points[n]);
    direct.from_cache = results[n].from_cache;
    direct.solve_seconds = results[n].solve_seconds;
    EXPECT_TRUE(numerically_equal(results[n], direct))
        << points[n].cache_key();
  }
}

TEST(SweepRunner, DiskCachePersistsAcrossRunners) {
  const std::string dir = testing::TempDir() + "esched_disk_cache_test";
  Scenario s = small_scenario();
  s.solvers = {SolverKind::kQbdAnalysis};
  const auto points = s.expand();

  SweepRunner first(2);
  first.set_cache_dir(dir);
  SweepStats cold;
  const auto solved = first.run(points, &cold);
  EXPECT_EQ(cold.solved_points, points.size());
  EXPECT_EQ(cold.disk_hits, 0u);

  // A fresh runner (fresh process, conceptually) hits only the disk.
  SweepRunner second(2);
  second.set_cache_dir(dir);
  SweepStats warm;
  const auto loaded = second.run(points, &warm);
  EXPECT_EQ(warm.solved_points, 0u);
  EXPECT_EQ(warm.disk_hits, points.size());
  EXPECT_EQ(warm.cache_hits, points.size());
  for (std::size_t n = 0; n < points.size(); ++n) {
    EXPECT_TRUE(loaded[n].from_cache);
    EXPECT_TRUE(numerically_equal(solved[n], loaded[n]))
        << points[n].cache_key();
  }
  std::filesystem::remove_all(dir);
}

TEST(DiskCache, RoundTripsResultsExactlyAndRejectsCorruption) {
  RunResult result;
  result.mean_response_time = 1.0 / 3.0;
  result.mean_jobs_i = 0.1234567890123456789;
  result.ci_halfwidth = 1e-300;
  result.p99_e = 42.5;
  result.num_states = 1681;
  result.dom_checkpoints = 77;
  result.solver_iterations = 12;
  result.solve_residual = 3.0e-13;
  const std::string text = serialize_run_result(result);
  const auto parsed = deserialize_run_result(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(numerically_equal(result, *parsed));
  EXPECT_FALSE(deserialize_run_result("garbage").has_value());
  EXPECT_FALSE(deserialize_run_result(text.substr(0, 40)).has_value());

  const std::string dir = testing::TempDir() + "esched_disk_cache_unit";
  const DiskResultCache cache(dir);
  EXPECT_FALSE(cache.load("missing").has_value());
  cache.store("k=1;policy=IF", result);
  const auto loaded = cache.load("k=1;policy=IF");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(numerically_equal(result, *loaded));
  // A different key mapping to a present file must verify the stored key.
  EXPECT_FALSE(cache.load("k=1;policy=EF").has_value());
  std::filesystem::remove_all(dir);
}

TEST(Report, CsvAndJsonRoundTrip) {
  Scenario s = small_scenario();
  s.k_values = {2};
  s.rho_values = {0.5};
  s.solvers = {SolverKind::kQbdAnalysis};
  const auto points = s.expand();
  SweepRunner runner(1);
  SweepStats stats;
  const auto results = runner.run(points, &stats);

  const std::string csv_path = testing::TempDir() + "engine_report.csv";
  write_csv_report(csv_path, points, results);
  std::ifstream csv(csv_path);
  std::string line;
  std::getline(csv, line);
  EXPECT_NE(line.find("policy"), std::string::npos);
  std::size_t rows = 0;
  std::size_t summary_lines = 0;
  while (std::getline(csv, line)) {
    if (line.rfind("# ", 0) == 0) ++summary_lines;
    else ++rows;
  }
  EXPECT_EQ(rows, points.size());
  // Every CSV report ends in the deterministic summary trailer.
  EXPECT_EQ(summary_lines, 2u);
  std::remove(csv_path.c_str());

  const std::string json_path = testing::TempDir() + "engine_report.json";
  write_json_report(json_path, points, results, &stats);
  std::stringstream json;
  json << std::ifstream(json_path).rdbuf();
  EXPECT_NE(json.str().find("\"points\""), std::string::npos);
  EXPECT_NE(json.str().find("\"stats\""), std::string::npos);
  std::remove(json_path.c_str());

  std::ostringstream summary;
  print_sweep_summary(summary, points, results, stats, 2);
  EXPECT_NE(summary.str().find("more rows"), std::string::npos);
  EXPECT_NE(summary.str().find("cache hits"), std::string::npos);
}

}  // namespace
}  // namespace esched
