// Tests for the scenario-sweep engine: grid expansion, solver dispatch
// consistency against the underlying backends, memoization behavior, and
// thread-count determinism (a multi-thread sweep must be bit-identical to
// a single-thread sweep).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/policies.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/solver_dispatch.hpp"
#include "engine/sweep_runner.hpp"
#include "queueing/mmk.hpp"

namespace esched {
namespace {

/// A small mixed-solver scenario that exercises every backend cheaply.
Scenario small_scenario() {
  Scenario s;
  s.name = "test";
  s.k_values = {2, 4};
  s.rho_values = {0.5, 0.7};
  s.mu_i_values = {0.5, 1.0, 2.0};
  s.mu_e_values = {1.0};
  s.policies = {"IF", "EF"};
  s.solvers = {SolverKind::kQbdAnalysis, SolverKind::kMmkBaseline};
  return s;
}

TEST(Scenario, GridExpansionCount) {
  const Scenario s = small_scenario();
  EXPECT_EQ(s.num_points(), 2u * 2u * 3u * 1u * 1u * 2u * 2u);
  const auto points = s.expand();
  ASSERT_EQ(points.size(), s.num_points());
  // Row-major order: solver varies fastest, then policy, then the axes.
  EXPECT_EQ(points[0].params.k, 2);
  EXPECT_EQ(points[0].policy, "IF");
  EXPECT_EQ(points[0].solver, SolverKind::kQbdAnalysis);
  EXPECT_EQ(points[1].policy, "IF");
  EXPECT_EQ(points[1].solver, SolverKind::kMmkBaseline);
  EXPECT_EQ(points[2].policy, "EF");
  EXPECT_EQ(points.back().params.k, 4);
  EXPECT_NEAR(points.back().params.rho(), 0.7, 1e-12);
  // lambda_I == lambda_E by the paper's convention.
  for (const auto& point : points) {
    EXPECT_DOUBLE_EQ(point.params.lambda_i, point.params.lambda_e);
  }
}

TEST(Scenario, ValidateRejectsBadAxes) {
  Scenario s = small_scenario();
  s.policies.clear();
  EXPECT_THROW(s.expand(), Error);
  s = small_scenario();
  s.rho_values = {1.2};
  EXPECT_THROW(s.expand(), Error);
  s = small_scenario();
  s.policies = {"NotAPolicy"};
  EXPECT_THROW(s.expand(), Error);
}

TEST(Scenario, BuiltinsExpandToExpectedSizes) {
  for (const auto& name : builtin_scenario_names()) {
    EXPECT_NO_THROW(builtin_scenario(name).expand()) << name;
  }
  EXPECT_EQ(builtin_scenario("fig4").num_points(), 3u * 14u * 14u * 2u);
  EXPECT_EQ(builtin_scenario("fig5").num_points(), 3u * 14u * 2u);
  EXPECT_EQ(builtin_scenario("fig6").num_points(), 15u * 2u * 2u);
  EXPECT_THROW(builtin_scenario("no-such-scenario"), Error);
}

TEST(Scenario, CacheKeyDistinguishesAndMatches) {
  const auto points = small_scenario().expand();
  RunPoint a = points[0];
  RunPoint b = points[0];
  EXPECT_EQ(a.cache_key(), b.cache_key());
  EXPECT_EQ(a.seed(), b.seed());
  b.policy = "EF";
  EXPECT_NE(a.cache_key(), b.cache_key());
  b = a;
  b.options.base_seed = 2;
  EXPECT_NE(a.cache_key(), b.cache_key());
  EXPECT_NE(a.seed(), b.seed());
}

TEST(Scenario, MakePolicyParsesSpecs) {
  EXPECT_EQ(make_policy("IF")->name(), make_inelastic_first()->name());
  EXPECT_EQ(make_policy("EF")->name(), make_elastic_first()->name());
  EXPECT_EQ(make_policy("Cap2")->name(), make_inelastic_cap(2)->name());
  EXPECT_EQ(make_policy("IF+idle1")->name(),
            make_idling(make_inelastic_first(), 1.0)->name());
  EXPECT_THROW(make_policy("CapX"), Error);
  EXPECT_THROW(make_policy("bogus"), Error);
}

TEST(Scenario, SolverNamesRoundTrip) {
  for (const SolverKind kind :
       {SolverKind::kQbdAnalysis, SolverKind::kExactCtmc,
        SolverKind::kSimulation, SolverKind::kMmkBaseline}) {
    EXPECT_EQ(parse_solver(solver_name(kind)), kind);
  }
  EXPECT_THROW(parse_solver("fancy"), Error);
}

TEST(Dispatch, QbdMatchesDirectAnalysis) {
  const SystemParams p = SystemParams::from_load(4, 2.0, 1.0, 0.7);
  const RunPoint point{p, "EF", SolverKind::kQbdAnalysis, {}};
  const RunResult result = dispatch_run(point);
  const ResponseTimeAnalysis direct = analyze_elastic_first(p);
  EXPECT_DOUBLE_EQ(result.mean_response_time, direct.mean_response_time);
  EXPECT_DOUBLE_EQ(result.mean_jobs_i, direct.mean_jobs_i);
  EXPECT_EQ(result.solver_iterations, direct.qbd_iterations);
}

TEST(Dispatch, ExactMatchesDirectSolveAndReportsSolveInfo) {
  const SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  RunPoint point{p, "FairShare", SolverKind::kExactCtmc, {}};
  point.options.imax = point.options.jmax = 40;
  const RunResult result = dispatch_run(point);
  ExactCtmcOptions options;
  options.imax = options.jmax = 40;
  const ExactCtmcResult direct =
      solve_exact_ctmc(p, *make_fair_share(), options);
  EXPECT_DOUBLE_EQ(result.mean_response_time, direct.mean_response_time);
  EXPECT_DOUBLE_EQ(result.boundary_mass, direct.boundary_mass);
  // 41x41 states > gth_state_limit, so the SOR path ran and its cost must
  // surface through the result (the satellite fix this PR ships).
  EXPECT_GT(result.solver_iterations, 0);
  EXPECT_LT(result.solve_residual, 1e-11);
  EXPECT_TRUE(direct.solve_info.converged);
}

TEST(Dispatch, GthPathReportsConvergedSolveInfo) {
  const SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  ExactCtmcOptions options;
  options.imax = options.jmax = 15;  // 256 states <= gth_state_limit
  const ExactCtmcResult direct =
      solve_exact_ctmc(p, *make_inelastic_first(), options);
  EXPECT_TRUE(direct.solve_info.converged);
  EXPECT_EQ(direct.solve_info.iterations, 0);
  EXPECT_LT(direct.solve_info.residual, 1e-10);
}

TEST(Dispatch, MmkBaselineMatchesClosedForms) {
  const SystemParams p = SystemParams::from_load(4, 2.0, 1.0, 0.6);
  const RunPoint point{p, "IF", SolverKind::kMmkBaseline, {}};
  const RunResult result = dispatch_run(point);
  const MMk inelastic(p.lambda_i, p.mu_i, p.k);
  EXPECT_DOUBLE_EQ(result.mean_response_time_i,
                   inelastic.mean_response_time());
  const MMk elastic(p.lambda_e, p.k * p.mu_e, 1);
  EXPECT_DOUBLE_EQ(result.mean_response_time_e, elastic.mean_response_time());
}

TEST(Dispatch, RejectsInvalidCombinations) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.5);
  // The QBD analyses cover only IF and EF on the base model.
  EXPECT_THROW(
      dispatch_run(RunPoint{p, "FairShare", SolverKind::kQbdAnalysis, {}}),
      Error);
  SystemParams capped = p;
  capped.elastic_cap = 1;
  EXPECT_THROW(
      dispatch_run(RunPoint{capped, "EF", SolverKind::kQbdAnalysis, {}}),
      Error);
}

TEST(SweepRunner, CacheHitsWithinAndAcrossRuns) {
  Scenario s = small_scenario();
  s.solvers = {SolverKind::kQbdAnalysis};
  const auto base = s.expand();
  const std::size_t unique = base.size();
  // Duplicate every point: the duplicates must be served from cache.
  auto points = base;
  points.insert(points.end(), base.begin(), base.end());

  SweepRunner runner(2);
  SweepStats stats;
  const auto first = runner.run(points, &stats);
  EXPECT_EQ(stats.total_points, 2 * unique);
  EXPECT_EQ(stats.solved_points, unique);
  EXPECT_EQ(stats.cache_hits, unique);
  EXPECT_EQ(runner.cache().size(), unique);
  for (std::size_t n = 0; n < unique; ++n) {
    EXPECT_FALSE(first[n].from_cache);
    EXPECT_TRUE(first[n + unique].from_cache);
    EXPECT_TRUE(numerically_equal(first[n], first[n + unique]));
  }

  // A second run over the same points is all cache hits.
  SweepStats again;
  const auto second = runner.run(points, &again);
  EXPECT_EQ(again.solved_points, 0u);
  EXPECT_EQ(again.cache_hits, 2 * unique);
  for (std::size_t n = 0; n < points.size(); ++n) {
    EXPECT_TRUE(second[n].from_cache);
    EXPECT_TRUE(numerically_equal(first[n], second[n]));
  }
}

TEST(SweepRunner, MultiThreadSweepIsBitIdenticalToSingleThread) {
  // Mix all four backends, including seeded simulation, and require the
  // 4-thread pool to reproduce the 1-thread results bit for bit.
  Scenario s = small_scenario();
  s.k_values = {2};
  s.mu_i_values = {0.5, 1.0, 2.0};
  s.solvers = {SolverKind::kQbdAnalysis, SolverKind::kExactCtmc,
               SolverKind::kSimulation, SolverKind::kMmkBaseline};
  s.options.imax = s.options.jmax = 30;
  s.options.sim_jobs = 4000;
  s.options.sim_warmup = 400;
  const auto points = s.expand();

  SweepRunner serial(1);
  SweepRunner parallel(4);
  const auto serial_results = serial.run(points);
  const auto parallel_results = parallel.run(points);
  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t n = 0; n < points.size(); ++n) {
    EXPECT_TRUE(numerically_equal(serial_results[n], parallel_results[n]))
        << "point " << points[n].cache_key();
  }
}

TEST(SweepRunner, PropagatesSolverErrors) {
  SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  std::vector<RunPoint> points = {
      {p, "IF", SolverKind::kQbdAnalysis, {}},
      {p, "FairShare", SolverKind::kQbdAnalysis, {}},  // invalid combo
  };
  SweepRunner runner(2);
  EXPECT_THROW(runner.run(points), Error);
  // The valid point still landed in the cache.
  EXPECT_EQ(runner.cache().size(), 1u);
}

TEST(Report, CsvAndJsonRoundTrip) {
  Scenario s = small_scenario();
  s.k_values = {2};
  s.rho_values = {0.5};
  s.solvers = {SolverKind::kQbdAnalysis};
  const auto points = s.expand();
  SweepRunner runner(1);
  SweepStats stats;
  const auto results = runner.run(points, &stats);

  const std::string csv_path = testing::TempDir() + "engine_report.csv";
  write_csv_report(csv_path, points, results);
  std::ifstream csv(csv_path);
  std::string line;
  std::getline(csv, line);
  EXPECT_NE(line.find("policy"), std::string::npos);
  std::size_t rows = 0;
  while (std::getline(csv, line)) ++rows;
  EXPECT_EQ(rows, points.size());
  std::remove(csv_path.c_str());

  const std::string json_path = testing::TempDir() + "engine_report.json";
  write_json_report(json_path, points, results, &stats);
  std::stringstream json;
  json << std::ifstream(json_path).rdbuf();
  EXPECT_NE(json.str().find("\"points\""), std::string::npos);
  EXPECT_NE(json.str().find("\"stats\""), std::string::npos);
  std::remove(json_path.c_str());

  std::ostringstream summary;
  print_sweep_summary(summary, points, results, stats, 2);
  EXPECT_NE(summary.str().find("more rows"), std::string::npos);
  EXPECT_NE(summary.str().find("cache hits"), std::string::npos);
}

}  // namespace
}  // namespace esched
